// Experiment E3 — §2.2.1: "for current neutral-atom devices, the shot rate
// is on the order of 1 Hz, with roadmaps projecting increases to around
// 100 Hz... we do not consider tight integration to be a practical concern
// in the near term, as no such [latency] bottlenecks have been observed."
//
// Sweep shot rate x WAN round-trip and report makespan and QPU duty. The
// loose-coupling argument holds when adding realistic network latency
// changes the outcome by percents at 1 Hz; the sensitivity should only
// emerge at roadmap rates.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cosim.hpp"
#include "workload/patterns.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
}  // namespace

int main() {
  print_title(
      "E3 | Shot-rate (1 Hz today -> 100 Hz roadmap) x network latency "
      "(loose-coupling sensitivity, balanced variational workload)");

  common::Rng rng(5);
  workload::PatternOptions pattern_options;
  pattern_options.count = 10;
  pattern_options.arrival_window_seconds = 60.0;
  const auto jobs =
      workload::generate(workload::Pattern::kBalanced, pattern_options, rng);

  Table table({"shot_rate", "rtt", "makespan", "qpu_util", "job_turnaround",
               "turnaround_slowdown"});

  for (const double rate : {1.0, 10.0, 100.0}) {
    double reference_turnaround = 0;
    for (const double rtt_ms : {0.0, 50.0, 200.0, 1000.0}) {
      workload::CosimOptions options;
      options.access = workload::QpuAccess::kDaemonShared;
      options.queue_policy.non_production_batch_shots = 0;
      options.shot_rate_hz = rate;
      // Setup scales down with faster devices (same control stack share).
      options.qpu_setup_seconds = 2.0 / std::sqrt(rate);
      options.network_roundtrip_seconds = rtt_ms / 1000.0;
      const auto metrics = workload::run_cosim(options, jobs);
      const double turnaround =
          metrics.by_class.at(daemon::JobClass::kProduction)
              .mean_turnaround_seconds;
      if (rtt_ms == 0.0) reference_turnaround = turnaround;
      const double slowdown = reference_turnaround > 0
                                  ? turnaround / reference_turnaround - 1.0
                                  : 0.0;
      table.add_row({fmt("%.0f Hz", rate), fmt("%.0f ms", rtt_ms),
                     secs(metrics.makespan_seconds),
                     pct(metrics.qpu_utilization), secs(turnaround),
                     pct(slowdown)});
    }
  }
  table.print();
  print_note(
      "\nExpected shape: system throughput (makespan, QPU utilization) is\n"
      "insensitive to WAN latency at every rate — the queue hides it; this\n"
      "is the paper's loose-coupling argument. Per-job turnaround does pay\n"
      "the RTT per quantum phase, and the *relative* cost grows with shot\n"
      "rate as service times shrink — the crossover where tight coupling\n"
      "starts to matter.");
  return 0;
}
