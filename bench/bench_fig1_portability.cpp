// Experiment F1 — reproduces Figure 1: the development workflow "local
// emulation -> HPC emulation -> QPU" with a single, unchanged program.
//
// One payload is built once (pulser SDK) and executed on three resources
// selected purely by name — the --qpu switch. We report per stage: the
// agreement with the ideal distribution, the calibration the job actually
// saw, and the portability validator's verdict (including the drifted-QPU
// warning that motivates revalidation at the point of execution).
#include <cstdio>
#include <numbers>

#include "bench_util.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"
#include "runtime/runtime.hpp"
#include "sdk/pulser.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using quantum::Payload;
using quantum::Samples;
}  // namespace

int main() {
  print_title(
      "F1 | Figure 1 workflow: one program, three environments, zero "
      "source changes (switching is the --qpu resource name only)");

  // --- Build the program ONCE with the pulser SDK -------------------------
  const auto device_spec = quantum::DeviceSpec::analog_default();
  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::linear_chain(6, 6.0), device_spec);
  (void)builder.declare_channel("global",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  // Adiabatic-ish sweep toward the AFM-ordered phase.
  (void)builder.add(
      sdk::pulser::ramp_detuning_pulse(600, 2.0 * std::numbers::pi, -6.0,
                                       8.0, 0.0),
      "global");
  const Payload payload = builder.to_payload(2000).value();

  // --- Stand up the three environments ------------------------------------
  qrmi::ResourceRegistry registry;
  registry.add("laptop-sv",
               qrmi::LocalEmulatorQrmi::create("laptop-sv", "sv").value());
  registry.add("hpc-mps",
               qrmi::LocalEmulatorQrmi::create("hpc-mps", "mps:16").value());

  common::ManualClock clock;
  qpu::QpuOptions qpu_options;
  qpu_options.time_scale = 1e9;  // compress shot pacing for the bench
  qpu::QpuDevice device(qpu_options, &clock);
  // Simulate eight hours of calibration drift before the production run.
  clock.advance(8LL * 3600 * common::kSecond);
  qpu::QpuController controller(&device, &clock);
  registry.add("fresnel-qpu", std::make_shared<qrmi::DirectQpuQrmi>(
                                  "fresnel-qpu", &device, &controller));

  // Reference distribution: the ideal dense result.
  runtime::RuntimeOptions ref_options;
  ref_options.resource = "laptop-sv";
  auto reference_rt =
      runtime::HybridRuntime::connect_local(&registry, ref_options).value();
  const Samples reference = reference_rt->run(payload).value();

  Table table({"stage (--qpu=)", "backend", "tv_vs_ideal", "validation",
               "warnings", "device_fidelity"});

  for (const std::string resource : {"laptop-sv", "hpc-mps", "fresnel-qpu"}) {
    runtime::RuntimeOptions options;
    options.resource = resource;
    options.poll_interval = common::kMillisecond;
    auto rt = runtime::HybridRuntime::connect_local(&registry, options);
    if (!rt.ok()) {
      std::printf("connect failed: %s\n", rt.error().to_string().c_str());
      return 1;
    }
    const auto report = rt.value()->validate(payload).value();
    auto samples = rt.value()->run(payload);
    if (!samples.ok()) {
      std::printf("run failed on %s: %s\n", resource.c_str(),
                  samples.error().to_string().c_str());
      return 1;
    }
    const double tv =
        Samples::total_variation_distance(reference, samples.value());
    const std::string backend =
        samples.value().metadata().at_or_null("backend").as_string();
    table.add_row({resource, backend, fmt("%.3f", tv),
                   report.compatible ? "compatible" : "INCOMPATIBLE",
                   std::to_string(report.warning_count()),
                   fmt("%.3f", report.device_fidelity)});
  }
  table.print();

  // --- The mock mode: structural validation at widths no emulator can do --
  print_note("\nMock validation (chi=1 product state, 100-atom register):");
  sdk::pulser::SequenceBuilder wide_builder(
      quantum::AtomRegister::linear_chain(100, 6.0),
      quantum::DeviceSpec::emulator_default(256));
  (void)wide_builder.declare_channel(
      "global", sdk::pulser::ChannelKind::kRydbergGlobal);
  (void)wide_builder.add(
      sdk::pulser::constant_pulse(200, 2.0, 0.0, 0.0), "global");
  const Payload wide = wide_builder.to_payload(20).value();
  auto mock = qrmi::LocalEmulatorQrmi::create("mock", "mps-mock").value();
  auto mock_run = mock->run_sync(wide);
  std::printf("  100-atom end-to-end mock run: %s (%llu shots, %zu qubits)\n",
              mock_run.ok() ? "OK" : mock_run.error().to_string().c_str(),
              static_cast<unsigned long long>(
                  mock_run.ok() ? mock_run.value().total_shots() : 0),
              mock_run.ok() ? mock_run.value().num_qubits() : 0);

  print_note(
      "\nExpected shape: laptop-sv and hpc-mps agree to within sampling\n"
      "noise (TV ~ few %); the drifted QPU shows a larger TV and a\n"
      "validation warning (degraded fidelity / stale calibration) — the\n"
      "reason the runtime revalidates at the point of execution.");
  return 0;
}
