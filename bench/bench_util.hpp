// Shared table-printing helpers for the bench harnesses. Each bench prints
// paper-style rows; EXPERIMENTS.md records the expected shapes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace qcenv::bench {

/// True when the bench was invoked with --quick: run a shrunken workload so
/// CI smoke steps can execute the binary in seconds instead of minutes.
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

/// Fixed-width table: first row is the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    const auto measure = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    measure(header_);
    for (const auto& row : rows_) measure(row);
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::string rule;
    for (const std::size_t w : widths) {
      rule += std::string(w, '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

inline std::string pct(double fraction) { return fmt("%.1f%%", fraction * 100.0); }
inline std::string secs(double seconds) { return fmt("%.1f s", seconds); }

}  // namespace qcenv::bench
