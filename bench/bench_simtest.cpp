// Experiment S1 — deterministic simulation throughput.
// The sweep's value is proportional to how many fault schedules it can
// explore per unit of real time. This bench measures seeds/second and the
// virtual:real time compression across scenario shapes, and gates the CI
// smoke on the quick sweep finishing inside its budget (a regression that
// reintroduces real sleeps into the virtual-time path shows up here as a
// collapse of the compression ratio).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "simtest/scenario.hpp"
#include "simtest/sweep.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Shape {
  const char* name;
  simtest::ScenarioOptions options;
};

simtest::ScenarioOptions base_options(std::uint64_t seed) {
  simtest::ScenarioOptions options;
  options.seed = seed;
  options.jobs = 14;
  options.horizon = 20 * common::kSecond;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("S1. Deterministic simulation harness throughput");
  print_note(
      "Each row: N seeded full-stack scenarios (real daemon, virtual "
      "time).\nCompression = virtual time simulated / real time spent.");

  Shape shapes[4];
  shapes[0] = {"in-memory flaps+storms", base_options(1)};
  shapes[0].options.durable = false;
  shapes[1] = {"durable restarts", base_options(1)};
  shapes[1].options.faults.restarts = 2;
  shapes[2] = {"durable disk faults", base_options(1)};
  shapes[2].options.faults.disk_fault = true;
  shapes[3] = {"latency jitter", base_options(1)};
  shapes[3].options.latency = true;

  const int seeds = quick ? 8 : 50;
  Table table({"scenario shape", "seeds", "seeds/s", "virtual ms/seed",
               "compression"});
  bool all_green = true;
  for (const auto& shape : shapes) {
    const double start = now_s();
    double virtual_s = 0;
    std::size_t failures = 0;
    for (int i = 0; i < seeds; ++i) {
      auto options = shape.options;
      options.seed = static_cast<std::uint64_t>(i + 1);
      const auto result = simtest::run_scenario(options);
      virtual_s += common::to_seconds(result.stats.virtual_end);
      if (!result.ok()) {
        ++failures;
        std::printf("  FAILED %s\n",
                    simtest::summary_line(result).c_str());
      }
    }
    const double wall = now_s() - start;
    all_green = all_green && failures == 0;
    char rate[32], per_seed[32], compression[32];
    std::snprintf(rate, sizeof(rate), "%.1f", seeds / wall);
    std::snprintf(per_seed, sizeof(per_seed), "%.0f",
                  1000.0 * virtual_s / seeds);
    std::snprintf(compression, sizeof(compression), "%.0fx",
                  virtual_s / wall);
    table.add_row({shape.name, std::to_string(seeds), rate, per_seed,
                   compression});
  }
  table.print();
  print_note(all_green ? "all scenarios upheld every invariant"
                       : "INVARIANT VIOLATIONS — see above");
  return all_green ? 0 : 1;
}
