// Recorded-benchmark baseline for the submit hot path: 64 concurrent
// tenants driving Dispatcher::submit through the durable store until
// every accepted submission is fsynced. Dispatch lanes are drained so
// the numbers isolate admission + sharded enqueue + journal append +
// group-commit drain — the path this overhaul rebuilt.
//
// Three configurations run back to back on the same machine:
//   pre-PR   submit_shards=1 + JSON v1 journal: the layout before the
//            sharding + binary-WAL overhaul
//   sharded  submit_shards=8 + binary v2 journal: the production default
//   traced   the sharded config with job tracing + stage histograms on —
//            every submit opens a trace and records admission/
//            journal_append spans, exactly the daemon's default
// Each run's clock stops only after StateStore::flush() returns, so the
// throughput is SUSTAINED durable submissions per second — a journal
// writer that cannot drain what the submit path enqueues is charged for
// its backlog. The sharded/pre-PR throughput ratio ("speedup") is the
// recorded, hardware-normalized figure: raw submits/s vary per machine,
// the ratio collapses toward 1.0 the moment the hot path re-serializes.
// The traced/sharded ratio ("trace_overhead") gates the observability
// layer: tracing-on must stay within 5% of tracing-off.
//
// Usage:
//   bench_submit_path [--quick] [--replicate] [--out FILE]
//                     [--profile-out FILE]
//                     [--check BASELINE [--tolerance FRAC]
//                      [--trace-tolerance FRAC]]
//
// --replicate runs a hot-standby journal-shipping replicator concurrently
// with every v2-journal measurement (pulling WAL segments off the live
// store dir into a mirror) — the gate then proves replication rides the
// hot path for free.
//
// --out writes the measured numbers as JSON (the committed baseline at
// the repo root is BENCH_submit.json). --check loads a baseline and FAILS
// (exit 1) when the measured speedup drops more than --tolerance
// (default 0.25) below the baseline's, or when the freshly measured
// traced/untraced throughput ratio drops below 1 - --trace-tolerance
// (default 0.05) — the CI perf-regression gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/temp_dir.hpp"
#include "daemon/dispatcher.hpp"
#include "federation/replication.hpp"
#include "qrmi/local_emulator.hpp"
#include "store/state_store.hpp"
#include "telemetry/explain.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using common::Json;
using quantum::Payload;

Payload tiny_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(100, 2.0),
                               quantum::Waveform::constant(100, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

struct Config {
  const char* name;
  std::size_t shards;
  store::JournalFormat format;
  /// Production-default tracing: a TraceStore + stage histograms behind
  /// the dispatcher, and a trace begun per submission.
  bool traced = false;
};

struct RunResult {
  double submits_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

RunResult run_config_once(const Config& config, std::size_t tenants,
                          std::size_t jobs_per_tenant, bool replicate) {
  common::TempDir dir("qcenv-bench-submit-");
  common::WallClock clock;
  store::StoreOptions store_options;
  store_options.data_dir = dir.path();
  store_options.journal.format = config.format;
  store_options.compact_every_events = 0;  // no compaction mid-measurement
  store::StateStore store(store_options, &clock, nullptr);
  (void)store.open();

  auto broker = std::make_shared<broker::ResourceBroker>(
      broker::BrokerOptions{}, &clock, nullptr);
  (void)broker->add("emu0", qrmi::LocalEmulatorQrmi::create("emu0", "sv")
                                .value());
  daemon::QueuePolicy policy;
  policy.submit_shards = config.shards;
  // The daemon's default telemetry shape: stage histograms need a metrics
  // registry, traces live in the default-sized sharded ring (so this run
  // pays eviction too, exactly like a long-lived daemon).
  telemetry::MetricsRegistry metrics;
  telemetry::TraceStore traces;
  daemon::Dispatcher dispatcher(broker, policy, &clock,
                                config.traced ? &metrics : nullptr, &store,
                                nullptr, config.traced ? &traces : nullptr,
                                nullptr);
  // Park the lanes: execution throughput is bench_shot_rate's problem;
  // this harness measures the submit->journal->fsync path alone.
  dispatcher.drain();

  // Hot-standby shipping alongside the measurement (v2 journals only —
  // the shipping protocol doesn't speak v1): a replicator thread pulls
  // WAL segments off the live store dir into a mirror for the whole run,
  // so the measured throughput pays whatever contention replication
  // actually costs the hot path.
  std::unique_ptr<common::TempDir> standby_dir;
  std::atomic<bool> stop_replication{false};
  std::thread shipper;
  if (replicate && config.format == store::JournalFormat::kBinaryV2) {
    standby_dir = std::make_unique<common::TempDir>("qcenv-bench-standby-");
    shipper = std::thread([&] {
      federation::FileReplicationSource source(dir.path());
      federation::StandbyReplicator replicator(
          {standby_dir->path(), 256 * 1024}, &source, &clock, nullptr,
          nullptr);
      while (!stop_replication.load(std::memory_order_acquire)) {
        (void)replicator.poll_once();
        // Production cadence (StandbyOptions::poll_interval): the gate
        // prices the shipping a real standby imposes, not a tight loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  // Start barrier: thread creation (64 pthreads) must not be timed, and
  // every tenant must hit the dispatcher concurrently from the first
  // submit — that concurrency is the thing under measurement.
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::vector<double>> latencies(tenants);
  std::vector<std::thread> threads;
  threads.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string user = "tenant" + std::to_string(t);
      // Parameter-sweep shape: one program object, many submissions —
      // the zero-copy shared_ptr overload is the hot-path API.
      const auto payload =
          std::make_shared<const quantum::Payload>(tiny_payload(64));
      auto& samples = latencies[t];
      samples.reserve(jobs_per_tenant);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t j = 0; j < jobs_per_tenant; ++j) {
        const auto s0 = std::chrono::steady_clock::now();
        daemon::Dispatcher::SubmitOptions options;
        if (config.traced) {
          // What the daemon does per submission: allocate the trace id.
          // The admission start falls back to the dispatcher's own
          // submit timestamp (there is no pre-submit admission phase
          // here); spans and stage histograms materialize off the
          // submit path, at first claim/finish/read.
          options.trace_id = traces.allocate();
        }
        (void)dispatcher.submit(common::SessionId{0}, user,
                                daemon::JobClass::kDevelopment, payload,
                                options);
        samples.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - s0)
                              .count());
      }
    });
  }
  while (ready.load() < tenants) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  // Sustained means durable: the run is not over until the group-commit
  // writer has drained and fsynced everything the submit path enqueued.
  (void)store.flush();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  if (shipper.joinable()) {
    stop_replication.store(true, std::memory_order_release);
    shipper.join();
  }

  std::vector<double> all;
  all.reserve(tenants * jobs_per_tenant);
  for (const auto& samples : latencies) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  std::sort(all.begin(), all.end());
  RunResult result;
  result.submits_per_sec =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  result.p50_ms = quantile(all, 0.50);
  result.p99_ms = quantile(all, 0.99);
  return result;
}

/// Best of `reps` runs: short runs are at the mercy of the scheduler, and
/// the best run is the one least perturbed by it — the ratio of two best
/// runs is far more stable than the ratio of two single runs.
RunResult run_config(const Config& config, std::size_t tenants,
                     std::size_t jobs_per_tenant, std::size_t reps,
                     bool replicate) {
  RunResult best;
  for (std::size_t r = 0; r < reps; ++r) {
    const RunResult result =
        run_config_once(config, tenants, jobs_per_tenant, replicate);
    if (result.submits_per_sec > best.submits_per_sec) best = result;
  }
  return best;
}

Json to_json(const Config& config, const RunResult& result) {
  Json out = Json::object();
  out["shards"] = static_cast<long long>(config.shards);
  out["journal_format"] = std::string(store::to_string(config.format));
  out["traced"] = config.traced;
  out["submits_per_sec"] = result.submits_per_sec;
  out["p50_ms"] = result.p50_ms;
  out["p99_ms"] = result.p99_ms;
  return out;
}

/// A short traced run with LIVE lanes (unlike the drained measurement
/// runs): every terminal job's span tree folds through the
/// CriticalPathProfiler into a flamegraph-compatible collapsed-stack
/// artifact — the profile counterpart of the sample trace JSON CI
/// already uploads, so every green build carries the current critical
/// path shape of the submit-to-result pipeline.
bool write_profile_artifact(const char* path) {
  common::WallClock clock;
  auto broker = std::make_shared<broker::ResourceBroker>(
      broker::BrokerOptions{}, &clock, nullptr);
  (void)broker->add("emu0", qrmi::LocalEmulatorQrmi::create("emu0", "sv")
                                .value());
  telemetry::MetricsRegistry metrics;
  telemetry::TraceStore traces;
  telemetry::CriticalPathProfiler profiler;
  daemon::Dispatcher dispatcher(broker, daemon::QueuePolicy{}, &clock,
                                &metrics, nullptr, nullptr, &traces,
                                nullptr);
  dispatcher.set_profiler(&profiler);
  const auto payload =
      std::make_shared<const quantum::Payload>(tiny_payload(64));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    daemon::Dispatcher::SubmitOptions options;
    options.trace_id = traces.allocate();
    auto submitted =
        dispatcher.submit(common::SessionId{0}, "profile",
                          daemon::JobClass::kDevelopment, payload, options);
    if (!submitted.ok()) return false;
    ids.push_back(submitted.value());
  }
  for (const auto id : ids) {
    if (!dispatcher.wait(id).ok()) return false;
  }
  const auto view = profiler.view(0, clock.now());
  std::ofstream file(path);
  file << telemetry::to_collapsed_text(view.stacks);
  return static_cast<bool>(file);
}

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  bool replicate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicate") == 0) replicate = true;
  }
  const std::size_t tenants = 64;
  const std::size_t jobs_per_tenant = quick ? 150 : 600;
  // Even quick mode earns 3 reps: the tracing gate compares two configs
  // whose per-run variance (fsync scheduling) exceeds the 5% tolerance,
  // so best-of-N is what makes the ratio trustworthy.
  const std::size_t reps = quick ? 3 : 4;
  const Config pre_pr{"pre-PR (1 shard, json-v1)", 1,
                      store::JournalFormat::kJsonV1};
  const Config sharded{"sharded (8 shards, binary-v2)", 8,
                       store::JournalFormat::kBinaryV2};
  const Config traced{"sharded + tracing on", 8,
                      store::JournalFormat::kBinaryV2, /*traced=*/true};

  print_title("submit-path | " + std::to_string(tenants) +
              " concurrent tenants, " + std::to_string(jobs_per_tenant) +
              " submits each, durable (submit + group-commit drain)" +
              (replicate ? ", journal shipping ON" : ""));

  // Pre-PR first so the overhauled run cannot ride a warmed allocator
  // into an inflated ratio; each config gets its own store directory.
  const RunResult before =
      run_config(pre_pr, tenants, jobs_per_tenant, reps, replicate);
  const RunResult after =
      run_config(sharded, tenants, jobs_per_tenant, reps, replicate);
  const RunResult with_tracing =
      run_config(traced, tenants, jobs_per_tenant, reps, replicate);
  const double speedup = before.submits_per_sec > 0.0
                             ? after.submits_per_sec / before.submits_per_sec
                             : 0.0;
  // Tracing-on throughput as a fraction of tracing-off (1.0 = free;
  // the gate holds it above 0.95).
  const double trace_overhead =
      after.submits_per_sec > 0.0
          ? with_tracing.submits_per_sec / after.submits_per_sec
          : 0.0;

  Table table({"config", "submits/s", "p50", "p99"});
  table.add_row({pre_pr.name, fmt("%.0f", before.submits_per_sec),
                 fmt("%.3f ms", before.p50_ms),
                 fmt("%.3f ms", before.p99_ms)});
  table.add_row({sharded.name, fmt("%.0f", after.submits_per_sec),
                 fmt("%.3f ms", after.p50_ms), fmt("%.3f ms", after.p99_ms)});
  table.add_row({traced.name, fmt("%.0f", with_tracing.submits_per_sec),
                 fmt("%.3f ms", with_tracing.p50_ms),
                 fmt("%.3f ms", with_tracing.p99_ms)});
  table.print();
  print_note("\nspeedup (sharded binary WAL vs pre-PR path): " +
             fmt("%.2f", speedup) + "x");
  print_note("tracing-on/off throughput ratio: " +
             fmt("%.3f", trace_overhead));

  Json report = Json::object();
  report["bench"] = std::string("bench_submit_path");
  report["tenants"] = static_cast<long long>(tenants);
  report["jobs_per_tenant"] = static_cast<long long>(jobs_per_tenant);
  report["pre_pr"] = to_json(pre_pr, before);
  report["sharded"] = to_json(sharded, after);
  report["traced"] = to_json(traced, with_tracing);
  report["speedup"] = speedup;
  report["trace_overhead"] = trace_overhead;
  report["replicate"] = replicate;

  if (const char* out = arg_value(argc, argv, "--out")) {
    std::ofstream file(out);
    file << report.dump(2) << "\n";
    print_note("wrote " + std::string(out));
  }

  if (const char* profile_out = arg_value(argc, argv, "--profile-out")) {
    if (!write_profile_artifact(profile_out)) {
      std::fprintf(stderr, "cannot write collapsed-stack profile '%s'\n",
                   profile_out);
      return 1;
    }
    print_note("wrote " + std::string(profile_out));
  }

  if (const char* baseline_path = arg_value(argc, argv, "--check")) {
    double tolerance = 0.25;
    if (const char* tol = arg_value(argc, argv, "--tolerance")) {
      tolerance = std::strtod(tol, nullptr);
    }
    std::ifstream file(baseline_path);
    if (!file) {
      std::fprintf(stderr, "cannot read baseline '%s'\n", baseline_path);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto baseline = Json::parse(buffer.str());
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline '%s' is not valid JSON: %s\n",
                   baseline_path, baseline.error().message().c_str());
      return 1;
    }
    const double recorded =
        baseline.value().at_or_null("speedup").as_double();
    const double floor = (1.0 - tolerance) * recorded;
    print_note("\nbaseline speedup " + fmt("%.2f", recorded) +
               "x, tolerance " + pct(tolerance) + " -> floor " +
               fmt("%.2f", floor) + "x, measured " + fmt("%.2f", speedup) +
               "x");
    if (speedup < floor) {
      std::fprintf(stderr,
                   "PERF REGRESSION: sharded/pre-PR speedup %.2fx "
                   "fell below %.2fx (baseline %.2fx - %.0f%%)\n",
                   speedup, floor, recorded, tolerance * 100.0);
      return 1;
    }
    // The tracing gate is absolute, not baseline-relative: tracing-on and
    // tracing-off ran back to back on THIS machine, so the ratio is
    // already hardware-normalized. 1.0 = tracing is free.
    double trace_tolerance = 0.05;
    if (const char* tol = arg_value(argc, argv, "--trace-tolerance")) {
      trace_tolerance = std::strtod(tol, nullptr);
    }
    const double trace_floor = 1.0 - trace_tolerance;
    print_note("tracing gate: ratio " + fmt("%.3f", trace_overhead) +
               " vs floor " + fmt("%.3f", trace_floor));
    if (trace_overhead < trace_floor) {
      std::fprintf(stderr,
                   "PERF REGRESSION: tracing-on throughput is %.1f%% of "
                   "tracing-off (floor %.1f%%)\n",
                   trace_overhead * 100.0, trace_floor * 100.0);
      return 1;
    }
    print_note("perf gate: OK");
  }
  return 0;
}
