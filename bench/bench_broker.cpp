// Experiment B1 — the multi-QPU resource broker.
// Quantifies what fleet dispatch buys and what failover costs:
//   (a) throughput: one shared priority queue drained by 1 vs 3 emulator
//       resources at an equal shot budget (acceptance: fleet > 1.5x single),
//   (b) failover: a resource dies mid-run; all jobs must finish on the
//       survivors with zero lost shots.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "broker/broker.hpp"
#include "daemon/dispatcher.hpp"
#include "qrmi/local_emulator.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using quantum::Payload;

Payload work_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(6, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(400, 2.0),
                               quantum::Waveform::constant(400, 0.5), 0.0});
  return Payload::from_sequence(seq, shots);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FleetRun {
  double wall_s = 0;
  std::uint64_t shots = 0;
  std::vector<broker::ResourceStatus> fleet;
};

FleetRun run_fleet(std::size_t resources, int jobs,
                   std::uint64_t shots_per_job) {
  common::WallClock clock;
  broker::BrokerOptions options;
  options.default_policy = broker::SchedulingPolicy::kRoundRobin;
  auto fleet =
      std::make_shared<broker::ResourceBroker>(options, &clock, nullptr);
  for (std::size_t i = 0; i < resources; ++i) {
    const std::string name = "emu" + std::to_string(i);
    (void)fleet->add(name,
                     qrmi::LocalEmulatorQrmi::create(name, "sv").value());
  }
  daemon::QueuePolicy queue_policy;
  queue_policy.non_production_batch_shots = 50;
  daemon::Dispatcher dispatcher(fleet, queue_policy, &clock, nullptr);

  const double t0 = now_ms();
  std::vector<std::uint64_t> ids;
  for (int j = 0; j < jobs; ++j) {
    ids.push_back(dispatcher.submit(common::SessionId{1}, "bench",
                                    daemon::JobClass::kDevelopment,
                                    work_payload(shots_per_job)));
  }
  std::uint64_t shots = 0;
  for (const auto id : ids) {
    auto samples = dispatcher.wait(id, 300 * common::kSecond);
    if (samples.ok()) shots += samples.value().total_shots();
  }
  FleetRun run;
  run.wall_s = (now_ms() - t0) / 1000.0;
  run.shots = shots;
  run.fleet = fleet->snapshot();
  return run;
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const int jobs = quick ? 9 : 30;
  const std::uint64_t shots_per_job = quick ? 150 : 400;

  // ---- (a) fleet throughput ----------------------------------------------
  print_title("B1a | Fleet throughput: " + std::to_string(jobs) + " jobs x " +
              std::to_string(shots_per_job) +
              " shots through one queue, 1 vs 3 emulator resources");
  const FleetRun single = run_fleet(1, jobs, shots_per_job);
  const FleetRun fleet = run_fleet(3, jobs, shots_per_job);
  Table throughput({"fleet", "shots", "wall", "throughput", "speedup"});
  throughput.add_row({"1 resource", std::to_string(single.shots),
                      fmt("%.2f s", single.wall_s),
                      fmt("%.0f shots/s",
                          static_cast<double>(single.shots) / single.wall_s),
                      "1.00x"});
  const double speedup = single.wall_s / fleet.wall_s;
  throughput.add_row({"3 resources", std::to_string(fleet.shots),
                      fmt("%.2f s", fleet.wall_s),
                      fmt("%.0f shots/s",
                          static_cast<double>(fleet.shots) / fleet.wall_s),
                      fmt("%.2fx", speedup)});
  throughput.print();
  if (speedup <= 1.5) {
    print_note(fmt("\nFAIL: fleet speedup %.2fx <= 1.5x acceptance floor",
                   speedup));
  }
  Table utilization({"resource", "batches", "shots"});
  for (const auto& status : fleet.fleet) {
    utilization.add_row({status.name, std::to_string(status.batches_done),
                         std::to_string(status.shots_done)});
  }
  utilization.print();
  print_note(
      "\nExpected shape: near-linear speedup (> 1.5x required) — the broker\n"
      "turns idle fleet members into throughput without touching the\n"
      "user-facing queue semantics.");

  // ---- (b) failover ------------------------------------------------------
  print_title(
      "B1b | Failover: one of 2 resources dies mid-run; jobs must finish on "
      "the survivor with zero lost shots");
  common::WallClock clock;
  broker::BrokerOptions broker_options;
  broker_options.default_policy = broker::SchedulingPolicy::kRoundRobin;
  broker_options.initial_backoff = 50 * common::kMillisecond;
  auto duo = std::make_shared<broker::ResourceBroker>(broker_options, &clock,
                                                      nullptr);
  auto doomed = qrmi::LocalEmulatorQrmi::create("doomed", "sv").value();
  (void)duo->add("doomed", doomed);
  (void)duo->add("survivor",
                 qrmi::LocalEmulatorQrmi::create("survivor", "sv").value());
  daemon::QueuePolicy queue_policy;
  queue_policy.non_production_batch_shots = 25;
  daemon::Dispatcher dispatcher(duo, queue_policy, &clock, nullptr);

  const int failover_jobs = quick ? 6 : 16;
  const std::uint64_t failover_shots = quick ? 100 : 200;
  std::vector<std::uint64_t> ids;
  const double t0 = now_ms();
  for (int j = 0; j < failover_jobs; ++j) {
    ids.push_back(dispatcher.submit(common::SessionId{1}, "bench",
                                    daemon::JobClass::kDevelopment,
                                    work_payload(failover_shots)));
  }
  // Let the run get going, then pull the plug on half the fleet.
  while (true) {
    std::uint64_t done = 0;
    for (const auto id : ids) done += dispatcher.query(id).value().shots_done;
    if (done >= failover_shots) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  doomed->set_offline(true);
  const double kill_ms = now_ms() - t0;

  std::uint64_t completed = 0, shots = 0;
  for (const auto id : ids) {
    auto samples = dispatcher.wait(id, 300 * common::kSecond);
    if (samples.ok()) {
      ++completed;
      shots += samples.value().total_shots();
    }
  }
  const double wall_s = (now_ms() - t0) / 1000.0;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(failover_jobs) * failover_shots;
  Table failover({"metric", "value"});
  failover.add_row({"jobs completed", std::to_string(completed) + "/" +
                                          std::to_string(failover_jobs)});
  failover.add_row({"shots delivered", std::to_string(shots) + "/" +
                                           std::to_string(expected)});
  failover.add_row({"resource killed after", fmt("%.0f ms", kill_ms)});
  failover.add_row({"total wall", fmt("%.2f s", wall_s)});
  failover.print();
  Table per_resource({"resource", "healthy", "batches", "shots"});
  for (const auto& status : duo->snapshot()) {
    per_resource.add_row({status.name, status.healthy ? "yes" : "no",
                          std::to_string(status.batches_done),
                          std::to_string(status.shots_done)});
  }
  per_resource.print();
  print_note(
      "\nExpected shape: all jobs complete and shots delivered == expected —\n"
      "in-flight batches from the dead resource are requeued, queued jobs\n"
      "fail over, and no shot is lost or double-counted.");
  return (shots == expected && speedup > 1.5) ? 0 : 1;
}
