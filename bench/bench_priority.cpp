// Experiment E2 — §3.3: "the production job should always be able to
// pre-empt running jobs of lower priority... the initial implementation
// [implements] such sharing by having non-production jobs configured with a
// low number of shots and without batched submission. This ensures that the
// waiting time for production jobs will be low."
//
// We sweep the non-production batch size (0 = whole-job submission) and
// report production wait statistics against the development-job slowdown.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cosim.hpp"
#include "workload/patterns.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
}  // namespace

int main() {
  print_title(
      "E2 | Production wait vs non-production batch size "
      "(4 production + 16 development jobs, QC-heavy, 1 Hz QPU)");

  common::Rng rng(99);
  const auto jobs = workload::generate_mixed_classes(
      workload::Pattern::kHighQcLowCc, /*production=*/4, /*test=*/0,
      /*development=*/16, /*arrival_window_seconds=*/120.0, rng);

  Table table({"policy", "batch_shots", "prod_mean_wait", "prod_p95_wait",
               "dev_mean_wait", "dev_turnaround", "qpu_util"});

  struct Case {
    const char* policy;
    bool class_priority;
    std::uint64_t batch;
  };
  const Case cases[] = {
      {"fifo (baseline)", false, 0}, {"priority", true, 0},
      {"priority+batch", true, 200}, {"priority+batch", true, 50},
      {"priority+batch", true, 10},
  };
  for (const auto& c : cases) {
    workload::CosimOptions options;
    options.access = workload::QpuAccess::kDaemonShared;
    options.queue_policy.class_priority = c.class_priority;
    options.queue_policy.non_production_batch_shots = c.batch;
    const auto metrics = workload::run_cosim(options, jobs);
    const auto& prod = metrics.by_class.at(daemon::JobClass::kProduction);
    const auto& dev = metrics.by_class.at(daemon::JobClass::kDevelopment);
    table.add_row({c.policy, std::to_string(c.batch),
                   secs(prod.mean_quantum_wait_seconds),
                   secs(prod.p95_quantum_wait_seconds),
                   secs(dev.mean_quantum_wait_seconds),
                   secs(dev.mean_turnaround_seconds),
                   pct(metrics.qpu_utilization)});
  }
  table.print();
  print_note(
      "\nExpected shape: class priority alone cuts production waits only\n"
      "between jobs; smaller dev batches bound the wait to one batch (the\n"
      "paper's preemption-lite), at the cost of extra per-batch setup that\n"
      "stretches development turnaround slightly.");
  return 0;
}
