// Experiment S1 — the durable state store.
// Quantifies what durability costs and what recovery buys:
//   (a) journal append throughput: fsync-per-append vs group commit vs
//       buffered (group commit must amortize fsyncs by >10x),
//   (b) submit-path overhead: dispatcher submits with and without the
//       journal attached (acceptance: group commit adds < 10%),
//   (c) recovery: replay a ~100k-event journal (acceptance: < 1 s; the CI
//       smoke job fails on this bench's exit code),
//   (d) compaction: repeated append+compact cycles must bound the journal.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "daemon/dispatcher.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"
#include "store/recovery.hpp"
#include "store/state_store.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;

using common::TempDir;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

quantum::Payload work_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

common::Json batch_samples() {
  quantum::Samples samples(2);
  samples.record("00", 30);
  samples.record("11", 20);
  return samples.to_json();
}

struct AppendRun {
  double wall_s = 0;
  std::uint64_t fsyncs = 0;
};

AppendRun run_append(store::SyncMode mode, int events) {
  TempDir dir;
  common::WallClock clock;
  store::JournalOptions options;
  options.sync = mode;
  store::JobJournal journal(options, &clock, nullptr);
  (void)journal.open(dir.path() + "/journal.log");
  common::Json data = common::Json::object();
  data["id"] = 1;
  data["shots"] = 50;
  const double t0 = now_ms();
  for (int i = 0; i < events; ++i) journal.append("batch_done", data);
  (void)journal.flush();
  AppendRun run;
  run.wall_s = (now_ms() - t0) / 1000.0;
  run.fsyncs = journal.fsyncs_total();
  return run;
}

/// Per-call dispatcher.submit() latency (microseconds), 25th percentile
/// over `jobs` drained submits. Call-by-call timing separates the submit
/// path itself from the journal writer's background CPU, which on a
/// single-core host preempts some (but not the p25) calls.
double submit_call_p25_us(store::StateStore* state_store, int jobs) {
  common::WallClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  daemon::Dispatcher dispatcher(resource, daemon::QueuePolicy{}, &clock,
                                nullptr, state_store);
  dispatcher.drain();  // pure submit path: no execution
  const quantum::Payload payload = work_payload(100);
  for (int j = 0; j < 200; ++j) {  // warmup
    dispatcher.submit(common::SessionId{1}, "bench",
                      daemon::JobClass::kDevelopment, payload);
  }
  std::vector<double> calls;
  calls.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    const double t0 = now_ms();
    dispatcher.submit(common::SessionId{1}, "bench",
                      daemon::JobClass::kDevelopment, payload);
    calls.push_back((now_ms() - t0) * 1000.0);
  }
  if (state_store != nullptr) (void)state_store->flush();
  std::sort(calls.begin(), calls.end());
  return calls[calls.size() / 4];
}

/// One REST daemon (in-memory when data_dir is empty) plus an
/// authenticated client aimed at it, for the A/B overhead measurement.
struct RestTarget {
  explicit RestTarget(const std::string& data_dir) {
    daemon::DaemonOptions options;
    options.admission.max_queue_depth = 1u << 20;  // drained queue grows
    options.store.data_dir = data_dir;
    options.store.compact_every_events = 0;
    auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
    daemon = std::make_unique<daemon::MiddlewareDaemon>(options, resource,
                                                        nullptr, &clock);
    auto port = daemon->start();
    if (!port.ok()) return;
    daemon->dispatcher().drain();
    net::HttpClient plain(port.value());
    auto session = plain.post("/v1/sessions", R"({"user":"bench"})");
    client = std::make_unique<net::HttpClient>(port.value());
    client->set_default_header(
        "X-Session-Token", common::Json::parse(session.value().body)
                               .value()
                               .get_string("token")
                               .value());
  }

  /// Wall ms for `jobs` POST /v1/jobs round-trips; < 0 on error.
  double run_chunk(const std::string& request, int jobs) {
    const double t0 = now_ms();
    for (int j = 0; j < jobs; ++j) {
      auto response = client->post("/v1/jobs", request);
      if (!response.ok() || response.value().status != 201) return -1;
    }
    const double wall = now_ms() - t0;
    if (daemon->state_store() != nullptr) {
      (void)daemon->state_store()->flush();  // untimed backlog drain
    }
    return wall;
  }

  common::WallClock clock;
  std::unique_ptr<daemon::MiddlewareDaemon> daemon;
  std::unique_ptr<net::HttpClient> client;
};

/// A/B-interleaved REST submit cost: alternating chunks against an
/// in-memory and a journaled daemon cancel host-load drift, and the
/// per-path minimum chunk is the robust cost estimator (noise on small
/// hosts only ever adds time). Returns {plain_ms, durable_ms} scaled to
/// `jobs` submits, or {-1, -1} on error.
std::pair<double, double> rest_submit_ab_ms(const std::string& data_dir,
                                            int jobs, int rounds) {
  RestTarget plain("");
  RestTarget durable(data_dir);
  if (plain.client == nullptr || durable.client == nullptr) return {-1, -1};
  common::Json body = common::Json::object();
  body["payload"] = work_payload(100).to_json();
  const std::string request = body.dump();
  const int chunk = jobs / rounds;
  // Warm routes, allocator and socket path on both daemons.
  if (plain.run_chunk(request, 50) < 0) return {-1, -1};
  if (durable.run_chunk(request, 50) < 0) return {-1, -1};
  double best_plain = -1;
  double best_durable = -1;
  for (int r = 0; r < rounds; ++r) {
    const double p = plain.run_chunk(request, chunk);
    const double d = durable.run_chunk(request, chunk);
    if (p < 0 || d < 0) return {-1, -1};
    if (best_plain < 0 || p < best_plain) best_plain = p;
    if (best_durable < 0 || d < best_durable) best_durable = d;
  }
  const double scale = static_cast<double>(jobs) / chunk;
  return {best_plain * scale, best_durable * scale};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  bool pass = true;

  // ---- (a) append throughput ---------------------------------------------
  const int append_events = quick ? 2000 : 20000;
  print_title("S1a | Journal append throughput: " +
              std::to_string(append_events) +
              " events, fsync-per-append vs group commit vs buffered");
  const AppendRun always = run_append(store::SyncMode::kAlways,
                                      append_events);
  const AppendRun group = run_append(store::SyncMode::kGroupCommit,
                                     append_events);
  const AppendRun none = run_append(store::SyncMode::kNone, append_events);
  Table throughput({"mode", "wall", "events/s", "fsyncs", "speedup"});
  const auto rate = [&](const AppendRun& run) {
    return fmt("%.0f", static_cast<double>(append_events) / run.wall_s);
  };
  throughput.add_row({"always (fsync each)", fmt("%.3f s", always.wall_s),
                      rate(always), std::to_string(always.fsyncs), "1.00x"});
  throughput.add_row({"group_commit", fmt("%.3f s", group.wall_s),
                      rate(group), std::to_string(group.fsyncs),
                      fmt("%.1fx", always.wall_s / group.wall_s)});
  throughput.add_row({"none (buffered)", fmt("%.3f s", none.wall_s),
                      rate(none), std::to_string(none.fsyncs),
                      fmt("%.1fx", always.wall_s / none.wall_s)});
  throughput.print();
  if (group.fsyncs * 10 > always.fsyncs) {
    print_note("\nFAIL: group commit issued more than 1/10th of the "
               "per-append fsyncs");
    pass = false;
  }
  print_note(
      "\nExpected shape: group commit within reach of the buffered mode —\n"
      "one fsync covers a whole batch, so durability stops taxing every\n"
      "append individually.");

  // ---- (b) submit-path overhead ------------------------------------------
  const int submit_jobs = quick ? 4000 : 10000;
  const int rest_jobs = quick ? 400 : 1000;
  const int rest_rounds = 10;
  print_title("S1b | Submit overhead: in-memory vs group-commit journal");
  TempDir submit_dir;
  common::WallClock clock;
  store::StoreOptions store_options;
  store_options.data_dir = submit_dir.path();
  store_options.compact_every_events = 0;
  store::StateStore state_store(store_options, &clock, nullptr);
  (void)state_store.open();
  // Alternate the two configurations so allocator/cache warmup and host
  // drift hit both equally; keep each path's best p25.
  double plain_us = -1;
  double durable_us = -1;
  for (int round = 0; round < 3; ++round) {
    const double p = submit_call_p25_us(nullptr, submit_jobs);
    const double d = submit_call_p25_us(&state_store, submit_jobs);
    if (plain_us < 0 || p < plain_us) plain_us = p;
    if (durable_us < 0 || d < durable_us) durable_us = d;
  }
  TempDir rest_dir;
  const auto [rest_plain_ms, rest_durable_ms] =
      rest_submit_ab_ms(rest_dir.path(), rest_jobs, rest_rounds);
  const double call_overhead = (durable_us - plain_us) / plain_us;
  const double rest_overhead =
      (rest_durable_ms - rest_plain_ms) / rest_plain_ms;
  Table submit({"path", "metric", "in-memory", "journaled", "overhead"});
  submit.add_row({"dispatcher.submit()", "p25 call latency",
                  fmt("%.2f us", plain_us), fmt("%.2f us", durable_us),
                  pct(call_overhead)});
  submit.add_row({"POST /v1/jobs",
                  "wall / " + std::to_string(rest_jobs) + " jobs",
                  fmt("%.1f ms", rest_plain_ms),
                  fmt("%.1f ms", rest_durable_ms), pct(rest_overhead)});
  submit.print();
  // Acceptance: what journaling adds to a submit, weighed against what an
  // in-memory submit costs end to end (the REST path every user takes).
  const double added_us = durable_us - plain_us;
  const double rest_plain_per_job_us =
      rest_plain_ms * 1000.0 / rest_jobs;
  const double submit_overhead = added_us / rest_plain_per_job_us;
  print_note(fmt("\njournaling adds %.2f us to a submit", added_us) +
             fmt(" whose in-memory cost is %.1f us", rest_plain_per_job_us) +
             fmt(" end to end: %.1f%% overhead", submit_overhead * 100.0));
  if (rest_plain_ms < 0 || submit_overhead >= 0.10) {
    print_note(fmt("\nFAIL: journaled submit overhead %.1f%% >= 10%% "
                   "acceptance ceiling",
                   submit_overhead * 100.0));
    if (!quick) pass = false;  // quick mode: too noisy to gate CI on
  }
  print_note(
      "\nExpected shape: well under 10% — an append only buffers an event\n"
      "struct; payload serialization (content-deduped by program\n"
      "fingerprint) and fsync batching happen on the journal's writer\n"
      "thread. The REST row shows the end-to-end picture, which on a\n"
      "single-core host also absorbs that background work.");

  // ---- (c) replay a ~100k-event journal ----------------------------------
  const int replay_jobs = 2000;
  const int batches_per_job = 48;  // submit + 48 batch_done + completed
  print_title("S1c | Recovery: replay a ~" +
              std::to_string(replay_jobs * (batches_per_job + 2) / 1000) +
              "k-event journal (acceptance: < 1 s)");
  TempDir replay_dir;
  store::StoreOptions replay_options;
  replay_options.data_dir = replay_dir.path();
  replay_options.compact_every_events = 0;
  double replay_s = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_events = 0;
  {
    store::StateStore generator(replay_options, &clock, nullptr);
    (void)generator.open();
    const common::Json payload_json = work_payload(4800).to_json();
    const common::Json samples = batch_samples();
    for (int j = 1; j <= replay_jobs; ++j) {
      store::JobRecord job;
      job.id = static_cast<std::uint64_t>(j);
      job.session = 1;
      job.user = "bench";
      job.total_shots = 4800;
      job.payload = payload_json;
      generator.job_submitted(job);
      for (int b = 0; b < batches_per_job; ++b) {
        generator.batch_done(job.id, 100, common::kMillisecond,
                             b + 1 == batches_per_job, samples);
      }
      generator.job_completed(job.id);
    }
    (void)generator.flush();
    journal_bytes = generator.journal().size_bytes();
    journal_events = generator.journal().event_count();
  }
  {
    const double t0 = now_ms();
    auto recovered = store::RecoveryReplayer::replay(
        replay_dir.path() + "/journal.log",
        replay_dir.path() + "/snapshot.json");
    replay_s = (now_ms() - t0) / 1000.0;
    Table replay({"metric", "value"});
    replay.add_row({"journal events", std::to_string(journal_events)});
    replay.add_row({"journal size",
                    fmt("%.1f MB", journal_bytes / (1024.0 * 1024.0))});
    replay.add_row({"replay wall", fmt("%.3f s", replay_s)});
    replay.add_row(
        {"jobs recovered",
         recovered.ok()
             ? std::to_string(recovered.value().stats.recovered_jobs)
             : "ERROR"});
    replay.add_row(
        {"events/s",
         fmt("%.0f", static_cast<double>(journal_events) / replay_s)});
    replay.print();
    if (!recovered.ok() ||
        recovered.value().stats.recovered_jobs !=
            static_cast<std::uint64_t>(replay_jobs)) {
      print_note("\nFAIL: replay lost jobs");
      pass = false;
    }
    if (replay_s >= 1.0) {
      print_note(fmt("\nFAIL: replay took %.3f s >= 1 s acceptance ceiling",
                     replay_s));
      pass = false;
    }
  }

  // ---- (d) compaction bounds the journal ---------------------------------
  print_title("S1d | Compaction: 5 cycles of 5k events + compact must "
              "bound the journal");
  TempDir compact_dir;
  store::StoreOptions compact_options;
  compact_options.data_dir = compact_dir.path();
  compact_options.compact_every_events = 0;  // explicit cycles below
  store::StateStore compactor(compact_options, &clock, nullptr);
  (void)compactor.open();
  compactor.set_snapshot_provider([&] {
    store::StoreSnapshot snapshot;
    snapshot.jobs_seq = compactor.journal().last_seq();
    snapshot.sessions_seq = snapshot.jobs_seq;
    return snapshot;  // terminal jobs fold away entirely
  });
  Table compaction({"cycle", "journal before", "journal after"});
  std::uint64_t worst_after = 0;
  for (int cycle = 1; cycle <= 5; ++cycle) {
    const common::Json samples = batch_samples();
    for (int i = 0; i < 2500; ++i) {
      const auto id = static_cast<std::uint64_t>(cycle * 100000 + i);
      store::JobRecord job;
      job.id = id;
      job.user = "bench";
      job.total_shots = 100;
      compactor.job_submitted(job);
      compactor.job_cancelled(id);
    }
    const std::uint64_t before = compactor.journal().size_bytes();
    (void)compactor.compact();
    const std::uint64_t after = compactor.journal().size_bytes();
    worst_after = std::max(worst_after, after);
    compaction.add_row({std::to_string(cycle),
                        fmt("%.1f KB", before / 1024.0),
                        fmt("%.1f KB", after / 1024.0)});
  }
  compaction.print();
  if (worst_after > 64 * 1024) {
    print_note("\nFAIL: compaction left more than 64 KB behind");
    pass = false;
  }
  print_note(
      "\nExpected shape: 'after' stays near zero every cycle — snapshots\n"
      "fold terminal work out of the journal, so disk use is bounded by\n"
      "live state, not by daemon uptime.");

  return pass ? 0 : 1;
}
