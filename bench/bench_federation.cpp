// Journal-shipping benchmark: how far behind the leader does a hot
// standby actually run?
//
// A leader StateStore takes real dispatcher traffic (64 tenants, drained
// lanes — the same durable submit path bench_submit_path measures) while
// a StandbyReplicator pulls WAL segments off the live store dir into a
// mirror every few milliseconds. The replicator's LagTracker records the
// lag-in-events trajectory after every pull; the run then reports mean
// and max lag under load, shipping volume (segments/frames/bytes), and
// the time the final catch-up needed once the writers stopped.
//
// Two phases run back to back:
//   clean   an unmolested link
//   torn    every second pull's chunk arrives torn (short read + flipped
//           byte); the replicator must keep each chunk's clean prefix,
//           re-request the rest, and still converge — torn_segments
//           counts the rejected chunks
//
// The run FAILS (exit 1) if either phase's mirror does not converge to
// the leader's durable high-water mark — a lag benchmark that silently
// under-ships would otherwise report flattering numbers.
//
// Usage:
//   bench_federation [--quick] [--out FILE]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/temp_dir.hpp"
#include "daemon/dispatcher.hpp"
#include "federation/replication.hpp"
#include "qrmi/local_emulator.hpp"
#include "store/state_store.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using common::Json;

quantum::Payload tiny_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(100, 2.0),
                               quantum::Waveform::constant(100, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

struct PhaseResult {
  bool converged = false;
  std::uint64_t leader_seq = 0;
  std::uint64_t applied_seq = 0;
  telemetry::LagTracker::Summary lag;
  federation::StandbyReplicator::Stats ship;
  double load_wall_s = 0.0;
  double catchup_ms = 0.0;

  Json to_json() const {
    Json out = Json::object();
    out["converged"] = converged;
    out["leader_seq"] = static_cast<long long>(leader_seq);
    out["applied_seq"] = static_cast<long long>(applied_seq);
    out["lag"] = lag.to_json();
    out["segments"] = static_cast<long long>(ship.segments);
    out["frames"] = static_cast<long long>(ship.frames);
    out["bytes"] = static_cast<long long>(ship.bytes);
    out["torn_segments"] = static_cast<long long>(ship.torn_segments);
    out["snapshot_catchups"] =
        static_cast<long long>(ship.snapshot_catchups);
    out["load_wall_s"] = load_wall_s;
    out["catchup_ms"] = catchup_ms;
    return out;
  }
};

PhaseResult run_phase(bool torn_link, std::size_t tenants,
                      std::size_t jobs_per_tenant) {
  common::TempDir leader_dir("qcenv-bench-fed-leader-");
  common::TempDir standby_dir("qcenv-bench-fed-standby-");
  common::WallClock clock;

  store::StoreOptions store_options;
  store_options.data_dir = leader_dir.path();
  store_options.compact_every_events = 0;
  store::StateStore store(store_options, &clock, nullptr);
  (void)store.open();

  auto broker = std::make_shared<broker::ResourceBroker>(
      broker::BrokerOptions{}, &clock, nullptr);
  (void)broker->add("emu0",
                    qrmi::LocalEmulatorQrmi::create("emu0", "sv").value());
  daemon::Dispatcher dispatcher(broker, daemon::QueuePolicy{}, &clock,
                                nullptr, &store, nullptr, nullptr, nullptr);
  dispatcher.drain();  // journal traffic only, no execution

  // Small segments so one load generates a long segment stream (a 256 KB
  // cap would ship this workload in one or two pulls and measure nothing).
  federation::FileReplicationSource source(leader_dir.path());
  federation::StandbyReplicator replicator(
      {standby_dir.path(), 16 * 1024}, &source, &clock, nullptr, nullptr);

  std::atomic<bool> stop{false};
  std::thread shipper([&] {
    std::uint64_t pulls = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Torn link: every second pull's chunk arrives cut + corrupted; the
      // replicator keeps each chunk's clean prefix and re-requests.
      if (torn_link && pulls % 2 == 0) source.tear_next_segment();
      (void)replicator.poll_once();
      ++pulls;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const auto payload =
      std::make_shared<const quantum::Payload>(tiny_payload(64));
  std::vector<std::thread> writers;
  writers.reserve(tenants);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < tenants; ++t) {
    writers.emplace_back([&, t] {
      const std::string user = "tenant" + std::to_string(t);
      for (std::size_t j = 0; j < jobs_per_tenant; ++j) {
        (void)dispatcher.submit(common::SessionId{0}, user,
                                daemon::JobClass::kDevelopment, payload,
                                {});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  (void)store.flush();
  PhaseResult result;
  result.load_wall_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  stop.store(true, std::memory_order_release);
  shipper.join();
  const auto c0 = std::chrono::steady_clock::now();
  (void)replicator.catch_up();
  result.catchup_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - c0)
                          .count();

  result.leader_seq = store.journal().last_seq();
  result.applied_seq = replicator.applied_seq();
  result.converged = result.applied_seq == result.leader_seq;
  result.lag = replicator.lag().summary();
  result.ship = replicator.stats();
  store.shutdown();
  return result;
}

void print_phase(const char* name, const PhaseResult& result) {
  Table table({"phase", "events", "segments", "bytes", "mean lag",
               "max lag", "catch-up"});
  table.add_row({name, std::to_string(result.leader_seq),
                 std::to_string(result.ship.segments),
                 std::to_string(result.ship.bytes),
                 fmt("%.1f ev", result.lag.mean),
                 std::to_string(result.lag.max) + " ev",
                 fmt("%.1f ms", result.catchup_ms)});
  table.print();
  print_note(std::string("  converged: ") +
             (result.converged ? "yes" : "NO") + " (applied " +
             std::to_string(result.applied_seq) + " / leader " +
             std::to_string(result.leader_seq) + ")" +
             (result.ship.torn_segments > 0
                  ? ", " + std::to_string(result.ship.torn_segments) +
                        " torn segment(s) re-requested"
                  : ""));
}

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t tenants = quick ? 16 : 64;
  const std::size_t jobs_per_tenant = quick ? 100 : 400;

  print_title("federation | journal shipping under load: " +
              std::to_string(tenants) + " tenants x " +
              std::to_string(jobs_per_tenant) +
              " durable submits, replicator pulling every 2 ms");

  const PhaseResult clean = run_phase(false, tenants, jobs_per_tenant);
  print_phase("clean link", clean);
  const PhaseResult torn = run_phase(true, tenants, jobs_per_tenant);
  print_phase("torn link (every 2nd pull)", torn);

  Json report = Json::object();
  report["bench"] = std::string("bench_federation");
  report["tenants"] = static_cast<long long>(tenants);
  report["jobs_per_tenant"] = static_cast<long long>(jobs_per_tenant);
  report["clean"] = clean.to_json();
  report["torn"] = torn.to_json();

  if (const char* out = arg_value(argc, argv, "--out")) {
    std::ofstream file(out);
    file << report.dump(2) << "\n";
    print_note("wrote " + std::string(out));
  }

  if (!clean.converged || !torn.converged) {
    std::fprintf(stderr,
                 "REPLICATION FAILURE: mirror did not converge to the "
                 "leader's durable WAL (clean %s, torn %s)\n",
                 clean.converged ? "ok" : "DIVERGED",
                 torn.converged ? "ok" : "DIVERGED");
    return 1;
  }
  if (torn.ship.torn_segments == 0) {
    std::fprintf(stderr,
                 "torn-link phase shipped no torn segments — the fault "
                 "hook never fired\n");
    return 1;
  }
  print_note("\nreplication gate: OK");
  return 0;
}
