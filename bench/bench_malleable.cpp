// Experiment E6 — §2.4 malleability ablation: letting hybrid jobs shrink
// (release classical nodes) while they wait on the QPU queue and grow back
// afterwards. Compares held vs useful classical core-hours and makespan
// under varying node scarcity.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cosim.hpp"
#include "workload/patterns.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
}  // namespace

int main() {
  print_title(
      "E6 | Malleable (shrink/grow) vs rigid hybrid jobs — balanced "
      "pattern, varying classical-node scarcity");

  Table table({"nodes", "mode", "makespan", "cpu_held", "cpu_useful",
               "efficiency", "qpu_util"});

  for (const int nodes : {2, 4, 8}) {
    common::Rng rng(41);
    workload::PatternOptions pattern_options;
    pattern_options.count = 16;
    pattern_options.arrival_window_seconds = 50.0;
    const auto jobs = workload::generate(workload::Pattern::kBalanced,
                                         pattern_options, rng);
    for (const bool malleable : {false, true}) {
      workload::CosimOptions options;
      options.access = workload::QpuAccess::kDaemonShared;
      options.queue_policy.non_production_batch_shots = 0;
      options.nodes = nodes;
      options.cpus_per_node = 16;
      options.malleable = malleable;
      const auto metrics = workload::run_cosim(options, jobs);
      const double efficiency =
          metrics.cpu_held_seconds > 0
              ? metrics.cpu_useful_seconds / metrics.cpu_held_seconds
              : 0.0;
      table.add_row({std::to_string(nodes),
                     malleable ? "malleable" : "rigid",
                     secs(metrics.makespan_seconds),
                     secs(metrics.cpu_held_seconds),
                     secs(metrics.cpu_useful_seconds), pct(efficiency),
                     pct(metrics.qpu_utilization)});
    }
  }
  table.print();
  print_note(
      "\nExpected shape: rigid jobs hold idle cores through every QPU wait\n"
      "(efficiency well below 100%); malleable jobs approach 100% held-core\n"
      "efficiency and, when nodes are scarce, also shorten the makespan\n"
      "because released cores let queued jobs start earlier.");
  return 0;
}
