// Experiment T1 — reproduces Table 1: "Taxonomy of hybrid quantum-classical
// workload patterns and associated scheduling strategies".
//
// For each workload pattern (A high-QC, B high-CC, C balanced) we run the
// same mixed-class job stream under three scheduling strategies and report
// QPU utilization, useful classical utilization, makespan and production
// p95 quantum wait. The recommended hint of Table 1 should be the
// best-or-tied strategy for its pattern:
//   A -> sequential QPU queue (exclusive allocation costs little),
//   B -> interleave (sharing kills the QPU idle time),
//   C -> fine-grained orchestration (class priority + small batches).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cosim.hpp"
#include "workload/patterns.hpp"

namespace {

using namespace qcenv;
using namespace qcenv::bench;
using workload::CosimOptions;
using workload::Pattern;
using workload::QpuAccess;

struct Strategy {
  const char* name;
  CosimOptions options;
};

std::vector<Strategy> strategies() {
  CosimOptions sequential;
  sequential.access = QpuAccess::kExclusiveSlurm;

  CosimOptions interleave;
  interleave.access = QpuAccess::kDaemonShared;
  interleave.queue_policy.class_priority = false;
  interleave.queue_policy.non_production_batch_shots = 0;

  CosimOptions fine;
  fine.access = QpuAccess::kDaemonShared;
  fine.queue_policy.class_priority = true;
  fine.queue_policy.non_production_batch_shots = 20;
  fine.queue_policy.age_to_boost = 600 * common::kSecond;

  return {{"sequential-qpu-queue", sequential},
          {"interleave", interleave},
          {"fine-grained", fine}};
}

}  // namespace

int main() {
  print_title(
      "T1 | Table 1: workload patterns x scheduling strategies "
      "(mixed production/test/dev stream, 1 Hz QPU, virtual time)");

  Table table({"pattern", "strategy", "qpu_util", "useful_cpu", "makespan",
               "prod_p95_wait", "dev_mean_wait"});

  const Pattern patterns[] = {Pattern::kHighQcLowCc, Pattern::kLowQcHighCc,
                              Pattern::kBalanced};
  for (const Pattern pattern : patterns) {
    common::Rng rng(2025);
    const auto jobs = workload::generate_mixed_classes(
        pattern, /*production=*/6, /*test=*/6, /*development=*/8,
        /*arrival_window_seconds=*/240.0, rng);
    for (const auto& [name, options] : strategies()) {
      const auto metrics = workload::run_cosim(options, jobs);
      const auto& prod = metrics.by_class.at(daemon::JobClass::kProduction);
      const auto& dev = metrics.by_class.at(daemon::JobClass::kDevelopment);
      table.add_row({to_string(pattern), name,
                     pct(metrics.qpu_utilization),
                     pct(metrics.cpu_useful_utilization),
                     secs(metrics.makespan_seconds),
                     secs(prod.p95_quantum_wait_seconds),
                     secs(dev.mean_quantum_wait_seconds)});
    }
  }
  table.print();

  print_note("");
  print_note("Table 1 scheduler hints (paper):");
  for (const Pattern pattern : patterns) {
    std::printf("  %-12s -> %s\n", to_string(pattern),
                workload::scheduler_hint(pattern));
  }
  print_note(
      "\nExpected shape: pattern B gains the most from sharing (exclusive\n"
      "allocation leaves the QPU idle during long classical phases);\n"
      "pattern A is shot-rate bound so the sequential queue is competitive;\n"
      "pattern C needs fine-grained policy to keep production p95 waits low\n"
      "while development jobs still progress.");
  return 0;
}
