// Experiment F2 — reproduces Figure 2: the daemon-mediated architecture.
// Quantifies what the indirection costs and what multi-user mediation buys:
//   (a) REST round-trip latency through the daemon vs direct in-process
//       QRMI calls (the overhead of the abstraction layer),
//   (b) multi-user scaling: concurrent sessions submitting jobs through one
//       daemon — throughput and fairness (Jain index).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/histogram.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"
#include "runtime/runtime.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using quantum::Payload;

Payload tiny_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(100, 2.0),
                               quantum::Waveform::constant(100, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const int calls = quick ? 50 : 500;
  const int jobs_per_user = quick ? 2 : 6;
  const std::vector<int> user_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16};

  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  daemon::DaemonOptions daemon_options;
  daemon::MiddlewareDaemon middleware(daemon_options, resource, nullptr,
                                      &clock);
  const auto port = middleware.start().value();

  // ---- (a) request latency: direct QRMI vs through the daemon ------------
  print_title(
      "F2a | Mediation overhead: device-spec fetch, direct in-process QRMI "
      "vs daemon REST round-trip (" + std::to_string(calls) + " calls)");
  common::QuantileRecorder direct_ms, rest_ms;
  for (int i = 0; i < calls; ++i) {
    const double t0 = now_ms();
    (void)resource->target();
    direct_ms.record(now_ms() - t0);
  }
  net::HttpClient client(port);
  for (int i = 0; i < calls; ++i) {
    const double t0 = now_ms();
    (void)client.get("/v1/device");
    rest_ms.record(now_ms() - t0);
  }
  Table latency({"path", "p50", "p95", "p99", "mean"});
  latency.add_row({"direct qrmi", fmt("%.3f ms", direct_ms.quantile(0.5)),
                   fmt("%.3f ms", direct_ms.quantile(0.95)),
                   fmt("%.3f ms", direct_ms.quantile(0.99)),
                   fmt("%.3f ms", direct_ms.mean())});
  latency.add_row({"daemon REST", fmt("%.3f ms", rest_ms.quantile(0.5)),
                   fmt("%.3f ms", rest_ms.quantile(0.95)),
                   fmt("%.3f ms", rest_ms.quantile(0.99)),
                   fmt("%.3f ms", rest_ms.mean())});
  latency.print();
  print_note(
      "\nExpected shape: sub-millisecond REST overhead — negligible against\n"
      "1 Hz shot times, which is why the daemon indirection is 'free' for\n"
      "QPU workloads.");

  // ---- (b) multi-user scaling --------------------------------------------
  print_title(
      "F2b | Multi-user mediation: N concurrent sessions, " +
      std::to_string(jobs_per_user) + " jobs each (30 shots) through one "
      "daemon");
  Table scaling({"sessions", "jobs_done", "wall", "throughput",
                 "jain_fairness"});
  for (const int users : user_counts) {
    std::vector<std::size_t> completed(static_cast<std::size_t>(users), 0);
    const double t0 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int u = 0; u < users; ++u) {
        threads.emplace_back([&, u] {
          runtime::RuntimeOptions options;
          options.user = "user" + std::to_string(u);
          options.job_class = daemon::JobClass::kTest;
          options.poll_interval = common::kMillisecond;
          auto rt = runtime::HybridRuntime::connect_daemon(port, options);
          if (!rt.ok()) return;
          for (int j = 0; j < jobs_per_user; ++j) {
            auto samples = rt.value()->run(tiny_payload(30));
            if (samples.ok()) ++completed[static_cast<std::size_t>(u)];
          }
        });
      }
    }
    const double wall = (now_ms() - t0) / 1000.0;
    std::size_t total = 0;
    double sum = 0, sum_sq = 0;
    for (const std::size_t c : completed) {
      total += c;
      sum += static_cast<double>(c);
      sum_sq += static_cast<double>(c) * static_cast<double>(c);
    }
    const double jain =
        sum_sq > 0 ? (sum * sum) / (static_cast<double>(users) * sum_sq)
                   : 1.0;
    scaling.add_row({std::to_string(users), std::to_string(total),
                     fmt("%.2f s", wall),
                     fmt("%.1f jobs/s", static_cast<double>(total) / wall),
                     fmt("%.3f", jain)});
  }
  scaling.print();
  print_note(
      "\nExpected shape: throughput saturates at the (single) resource's\n"
      "service rate while fairness stays ~1.0 — the daemon serializes the\n"
      "shared QPU without starving any session.");
  return 0;
}
