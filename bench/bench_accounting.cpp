// Experiment A1 — multi-tenant accounting & fair-share.
// Quantifies what per-tenant accounting costs and what fair-share buys:
//   (a) ledger charge throughput (the dispatcher pays one charge per
//       executed batch; acceptance in --quick: > 100k charges/s),
//   (b) queue-core dispatch throughput with the fair-share hook attached
//       vs. plain FIFO tiers (the hook's scheduling overhead),
//   (c) fair-share convergence in virtual time: 3 users at 50/30/20 shares
//       hammering one QPU — the unfairness ratio
//       max_u(served_u/share_u) / min_u(served_u/share_u) must approach
//       1.0; acceptance (gates the CI smoke step): within 10% after 30
//       virtual minutes.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "accounting/accounting.hpp"
#include "bench_util.hpp"
#include "common/clock.hpp"
#include "daemon/queue_core.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- (a) ledger charge throughput ------------------------------------------

double bench_charges(int charges, int users) {
  accounting::LedgerOptions options;
  options.half_life = 3600 * common::kSecond;
  accounting::UsageLedger ledger(options);
  const double t0 = now_ms();
  for (int i = 0; i < charges; ++i) {
    ledger.charge("user-" + std::to_string(i % users), 100,
                  common::kMillisecond, 0,
                  static_cast<common::TimeNs>(i) * common::kMillisecond);
  }
  const double wall_s = (now_ms() - t0) / 1e3;
  return static_cast<double>(charges) / wall_s;
}

// ---- (b) dispatch throughput with/without the fair-share hook --------------

double bench_dispatch(int jobs, bool with_hook) {
  common::ManualClock clock;
  accounting::AccountingOptions options;
  accounting::AccountingManager manager(options, &clock, nullptr);
  daemon::QueuePolicy policy;
  policy.non_production_batch_shots = 0;
  daemon::PriorityQueueCore core(policy);
  std::vector<std::string> user_of(static_cast<std::size_t>(jobs) + 1);
  for (int i = 1; i <= jobs; ++i) {
    user_of[static_cast<std::size_t>(i)] = "user-" + std::to_string(i % 8);
    core.enqueue(static_cast<std::uint64_t>(i), daemon::JobClass::kTest, 100,
                 i);
  }
  if (with_hook) {
    // Same per-pass memo the dispatcher uses: one fair-share computation
    // per distinct user per ordering pass, not per pending job.
    core.set_priority_hook(
        [&, memo_now = common::TimeNs{-1},
         memo = std::map<std::string, double>{}](
            std::uint64_t id, common::TimeNs now) mutable {
          if (now != memo_now) {
            memo.clear();
            memo_now = now;
          }
          const std::string& user = user_of[static_cast<std::size_t>(id)];
          auto it = memo.find(user);
          if (it == memo.end()) {
            it = memo.emplace(user, manager.priority(user, now)).first;
          }
          return it->second;
        });
  }
  const double t0 = now_ms();
  int served = 0;
  while (auto batch = core.next_batch(served)) {
    core.batch_done(*batch);
    manager.charge_batch(user_of[static_cast<std::size_t>(batch->job_id)],
                         batch->shots, 0);
    ++served;
  }
  const double wall_s = (now_ms() - t0) / 1e3;
  return served / wall_s;
}

// ---- (c) fair-share convergence in virtual time ----------------------------

struct ConvergenceRow {
  double minutes = 0;
  std::map<std::string, double> fraction;
  double unfairness = 0;
};

std::vector<ConvergenceRow> run_convergence(
    common::TimeNs horizon, const std::map<std::string, double>& shares,
    common::TimeNs window) {
  common::ManualClock clock;
  accounting::AccountingOptions aopts;
  aopts.ledger.half_life = 120 * common::kSecond;
  for (const auto& [user, share] : shares) {
    aopts.fair_share.user_shares[user] = {"default", share};
  }
  accounting::AccountingManager manager(aopts, &clock, nullptr);
  daemon::QueuePolicy policy;
  policy.non_production_batch_shots = 100;
  daemon::PriorityQueueCore core(policy);
  std::map<std::uint64_t, std::string> user_of;
  std::uint64_t next_id = 1;
  const auto submit = [&](const std::string& user) {
    user_of[next_id] = user;
    core.enqueue(next_id, daemon::JobClass::kDevelopment, 10'000,
                 clock.now());
    ++next_id;
  };
  core.set_priority_hook([&](std::uint64_t id, common::TimeNs now) {
    return manager.priority(user_of.at(id), now);
  });
  for (const auto& [user, _] : shares) {
    submit(user);
    submit(user);
  }

  constexpr double kRate = 1000.0;  // emulated QPU shots/second
  std::map<std::string, std::uint64_t> served;
  std::vector<ConvergenceRow> rows;
  common::TimeNs next_report = window;
  while (clock.now() < horizon) {
    auto batch = core.next_batch(clock.now());
    if (!batch.has_value()) break;
    const std::string user = user_of.at(batch->job_id);
    const common::DurationNs elapsed =
        common::from_seconds(static_cast<double>(batch->shots) / kRate);
    clock.advance(elapsed);
    manager.charge_batch(user, batch->shots, elapsed);
    served[user] += batch->shots;
    core.batch_done(*batch);
    if (batch->final_batch) {
      user_of.erase(batch->job_id);
      submit(user);
    }
    if (clock.now() >= next_report) {
      next_report += window;
      ConvergenceRow row;
      row.minutes = common::to_seconds(clock.now()) / 60.0;
      double total = 0;
      for (const auto& [_, shots] : served) total += shots;
      double total_share = 0;
      for (const auto& [_, share] : shares) total_share += share;
      double lo = 1e30;
      double hi = 0;
      for (const auto& [u, share] : shares) {
        const double fraction = served.count(u) ? served[u] / total : 0.0;
        row.fraction[u] = fraction;
        const double normalized = fraction / (share / total_share);
        lo = std::min(lo, normalized);
        hi = std::max(hi, normalized);
      }
      row.unfairness = lo > 0 ? hi / lo : 1e30;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);

  print_title(
      "A1 | Multi-tenant accounting: ledger throughput, fair-share hook "
      "overhead, 50/30/20 convergence");

  const int charges = quick ? 200'000 : 2'000'000;
  const double charges_per_s = bench_charges(charges, 64);
  std::printf("\nledger charge throughput: %.0f charges/s (%d charges, 64 "
              "users)\n",
              charges_per_s, charges);

  const int jobs = quick ? 5'000 : 50'000;
  const double fifo = bench_dispatch(jobs, false);
  const double fair = bench_dispatch(jobs, true);
  std::printf("dispatch throughput:      %.0f batches/s FIFO, %.0f batches/s "
              "with fair-share hook (%.1fx overhead)\n",
              fifo, fair, fifo / fair);

  const std::map<std::string, double> shares = {
      {"alice", 50.0}, {"bob", 30.0}, {"carol", 20.0}};
  const common::TimeNs horizon =
      (quick ? 30 : 120) * 60 * common::kSecond;
  const auto rows = run_convergence(horizon, shares,
                                    5 * 60 * common::kSecond);
  Table table({"virtual_min", "alice (50%)", "bob (30%)", "carol (20%)",
               "unfairness"});
  for (const auto& row : rows) {
    table.add_row({fmt("%.0f", row.minutes),
                   pct(row.fraction.at("alice")), pct(row.fraction.at("bob")),
                   pct(row.fraction.at("carol")),
                   fmt("%.3f", row.unfairness)});
  }
  std::printf("\n");
  table.print();
  print_note(
      "\nExpected shape: served fractions start wherever FIFO seq left them\n"
      "and converge onto 50/30/20 as decayed usage feeds back into the\n"
      "2^(-usage/share) priority; unfairness (max/min normalized service)\n"
      "falls toward 1.0 within a couple of ledger half-lives.");

  // Acceptance gates (CI runs --quick and fails on the exit code).
  bool ok = true;
  if (charges_per_s < 100'000) {
    std::printf("FAIL: ledger charge throughput %.0f/s < 100k/s\n",
                charges_per_s);
    ok = false;
  }
  if (rows.empty()) {
    std::printf("FAIL: convergence produced no samples\n");
    ok = false;
  } else {
    const auto& final_row = rows.back();
    for (const auto& [user, share] : shares) {
      const double normalized = final_row.fraction.at(user) / (share / 100.0);
      if (std::abs(normalized - 1.0) > 0.10) {
        std::printf("FAIL: %s served %.1f%% of the QPU vs %.0f%% share "
                    "(off by > 10%%)\n",
                    user.c_str(), final_row.fraction.at(user) * 100.0,
                    share);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
