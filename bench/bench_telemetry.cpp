// Experiment E5 — §3.6 observability stack: instrumentation cost and drift
// detection quality.
//   (a) google-benchmark micro costs: counter/gauge/histogram updates,
//       exposition, TSDB ingest and windowed queries.
//   (b) drift-detection scenario: inject a calibration drift episode into a
//       simulated telemetry stream; report detection latency and false
//       positives for EWMA and CUSUM across 60 seeds.
//   (c) scrape-pipeline ingest: registry -> collector -> TSDB points/s and
//       line-protocol parse throughput, with acceptance gates.
//   (d) explain-report generation: the GET /v1/jobs/:id/explain hot path
//       (wait decomposition + JSON serialization) over a daemon full of
//       terminal jobs, with an acceptance gate.
//
// --quick (the CI bench-smoke mode) skips the google-benchmark micros and
// runs (b)+(c)+(d) on shrunken workloads; the exit code enforces the gates.
#include <chrono>
#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "daemon/daemon.hpp"
#include "qrmi/local_emulator.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tsdb.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using telemetry::CusumDetector;
using telemetry::EwmaDetector;

void BM_CounterIncrement(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  auto& counter = registry.counter("ops_total", {{"class", "prod"}});
  for (auto _ : state) counter.increment();
}
BENCHMARK(BM_CounterIncrement);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  auto& gauge = registry.gauge("fidelity");
  double v = 0;
  for (auto _ : state) gauge.set(v += 0.001);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  auto& histogram = registry.histogram(
      "latency", {0.001, 0.01, 0.1, 1, 10, 100});
  double v = 0;
  for (auto _ : state) histogram.observe(v += 0.01);
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryExpose(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  for (int i = 0; i < state.range(0); ++i) {
    registry.gauge("metric_" + std::to_string(i),
                   {{"device", "fresnel"}})
        .set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.expose());
  }
}
BENCHMARK(BM_RegistryExpose)->Arg(10)->Arg(100);

void BM_TsdbWrite(benchmark::State& state) {
  telemetry::TimeSeriesDb tsdb;
  const telemetry::SeriesKey key{"m", {{"device", "d"}}};
  common::TimeNs t = 0;
  for (auto _ : state) {
    tsdb.write(key, telemetry::Point{t += 1000, 1.0});
  }
}
BENCHMARK(BM_TsdbWrite);

void BM_TsdbAggregate(benchmark::State& state) {
  telemetry::TimeSeriesDb tsdb;
  const telemetry::SeriesKey key{"m", {}};
  for (int i = 0; i < 10000; ++i) {
    tsdb.write(key, telemetry::Point{i * common::kSecond, 1.0 * i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tsdb.aggregate(key, 0, 10000 * common::kSecond, 60 * common::kSecond,
                       telemetry::Aggregation::kMean));
  }
}
BENCHMARK(BM_TsdbAggregate);

/// Scenario: stationary telemetry for 300 samples, then an injected level
/// drift ramping over the next 100. Returns detection latency in samples
/// (-1 = missed) and whether a false positive fired before the drift.
template <typename Detector>
std::pair<int, bool> drift_episode(Detector detector, double drift_size,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  const double sigma = 0.01;
  for (int i = 0; i < 300; ++i) {
    if (detector.update(1.0 + sigma * rng.normal()).has_value()) {
      return {-1, true};  // false positive
    }
  }
  for (int i = 0; i < 100; ++i) {
    const double level = 1.0 + drift_size * (i / 100.0);
    if (detector.update(level + sigma * rng.normal()).has_value()) {
      return {i, false};
    }
  }
  return {-1, false};  // missed
}

/// The scrape hot path end to end: a registry the size of a busy daemon's
/// (gauges + counters across lanes) pulled through MetricsCollector into a
/// retention-capped TSDB at grid deadlines. Returns points/s ingested.
double bench_scrape_ingest(int scrapes, int metrics) {
  telemetry::MetricsRegistry registry;
  for (int i = 0; i < metrics; ++i) {
    registry
        .gauge("scrape_gauge_" + std::to_string(i),
               {{"lane", std::to_string(i % 8)}})
        .set(static_cast<double>(i));
  }
  telemetry::TimeSeriesDb tsdb(4096);
  common::ManualClock clock(0);
  telemetry::CollectorOptions options;
  options.interval = common::kMillisecond;
  telemetry::MetricsCollector collector(&registry, &tsdb, &clock, options);
  std::uint64_t points = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int s = 1; s <= scrapes; ++s) {
    points += collector.scrape_at(static_cast<common::TimeNs>(s) *
                                  common::kMillisecond);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(points) / seconds;
}

/// Line-protocol ingest (the export/import path): parse + insert.
double bench_line_ingest(int lines) {
  std::vector<std::string> batch;
  batch.reserve(lines);
  for (int i = 0; i < lines; ++i) {
    batch.push_back("queue_depth,lane=lane" + std::to_string(i % 8) +
                    " value=" + std::to_string(i % 100) + " " +
                    std::to_string(static_cast<long long>(i) * 1'000'000));
  }
  telemetry::TimeSeriesDb tsdb(1 << 20);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& line : batch) {
    if (!tsdb.write_line(line).ok()) return 0;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(lines) / seconds;
}

/// Returns true iff every acceptance gate holds.
bool ingest_throughput(bool quick) {
  print_title("E5c | scrape-pipeline ingest throughput");
  const int scrapes = quick ? 2'000 : 20'000;
  const int lines = quick ? 200'000 : 2'000'000;
  const double scrape_points_s = bench_scrape_ingest(scrapes, 128);
  const double line_points_s = bench_line_ingest(lines);
  std::printf("scrape ingest (registry->collector->tsdb): %.0f points/s "
              "(%d scrapes x 128 metrics)\n",
              scrape_points_s, scrapes);
  std::printf("line-protocol ingest (parse+insert):       %.0f lines/s "
              "(%d lines)\n",
              line_points_s, lines);
  // Gates sit ~35x under measured Release dev-box rates and ~4x under
  // Debug (CI's smoke step runs both): they catch accidental O(n)
  // regressions in the scrape path, not machine variance.
  bool ok = true;
  if (scrape_points_s < 100'000) {
    std::printf("FAIL: scrape ingest %.0f points/s < 100k/s\n",
                scrape_points_s);
    ok = false;
  }
  if (line_points_s < 50'000) {
    std::printf("FAIL: line-protocol ingest %.0f lines/s < 50k/s\n",
                line_points_s);
    ok = false;
  }
  return ok;
}

/// The explain-report hot path: eta().explain() decomposes a terminal
/// job's observed wait into causes and the result serializes to the
/// GET /v1/jobs/:id/explain JSON body. Returns reports/s over a daemon
/// holding `jobs` terminal jobs, `rounds` passes over all of them.
double bench_explain_reports(int jobs, int rounds) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
  common::ManualClock clock(0, /*auto_advance=*/true);
  daemon::DaemonOptions options;
  options.telemetry.observability.enabled = false;
  auto d = std::make_unique<daemon::MiddlewareDaemon>(options, resource,
                                                      nullptr, &clock);
  auto session = d->open_session("bench", daemon::JobClass::kTest);
  if (!session.ok()) return 0;

  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  const auto payload = quantum::Payload::from_sequence(seq, 20);

  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    auto submitted = d->submit_job(session.value().token, payload, {});
    if (!submitted.ok()) return 0;
    ids.push_back(submitted.value().id);
  }
  for (const auto id : ids) {
    if (!d->dispatcher().wait(id).ok()) return 0;
  }

  std::uint64_t reports = 0;
  std::size_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (const auto id : ids) {
      auto report = d->eta().explain(id);
      if (!report.ok()) return 0;
      bytes += report.value().to_json().dump().size();
      ++reports;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchmark::DoNotOptimize(bytes);
  return static_cast<double>(reports) / seconds;
}

/// Returns true iff the explain-report gate holds.
bool explain_throughput(bool quick) {
  print_title("E5d | explain-report generation throughput");
  const int jobs = 200;
  const int rounds = quick ? 25 : 100;
  const double reports_s = bench_explain_reports(jobs, rounds);
  std::printf("explain reports (decompose+serialize):     %.0f reports/s "
              "(%d terminal jobs x %d rounds)\n",
              reports_s, jobs, rounds);
  // Same philosophy as the ingest gates: an order of magnitude under the
  // measured Debug rate, catching accidental O(n^2) work in the wait
  // decomposition or serializer rather than machine variance.
  if (reports_s < 10'000) {
    std::printf("FAIL: explain reports %.0f/s < 10k/s\n", reports_s);
    return false;
  }
  return true;
}

void drift_scenarios() {
  print_title(
      "E5b | Drift detection: injected calibration ramp after 300 stable "
      "samples (60 seeds per cell; latency in samples)");
  Table table({"detector", "drift_size", "detected", "false_pos",
               "latency_p50", "latency_p95"});
  for (const double drift : {0.05, 0.10, 0.20}) {
    for (const bool use_cusum : {false, true}) {
      common::QuantileRecorder latency;
      int detected = 0, false_positives = 0;
      for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        std::pair<int, bool> outcome;
        if (use_cusum) {
          outcome = drift_episode(CusumDetector(0.75, 8.0, 50), drift, seed);
        } else {
          outcome = drift_episode(EwmaDetector(0.2, 4.0, 50), drift, seed);
        }
        if (outcome.second) {
          ++false_positives;
        } else if (outcome.first >= 0) {
          ++detected;
          latency.record(outcome.first);
        }
      }
      table.add_row({use_cusum ? "cusum" : "ewma", fmt("%.0f%%", drift * 100),
                     std::to_string(detected) + "/60",
                     std::to_string(false_positives),
                     fmt("%.0f", latency.quantile(0.5)),
                     fmt("%.0f", latency.quantile(0.95))});
    }
  }
  table.print();
  print_note(
      "\nExpected shape: both detectors catch 10%+ drifts with zero/low\n"
      "false positives; CUSUM reacts faster on small sustained drifts,\n"
      "EWMA on larger sudden ones. Detection latency shrinks as the drift\n"
      "grows.");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  if (!quick) {
    // The micros auto-time themselves for minutes; the smoke run skips
    // them (and google-benchmark would reject the --quick flag anyway).
    print_title("E5a | telemetry micro costs (google-benchmark)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  bool ok = ingest_throughput(quick);
  ok = explain_throughput(quick) && ok;
  drift_scenarios();
  return ok ? 0 : 1;
}
