// Experiment E1 — the headline claim (§3.3/§2.4): a second scheduling layer
// after the HPC resource manager improves QPU utilization.
//
// One-level baseline: hybrid jobs allocate the whole QPU (GRES 10/10) along
// with their classical nodes for their full wall time. Two-level: the
// middleware daemon shares the QPU across concurrent jobs. We sweep the
// offered load and report utilization, makespan and wasted classical hours.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cosim.hpp"
#include "workload/patterns.hpp"

namespace {
using namespace qcenv;
using namespace qcenv::bench;
using workload::CosimOptions;
using workload::Pattern;
using workload::QpuAccess;
}  // namespace

int main() {
  print_title(
      "E1 | One-level (exclusive Slurm allocation) vs two-level "
      "(middleware daemon) scheduling — pattern B (CC-heavy SQD-style)");

  Table table({"jobs", "mode", "qpu_util", "qpu_busy", "makespan",
               "cpu_held", "cpu_useful", "wasted_cpu_h"});

  for (const std::size_t count : {6u, 12u, 24u}) {
    common::Rng rng(7);
    workload::PatternOptions pattern_options;
    pattern_options.count = count;
    pattern_options.arrival_window_seconds = 120.0;
    const auto jobs =
        workload::generate(Pattern::kLowQcHighCc, pattern_options, rng);

    CosimOptions one_level;
    one_level.access = QpuAccess::kExclusiveSlurm;
    CosimOptions two_level;
    two_level.access = QpuAccess::kDaemonShared;
    two_level.queue_policy.non_production_batch_shots = 0;

    for (const auto& [mode, options] :
         {std::pair<const char*, CosimOptions>{"one-level", one_level},
          std::pair<const char*, CosimOptions>{"two-level", two_level}}) {
      const auto metrics = workload::run_cosim(options, jobs);
      const double wasted_cpu_hours =
          (metrics.cpu_held_seconds - metrics.cpu_useful_seconds) / 3600.0;
      table.add_row({std::to_string(count), mode,
                     pct(metrics.qpu_utilization),
                     secs(metrics.qpu_busy_seconds),
                     secs(metrics.makespan_seconds),
                     secs(metrics.cpu_held_seconds),
                     secs(metrics.cpu_useful_seconds),
                     fmt("%.2f h", wasted_cpu_hours)});
    }
  }
  table.print();
  print_note(
      "\nExpected shape: identical qpu_busy (same physics work), but the\n"
      "two-level mode packs it into a several-times shorter makespan =>\n"
      "QPU utilization multiplies, growing with load. The cost is visible\n"
      "too: shared-mode jobs hold classical nodes while queued on the QPU\n"
      "(higher wasted_cpu_h) — exactly the §2.4 motivation for malleable\n"
      "jobs, quantified in bench_malleable.");

  // Small-scale timelines make the difference visible at a glance.
  print_title("E1 (visual) | 5-job timelines, one-level vs two-level");
  for (const auto mode :
       {workload::QpuAccess::kExclusiveSlurm,
        workload::QpuAccess::kDaemonShared}) {
    common::Rng rng(3);
    workload::PatternOptions pattern_options;
    pattern_options.count = 5;
    pattern_options.arrival_window_seconds = 20.0;
    const auto jobs =
        workload::generate(workload::Pattern::kLowQcHighCc, pattern_options,
                           rng);
    workload::Timeline timeline;
    CosimOptions options;
    options.access = mode;
    options.queue_policy.non_production_batch_shots = 0;
    options.timeline = &timeline;
    (void)workload::run_cosim(options, jobs);
    std::printf("\n[%s]\n%s",
                mode == workload::QpuAccess::kExclusiveSlurm ? "one-level"
                                                             : "two-level",
                timeline.render_gantt(90).c_str());
  }
  return 0;
}
