// Experiment E4 — §3.2: "by restricting the bond dimension, tensor network
// emulators can execute programs on almost arbitrarily large QPU emulators.
// Although the result will not be accurate, this allows for validating the
// hybrid program against the current device state."
//
// Part 1: bond-dimension sweep on a 10-atom quench vs the exact dense
//         solution — accuracy (sample TV distance, z-profile error) vs cost.
// Part 2: chi=4 wall time for register widths far beyond dense reach.
// Part 3: google-benchmark micro kernels (gate application, threaded vs
//         serial dense evolution).
#include <chrono>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "emulator/backend.hpp"
#include "emulator/statevector.hpp"

namespace {

using namespace qcenv;
using namespace qcenv::bench;
using emulator::MpsBackend;
using emulator::MpsOptions;
using emulator::RunOptions;
using emulator::StateVectorBackend;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Samples;
using quantum::Sequence;
using quantum::Waveform;

Payload quench_payload(std::size_t atoms, std::uint64_t shots) {
  // Sudden quench into the interacting regime: grows entanglement, which is
  // exactly what stresses a bond-limited MPS.
  Sequence seq(AtomRegister::linear_chain(atoms, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(500, 2.0 * 3.14159265),
                               Waveform::constant(500, 1.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void chi_sweep() {
  print_title(
      "E4a | MPS bond-dimension sweep vs exact dense solution "
      "(10-atom chain quench, 4000 shots)");
  const std::size_t atoms = 10;
  const Payload payload = quench_payload(atoms, 4000);

  StateVectorBackend sv_backend;
  RunOptions options;
  options.seed = 7;
  Samples exact;
  const double sv_ms = wall_ms([&] {
    exact = sv_backend.run(payload, options).value();
  });

  Table table({"backend", "runtime", "tv_distance", "max_z_error",
               "truncation_wt"});
  table.add_row({"sv (exact)", fmt("%.0f ms", sv_ms), "0.000", "0.000", "-"});

  for (const std::size_t chi : {1u, 2u, 4u, 8u, 16u, 32u}) {
    MpsOptions mps_options;
    mps_options.max_bond = chi;
    MpsBackend backend(mps_options);
    Samples approx;
    const double ms = wall_ms([&] {
      approx = backend.run(payload, options).value();
    });
    const double tv = Samples::total_variation_distance(exact, approx);
    double max_z_err = 0;
    for (std::size_t q = 0; q < atoms; ++q) {
      max_z_err = std::max(max_z_err, std::abs(exact.z_expectation(q) -
                                               approx.z_expectation(q)));
    }
    table.add_row({
        "mps chi=" + std::to_string(chi),
        fmt("%.0f ms", ms),
        fmt("%.3f", tv),
        fmt("%.3f", max_z_err),
        fmt("%.2e", approx.metadata().at_or_null("truncation_weight")
                        .as_double()),
    });
  }
  table.print();
  print_note(
      "\nExpected shape: error falls monotonically with chi and reaches\n"
      "sampling noise by chi ~ 16; chi=1 (the product-state mock) is cheap\n"
      "and structurally valid but quantitatively wrong — by design.");
}

void wide_registers() {
  print_title(
      "E4b | chi=4 TEBD wall time for register widths beyond dense reach "
      "(dense 2^N amplitudes vs linear MPS cost)");
  Table table({"atoms", "mps_chi4_runtime", "dense_amplitudes"});
  for (const std::size_t atoms : {10u, 20u, 40u, 80u}) {
    MpsOptions mps_options;
    mps_options.max_bond = 4;
    MpsBackend backend(mps_options, /*max_qubits=*/256);
    RunOptions options;
    options.seed = 3;
    options.max_substep_ns = 10;
    const Payload payload = quench_payload(atoms, 50);
    const double ms = wall_ms([&] {
      auto out = backend.run(payload, options);
      if (!out.ok()) std::printf("ERROR: %s\n", out.error().to_string().c_str());
    });
    table.add_row({std::to_string(atoms), fmt("%.0f ms", ms),
                   fmt("%.1e", std::pow(2.0, static_cast<double>(atoms)))});
  }
  table.print();
}

// ---- google-benchmark micro kernels ----------------------------------------

void BM_Gate1Q(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  emulator::StateVector psi(n);
  const auto h = emulator::gate_h();
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply_1q(h, q);
    q = (q + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dimension()));
}
BENCHMARK(BM_Gate1Q)->Arg(12)->Arg(16)->Arg(20);

void BM_Gate2Q(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  emulator::StateVector psi(n);
  const auto cz = emulator::gate_cz();
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply_2q(cz, q, (q + 1) % n);
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_Gate2Q)->Arg(12)->Arg(16)->Arg(20);

void BM_AnalogEvolveThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 16;
  AtomRegister reg = AtomRegister::linear_chain(n, 6.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(100, 6.0),
                               Waveform::constant(100, 1.0), 0.0});
  const auto grid = seq.sample(10);
  common::ThreadPool pool(threads);
  for (auto _ : state) {
    emulator::StateVector psi(n);
    emulator::AnalogEvolveOptions options;
    options.max_substep_ns = 10;
    options.pool = threads > 0 ? &pool : nullptr;
    evolve_analog(psi, reg, grid, 5420503.0, options);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
}
BENCHMARK(BM_AnalogEvolveThreads)->Arg(1)->Arg(2);

void BM_MpsTwoSiteGate(benchmark::State& state) {
  const auto chi = static_cast<std::size_t>(state.range(0));
  emulator::Mps psi(8);
  MpsOptions options;
  options.max_bond = chi;
  // Entangle to saturate the bond dimension first.
  common::Rng rng(1);
  for (int layer = 0; layer < 6; ++layer) {
    for (std::size_t q = 0; q < 8; ++q) {
      psi.apply_1q(emulator::gate_ry(rng.uniform(-1.0, 1.0)), q);
    }
    for (std::size_t q = layer % 2; q + 1 < 8; q += 2) {
      psi.apply_2q_adjacent(emulator::gate_cz(), q, options);
    }
  }
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply_2q_adjacent(emulator::gate_cz(), q, options);
    q = (q + 1) % 7;
  }
}
BENCHMARK(BM_MpsTwoSiteGate)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  chi_sweep();
  wide_registers();
  print_title("E4c | micro kernels (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
