// Full-stack demo: the Figure 2 architecture live in one process.
//
//   Slurm (slurmlite)  ->  SPANK plugin injects QRMI env
//   quantum access node -> middleware daemon (REST) -> QPU controller -> QPU
//
// Three users with different job classes submit through their own sessions;
// the daemon's second-level scheduler shares the QPU, production preempts
// development work at batch boundaries, and the admin watches the queue.
#include <cstdio>
#include <thread>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "runtime/runtime.hpp"
#include "sdk/pulser.hpp"
#include "slurm/scheduler.hpp"

using namespace qcenv;

namespace {
quantum::Payload user_program(std::size_t atoms, std::uint64_t shots) {
  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::linear_chain(atoms, 6.0),
      quantum::DeviceSpec::analog_default());
  (void)builder.declare_channel("g",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  (void)builder.add(sdk::pulser::constant_pulse(400, 4.0, 1.0, 0.0), "g");
  return builder.to_payload(shots).value();
}
}  // namespace

int main() {
  // --- The quantum access node ---------------------------------------------
  common::ManualClock device_clock;  // compresses QPU shot pacing
  qpu::QpuOptions qpu_options;
  qpu_options.time_scale = 1e6;  // 1 us wall per device second
  qpu::QpuDevice device(qpu_options, &device_clock);
  qpu::QpuController controller(&device, &device_clock);
  auto qpu_resource = std::make_shared<qrmi::DirectQpuQrmi>(
      "fresnel", &device, &controller);

  common::WallClock wall;
  daemon::DaemonOptions daemon_options;
  daemon_options.admin_key = "site-admin";
  daemon_options.queue_policy.non_production_batch_shots = 25;
  daemon::MiddlewareDaemon middleware(daemon_options, qpu_resource, &device,
                                      &wall);
  const auto port = middleware.start().value();
  std::printf("middleware daemon on 127.0.0.1:%u (QPU: %s)\n\n", port,
              device.options().spec.name.c_str());

  // --- Slurm layer: the SPANK plugin wires jobs to the daemon --------------
  qrmi::ResourceRegistry registry;
  registry.add("fresnel", qpu_resource);
  simkit::Simulator sim;
  slurm::ClusterConfig cluster;
  cluster.nodes = {{"n0", 16, 0}};
  cluster.partitions = {{"production", 300, false,
                         24LL * 3600 * common::kSecond},
                        {"dev", 100, false, 24LL * 3600 * common::kSecond}};
  slurm::SlurmScheduler slurm_ctl(cluster, &sim);
  slurm_ctl.register_plugin(
      std::make_unique<slurm::QrmiSpankPlugin>(&registry, port));
  slurm::JobSubmission batch;
  batch.name = "hybrid-job";
  batch.user = "alice";
  batch.partition = "production";
  batch.qpu_resource = "fresnel";
  batch.duration = 10 * common::kSecond;
  auto job = slurm_ctl.submit(batch).value();
  const auto env = slurm_ctl.query(job).value().env;
  std::printf("slurm job %s env (injected by spank_qrmi):\n",
              job.to_string().c_str());
  for (const auto& [key, value] : env) {
    std::printf("  %s=%s\n", key.c_str(), value.c_str());
  }
  sim.run();

  // --- Three users hammer the daemon concurrently --------------------------
  std::printf("\nusers: carol(production)  bob(test)  dave(development)\n");
  struct UserPlan {
    const char* name;
    daemon::JobClass cls;
    std::uint64_t shots;
    int jobs;
  };
  const UserPlan plans[] = {
      {"dave", daemon::JobClass::kDevelopment, 150, 3},
      {"bob", daemon::JobClass::kTest, 100, 3},
      {"carol", daemon::JobClass::kProduction, 400, 2},
  };
  std::vector<std::jthread> users;
  std::mutex print_mutex;
  for (const auto& plan : plans) {
    users.emplace_back([&, plan] {
      runtime::RuntimeOptions options;
      options.user = plan.name;
      options.job_class = plan.cls;
      options.poll_interval = 5 * common::kMillisecond;
      auto rt = runtime::HybridRuntime::connect_daemon(port, options);
      if (!rt.ok()) return;
      for (int j = 0; j < plan.jobs; ++j) {
        const auto t0 = std::chrono::steady_clock::now();
        auto samples = rt.value()->run(user_program(4, plan.shots));
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::scoped_lock lock(print_mutex);
        if (samples.ok()) {
          std::printf("  [%-5s %-11s] job %d done: %llu shots in %6.0f ms\n",
                      plan.name, to_string(plan.cls), j + 1,
                      static_cast<unsigned long long>(
                          samples.value().total_shots()),
                      ms);
        } else {
          std::printf("  [%-5s] job %d failed: %s\n", plan.name, j + 1,
                      samples.error().to_string().c_str());
        }
      }
    });
  }
  users.clear();  // join

  // --- Admin view -----------------------------------------------------------
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "site-admin");
  auto status = admin.get("/admin/status");
  std::printf("\n/admin/status -> %s\n",
              status.ok() ? status.value().body.c_str() : "unreachable");
  const auto counters = device.counters();
  std::printf(
      "QPU counters: %llu jobs, %llu shots, %.1f device-seconds busy\n",
      static_cast<unsigned long long>(counters.jobs_executed),
      static_cast<unsigned long long>(counters.shots_executed),
      common::to_seconds(counters.busy_ns));
  std::printf(
      "\nNote how carol's production jobs overtake dave's development\n"
      "batches: the daemon dispatches development work in 25-shot slices,\n"
      "so a production arrival waits for one slice, not a whole job.\n");
  return 0;
}
