// Third-party error-mitigation service (paper §1/§2.5): the runtime returns
// per-job calibration metadata with every result; a mitigation component —
// living entirely outside the vendor stack — uses it to invert readout
// errors. No extra service calls, no source changes to the program.
#include <cstdio>
#include <numbers>

#include "mitigation/readout.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"
#include "sdk/pulser.hpp"

using namespace qcenv;

int main() {
  // A QPU with deliberately poor readout.
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  options.spec.calibration.readout_p01 = 0.03;
  options.spec.calibration.readout_p10 = 0.12;
  options.drift.dephasing_sigma = 0;  // isolate the readout channel
  options.drift.rabi_scale_sigma = 0;
  options.drift.detuning_offset_sigma = 0;
  options.drift.readout_sigma = 0;
  options.drift.fill_sigma = 0;
  options.drift.dephasing_degradation_per_hour = 0;
  options.spec.calibration.dephasing_rate = 0.0;
  options.spec.calibration.fill_success = 1.0;
  qpu::QpuDevice device(options, &clock);
  qpu::QpuController controller(&device, &clock);
  qrmi::DirectQpuQrmi qpu_resource("fresnel", &device, &controller);

  // The program: a blockaded pi pulse on three atoms — ideally the state
  // has exactly one excitation, so "000" should never be read out.
  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::linear_chain(3, 5.0),
      quantum::DeviceSpec::analog_default());
  (void)builder.declare_channel("g",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  const double omega = 2.0 * std::numbers::pi;
  const double t_pi_us =
      std::numbers::pi / (std::sqrt(3.0) * omega);  // collective enhancement
  (void)builder.add(
      sdk::pulser::constant_pulse(
          static_cast<quantum::DurationNsQ>(t_pi_us * 1e3), omega, 0.0, 0.0),
      "g");
  const auto payload = builder.to_payload(20000).value();

  // Ideal reference from the development emulator.
  auto emulator = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  const auto ideal = emulator->run_sync(payload).value();

  // Production run on the noisy QPU.
  const auto raw = qpu_resource.run_sync(payload, common::kMillisecond).value();

  // Mitigation, configured purely from the job's own metadata.
  auto mitigator = mitigation::ReadoutMitigator::from_metadata(raw).value();
  std::printf("per-job calibration: p01=%.3f p10=%.3f\n\n", mitigator.p01(),
              mitigator.p10());
  const auto mitigated = mitigator.mitigate(raw).value();

  const auto tv = [&](const quantum::Samples& s) {
    return quantum::Samples::total_variation_distance(ideal, s);
  };
  std::printf("%-12s %-14s %-14s %-12s\n", "", "P(no excite)",
              "P(1 excite)", "TV vs ideal");
  const auto p1 = [](const quantum::Samples& s) {
    return s.probability("100") + s.probability("010") +
           s.probability("001");
  };
  std::printf("%-12s %-14.3f %-14.3f %-12s\n", "ideal",
              ideal.probability("000"), p1(ideal), "-");
  std::printf("%-12s %-14.3f %-14.3f %-12.3f\n", "qpu raw",
              raw.probability("000"), p1(raw), tv(raw));
  std::printf("%-12s %-14.3f %-14.3f %-12.3f\n", "mitigated",
              mitigated.probability("000"), p1(mitigated), tv(mitigated));

  std::printf(
      "\nThe mitigated distribution recovers the blockade physics that the\n"
      "12%% readout decay had washed out — using only metadata the daemon\n"
      "already ships with every job (paper: per-job metadata on qubit\n"
      "performance assists in interpreting noisy results).\n");
  return tv(mitigated) < tv(raw) ? 0 : 1;
}
