// Multi-QPU fleet demo: the multi-user, multi-resource environment of
// Slysz et al. (arXiv:2508.16297) on top of the paper's QRMI substrate.
//
// Three heterogeneous resources — an exact statevector emulator, an MPS
// tensor-network emulator and a product-state mock — are declared through
// QRMI_* configuration, seeded into a ResourceBroker, and drained by one
// priority queue with per-resource dispatch lanes. Mixed job classes flow
// in, placement follows the broker policy, and when one resource "dies"
// mid-run its work fails over to the survivors without losing a shot.
#include <cstdio>
#include <thread>
#include <vector>

#include "broker/broker.hpp"
#include "daemon/dispatcher.hpp"
#include "qrmi/local_emulator.hpp"
#include "qrmi/registry.hpp"

using namespace qcenv;

namespace {

quantum::Payload program(std::size_t atoms, std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(atoms, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(300, 2.5),
                               quantum::Waveform::constant(300, 0.5), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

void print_fleet(const broker::ResourceBroker& fleet) {
  std::printf("  %-10s %-8s %-9s %8s %8s %9s\n", "resource", "state",
              "draining", "batches", "shots", "score");
  for (const auto& status : fleet.snapshot()) {
    std::printf("  %-10s %-8s %-9s %8llu %8llu %9.3f\n", status.name.c_str(),
                status.healthy ? "up" : "down",
                status.draining ? "yes" : "no",
                static_cast<unsigned long long>(status.batches_done),
                static_cast<unsigned long long>(status.shots_done),
                status.score);
  }
}

}  // namespace

int main() {
  // --- Declare the fleet exactly as a user would: QRMI_* configuration ----
  common::Config config;
  (void)config.load_string(
      "QRMI_RESOURCES=sv-node, mps-node, mock-node\n"
      "QRMI_SV_NODE_TYPE=local-emulator\n"
      "QRMI_SV_NODE_ENGINE=sv\n"
      "QRMI_MPS_NODE_TYPE=local-emulator\n"
      "QRMI_MPS_NODE_ENGINE=mps:16\n"
      "QRMI_MOCK_NODE_TYPE=local-emulator\n"
      "QRMI_MOCK_NODE_ENGINE=mps-mock\n");
  qrmi::ResourceRegistry registry;
  auto loaded = registry.load_from_config(config);
  if (!loaded.ok()) {
    std::printf("fleet config error: %s\n", loaded.to_string().c_str());
    return 1;
  }

  common::WallClock clock;
  broker::BrokerOptions broker_options;
  broker_options.default_policy = broker::SchedulingPolicy::kLeastLoaded;
  broker_options.initial_backoff = 50 * common::kMillisecond;
  auto fleet = std::make_shared<broker::ResourceBroker>(broker_options,
                                                        &clock, nullptr);
  if (auto seeded = fleet->add_all(registry); !seeded.ok()) {
    std::printf("fleet seeding error: %s\n", seeded.to_string().c_str());
    return 1;
  }
  std::printf("fleet of %zu QRMI resources (policy: %s)\n\n", fleet->size(),
              broker::to_string(fleet->default_policy()));

  daemon::QueuePolicy queue_policy;
  queue_policy.non_production_batch_shots = 50;
  daemon::Dispatcher dispatcher(fleet, queue_policy, &clock, nullptr);

  // --- Mixed job classes from three user groups ---------------------------
  struct Submission {
    const char* user;
    daemon::JobClass cls;
    std::uint64_t shots;
    daemon::Dispatcher::SubmitOptions hints;
  };
  daemon::Dispatcher::SubmitOptions calibration_aware;
  calibration_aware.policy = broker::SchedulingPolicy::kCalibrationAware;
  daemon::Dispatcher::SubmitOptions round_robin;
  round_robin.policy = broker::SchedulingPolicy::kRoundRobin;
  std::vector<Submission> plan;
  for (int i = 0; i < 4; ++i) {
    plan.push_back({"prod", daemon::JobClass::kProduction, 400,
                    calibration_aware});  // quality-sensitive
    plan.push_back({"qa", daemon::JobClass::kTest, 200, round_robin});
    plan.push_back({"dev", daemon::JobClass::kDevelopment, 100, {}});
  }

  std::vector<std::uint64_t> ids;
  std::uint64_t expected_shots = 0;
  for (const auto& submission : plan) {
    auto id = dispatcher.submit(common::SessionId{1}, submission.user,
                                submission.cls, program(4, submission.shots),
                                submission.hints);
    if (!id.ok()) {
      std::printf("submit failed: %s\n", id.error().to_string().c_str());
      return 1;
    }
    expected_shots += submission.shots;
    ids.push_back(id.value());
  }
  std::printf("submitted %zu jobs (%llu shots) across production/test/dev\n",
              ids.size(), static_cast<unsigned long long>(expected_shots));

  // --- Pull the plug on one node mid-run ----------------------------------
  while (true) {
    std::uint64_t done = 0;
    for (const auto id : ids) done += dispatcher.query(id).value().shots_done;
    if (done >= expected_shots / 10) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto mock = registry.lookup("mock-node").value();
  std::static_pointer_cast<qrmi::LocalEmulatorQrmi>(mock)->set_offline(true);
  std::printf("\n*** mock-node lost mid-run — failover engages ***\n\n");

  std::uint64_t delivered = 0;
  for (const auto id : ids) {
    auto samples = dispatcher.wait(id, 120 * common::kSecond);
    if (samples.ok()) delivered += samples.value().total_shots();
  }

  std::printf("per-resource utilization after the run:\n");
  print_fleet(*fleet);
  std::printf("\nshots delivered: %llu / %llu (%s)\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(expected_shots),
              delivered == expected_shots ? "no shots lost"
                                          : "SHOTS MISSING");

  // --- Rolling maintenance: drain a healthy node --------------------------
  (void)dispatcher.drain_resource("mps-node");
  auto id = dispatcher.submit(common::SessionId{1}, "dev",
                              daemon::JobClass::kDevelopment, program(4, 50));
  (void)dispatcher.wait(id, 60 * common::kSecond);
  const auto placed = dispatcher.query(id).value().resource;
  std::printf("with mps-node draining and mock-node down, a new job ran on: "
              "%s\n",
              placed.c_str());
  return delivered == expected_shots ? 0 : 1;
}
