// Hybrid example: QAOA for MaxCut driven by the HybridExecutor with a
// Nelder-Mead optimizer — the "balanced QC-CC" pattern of Table 1. The
// quantum side runs through the same runtime abstraction as every other
// example; swap the resource name and the loop runs on MPS or a QPU.
#include <cstdio>
#include <numbers>

#include "qrmi/local_emulator.hpp"
#include "runtime/executor.hpp"
#include "sdk/qgate.hpp"
#include "workload/optimizer.hpp"

using namespace qcenv;

namespace {

// A 6-vertex ring + one chord: max cut = 6 (cut every ring edge... the
// chord frustrates perfect cuts; best known cut below).
const std::vector<std::pair<std::size_t, std::size_t>> kEdges = {
    {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}};

double cut_value(const std::string& bits) {
  double cut = 0;
  for (const auto& [a, b] : kEdges) {
    if (bits[a] != bits[b]) cut += 1.0;
  }
  return cut;
}

}  // namespace

int main() {
  qrmi::ResourceRegistry registry;
  registry.add("emu-sv",
               qrmi::LocalEmulatorQrmi::create("emu-sv", "sv").value());

  runtime::RuntimeOptions options;
  options.resource = "emu-sv";
  auto rt = runtime::HybridRuntime::connect_local(&registry, options).value();
  runtime::HybridExecutor executor(rt.get());

  constexpr std::size_t kLayers = 2;
  // Parameters: [gamma_1..gamma_p, beta_1..beta_p].
  runtime::ParametricProgram program =
      [](const std::vector<double>& params) {
        std::vector<double> gammas(params.begin(),
                                   params.begin() + kLayers);
        std::vector<double> betas(params.begin() + kLayers, params.end());
        auto circuit = sdk::qgate::qaoa_maxcut(6, kEdges, gammas, betas);
        return sdk::qgate::to_payload(circuit, 600, /*native_only=*/true)
            .value();
      };
  runtime::CostFunction cost = [](const quantum::Samples& samples) {
    double expectation = 0;
    for (const auto& [bits, count] : samples.counts()) {
      expectation += cut_value(bits) * static_cast<double>(count);
    }
    return -expectation / static_cast<double>(samples.total_shots());
  };

  workload::NelderMead::Options nm_options;
  nm_options.max_evaluations = 70;
  nm_options.initial_step = 0.4;
  workload::NelderMead optimizer(2 * kLayers, nm_options);

  std::printf("QAOA MaxCut (6 vertices, 7 edges, p=%zu) on %s\n\n", kLayers,
              rt->resource_name().c_str());
  auto loop = executor.optimize(program, cost, optimizer.strategy(),
                                {0.4, 0.6, 0.8, 0.4}, 70);
  if (!loop.ok()) {
    std::fprintf(stderr, "loop failed: %s\n",
                 loop.error().to_string().c_str());
    return 1;
  }

  std::printf("iterations: %zu\n", loop.value().iterations.size());
  const auto& best = loop.value().best();
  std::printf("best expected cut: %.3f\n", -best.cost);
  std::printf("best params: ");
  for (const double p : best.parameters) std::printf("%.3f ", p);
  std::printf("\n\nmost likely cuts from the best iteration:\n");
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [bits, count] : best.samples.counts()) {
    ranked.emplace_back(count, bits);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %s  cut=%g  p=%.2f\n", ranked[i].second.c_str(),
                cut_value(ranked[i].second),
                static_cast<double>(ranked[i].first) /
                    static_cast<double>(best.samples.total_shots()));
  }
  // Random assignment averages 3.5; the loop should comfortably beat it.
  std::printf("\n(random baseline: 3.5; optimum for this graph: 6)\n");
  return -best.cost > 4.0 ? 0 : 1;
}
