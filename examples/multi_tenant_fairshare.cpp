// Multi-tenant fair-share demo: three users with 50/30/20 shares hammer
// one emulated QPU through the middleware daemon. The accounting ledger
// charges every executed batch, the fair-share hook reorders the queue
// within the class, and — while the backlog contends for the QPU — the
// per-user served-shot fractions converge onto the configured shares.
// Watch it live on GET /v1/usage and GET /admin/fairshare.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

using namespace qcenv;

namespace {

quantum::Payload user_program(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

}  // namespace

int main() {
  common::WallClock clock;
  daemon::DaemonOptions options;
  options.admin_key = "site-admin";
  // Small batches: the scheduler re-ranks tenants at every batch boundary.
  options.queue_policy.non_production_batch_shots = 50;
  options.accounting.ledger.half_life = 60 * common::kSecond;
  options.accounting.fair_share.user_shares["alice"] = {"hpc", 50.0};
  options.accounting.fair_share.user_shares["bob"] = {"hpc", 30.0};
  options.accounting.fair_share.user_shares["carol"] = {"hpc", 20.0};
  daemon::MiddlewareDaemon daemon(
      options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(), nullptr,
      &clock);
  const auto port = daemon.start().value();
  std::printf("middleware daemon on 127.0.0.1:%u\n\n", port);

  const std::vector<std::string> users = {"alice", "bob", "carol"};

  // One session per tenant.
  std::map<std::string, net::HttpClient> clients;
  for (const auto& user : users) {
    net::HttpClient plain(port);
    common::Json body = common::Json::object();
    body["user"] = user;
    body["class"] = "development";
    auto opened = plain.post("/v1/sessions", body.dump());
    const std::string token = common::Json::parse(opened.value().body)
                                  .value()
                                  .get_string("token")
                                  .value();
    clients.emplace(user, port).first->second.set_default_header(
        "X-Session-Token", token);
  }

  // Identical sustained load, submitted while dispatch is held, so every
  // tenant's backlog contends for the one QPU from the first batch.
  daemon.dispatcher().drain();
  constexpr int kJobsPerUser = 24;
  constexpr std::uint64_t kShotsPerJob = 400;
  for (int i = 0; i < kJobsPerUser; ++i) {
    for (const auto& user : users) {
      common::Json body = common::Json::object();
      body["payload"] = user_program(kShotsPerJob).to_json();
      (void)clients.at(user).post("/v1/jobs", body.dump());
    }
  }
  const double total_backlog = 3.0 * kJobsPerUser * kShotsPerJob;
  std::printf("backlog: %d jobs x %llu shots per tenant, one shared QPU\n\n",
              kJobsPerUser,
              static_cast<unsigned long long>(kShotsPerJob));
  daemon.dispatcher().resume();

  // Sample cumulative served fractions while the backlog contends. We stop
  // at 60% drained: past that, finished tenants stop competing and the
  // fractions drift back toward equality.
  const auto served_shots = [&] {
    std::map<std::string, double> served;
    for (const auto& job : daemon.dispatcher().jobs_snapshot()) {
      served[job.user] += static_cast<double>(job.shots_done);
    }
    return served;
  };
  std::printf("%-10s  %-12s  %-12s  %-12s\n", "drained", "alice (50%)",
              "bob (30%)", "carol (20%)");
  double next_report = 0.10;
  while (true) {
    const auto served = served_shots();
    double total = 0;
    for (const auto& [_, shots] : served) total += shots;
    const double drained = total / total_backlog;
    if (drained >= next_report) {
      next_report += 0.10;
      std::printf("%9.0f%%  %11.1f%%  %11.1f%%  %11.1f%%\n", 100 * drained,
                  100 * served.at("alice") / total,
                  100 * served.at("bob") / total,
                  100 * served.at("carol") / total);
    }
    if (drained >= 0.60) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The REST view an individual tenant sees.
  auto usage = clients.at("carol").get("/v1/usage");
  std::printf("\nGET /v1/usage (carol):\n%s\n",
              common::Json::parse(usage.value().body).value().dump(2).c_str());

  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "site-admin");
  auto fairshare = admin.get("/admin/fairshare");
  std::printf("\nGET /admin/fairshare:\n%s\n",
              common::Json::parse(fairshare.value().body)
                  .value()
                  .dump(2)
                  .c_str());
  std::printf(
      "\nServed fractions track the 50/30/20 grant: the fair-share hook\n"
      "hands the most under-served tenant's batches forward as decayed\n"
      "usage accumulates against each user's share.\n");
  return 0;
}
