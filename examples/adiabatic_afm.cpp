// Domain example: adiabatic preparation of the antiferromagnetic (AFM /
// Z2-crystal) phase on a neutral-atom chain — the canonical analog-QPU
// workload the paper's stack exists to serve.
//
// Protocol: ramp the detuning from below to above resonance under constant
// Rabi drive. Deep in the blockaded regime the ground state orders
// antiferromagnetically. We use a 9-atom (odd) chain: with open boundaries
// and the next-nearest-neighbour C6 tail, odd chains have a *unique*
// crystalline ground state, so the Neel probability is a clean adiabaticity
// metric. The same payload runs on the exact dense emulator and on
// bond-limited MPS emulators.
#include <cstdio>

#include "qrmi/local_emulator.hpp"
#include "qrmi/registry.hpp"
#include "sdk/pulser.hpp"

using namespace qcenv;

int main() {
  constexpr std::size_t kAtoms = 9;
  constexpr double kOmega = 7.5;         // rad/us
  constexpr double kDeltaStart = -9.0;   // rad/us
  constexpr double kDeltaStop = 12.0;    // rad/us (U_nnn < delta < U_nn)

  const auto device = quantum::DeviceSpec::analog_default();
  std::printf(
      "Z2-crystal preparation on a %zu-atom chain (spacing 6.0 um, "
      "U_nn = %.0f rad/us, blockade radius %.1f um)\n\n",
      kAtoms, device.c6_coefficient / std::pow(6.0, 6.0),
      device.blockade_radius());

  qrmi::ResourceRegistry registry;
  registry.add("sv", qrmi::LocalEmulatorQrmi::create("sv", "sv").value());
  registry.add("mps8",
               qrmi::LocalEmulatorQrmi::create("mps8", "mps:8").value());
  registry.add("mps2",
               qrmi::LocalEmulatorQrmi::create("mps2", "mps:2").value());

  const std::string neel_even = "101010101";

  std::printf("%-12s %-10s %-10s %-10s\n", "ramp (ns)", "backend",
              "<|m_s|>", "P(Neel)");
  for (const quantum::DurationNsQ ramp_ns : {1000, 4000, 16000}) {
    for (const std::string backend : {"sv", "mps8", "mps2"}) {
      sdk::pulser::SequenceBuilder builder(
          quantum::AtomRegister::linear_chain(kAtoms, 6.0), device);
      (void)builder.declare_channel(
          "global", sdk::pulser::ChannelKind::kRydbergGlobal);
      // Rise, sweep, fall — the standard three-segment schedule.
      (void)builder.add(
          quantum::Pulse{quantum::Waveform::ramp(250, 0.0, kOmega),
                         quantum::Waveform::constant(250, kDeltaStart), 0.0},
          "global");
      (void)builder.add(sdk::pulser::ramp_detuning_pulse(
                            ramp_ns, kOmega, kDeltaStart, kDeltaStop, 0.0),
                        "global");
      (void)builder.add(
          quantum::Pulse{quantum::Waveform::ramp(250, kOmega, 0.0),
                         quantum::Waveform::constant(250, kDeltaStop), 0.0},
          "global");
      auto payload = builder.to_payload(1000);
      if (!payload.ok()) {
        std::fprintf(stderr, "%s\n", payload.error().to_string().c_str());
        return 1;
      }
      auto resource = registry.lookup(backend).value();
      auto samples = resource->run_sync(payload.value());
      if (!samples.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     samples.error().to_string().c_str());
        return 1;
      }
      std::printf("%-12lld %-10s %-10.3f %-10.3f\n",
                  static_cast<long long>(ramp_ns), backend.c_str(),
                  samples.value().mean_abs_staggered_magnetization(),
                  samples.value().probability(neel_even));
    }
  }
  std::printf(
      "\nReading: slower ramps are more adiabatic => stronger crystalline\n"
      "order (P(Neel) grows toward ~0.6 at 16 us on the exact emulator).\n"
      "chi=8 tracks the dense solution; chi=2 cannot hold the entanglement\n"
      "grown near the phase transition — the accuracy/cost dial of the\n"
      "paper's emulator-backed development loop.\n");
  return 0;
}
