// Quickstart: build one analog program with the pulser SDK and run it on
// any QRMI resource — the paper's "single configuration change with the
// --qpu option" workflow.
//
//   ./quickstart                 # runs on the default local emulator
//   ./quickstart --qpu=emu-mps   # tensor-network emulator
//   ./quickstart --qpu=emu-mock  # chi=1 product-state mock
//   QCENV_QPU=emu-mps ./quickstart   # same thing via environment
#include <cstdio>
#include <numbers>
#include <string>

#include "common/config.hpp"
#include "qrmi/local_emulator.hpp"
#include "runtime/runtime.hpp"
#include "sdk/pulser.hpp"

using namespace qcenv;

int main(int argc, char** argv) {
  // --- Configuration: CLI flag > environment > default --------------------
  common::Config config;
  config.load_env("QCENV_");
  config.load_env("QRMI_");
  runtime::RuntimeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--qpu=", 0) == 0) options.resource = arg.substr(6);
  }
  if (options.resource.empty() && !config.contains("QCENV_QPU")) {
    options.resource = "emu-sv";  // default development backend
  }

  // --- Resources available to this user (normally site-provided) ----------
  qrmi::ResourceRegistry registry;
  registry.add("emu-sv",
               qrmi::LocalEmulatorQrmi::create("emu-sv", "sv").value());
  registry.add("emu-mps",
               qrmi::LocalEmulatorQrmi::create("emu-mps", "mps:16").value());
  registry.add("emu-mock",
               qrmi::LocalEmulatorQrmi::create("emu-mock", "mps-mock").value());

  auto rt = runtime::HybridRuntime::connect_local(&registry, options, config);
  if (!rt.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 rt.error().to_string().c_str());
    return 1;
  }
  std::printf("connected: mode=%s resource=%s\n",
              rt.value()->mode().c_str(),
              rt.value()->resource_name().c_str());

  // --- Fetch device characteristics and build the program ------------------
  const auto spec = rt.value()->device().value();
  std::printf("device: %s (max %zu qubits, blockade radius %.1f um)\n",
              spec.name.c_str(), spec.max_qubits, spec.blockade_radius());

  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::ring(8, 6.0), spec);
  (void)builder.declare_channel("global",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  // A pi/2 rotation of every atom followed by a short interacting hold.
  (void)builder.add(sdk::pulser::constant_pulse(
                        250, 2.0 * std::numbers::pi, 0.0, 0.0),
                    "global");
  (void)builder.add(sdk::pulser::constant_pulse(300, 0.0, 2.0, 0.0),
                    "global");
  auto payload = builder.to_payload(1000);
  if (!payload.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 payload.error().to_string().c_str());
    return 1;
  }

  // --- Validate against the *current* device state, then run ---------------
  const auto report = rt.value()->validate(payload.value()).value();
  std::printf("%s\n", report.to_string().c_str());
  if (!report.compatible) return 1;

  auto samples = rt.value()->run(payload.value());
  if (!samples.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 samples.error().to_string().c_str());
    return 1;
  }

  std::printf("\n%llu shots on %s; top outcomes:\n",
              static_cast<unsigned long long>(samples.value().total_shots()),
              samples.value().metadata().at_or_null("backend")
                  .as_string().c_str());
  // Print the five most frequent bitstrings.
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [bits, count] : samples.value().counts()) {
    ranked.emplace_back(count, bits);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %s  %5llu  (%.1f%%)\n", ranked[i].second.c_str(),
                static_cast<unsigned long long>(ranked[i].first),
                100.0 * static_cast<double>(ranked[i].first) /
                    static_cast<double>(samples.value().total_shots()));
  }
  std::printf("mean excitation fraction: %.3f\n",
              samples.value().mean_excitation_fraction());
  return 0;
}
