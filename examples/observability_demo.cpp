// Observability demo (§3.6): the Prometheus -> TSDB -> dashboard/alerting
// path over a drifting QPU, an admin recalibration through the daemon's
// guarded REST surface, and the per-job tracing path: submit a job, then
// fetch its span timeline from GET /v1/jobs/:id/trace.
//
//   observability_demo [--trace-out FILE]   # also write the trace JSON
//   observability_demo --slo-demo           # live pipeline: a tenant burns
//                                           # its submit error budget, the
//                                           # burn-rate alert fires, and the
//                                           # /admin/slo, /admin/alerts,
//                                           # /admin/events and flight-dump
//                                           # surfaces show the incident
//   observability_demo --explain-demo       # the user-facing explainability
//                                           # surface: queue ETA prediction
//                                           # in the submit 201 and at
//                                           # /v1/jobs/:id/eta, the wait
//                                           # decomposition at
//                                           # /v1/jobs/:id/explain, and the
//                                           # collapsed-stack critical-path
//                                           # profile at /admin/profile
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/dashboard.hpp"

using namespace qcenv;

namespace {

quantum::Payload tiny_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

void print_body(const char* title,
                const common::Result<net::HttpResponse>& response) {
  std::printf("\n%s\n%s\n", title,
              response.ok() ? response.value().body.c_str() : "error");
}

/// The live pipeline end to end: a daemon with the scrape loop under a
/// manual clock, a tenant whose submit storm draws rate-limit rejections
/// until the multi-window burn-rate alert fires, then every operator
/// surface the incident shows up on.
int run_slo_demo() {
  common::ManualClock clock(0, /*auto_advance=*/true);
  auto emu = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
  common::TempDir dir("qcenv-obs-demo-");

  daemon::DaemonOptions options;
  options.admin_key = "demo-admin";
  options.store.data_dir = dir.path();
  // A submit budget tight enough that the storm below torches it.
  options.accounting.rate_limit.submit_per_sec = 2.0;
  options.accounting.rate_limit.submit_burst = 3.0;
  auto& obs = options.telemetry.observability;
  obs.scrape_thread = false;  // the demo drives the grid itself
  obs.scrape_interval = common::kSecond;
  obs.slo_short_window = 4 * common::kSecond;
  obs.slo_long_window = 16 * common::kSecond;
  daemon::MiddlewareDaemon middleware(options, emu, nullptr, &clock);
  const auto port = middleware.start().value();
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "demo-admin");

  auto session =
      middleware.open_session("alice", daemon::JobClass::kDevelopment)
          .value();
  auto* pipeline = middleware.observability();

  std::printf("driving 60 virtual seconds; alice storms 6 submits/s for "
              "the first 20...\n");
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int t = 1; t <= 60; ++t) {
    if (t <= 20) {
      for (int i = 0; i < 6; ++i) {
        auto submitted =
            middleware.submit_job(session.token, tiny_payload(20));
        ++(submitted.ok() ? accepted : rejected);
      }
    }
    const common::TimeNs deadline =
        static_cast<common::TimeNs>(t) * common::kSecond;
    clock.advance_to(deadline);
    pipeline->tick_at(deadline);
  }
  std::printf("storm result: %zu accepted, %zu rate-limited\n", accepted,
              rejected);

  print_body("per-tenant burn rates (GET /admin/slo):",
             admin.get("/admin/slo"));
  print_body("alerts (GET /admin/alerts):", admin.get("/admin/alerts"));
  print_body(
      "alert events only (GET /admin/events?severity=warn&kind=alert_fired):",
      admin.get("/admin/events?severity=warn&kind=alert_fired"));
  print_body(
      "rejection series, 10 s sums "
      "(GET /admin/tsdb/query?series=slo_submit_rejected,user=alice"
      "&window=10000000000&agg=sum):",
      admin.get("/admin/tsdb/query?series=slo_submit_rejected,user=alice"
                "&window=10000000000&agg=sum"));
  print_body("flight recorder (POST /admin/debug/dump):",
             admin.post("/admin/debug/dump", "{}"));
  middleware.stop();
  return 0;
}

/// The two questions a shared-facility user actually asks — "when will
/// my job run?" and "where did my job's time go?" — answered over the
/// daemon's REST surface on a virtual clock, so the numbers in the output
/// are exact and reproducible.
int run_explain_demo() {
  common::ManualClock clock(0, /*auto_advance=*/true);
  auto emu = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();

  daemon::DaemonOptions options;
  options.admin_key = "demo-admin";
  daemon::MiddlewareDaemon middleware(options, emu, nullptr, &clock);
  const auto port = middleware.start().value();
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "demo-admin");

  auto session =
      middleware.open_session("alice", daemon::JobClass::kDevelopment)
          .value();
  net::HttpClient alice(port);
  alice.set_default_header("X-Session-Token", session.token);

  // Park the lanes so the jobs queue: the ETA estimator now has a real
  // backlog to simulate and the explain report a real wait to decompose.
  middleware.dispatcher().drain();

  std::printf("lanes drained; alice submits 3 jobs...\n");
  common::Json body = common::Json::object();
  body["payload"] = tiny_payload(20).to_json();
  std::uint64_t last_id = 0;
  for (int i = 0; i < 3; ++i) {
    auto response = alice.post("/v1/jobs", body.dump());
    if (!response.ok() || response.value().status != 201) {
      std::printf("submit failed\n");
      return 1;
    }
    const auto parsed = common::Json::parse(response.value().body).value();
    last_id = static_cast<std::uint64_t>(
        parsed.at_or_null("job_id").as_int());
    if (i == 0) {
      std::printf(
          "\nthe 201 body embeds the prediction (note bounded=false and "
          "the\nresource_drain pressure — no active lane can serve the "
          "job yet):\n%s\n",
          parsed.at_or_null("eta").dump(2).c_str());
    }
  }

  print_body(
      "the last job's view while queued (GET /v1/jobs/:id/eta — "
      "jobs_ahead\ncounts the two submissions in front of it):",
      alice.get("/v1/jobs/" + std::to_string(last_id) + "/eta"));

  // Let 3 virtual seconds of drain accrue, then release the lanes and
  // run everything to completion.
  clock.advance(3 * common::kSecond);
  middleware.dispatcher().resume();
  if (!middleware.dispatcher().wait(last_id).ok()) {
    std::printf("job did not finish\n");
    return 1;
  }

  print_body(
      "where the time went (GET /v1/jobs/:id/explain — the causes sum "
      "EXACTLY\nto observed_wait_ns: the drain window plus the two jobs "
      "dispatched ahead):",
      alice.get("/v1/jobs/" + std::to_string(last_id) + "/explain"));

  print_body(
      "the aggregate critical path across terminal jobs "
      "(GET /admin/profile —\n'stacks' is flamegraph-collapsed: "
      "'path self_time_ns' per line):",
      admin.get("/admin/profile"));
  print_body("record today's shape as the regression baseline "
             "(POST /admin/profile/baseline):",
             admin.post("/admin/profile/baseline", "{}"));

  middleware.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slo-demo") == 0) return run_slo_demo();
    if (std::strcmp(argv[i], "--explain-demo") == 0) {
      return run_explain_demo();
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[i + 1];
    }
  }
  // A QPU whose calibration drifts noticeably over a simulated day.
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  options.drift.dephasing_degradation_per_hour = 0.01;
  options.drift.detuning_offset_sigma = 0.4;
  qpu::QpuDevice device(options, &clock);
  qpu::QpuController controller(&device, &clock);

  telemetry::MetricsRegistry registry;
  telemetry::TimeSeriesDb tsdb;
  telemetry::QpuTelemetrySource source(&device, &registry);
  telemetry::CollectorOptions scrape;
  scrape.interval = 10 * 60 * common::kSecond;  // every 10 simulated min
  telemetry::MetricsCollector collector(&registry, &tsdb, &clock, scrape);

  telemetry::AlertManager alerts;
  telemetry::AlertRule rule;
  rule.name = "qpu-fidelity-drift";
  rule.series = telemetry::SeriesKey{"qpu_fidelity_estimate",
                                     {{"device", "sim-analog"}}};
  rule.label = "sim-analog";
  rule.severity = telemetry::AlertSeverity::kWarning;
  rule.detector = telemetry::CusumDetector(0.5, 4.0, 24);
  alerts.add_rule(std::move(rule));
  alerts.add_sink([](const telemetry::AlertRecord& record) {
    if (!record.active()) return;
    std::printf("  !! ALERT [%s] %s/%s at t=%.1f h: %s\n",
                to_string(record.severity), record.rule.c_str(),
                record.label.c_str(),
                common::to_seconds(record.fired_at) / 3600.0,
                record.detail.c_str());
  });

  // Scrape every 10 simulated minutes across 24 hours; alert evaluation
  // rides every scrape deadline, exactly as the daemon's pipeline does.
  std::printf("collecting QPU telemetry over a simulated day...\n");
  for (int step = 0; step < 24 * 6; ++step) {
    clock.advance(10 * 60 * common::kSecond);
    source.update();
    collector.run_pending(clock.now());
    (void)alerts.evaluate(tsdb, collector.last_scrape());
  }

  // The "Grafana" view.
  telemetry::Dashboard dashboard(&tsdb);
  const telemetry::Tags device_tag{{"device", "sim-analog"}};
  dashboard.add_panel({"fidelity estimate",
                       {"qpu_fidelity_estimate", device_tag}, 72});
  dashboard.add_panel({"dephasing rate (1/us)",
                       {"qpu_dephasing_rate", device_tag}, 72});
  dashboard.add_panel({"detuning offset (rad/us)",
                       {"qpu_detuning_offset", device_tag}, 72});
  dashboard.add_panel({"readout p10",
                       {"qpu_readout_p10", device_tag}, 72});
  std::printf("\n%s\n", dashboard.render(0, clock.now()).c_str());

  std::printf("alerts fired during the day: %zu\n\n",
              alerts.history().size() + alerts.active().size());

  // Admin runs QA, sees degradation, recalibrates through the daemon.
  auto resource = std::make_shared<qrmi::DirectQpuQrmi>("fresnel", &device,
                                                        &controller);
  common::WallClock wall;
  daemon::DaemonOptions daemon_options;
  daemon_options.admin_key = "site-admin";
  daemon::MiddlewareDaemon middleware(daemon_options, resource, &device,
                                      &wall);
  const auto port = middleware.start().value();
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "site-admin");

  auto qa_before = admin.post("/admin/qa", "{}");
  std::printf("QA before recalibration: %s\n",
              qa_before.ok() ? qa_before.value().body.c_str() : "error");
  auto recal = admin.post("/admin/recalibrate", "{}");
  std::printf("recalibrate: %s\n",
              recal.ok() ? recal.value().body.c_str() : "error");
  auto qa_after = admin.post("/admin/qa", "{}");
  std::printf("QA after recalibration:  %s\n",
              qa_after.ok() ? qa_after.value().body.c_str() : "error");

  // The per-job metadata path: users see the calibration their job ran with.
  auto samples = resource->run_sync(tiny_payload(50));
  if (samples.ok()) {
    std::printf(
        "\nper-job metadata (what end-users get back with results):\n%s\n",
        samples.value().metadata().at_or_null("calibration").dump(2).c_str());
  }

  // The per-job tracing path: submit through the daemon's full pipeline,
  // then fetch the admission -> journal -> queue -> execute -> finish
  // timeline exactly as a user would.
  auto session =
      middleware.open_session("alice", daemon::JobClass::kDevelopment)
          .value();
  auto submitted =
      middleware.submit_job(session.token, tiny_payload(50));
  if (submitted.ok()) {
    const std::uint64_t id = submitted.value().id;
    for (int i = 0; i < 1000; ++i) {
      auto job = middleware.dispatcher().query(id);
      if (job.ok() && (job.value().state == daemon::DaemonJobState::kCompleted ||
                       job.value().state == daemon::DaemonJobState::kFailed ||
                       job.value().state == daemon::DaemonJobState::kCancelled)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    net::HttpClient user(port);
    user.set_default_header("X-Session-Token", session.token);
    auto trace = user.get("/v1/jobs/" + std::to_string(id) + "/trace");
    if (trace.ok()) {
      std::printf("\nper-job trace (GET /v1/jobs/%llu/trace):\n%s\n",
                  static_cast<unsigned long long>(id),
                  trace.value().body.c_str());
      if (trace_out != nullptr) {
        std::ofstream file(trace_out);
        file << trace.value().body << "\n";
        std::printf("wrote %s\n", trace_out);
      }
    }
  }
  return 0;
}
