// Observability demo (§3.6): the Prometheus -> TSDB -> dashboard/alerting
// path over a drifting QPU, an admin recalibration through the daemon's
// guarded REST surface, and the per-job tracing path: submit a job, then
// fetch its span timeline from GET /v1/jobs/:id/trace.
//
//   observability_demo [--trace-out FILE]   # also write the trace JSON
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/dashboard.hpp"

using namespace qcenv;

int main(int argc, char** argv) {
  const char* trace_out = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
  }
  // A QPU whose calibration drifts noticeably over a simulated day.
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  options.drift.dephasing_degradation_per_hour = 0.01;
  options.drift.detuning_offset_sigma = 0.4;
  qpu::QpuDevice device(options, &clock);
  qpu::QpuController controller(&device, &clock);

  telemetry::MetricsRegistry registry;
  telemetry::TimeSeriesDb tsdb;
  telemetry::QpuTelemetrySource source(&device, &registry);
  telemetry::Collector collector(&registry, &tsdb, &clock);

  telemetry::AlertManager alerts;
  telemetry::AlertRule rule;
  rule.name = "qpu-fidelity-drift";
  rule.series = telemetry::SeriesKey{"qpu_fidelity_estimate",
                                     {{"device", "sim-analog"}}};
  rule.severity = telemetry::AlertSeverity::kWarning;
  rule.detector = telemetry::CusumDetector(0.5, 4.0, 24);
  alerts.add_rule(std::move(rule));
  alerts.add_sink([&](const telemetry::FiredAlert& alert) {
    std::printf("  !! ALERT [%s] %s at t=%.1f h: %s\n",
                to_string(alert.severity), alert.rule.c_str(),
                common::to_seconds(alert.fired_at) / 3600.0,
                alert.detail.c_str());
  });

  // Scrape every 10 simulated minutes across 24 hours.
  std::printf("collecting QPU telemetry over a simulated day...\n");
  for (int step = 0; step < 24 * 6; ++step) {
    clock.advance(10 * 60 * common::kSecond);
    source.update();
    collector.scrape_once();
    (void)alerts.evaluate(tsdb);
  }

  // The "Grafana" view.
  telemetry::Dashboard dashboard(&tsdb);
  const telemetry::Tags device_tag{{"device", "sim-analog"}};
  dashboard.add_panel({"fidelity estimate",
                       {"qpu_fidelity_estimate", device_tag}, 72});
  dashboard.add_panel({"dephasing rate (1/us)",
                       {"qpu_dephasing_rate", device_tag}, 72});
  dashboard.add_panel({"detuning offset (rad/us)",
                       {"qpu_detuning_offset", device_tag}, 72});
  dashboard.add_panel({"readout p10",
                       {"qpu_readout_p10", device_tag}, 72});
  std::printf("\n%s\n", dashboard.render(0, clock.now()).c_str());

  std::printf("alerts fired during the day: %zu\n\n",
              alerts.history().size());

  // Admin runs QA, sees degradation, recalibrates through the daemon.
  auto resource = std::make_shared<qrmi::DirectQpuQrmi>("fresnel", &device,
                                                        &controller);
  common::WallClock wall;
  daemon::DaemonOptions daemon_options;
  daemon_options.admin_key = "site-admin";
  daemon::MiddlewareDaemon middleware(daemon_options, resource, &device,
                                      &wall);
  const auto port = middleware.start().value();
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "site-admin");

  auto qa_before = admin.post("/admin/qa", "{}");
  std::printf("QA before recalibration: %s\n",
              qa_before.ok() ? qa_before.value().body.c_str() : "error");
  auto recal = admin.post("/admin/recalibrate", "{}");
  std::printf("recalibrate: %s\n",
              recal.ok() ? recal.value().body.c_str() : "error");
  auto qa_after = admin.post("/admin/qa", "{}");
  std::printf("QA after recalibration:  %s\n",
              qa_after.ok() ? qa_after.value().body.c_str() : "error");

  // The per-job metadata path: users see the calibration their job ran with.
  auto samples = resource->run_sync([&] {
    quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
    seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                                 quantum::Waveform::constant(200, 0.0),
                                 0.0});
    return quantum::Payload::from_sequence(seq, 50);
  }());
  if (samples.ok()) {
    std::printf(
        "\nper-job metadata (what end-users get back with results):\n%s\n",
        samples.value().metadata().at_or_null("calibration").dump(2).c_str());
  }

  // The per-job tracing path: submit through the daemon's full pipeline,
  // then fetch the admission -> journal -> queue -> execute -> finish
  // timeline exactly as a user would.
  auto session =
      middleware.open_session("alice", daemon::JobClass::kDevelopment)
          .value();
  quantum::Sequence traced_seq(quantum::AtomRegister::linear_chain(2, 6.0));
  traced_seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                                      quantum::Waveform::constant(200, 0.0),
                                      0.0});
  auto submitted = middleware.submit_job(
      session.token, quantum::Payload::from_sequence(traced_seq, 50));
  if (submitted.ok()) {
    const std::uint64_t id = submitted.value().id;
    for (int i = 0; i < 1000; ++i) {
      auto job = middleware.dispatcher().query(id);
      if (job.ok() && (job.value().state == daemon::DaemonJobState::kCompleted ||
                       job.value().state == daemon::DaemonJobState::kFailed ||
                       job.value().state == daemon::DaemonJobState::kCancelled)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    net::HttpClient user(port);
    user.set_default_header("X-Session-Token", session.token);
    auto trace = user.get("/v1/jobs/" + std::to_string(id) + "/trace");
    if (trace.ok()) {
      std::printf("\nper-job trace (GET /v1/jobs/%llu/trace):\n%s\n",
                  static_cast<unsigned long long>(id),
                  trace.value().body.c_str());
      if (trace_out != nullptr) {
        std::ofstream file(trace_out);
        file << trace.value().body << "\n";
        std::printf("wrote %s\n", trace_out);
      }
    }
  }
  return 0;
}
