// Crash recovery demo: a daemon with a durable state store dies with work
// queued, partially executed and completed — and a fresh daemon on the
// same data-dir serves it all back. Sessions keep their tokens, finished
// results are re-served from the store without touching a backend, and
// interrupted jobs resume with exactly their un-executed shots.
//
//   ./crash_recovery [data-dir]       (default: ./qcenv-crash-demo)
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

using namespace qcenv;

namespace {

quantum::Payload demo_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(4, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(300, 2.0),
                               quantum::Waveform::constant(300, 0.2), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

std::unique_ptr<daemon::MiddlewareDaemon> start_daemon(
    const std::string& data_dir, common::Clock* clock) {
  daemon::DaemonOptions options;
  options.queue_policy.non_production_batch_shots = 50;
  options.store.data_dir = data_dir;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  auto daemon = std::make_unique<daemon::MiddlewareDaemon>(options, resource,
                                                           nullptr, clock);
  auto port = daemon->start();
  if (!port.ok()) {
    std::printf("daemon failed to start: %s\n",
                port.error().to_string().c_str());
    return nullptr;
  }
  return daemon;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string data_dir = argc > 1 ? argv[1] : "qcenv-crash-demo";
  std::filesystem::remove_all(data_dir);
  common::WallClock clock;
  std::string token;
  std::uint64_t done_id = 0;
  std::uint64_t interrupted_id = 0;

  std::printf("== life 1: daemon with store at '%s'\n", data_dir.c_str());
  {
    auto daemon = start_daemon(data_dir, &clock);
    if (daemon == nullptr) return 1;
    net::HttpClient client(daemon->port());
    auto session =
        client.post("/v1/sessions", R"({"user":"alice","class":"test"})");
    token = common::Json::parse(session.value().body)
                .value()
                .get_string("token")
                .value();
    net::HttpClient authed(daemon->port());
    authed.set_default_header("X-Session-Token", token);

    common::Json body = common::Json::object();
    body["payload"] = demo_payload(100).to_json();
    auto first = authed.post("/v1/jobs", body.dump());
    done_id = static_cast<std::uint64_t>(common::Json::parse(
                                             first.value().body)
                                             .value()
                                             .get_int("job_id")
                                             .value());
    (void)daemon->dispatcher().wait(done_id, 60 * common::kSecond);
    std::printf("   job %llu completed (100 shots)\n",
                static_cast<unsigned long long>(done_id));

    body["payload"] = demo_payload(2000).to_json();
    auto second = authed.post("/v1/jobs", body.dump());
    interrupted_id = static_cast<std::uint64_t>(
        common::Json::parse(second.value().body)
            .value()
            .get_int("job_id")
            .value());
    while (daemon->dispatcher().query(interrupted_id).value().shots_done <
           100) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Freeze dispatch so teardown cannot quietly finish the job: this is
    // the crash point, caught at a batch boundary (the granularity at
    // which the journal makes execution exactly-once).
    daemon->dispatcher().drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto mid = daemon->dispatcher().query(interrupted_id).value();
    std::printf("   job %llu at %llu/2000 shots — killing the daemon NOW\n",
                static_cast<unsigned long long>(interrupted_id),
                static_cast<unsigned long long>(mid.shots_done));
  }  // daemon destroyed mid-dispatch

  std::printf("== life 2: fresh daemon, same data-dir\n");
  auto daemon = start_daemon(data_dir, &clock);
  if (daemon == nullptr) return 1;
  net::HttpClient authed(daemon->port());
  authed.set_default_header("X-Session-Token", token);

  // Old token still authenticates; the finished result is re-served.
  auto replayed =
      authed.get("/v1/jobs/" + std::to_string(done_id) + "/result");
  std::printf("   old token + completed result: HTTP %d, %llu shots\n",
              replayed.value().status,
              static_cast<unsigned long long>(
                  quantum::Samples::from_json(
                      common::Json::parse(replayed.value().body).value())
                      .value()
                      .total_shots()));

  // The interrupted job finishes its remaining shots — no loss, no dupes.
  auto samples =
      daemon->dispatcher().wait(interrupted_id, 120 * common::kSecond);
  if (!samples.ok()) {
    std::printf("   interrupted job failed: %s\n",
                samples.error().to_string().c_str());
    return 1;
  }
  std::printf("   interrupted job finished with exactly %llu/2000 shots\n",
              static_cast<unsigned long long>(samples.value().total_shots()));

  net::HttpClient admin(daemon->port());
  admin.set_default_header("X-Admin-Key", "admin-key");
  auto store = admin.get("/admin/store");
  std::printf("   /admin/store: %s\n", store.value().body.c_str());
  return samples.value().total_shots() == 2000 ? 0 : 1;
}
