// Multi-SDK demo (§2.3.1): the same 4-qubit GHZ experiment written in all
// three SDK front-ends, all executing through the SAME QRMI resource — the
// "coherent multi-SDK execution environment" the paper advocates.
//
// pulser has no gates, so its GHZ analogue is the collectively blockaded
// superposition (|0000> + W-like states); we use it to show a genuinely
// analog program flowing through the identical runtime path instead.
#include <cstdio>
#include <numbers>

#include "qrmi/local_emulator.hpp"
#include "sdk/kernelq.hpp"
#include "sdk/pulser.hpp"
#include "sdk/qgate.hpp"

using namespace qcenv;

namespace {
void print_top(const quantum::Samples& samples, const char* label) {
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [bits, count] : samples.counts()) {
    ranked.emplace_back(count, bits);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("%-28s", label);
  for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
    std::printf("  %s:%.2f", ranked[i].second.c_str(),
                static_cast<double>(ranked[i].first) /
                    static_cast<double>(samples.total_shots()));
  }
  std::printf("\n");
}
}  // namespace

int main() {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  std::printf("resource: %s (%s)\n\n", resource->resource_id().c_str(),
              resource->metadata().at_or_null("backend").as_string().c_str());
  constexpr std::uint64_t kShots = 4000;

  // --- SDK 1: qgate (Qiskit-style circuits + transpiler) -------------------
  auto qgate_payload =
      sdk::qgate::to_payload(sdk::qgate::ghz(4), kShots, true).value();
  auto from_qgate = resource->run_sync(qgate_payload).value();

  // --- SDK 2: kernelq (CUDA-Q-style kernels) --------------------------------
  sdk::kernelq::Kernel kernel(4);
  const auto& q = kernel.qubits();
  kernel.h(q[0]).cx(q[0], q[1]).cx(q[1], q[2]).cx(q[2], q[3]);
  auto from_kernelq = sdk::kernelq::sample(kernel, kShots, *resource).value();

  // --- SDK 3: pulser (analog sequences) -------------------------------------
  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::square_lattice(2, 2, 5.0),
      quantum::DeviceSpec::analog_default());
  (void)builder.declare_channel("g",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  // Collective pi pulse on a fully blockaded 2x2 plaquette: one shared
  // excitation, enhanced Rabi frequency sqrt(4)*Omega.
  const double omega = 2.0 * std::numbers::pi;
  const double t_pi_us = std::numbers::pi / (2.0 * omega);  // sqrt(4)=2
  (void)builder.add(
      sdk::pulser::constant_pulse(
          static_cast<quantum::DurationNsQ>(t_pi_us * 1e3), omega, 0.0, 0.0),
      "g");
  auto from_pulser =
      resource->run_sync(builder.to_payload(kShots).value()).value();

  // --- Compare ---------------------------------------------------------------
  std::printf("digital GHZ through two SDKs (identical distribution):\n");
  print_top(from_qgate, "  qgate (transpiled to CZ)");
  print_top(from_kernelq, "  kernelq (CX kernels)");
  const double tv = quantum::Samples::total_variation_distance(from_qgate,
                                                               from_kernelq);
  std::printf("  total-variation distance: %.3f (sampling noise scale: %.3f)\n",
              tv, 1.0 / std::sqrt(static_cast<double>(kShots)));

  std::printf("\nanalog program through the same resource:\n");
  print_top(from_pulser, "  pulser (blockaded pi)");
  const double single_excitation =
      from_pulser.probability("1000") + from_pulser.probability("0100") +
      from_pulser.probability("0010") + from_pulser.probability("0001");
  std::printf("  P(exactly one excitation) = %.3f (blockade: expect ~1)\n",
              single_excitation);

  std::printf(
      "\nAll three SDKs lowered to the same payload format and ran through\n"
      "one QRMI resource — no per-SDK integration on the hosting side.\n");
  return tv < 0.1 && single_excitation > 0.9 ? 0 : 1;
}
