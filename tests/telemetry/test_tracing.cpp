// Job tracing (TraceStore), the structured event log, and the lock-free
// striped histogram behind the per-stage latency metrics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::telemetry {
namespace {

using common::kSecond;

TEST(TraceStoreTest, EagerLifecycleIsWellNested) {
  TraceStore store(64, 4);
  const TraceId id = store.begin(0, "alice", "admission");
  ASSERT_NE(id, 0u);
  store.bind_job(id, 42);
  auto closed = store.enter(id, 2, "queue_wait", "shard=1");
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->stage, "admission");
  EXPECT_EQ(closed->duration, 2);
  (void)store.enter(id, 5, "qrmi_execute");
  store.child(id, "qrmi_poll", 6, 8, "polls=3");
  store.annotate(id, 9, "note");
  auto last = store.finish(id, 10);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->stage, "qrmi_execute");

  const auto trace = store.find(id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->job_id, 42u);
  EXPECT_EQ(trace->user, "alice");
  EXPECT_EQ(trace->finish, 10);
  ASSERT_EQ(trace->notes.size(), 1u);
  EXPECT_EQ(trace_nesting_error(*trace), "");
}

TEST(TraceStoreTest, DeferredMaterializationBuildsSubmitTimeline) {
  TraceStore store(64, 4);
  const TraceId id = store.allocate();
  ASSERT_NE(id, 0u);
  // Nothing exists until materialization — the hot path only allocated.
  EXPECT_FALSE(store.find(id).has_value());
  store.materialize_submit(id, 7, "bob", /*admission_start=*/10,
                           /*journal_start=*/13, /*queue_start=*/19,
                           "shard=2");
  const auto trace = store.find(id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->job_id, 7u);
  ASSERT_EQ(trace->spans.size(), 3u);
  EXPECT_EQ(trace->spans[0].stage, "admission");
  EXPECT_EQ(trace->spans[0].start, 10);
  EXPECT_EQ(trace->spans[0].end, 13);
  EXPECT_EQ(trace->spans[1].stage, "journal_append");
  EXPECT_EQ(trace->spans[1].end, 19);
  EXPECT_EQ(trace->spans[2].stage, "queue_wait");
  EXPECT_EQ(trace->spans[2].end, -1);  // still open
  // Finishing closes the open queue_wait and yields a well-nested tree.
  (void)store.finish(id, 25);
  EXPECT_EQ(trace_nesting_error(*store.find(id)), "");
}

TEST(TraceStoreTest, MaterializeWithoutStoreSkipsJournalStage) {
  TraceStore store(64, 4);
  const TraceId id = store.allocate();
  store.materialize_submit(id, 1, "carol", 10, /*journal_start=*/-1, 15, "");
  const auto trace = store.find(id);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_EQ(trace->spans[0].stage, "admission");
  EXPECT_EQ(trace->spans[0].end, 15);
  EXPECT_EQ(trace->spans[1].stage, "queue_wait");
}

TEST(TraceStoreTest, RejectedSubmissionIsFinishedAdmissionOnly) {
  TraceStore store(64, 4);
  const TraceId id = store.allocate();
  store.record_rejected(id, "dave", 5, 9);
  const auto trace = store.find(id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->finish, 9);
  ASSERT_EQ(trace->spans.size(), 1u);
  EXPECT_EQ(trace->spans[0].stage, "admission");
  EXPECT_EQ(trace_nesting_error(*trace), "");
}

TEST(TraceStoreTest, RingEvictsOldestAndNeverResurrectsIt) {
  // 1 shard x 2 slots: the third trace reuses the first trace's slot.
  TraceStore store(2, 1);
  const TraceId a = store.begin(0, "u", "admission");
  const TraceId b = store.begin(1, "u", "admission");
  const TraceId c = store.begin(2, "u", "admission");
  EXPECT_FALSE(store.find(a).has_value());  // evicted by c
  EXPECT_TRUE(store.find(b).has_value());
  EXPECT_TRUE(store.find(c).has_value());
  // Operations on the evicted trace must not corrupt the slot's new owner.
  (void)store.enter(a, 3, "queue_wait");
  store.materialize_submit(a, 9, "u", 0, -1, 1, "");
  const auto current = store.find(c);
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->trace_id, c);
  ASSERT_EQ(current->spans.size(), 1u);
  EXPECT_EQ(current->spans[0].stage, "admission");
}

TEST(TraceStoreTest, NestingValidatorFlagsBrokenTimelines) {
  TraceStore store(64, 4);
  const TraceId open = store.begin(0, "u", "admission");
  const auto unfinished = store.find(open);
  ASSERT_TRUE(unfinished.has_value());
  EXPECT_NE(trace_nesting_error(*unfinished), "");

  // A gap between stages breaks the partition property.
  JobTrace gapped;
  gapped.trace_id = 1;
  gapped.start = 0;
  gapped.finish = 10;
  gapped.spans.push_back(TraceSpan{"admission", "", 0, 4, 0});
  gapped.spans.push_back(TraceSpan{"queue_wait", "", 6, 10, 0});
  EXPECT_NE(trace_nesting_error(gapped), "");

  // A child outside every top-level span is flagged.
  JobTrace stray;
  stray.trace_id = 2;
  stray.start = 0;
  stray.finish = 10;
  stray.spans.push_back(TraceSpan{"admission", "", 0, 10, 0});
  stray.spans.push_back(TraceSpan{"qrmi_poll", "", 8, 20, 1});
  EXPECT_NE(trace_nesting_error(stray), "");
}

TEST(TraceStoreTest, JsonCarriesSpansNotesAndDuration) {
  TraceStore store(64, 4);
  const TraceId id = store.begin(0, "erin", "admission");
  store.annotate(id, 1, "failover: emu0 -> emu1");
  (void)store.finish(id, 4);
  const auto json = TraceStore::to_json(*store.find(id));
  EXPECT_EQ(json.at_or_null("user").as_string(), "erin");
  EXPECT_EQ(json.at_or_null("duration_ns").as_int(), 4);
  EXPECT_EQ(json.at_or_null("spans").size(), 1u);
  EXPECT_EQ(json.at_or_null("notes").size(), 1u);
}

TEST(EventLogTest, SinceTailsOnlyUnseenEvents) {
  EventLog log(16);
  const auto first = log.log(0, Severity::kInfo, "job_submitted", "m", "u", 1);
  (void)log.log(1, Severity::kWarn, "failover", "m2", "u", 1);
  const auto events = log.since(first);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "failover");
  EXPECT_EQ(log.since(log.last_seq()).size(), 0u);
}

TEST(EventLogTest, RingDropsOldestButKeepsSequenceNumbers) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    (void)log.log(i, Severity::kInfo, "k", std::to_string(i));
  }
  const auto events = log.since(0, 100);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().message, "6");  // oldest surviving
  EXPECT_EQ(events.back().seq, log.last_seq());
}

TEST(StripedHistogramTest, ConcurrentObservationsMergeExactly) {
  MetricsRegistry registry;
  auto& hist = registry.histogram("stage_seconds", {0.001, 0.1, 1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.observe(0.01);
    });
  }
  for (auto& thread : threads) thread.join();
  const auto merged = hist.snapshot();
  EXPECT_EQ(merged.count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_NEAR(merged.sum(), 0.01 * kThreads * kPerThread, 1e-6);
  // The merged snapshot reaches Prometheus exposition with cumulative
  // buckets: everything landed in le="0.1" and above.
  const std::string text = registry.expose();
  EXPECT_NE(text.find("stage_seconds_bucket{le=\"0.001\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{le=\"0.1\"} 8000"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{le=\"+Inf\"} 8000"),
            std::string::npos);
}

}  // namespace
}  // namespace qcenv::telemetry
