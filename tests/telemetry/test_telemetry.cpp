// Metrics registry, Prometheus exposition, TSDB, drift detection, alerts,
// collector and dashboard.
#include <gtest/gtest.h>

#include "qpu/qpu_device.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {
namespace {

using common::kSecond;

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  auto& counter = registry.counter("jobs_total", {{"class", "prod"}});
  counter.increment();
  counter.increment(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
  // Same name+labels returns the same instance.
  EXPECT_DOUBLE_EQ(registry.counter("jobs_total", {{"class", "prod"}}).value(),
                   3.5);
  // Different labels are distinct series.
  EXPECT_DOUBLE_EQ(registry.counter("jobs_total", {{"class", "dev"}}).value(),
                   0.0);
}

TEST(Metrics, GaugeSetsAndAdds) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("queue_depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_DOUBLE_EQ(gauge.value(), 7);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"method", "GET"}}, "total requests")
      .increment(5);
  registry.gauge("temperature", {}, "device temp").set(1.5);
  auto& h = registry.histogram("latency_seconds", {0.1, 1.0}, {}, "latency");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{method=\"GET\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# HELP temperature device temp"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos);
}

TEST(Metrics, CollectFlattensSamples) {
  MetricsRegistry registry;
  registry.counter("a").increment();
  registry.gauge("b", {{"x", "1"}}).set(2);
  registry.histogram("c", {1.0}).observe(0.5);
  const auto samples = registry.collect();
  // a, b, c_count, c_sum, and one c_bucket per le (1, +Inf).
  EXPECT_EQ(samples.size(), 6u);
  bool saw_bucket = false;
  for (const auto& sample : samples) {
    if (sample.name == "c_bucket" && sample.labels.count("le") > 0) {
      saw_bucket = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);  // cumulative: 0.5 <= every le
    }
  }
  EXPECT_TRUE(saw_bucket);
}

TEST(Metrics, LabelFormatting) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
}

TEST(Tsdb, WriteAndQueryRange) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"qpu_fidelity", {{"device", "fresnel"}}};
  for (int i = 0; i < 10; ++i) {
    tsdb.write(key, Point{i * kSecond, static_cast<double>(i)});
  }
  const auto points = tsdb.query_range(key, 3 * kSecond, 6 * kSecond);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().value, 3.0);
  EXPECT_DOUBLE_EQ(tsdb.last(key).value().value, 9.0);
}

TEST(Tsdb, OutOfOrderWritesAreSorted) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  tsdb.write(key, Point{100, 1});
  tsdb.write(key, Point{50, 2});
  tsdb.write(key, Point{75, 3});
  const auto points = tsdb.query_range(key, 0, 200);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].time, 50);
  EXPECT_EQ(points[1].time, 75);
  EXPECT_EQ(points[2].time, 100);
}

TEST(Tsdb, RetentionDropsOldest) {
  TimeSeriesDb tsdb(5);
  const SeriesKey key{"m", {}};
  for (int i = 0; i < 10; ++i) tsdb.write(key, Point{i, 1.0 * i});
  EXPECT_EQ(tsdb.point_count(key), 5u);
  const auto points = tsdb.query_range(key, 0, 100);
  EXPECT_EQ(points.front().time, 5);
}

TEST(Tsdb, LineProtocolRoundTrip) {
  TimeSeriesDb tsdb;
  ASSERT_TRUE(
      tsdb.write_line("qpu_rabi,device=fresnel value=0.98 123456789").ok());
  const SeriesKey key{"qpu_rabi", {{"device", "fresnel"}}};
  ASSERT_EQ(tsdb.point_count(key), 1u);
  auto dump = tsdb.dump_series(key);
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump.value(),
            "qpu_rabi,device=fresnel value=0.98 123456789\n");
}

TEST(Tsdb, LineProtocolErrors) {
  TimeSeriesDb tsdb;
  EXPECT_FALSE(tsdb.write_line("too few").ok());
  EXPECT_FALSE(tsdb.write_line("m novalue=1 123").ok());
  EXPECT_FALSE(tsdb.write_line("m value=abc 123").ok());
  EXPECT_FALSE(tsdb.write_line("m value=1 notatime").ok());
  EXPECT_FALSE(tsdb.write_line(",tag=1 value=1 5").ok());
}

TEST(Tsdb, WindowedAggregation) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  // Two points per 10s window: values (0,1), (2,3), ...
  for (int i = 0; i < 8; ++i) {
    tsdb.write(key, Point{i * 5 * kSecond, static_cast<double>(i)});
  }
  const auto mean =
      tsdb.aggregate(key, 0, 40 * kSecond, 10 * kSecond, Aggregation::kMean);
  ASSERT_EQ(mean.size(), 4u);
  EXPECT_DOUBLE_EQ(mean[0].value, 0.5);
  EXPECT_DOUBLE_EQ(mean[3].value, 6.5);
  const auto maxes =
      tsdb.aggregate(key, 0, 40 * kSecond, 10 * kSecond, Aggregation::kMax);
  EXPECT_DOUBLE_EQ(maxes[1].value, 3.0);
  const auto counts =
      tsdb.aggregate(key, 0, 40 * kSecond, 10 * kSecond, Aggregation::kCount);
  EXPECT_DOUBLE_EQ(counts[2].value, 2.0);
}

TEST(Drift, EwmaDetectsLevelShift) {
  EwmaDetector detector(0.3, 4.0, 30);
  common::Rng rng(5);
  // Stable baseline.
  for (int i = 0; i < 60; ++i) {
    EXPECT_FALSE(detector.update(1.0 + 0.01 * rng.normal()).has_value());
  }
  // Shifted regime: must fire within a few samples.
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = detector.update(1.2 + 0.01 * rng.normal()).has_value();
  }
  EXPECT_TRUE(fired);
}

TEST(Drift, EwmaLowFalsePositiveRate) {
  common::Rng rng(11);
  int false_positives = 0;
  for (int trial = 0; trial < 50; ++trial) {
    EwmaDetector detector(0.2, 4.0, 30);
    for (int i = 0; i < 300; ++i) {
      if (detector.update(5.0 + 0.1 * rng.normal()).has_value()) {
        ++false_positives;
        break;
      }
    }
  }
  EXPECT_LE(false_positives, 3);  // <= ~6% of stationary runs
}

TEST(Drift, CusumCatchesSlowDrift) {
  CusumDetector detector(0.5, 5.0, 30);
  common::Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    (void)detector.update(1.0 + 0.05 * rng.normal());
  }
  // Slow upward creep of 0.5 sigma per step equivalent.
  bool fired = false;
  int steps = 0;
  for (int i = 0; i < 100 && !fired; ++i, ++steps) {
    fired = detector
                .update(1.0 + 0.002 * i * 20 + 0.05 * rng.normal())
                .has_value();
  }
  EXPECT_TRUE(fired);
  EXPECT_LT(steps, 60);
}

TEST(Drift, ResetClearsState) {
  EwmaDetector detector(0.3, 3.0, 5);
  for (int i = 0; i < 10; ++i) (void)detector.update(1.0);
  detector.reset();
  EXPECT_FALSE(detector.warmed_up());
}

TEST(Alerts, ManagerFiresAndNotifies) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"qpu_dephasing", {}};
  AlertManager manager;
  AlertRule rule;
  rule.name = "dephasing-drift";
  rule.series = key;
  rule.severity = AlertSeverity::kCritical;
  rule.detector = EwmaDetector(0.3, 4.0, 20);
  manager.add_rule(std::move(rule));
  int notified = 0;
  manager.add_sink([&](const AlertRecord& alert) {
    ++notified;
    EXPECT_EQ(alert.rule, "dephasing-drift");
    EXPECT_EQ(alert.severity, AlertSeverity::kCritical);
  });

  common::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    tsdb.write(key, Point{i * kSecond, 0.008 + 0.0001 * rng.normal()});
  }
  EXPECT_TRUE(manager.evaluate(tsdb, 40 * kSecond).empty());
  for (int i = 40; i < 60; ++i) {
    tsdb.write(key, Point{i * kSecond, 0.02 + 0.0001 * rng.normal()});
  }
  const auto fired = manager.evaluate(tsdb, 60 * kSecond);
  EXPECT_FALSE(fired.empty());
  EXPECT_GT(notified, 0);
  // The shifted regime keeps the detector alarming, so the alert stays
  // active rather than resolving into history.
  EXPECT_FALSE(manager.active().empty());
  EXPECT_EQ(manager.active().front().fired_at % kSecond, 0);
}

TEST(Alerts, HighWaterMarkAvoidsReprocessing) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  AlertManager manager;
  AlertRule rule;
  rule.name = "r";
  rule.series = key;
  rule.detector = CusumDetector(0.5, 5.0, 5);
  manager.add_rule(std::move(rule));
  for (int i = 0; i < 10; ++i) tsdb.write(key, Point{i, 1.0});
  (void)manager.evaluate(tsdb, 10);
  // Re-evaluating without new data must feed nothing new.
  EXPECT_TRUE(manager.evaluate(tsdb, 11).empty());
}

TEST(CollectorTest, ScrapesRegistryIntoTsdb) {
  MetricsRegistry registry;
  TimeSeriesDb tsdb;
  common::ManualClock clock(5 * kSecond);
  MetricsCollector collector(&registry, &tsdb, &clock);
  registry.gauge("qpu_fidelity", {{"device", "d"}}).set(0.99);
  EXPECT_EQ(collector.scrape_at(5 * kSecond), 1u);
  const SeriesKey key{"qpu_fidelity", {{"device", "d"}}};
  ASSERT_EQ(tsdb.point_count(key), 1u);
  EXPECT_EQ(tsdb.last(key).value().time, 5 * kSecond);
  EXPECT_DOUBLE_EQ(tsdb.last(key).value().value, 0.99);
}

TEST(CollectorTest, GridDeadlinesAndCatchUpPolicy) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.0);
  common::ManualClock clock(0);
  const SeriesKey key{"g", {}};

  // Production policy: several overdue deadlines collapse to the newest.
  {
    TimeSeriesDb tsdb;
    MetricsCollector collector(&registry, &tsdb, &clock,
                               {.interval = kSecond});
    EXPECT_EQ(collector.next_deadline(), kSecond);
    EXPECT_GT(collector.run_pending(5 * kSecond + 1), 0u);
    EXPECT_EQ(tsdb.point_count(key), 1u);
    EXPECT_EQ(tsdb.last(key).value().time, 5 * kSecond);
    EXPECT_EQ(collector.missed_count(), 4u);
  }

  // Simulation policy: every deadline is scraped, stamped on the grid.
  {
    TimeSeriesDb tsdb;
    MetricsCollector collector(
        &registry, &tsdb, &clock,
        {.interval = kSecond, .scrape_all_overdue = true});
    EXPECT_GT(collector.run_pending(5 * kSecond + 1), 0u);
    const auto points = tsdb.query_range(key, 0, 10 * kSecond);
    ASSERT_EQ(points.size(), 5u);
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(points[i].time, static_cast<common::TimeNs>(i + 1) * kSecond);
    }
    EXPECT_EQ(collector.missed_count(), 0u);
  }
}

TEST(CollectorTest, StallWindowDropsScrapes) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.0);
  common::ManualClock clock(0);
  TimeSeriesDb tsdb;
  MetricsCollector collector(
      &registry, &tsdb, &clock,
      {.interval = kSecond, .scrape_all_overdue = true});
  collector.stall_until(3 * kSecond);
  (void)collector.run_pending(5 * kSecond);
  const auto points = tsdb.query_range(SeriesKey{"g", {}}, 0, 10 * kSecond);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points.front().time, 4 * kSecond);
  EXPECT_EQ(collector.missed_count(), 3u);
}

TEST(CollectorTest, SamplersRunAtTheGridStamp) {
  common::ManualClock clock(0);
  TimeSeriesDb tsdb;
  MetricsCollector collector(nullptr, &tsdb, &clock, {.interval = kSecond});
  collector.add_sampler([](common::TimeNs at, TimeSeriesDb& db) {
    db.write("sampled", {}, at, 42.0);
  });
  (void)collector.run_pending(kSecond);
  const auto last = tsdb.last(SeriesKey{"sampled", {}});
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time, kSecond);
  EXPECT_DOUBLE_EQ(last->value, 42.0);
}

TEST(QpuTelemetrySourceTest, PublishesDeviceState) {
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  qpu::QpuDevice device(options, &clock);
  MetricsRegistry registry;
  QpuTelemetrySource source(&device, &registry);
  source.update();
  const auto samples = registry.collect();
  bool found_fidelity = false;
  for (const auto& sample : samples) {
    if (sample.name == "qpu_fidelity_estimate") {
      found_fidelity = true;
      EXPECT_GT(sample.value, 0.5);
    }
  }
  EXPECT_TRUE(found_fidelity);
}

TEST(DashboardTest, RendersSparklines) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  for (int i = 0; i < 60; ++i) {
    tsdb.write(key, Point{i * kSecond, std::sin(i * 0.2)});
  }
  Dashboard dashboard(&tsdb);
  dashboard.add_panel(Panel{"sine wave", key, 30});
  const std::string out = dashboard.render(0, 60 * kSecond);
  EXPECT_NE(out.find("sine wave"), std::string::npos);
  EXPECT_NE(out.find("min="), std::string::npos);
  // Sparkline glyphs present.
  EXPECT_NE(out.find("█"), std::string::npos);
}

TEST(DashboardTest, EmptySeriesSaysNoData) {
  TimeSeriesDb tsdb;
  Dashboard dashboard(&tsdb);
  dashboard.add_panel(Panel{"empty", SeriesKey{"none", {}}, 10});
  EXPECT_NE(dashboard.render(0, kSecond).find("(no data)"),
            std::string::npos);
}

TEST(SparklineTest, MapsRange) {
  const std::string line = sparkline({0.0, 0.5, 1.0});
  EXPECT_EQ(line, "▁▅█");
  EXPECT_EQ(sparkline({}), "");
  // Constant series sits mid-scale.
  EXPECT_EQ(sparkline({2.0, 2.0}), "▅▅");
}

}  // namespace
}  // namespace qcenv::telemetry
