// collapse_trace self-time semantics, byte-stable collapsed text and the
// CriticalPathProfiler window/baseline/regression machinery — all driven
// with hand-built traces (the explain layer has no daemon dependencies).
#include <gtest/gtest.h>

#include <string>

#include "telemetry/explain.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::telemetry {
namespace {

TraceSpan span(std::string stage, common::TimeNs start, common::TimeNs end,
               int depth = 0, std::string detail = "") {
  TraceSpan out;
  out.stage = std::move(stage);
  out.detail = std::move(detail);
  out.start = start;
  out.end = end;
  out.depth = depth;
  return out;
}

/// The canonical pipeline shape: three top-level stages and one nested
/// poll loop inside the execute stage.
JobTrace pipeline_trace(std::uint64_t job_id, std::string user,
                        common::TimeNs base, std::string resource = "emu0") {
  JobTrace trace;
  trace.trace_id = job_id;
  trace.job_id = job_id;
  trace.user = std::move(user);
  trace.start = base;
  trace.finish = base + 1000;
  trace.spans.push_back(span("admission", base, base + 100));
  trace.spans.push_back(span("queue_wait", base + 100, base + 400));
  trace.spans.push_back(
      span("qrmi_execute", base + 400, base + 1000, 0, resource));
  trace.spans.push_back(span("qrmi_poll", base + 500, base + 800, 1));
  return trace;
}

TEST(CollapseTraceTest, SelfTimesSumToTraceTotal) {
  const auto stacks = collapse_trace(pipeline_trace(1, "alice", 0));
  ASSERT_EQ(stacks.size(), 4u);
  EXPECT_EQ(stacks.at("admission"), 100u);
  EXPECT_EQ(stacks.at("queue_wait"), 300u);
  // The execute frame's value is SELF time: 600 total minus the 300ns
  // nested poll loop.
  EXPECT_EQ(stacks.at("qrmi_execute"), 300u);
  EXPECT_EQ(stacks.at("qrmi_execute;qrmi_poll"), 300u);
  std::uint64_t total = 0;
  for (const auto& [_, value] : stacks) total += value;
  EXPECT_EQ(total, 1000u);  // flamegraph invariant: stacks sum to the trace
}

TEST(CollapseTraceTest, SkipsOpenAndCorruptSpans) {
  JobTrace trace;
  trace.user = "bob";
  trace.start = 0;
  trace.spans.push_back(span("admission", 0, 50));
  trace.spans.push_back(span("queue_wait", 50, -1));  // still open
  trace.spans.push_back(span("bogus", 90, 10));       // end < start
  const auto stacks = collapse_trace(trace);
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks.at("admission"), 50u);
}

TEST(CollapseTraceTest, UnsortedInputStillNestsByInterval) {
  // Spans arrive in store order, not time order; collapse sorts by
  // (start, depth) before reconstructing the tree.
  JobTrace trace;
  trace.user = "carol";
  trace.spans.push_back(span("qrmi_poll", 30, 40, 1));
  trace.spans.push_back(span("qrmi_execute", 20, 60));
  trace.spans.push_back(span("admission", 0, 20));
  const auto stacks = collapse_trace(trace);
  EXPECT_EQ(stacks.at("admission"), 20u);
  EXPECT_EQ(stacks.at("qrmi_execute"), 30u);
  EXPECT_EQ(stacks.at("qrmi_execute;qrmi_poll"), 10u);
}

TEST(CollapseTraceTest, CollapsedTextIsSortedAndByteStable) {
  const auto stacks = collapse_trace(pipeline_trace(1, "alice", 0));
  const std::string text = to_collapsed_text(stacks);
  EXPECT_EQ(text,
            "admission 100\n"
            "qrmi_execute 300\n"
            "qrmi_execute;qrmi_poll 300\n"
            "queue_wait 300\n");
  // Same trace content, different construction order: identical bytes.
  EXPECT_EQ(text, to_collapsed_text(collapse_trace(pipeline_trace(7, "x", 0))));
}

TEST(ExplainReportTest, JsonCarriesCauseSum) {
  ExplainReport report;
  report.job_id = 42;
  report.user = "alice";
  report.state = "completed";
  report.observed_wait = 300;
  report.wait_closed = true;
  report.causes.push_back(WaitCause{"resource_drain", 120, "emu0 down"});
  report.causes.push_back(WaitCause{"queue_depth", 180, ""});
  const auto json = report.to_json();
  EXPECT_EQ(json.at_or_null("observed_wait_ns").as_int(), 300);
  EXPECT_EQ(json.at_or_null("causes_total_ns").as_int(), 300);
  EXPECT_EQ(json.at_or_null("causes").as_array().size(), 2u);
}

TEST(CriticalPathProfilerTest, ViewFiltersByFinishWindow) {
  CriticalPathProfiler profiler;
  profiler.add(pipeline_trace(1, "alice", 0));       // finishes at 1000
  profiler.add(pipeline_trace(2, "bob", 5000));      // finishes at 6000
  profiler.add(pipeline_trace(3, "alice", 9000));    // finishes at 10000
  EXPECT_EQ(profiler.size(), 3u);

  const auto all = profiler.view(0, 10000);
  EXPECT_EQ(all.jobs, 3u);
  EXPECT_EQ(all.stacks.at("queue_wait"), 900u);
  EXPECT_EQ(all.by_user.at("alice").at("queue_wait"), 600u);
  EXPECT_EQ(all.by_user.at("bob").at("queue_wait"), 300u);
  EXPECT_EQ(all.by_resource.at("emu0").at("admission"), 300u);

  const auto mid = profiler.view(2000, 7000);
  EXPECT_EQ(mid.jobs, 1u);
  EXPECT_EQ(mid.stacks.at("admission"), 100u);
  EXPECT_EQ(mid.by_user.count("alice"), 0u);
}

TEST(CriticalPathProfilerTest, ResourceAttributionFallsBackToDispatch) {
  JobTrace trace;
  trace.user = "dave";
  trace.start = 0;
  trace.finish = 100;
  trace.spans.push_back(span("shard_dispatch", 0, 100, 0, "lane3"));
  CriticalPathProfiler profiler;
  profiler.add(trace);
  const auto view = profiler.view(0, 100);
  EXPECT_EQ(view.by_resource.count("lane3"), 1u);

  // No execute/dispatch detail at all -> the "(none)" bucket.
  JobTrace bare;
  bare.user = "dave";
  bare.finish = 200;
  bare.spans.push_back(span("admission", 150, 200));
  profiler.add(bare);
  EXPECT_EQ(profiler.view(0, 200).by_resource.count("(none)"), 1u);
}

TEST(CriticalPathProfilerTest, CapacityEvictsOldestSamples) {
  CriticalPathProfiler profiler(2);
  profiler.add(pipeline_trace(1, "alice", 0));
  profiler.add(pipeline_trace(2, "alice", 2000));
  profiler.add(pipeline_trace(3, "alice", 4000));
  EXPECT_EQ(profiler.size(), 2u);
  EXPECT_EQ(profiler.view(0, 1000).jobs, 0u);  // the oldest was evicted
  EXPECT_EQ(profiler.view(0, 5000).jobs, 2u);
}

TEST(CriticalPathProfilerTest, RegressionsCompareSharesAgainstBaseline) {
  CriticalPathProfiler profiler;
  EXPECT_FALSE(profiler.has_baseline());
  EXPECT_TRUE(profiler.regressions(0, 1000, 0.0).empty());

  profiler.add(pipeline_trace(1, "alice", 0));  // queue_wait share = 30%
  profiler.record_baseline(0, 1000);
  EXPECT_TRUE(profiler.has_baseline());
  // The baseline window itself never regresses against itself.
  EXPECT_TRUE(profiler.regressions(0, 1000, 0.01).empty());

  // A later job whose queue_wait balloons: 900 of 1000ns total.
  JobTrace slow;
  slow.trace_id = 9;
  slow.user = "alice";
  slow.start = 5000;
  slow.finish = 6000;
  slow.spans.push_back(span("admission", 5000, 5050));
  slow.spans.push_back(span("queue_wait", 5050, 5950));
  slow.spans.push_back(span("qrmi_execute", 5950, 6000, 0, "emu0"));
  profiler.add(slow);

  const auto found = profiler.regressions(4000, 7000, 0.05);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found.front().stack, "queue_wait");
  EXPECT_NEAR(found.front().baseline_share, 0.30, 1e-9);
  EXPECT_NEAR(found.front().current_share, 0.90, 1e-9);
  // Tight thresholds surface more stacks, sorted by delta descending.
  const auto loose = profiler.regressions(4000, 7000, 0.5);
  EXPECT_LE(loose.size(), found.size());
}

}  // namespace
}  // namespace qcenv::telemetry
