// TimeSeriesDb contract tests: line-protocol round-trips, retention
// eviction order, and windowed-aggregation edge cases (the parts the
// scrape loop and /admin/tsdb endpoints lean on).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/strings.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {
namespace {

using common::kSecond;
using common::TimeNs;

TEST(SeriesKeyTest, ToStringSortsTags) {
  SeriesKey key{"qpu_fidelity", {{"zone", "b"}, {"device", "fresnel"}}};
  // Tags is a std::map — serialization is sorted regardless of insert order.
  EXPECT_EQ(key.to_string(), "qpu_fidelity,device=fresnel,zone=b");
}

TEST(SeriesKeyTest, ParseIsInverseOfToString) {
  SeriesKey key{"queue_wait", {{"lane", "emu0"}, {"user", "alice"}}};
  auto parsed = SeriesKey::parse(key.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), key);

  auto bare = SeriesKey::parse("uptime");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().measurement, "uptime");
  EXPECT_TRUE(bare.value().tags.empty());
}

TEST(SeriesKeyTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(SeriesKey::parse("").ok());
  EXPECT_FALSE(SeriesKey::parse(",device=x").ok());     // empty measurement
  EXPECT_FALSE(SeriesKey::parse("m,no_equals").ok());   // tag without '='
}

TEST(TsdbLineProtocolTest, WriteLineParsesAllSections) {
  TimeSeriesDb tsdb;
  ASSERT_TRUE(
      tsdb.write_line("fidelity,device=fresnel value=0.93 5000000000").ok());
  const SeriesKey key{"fidelity", {{"device", "fresnel"}}};
  const auto point = tsdb.last(key);
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(point->time, 5 * kSecond);
  EXPECT_DOUBLE_EQ(point->value, 0.93);
}

TEST(TsdbLineProtocolTest, WriteLineRejectsMalformedLines) {
  TimeSeriesDb tsdb;
  EXPECT_FALSE(tsdb.write_line("").ok());
  EXPECT_FALSE(tsdb.write_line("m value=1").ok());          // no timestamp
  EXPECT_FALSE(tsdb.write_line("m value=1 2 3").ok());      // extra section
  EXPECT_FALSE(tsdb.write_line("m field=1 100").ok());      // not value=
  EXPECT_FALSE(tsdb.write_line("m value=abc 100").ok());    // bad number
  EXPECT_FALSE(tsdb.write_line("m value=1.5x 100").ok());   // trailing junk
  EXPECT_FALSE(tsdb.write_line("m value=1 10s").ok());      // bad timestamp
  EXPECT_FALSE(tsdb.write_line(",lane=a value=1 100").ok());
  // Nothing partial was committed.
  EXPECT_TRUE(tsdb.series().empty());
}

TEST(TsdbLineProtocolTest, DumpAndReingestRoundTrips) {
  TimeSeriesDb source;
  const SeriesKey key{"queue_depth", {{"lane", "emu0"}, {"class", "prod"}}};
  for (int i = 0; i < 10; ++i) {
    source.write(key, Point{static_cast<TimeNs>(i) * kSecond, 0.5 * i});
  }
  auto dump = source.dump_series(key);
  ASSERT_TRUE(dump.ok());

  TimeSeriesDb copy;
  for (const auto& line : common::split(dump.value(), '\n')) {
    if (line.empty()) continue;
    ASSERT_TRUE(copy.write_line(line).ok()) << line;
  }
  const auto original = source.query_range(key, 0, 10 * kSecond);
  const auto restored = copy.query_range(key, 0, 10 * kSecond);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].time, original[i].time);
    EXPECT_DOUBLE_EQ(restored[i].value, original[i].value);
  }
  // Byte-level idempotence: dumping the re-ingested copy matches the dump.
  EXPECT_EQ(copy.dump_series(key).value(), dump.value());
}

TEST(TsdbLineProtocolTest, DumpUnknownSeriesIsNotFound) {
  TimeSeriesDb tsdb;
  EXPECT_FALSE(tsdb.dump_series(SeriesKey{"nope", {}}).ok());
}

TEST(TsdbRetentionTest, EvictsOldestFirst) {
  TimeSeriesDb tsdb(/*max_points_per_series=*/5);
  const SeriesKey key{"m", {}};
  for (int i = 1; i <= 8; ++i) {
    tsdb.write(key, Point{static_cast<TimeNs>(i) * kSecond, 1.0 * i});
  }
  EXPECT_EQ(tsdb.point_count(key), 5u);
  const auto points = tsdb.query_range(key, 0, 100 * kSecond);
  ASSERT_EQ(points.size(), 5u);
  // 1..3 were evicted; 4..8 survive in time order.
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].time, static_cast<TimeNs>(i + 4) * kSecond);
  }
}

TEST(TsdbRetentionTest, OutOfOrderWritesStaySortedAndEvictByTime) {
  TimeSeriesDb tsdb(/*max_points_per_series=*/3);
  const SeriesKey key{"m", {}};
  tsdb.write(key, Point{5 * kSecond, 5.0});
  tsdb.write(key, Point{9 * kSecond, 9.0});
  tsdb.write(key, Point{7 * kSecond, 7.0});  // insert-sorted into the middle
  tsdb.write(key, Point{3 * kSecond, 3.0});  // oldest — first eviction victim
  const auto points = tsdb.query_range(key, 0, 100 * kSecond);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].time, 5 * kSecond);
  EXPECT_EQ(points[1].time, 7 * kSecond);
  EXPECT_EQ(points[2].time, 9 * kSecond);
}

TEST(TsdbRetentionTest, RetentionIsPerSeries) {
  TimeSeriesDb tsdb(/*max_points_per_series=*/2);
  const SeriesKey a{"m", {{"lane", "a"}}};
  const SeriesKey b{"m", {{"lane", "b"}}};
  for (int i = 0; i < 4; ++i) {
    tsdb.write(a, Point{static_cast<TimeNs>(i), 1.0});
    tsdb.write(b, Point{static_cast<TimeNs>(i), 2.0});
  }
  EXPECT_EQ(tsdb.point_count(a), 2u);
  EXPECT_EQ(tsdb.point_count(b), 2u);
  EXPECT_EQ(tsdb.series().size(), 2u);
}

TEST(TsdbQueryTest, RangeIsInclusiveOnBothEnds) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  for (TimeNs t = 1; t <= 5; ++t) tsdb.write(key, Point{t * kSecond, 1.0});
  const auto points = tsdb.query_range(key, 2 * kSecond, 4 * kSecond);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.front().time, 2 * kSecond);
  EXPECT_EQ(points.back().time, 4 * kSecond);
  EXPECT_TRUE(tsdb.query_range(SeriesKey{"nope", {}}, 0, 10).empty());
}

class TsdbAggregateTest : public ::testing::Test {
 protected:
  // Points at t = 0s..9s with value = t-in-seconds.
  void SetUp() override {
    for (TimeNs t = 0; t < 10; ++t) {
      tsdb_.write(key_, Point{t * kSecond, static_cast<double>(t)});
    }
  }
  TimeSeriesDb tsdb_;
  const SeriesKey key_{"m", {}};
};

TEST_F(TsdbAggregateTest, DegenerateInputsYieldNoWindows) {
  EXPECT_TRUE(tsdb_.aggregate(key_, 0, 10 * kSecond, 0,
                              Aggregation::kMean).empty());
  EXPECT_TRUE(tsdb_.aggregate(key_, 5 * kSecond, 5 * kSecond, kSecond,
                              Aggregation::kMean).empty());
  EXPECT_TRUE(tsdb_.aggregate(key_, 9 * kSecond, 2 * kSecond, kSecond,
                              Aggregation::kMean).empty());
}

TEST_F(TsdbAggregateTest, EmptySeriesStillShapesTheGrid) {
  const auto windows = tsdb_.aggregate(SeriesKey{"absent", {}}, 0,
                                       4 * kSecond, 2 * kSecond,
                                       Aggregation::kSum);
  ASSERT_EQ(windows.size(), 2u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.samples, 0u);
    EXPECT_DOUBLE_EQ(w.value, 0.0);
  }
  EXPECT_EQ(windows[0].window_start, 0);
  EXPECT_EQ(windows[1].window_start, 2 * kSecond);
}

TEST_F(TsdbAggregateTest, EndIsExclusive) {
  // [0s, 4s) with 2s windows: point at t=4s must NOT land in any window.
  const auto windows =
      tsdb_.aggregate(key_, 0, 4 * kSecond, 2 * kSecond, Aggregation::kCount);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].value, 2.0);  // t=0,1
  EXPECT_DOUBLE_EQ(windows[1].value, 2.0);  // t=2,3
}

TEST_F(TsdbAggregateTest, PartialTrailingWindowIsKept) {
  // [0s, 5s) with 2s windows -> 3 windows, the last covering only t=4.
  const auto windows =
      tsdb_.aggregate(key_, 0, 5 * kSecond, 2 * kSecond, Aggregation::kSum);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[2].window_start, 4 * kSecond);
  EXPECT_EQ(windows[2].samples, 1u);
  EXPECT_DOUBLE_EQ(windows[2].value, 4.0);
}

TEST_F(TsdbAggregateTest, SinglePointWindow) {
  const auto windows = tsdb_.aggregate(key_, 3 * kSecond, 4 * kSecond,
                                       kSecond, Aggregation::kMean);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].samples, 1u);
  EXPECT_DOUBLE_EQ(windows[0].value, 3.0);
}

TEST_F(TsdbAggregateTest, AllAggregationsAgreeOnTheSameWindow) {
  // One 4s window over t=2..5 (values 2,3,4,5).
  const auto one = [&](Aggregation agg) {
    const auto windows =
        tsdb_.aggregate(key_, 2 * kSecond, 6 * kSecond, 4 * kSecond, agg);
    EXPECT_EQ(windows.size(), 1u);
    return windows.at(0).value;
  };
  EXPECT_DOUBLE_EQ(one(Aggregation::kMean), 3.5);
  EXPECT_DOUBLE_EQ(one(Aggregation::kMin), 2.0);
  EXPECT_DOUBLE_EQ(one(Aggregation::kMax), 5.0);
  EXPECT_DOUBLE_EQ(one(Aggregation::kLast), 5.0);
  EXPECT_DOUBLE_EQ(one(Aggregation::kSum), 14.0);
  EXPECT_DOUBLE_EQ(one(Aggregation::kCount), 4.0);
}

TEST_F(TsdbAggregateTest, MinMaxHandleNegativeValues) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"delta", {}};
  tsdb.write(key, Point{kSecond, -3.0});
  tsdb.write(key, Point{2 * kSecond, -1.0});
  const auto min_w =
      tsdb.aggregate(key, 0, 3 * kSecond, 3 * kSecond, Aggregation::kMin);
  const auto max_w =
      tsdb.aggregate(key, 0, 3 * kSecond, 3 * kSecond, Aggregation::kMax);
  // A zero-initialized accumulator would wrongly report 0 here.
  EXPECT_DOUBLE_EQ(min_w.at(0).value, -3.0);
  EXPECT_DOUBLE_EQ(max_w.at(0).value, -1.0);
}

TEST_F(TsdbAggregateTest, RateIsPerSecondIncrease) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"jobs_total", {}};
  // A counter climbing 3/s: 0, 3, 6, 9 at t = 0..3s.
  for (TimeNs t = 0; t < 4; ++t) {
    tsdb.write(key, Point{t * kSecond, 3.0 * static_cast<double>(t)});
  }
  const auto windows =
      tsdb.aggregate(key, 0, 4 * kSecond, 2 * kSecond, Aggregation::kRate);
  ASSERT_EQ(windows.size(), 2u);
  // Window 0 sees increases 0->3 (the t=0 sample has no predecessor);
  // window 1 sees 3->6 and 6->9, the first delta crossing the boundary.
  EXPECT_DOUBLE_EQ(windows[0].value, 3.0 / 2.0);
  EXPECT_DOUBLE_EQ(windows[1].value, 6.0 / 2.0);
}

TEST_F(TsdbAggregateTest, RateDetectsCounterResets) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"jobs_total", {}};
  // Counter runs 10, 14, then the daemon restarts (reset to 0) and climbs
  // again: 2, 5. A naive rate would charge -14; reset detection charges
  // the post-restart value itself (2) as the increase.
  tsdb.write(key, Point{0 * kSecond, 10.0});
  tsdb.write(key, Point{1 * kSecond, 14.0});
  tsdb.write(key, Point{2 * kSecond, 2.0});
  tsdb.write(key, Point{3 * kSecond, 5.0});
  const auto windows =
      tsdb.aggregate(key, 0, 4 * kSecond, 4 * kSecond, Aggregation::kRate);
  ASSERT_EQ(windows.size(), 1u);
  // Increases: +4 (10->14), +2 (reset), +3 (2->5) over a 4 s window.
  EXPECT_DOUBLE_EQ(windows[0].value, 9.0 / 4.0);
  EXPECT_GE(windows[0].value, 0.0);
}

TEST_F(TsdbAggregateTest, RateOfSinglePointWindowIsZero) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"jobs_total", {}};
  tsdb.write(key, Point{kSecond, 42.0});
  const auto windows =
      tsdb.aggregate(key, 0, 2 * kSecond, 2 * kSecond, Aggregation::kRate);
  ASSERT_EQ(windows.size(), 1u);
  // One sample has no predecessor: no increase is attributable.
  EXPECT_DOUBLE_EQ(windows[0].value, 0.0);
  EXPECT_EQ(windows[0].samples, 1u);
}

TEST_F(TsdbAggregateTest, LastRespectsTimeOrderNotInsertOrder) {
  TimeSeriesDb tsdb;
  const SeriesKey key{"m", {}};
  tsdb.write(key, Point{5 * kSecond, 50.0});
  tsdb.write(key, Point{2 * kSecond, 20.0});  // late arrival, earlier time
  const auto windows =
      tsdb.aggregate(key, 0, 10 * kSecond, 10 * kSecond, Aggregation::kLast);
  EXPECT_DOUBLE_EQ(windows.at(0).value, 50.0);
}

}  // namespace
}  // namespace qcenv::telemetry
