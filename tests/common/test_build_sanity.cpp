// Asserts the CMake configure_file → compiled-code pipeline: version and
// feature macros generated into qcenv/version.hpp must be visible and
// consistent here, proving the build graph propagates options correctly.
#include "qcenv/version.hpp"

#include <gtest/gtest.h>

#include <string>

TEST(BuildSanity, VersionMacrosPresent) {
  EXPECT_GE(QCENV_VERSION_MAJOR, 0);
  EXPECT_GE(QCENV_VERSION_MINOR, 0);
  EXPECT_GE(QCENV_VERSION_PATCH, 0);
}

TEST(BuildSanity, VersionConstantsMatchMacros) {
  EXPECT_EQ(qcenv::kVersionMajor, QCENV_VERSION_MAJOR);
  EXPECT_EQ(qcenv::kVersionMinor, QCENV_VERSION_MINOR);
  EXPECT_EQ(qcenv::kVersionPatch, QCENV_VERSION_PATCH);
}

TEST(BuildSanity, VersionStringMatchesComponents) {
  const std::string expected = std::to_string(QCENV_VERSION_MAJOR) + "." +
                               std::to_string(QCENV_VERSION_MINOR) + "." +
                               std::to_string(QCENV_VERSION_PATCH);
  EXPECT_EQ(std::string(qcenv::kVersionString), expected);
}

TEST(BuildSanity, CxxStandardIsAtLeast20) {
  EXPECT_GE(QCENV_CXX_STANDARD, 20);
  EXPECT_GE(__cplusplus, 202002L);
}

TEST(BuildSanity, FeatureMacrosAreBooleans) {
  // This translation unit only builds when tests are enabled.
  EXPECT_EQ(QCENV_BUILD_TESTS, 1);
  EXPECT_TRUE(QCENV_BUILD_BENCH == 0 || QCENV_BUILD_BENCH == 1);
  EXPECT_TRUE(QCENV_BUILD_EXAMPLES == 0 || QCENV_BUILD_EXAMPLES == 1);
  EXPECT_TRUE(QCENV_SANITIZE == 0 || QCENV_SANITIZE == 1);
  EXPECT_TRUE(QCENV_TSAN == 0 || QCENV_TSAN == 1);
  // The two sanitizer builds cannot share a process (CMake refuses the
  // combination at configure time); assert the generated header agrees.
  EXPECT_FALSE(QCENV_SANITIZE == 1 && QCENV_TSAN == 1);
}
