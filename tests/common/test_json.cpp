#include <gtest/gtest.h>

#include "common/json.hpp"

namespace qcenv::common {
namespace {

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(42).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json("text").is_string());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json(3.5).is_number());
}

TEST(Json, ObjectAccess) {
  Json obj = Json::object();
  obj["name"] = "qpu";
  obj["qubits"] = 100;
  EXPECT_TRUE(obj.contains("name"));
  EXPECT_EQ(obj.at_or_null("name").as_string(), "qpu");
  EXPECT_EQ(obj.at_or_null("qubits").as_int(), 100);
  EXPECT_TRUE(obj.at_or_null("missing").is_null());
}

TEST(Json, CheckedGetters) {
  Json obj = Json::object();
  obj["n"] = 5;
  obj["x"] = 2.5;
  obj["s"] = "hi";
  obj["b"] = true;
  EXPECT_EQ(obj.get_int("n").value(), 5);
  EXPECT_DOUBLE_EQ(obj.get_double("x").value(), 2.5);
  EXPECT_DOUBLE_EQ(obj.get_double("n").value(), 5.0);  // int promotes
  EXPECT_EQ(obj.get_string("s").value(), "hi");
  EXPECT_TRUE(obj.get_bool("b").value());
  EXPECT_FALSE(obj.get_int("s").ok());
  EXPECT_FALSE(obj.get_string("missing").ok());
}

TEST(Json, DumpCompact) {
  Json obj = Json::object();
  obj["a"] = Json::array({1, 2, 3});
  obj["b"] = "x";
  EXPECT_EQ(obj.dump(), R"({"a":[1,2,3],"b":"x"})");
}

TEST(Json, DumpPretty) {
  Json obj = Json::object();
  obj["k"] = 1;
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, ParseBasics) {
  auto v = Json::parse(R"({"a": [1, 2.5, "three", true, null], "b": {}})");
  ASSERT_TRUE(v.ok()) << v.error().to_string();
  const auto& arr = v.value().at_or_null("a").as_array();
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(arr[1].as_double(), 2.5);
  EXPECT_EQ(arr[2].as_string(), "three");
  EXPECT_TRUE(arr[3].as_bool());
  EXPECT_TRUE(arr[4].is_null());
  EXPECT_TRUE(v.value().at_or_null("b").is_object());
}

TEST(Json, ParseEscapes) {
  auto v = Json::parse(R"({"s": "a\"b\\c\ndA"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().at_or_null("s").as_string(), "a\"b\\c\ndA");
}

TEST(Json, RoundTripPreservesStructure) {
  Json original = Json::object();
  original["ints"] = Json::array({-1, 0, 9007199254740993LL});
  original["floats"] = Json::array({0.1, -2.5e-8, 1e20});
  original["nested"] = Json::object({{"deep", Json::array({Json::object()})}});
  original["unicode"] = "héllo wörld";
  auto parsed = Json::parse(original.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

TEST(Json, DoubleRoundTripIsExact) {
  const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23, -1e-300, 5420503.0};
  for (const double v : values) {
    auto parsed = Json::parse(Json(v).dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().as_double(), v);
  }
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse(R"({"a":})").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse(R"({"a" 1})").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(Json, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::parse(deep).ok());
}

TEST(Json, LargeIntegerOverflowFallsBackToDouble) {
  auto v = Json::parse("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_double());
}

TEST(Json, ArrayHelpers) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.as_array()[1].as_string(), "two");
}

TEST(Json, ObjectKeysSortedDeterministically) {
  Json a = Json::object();
  a["z"] = 1;
  a["a"] = 2;
  Json b = Json::object();
  b["a"] = 2;
  b["z"] = 1;
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(Json, StructuralHashEqualValuesAgree) {
  auto first = Json::parse(R"({"a":[1,2.5,"x"],"b":null})").value();
  auto second = Json::parse(R"({"b":null,"a":[1,2.5,"x"]})").value();
  EXPECT_EQ(first.hash(), second.hash());
  EXPECT_NE(first.hash(), Json::parse(R"({"a":[1,2.5,"y"]})").value().hash());
}

TEST(Json, StructuralHashSeesContainerBoundaries) {
  // Element-boundary shifts must not collide: containers and strings are
  // length-prefixed in the hash stream.
  EXPECT_NE(Json::parse("[[1,2],3]").value().hash(),
            Json::parse("[[1],2,3]").value().hash());
  EXPECT_NE(Json::parse(R"(["ab","c"])").value().hash(),
            Json::parse(R"(["a","bc"])").value().hash());
  EXPECT_NE(Json::parse("[]").value().hash(),
            Json::parse("[[]]").value().hash());
  // Type tags: 0, false, "" and null all differ.
  EXPECT_NE(Json(0).hash(), Json(false).hash());
  EXPECT_NE(Json("").hash(), Json(nullptr).hash());
}

}  // namespace
}  // namespace qcenv::common
