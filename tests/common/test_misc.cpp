// Strings, histograms, IDs, RNG and clocks.
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace qcenv::common {
namespace {

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_EQ(to_lower("QPU-Node"), "qpu-node");
  EXPECT_TRUE(starts_with("qpu-fresnel", "qpu-"));
  EXPECT_FALSE(starts_with("qpu", "qpu-"));
}

TEST(Strings, FormatAndJoin) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50 us");
  EXPECT_EQ(format_duration_ns(2500000), "2.50 ms");
  EXPECT_EQ(format_duration_ns(3500000000LL), "3.500 s");
}

TEST(Strings, RandomTokenFormat) {
  const std::string token = random_token(16);
  EXPECT_EQ(token.size(), 32u);
  for (const char c : token) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
  EXPECT_NE(random_token(16), random_token(16));
}

TEST(BucketHistogramTest, CumulativeCounts) {
  BucketHistogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_EQ(h.cumulative(0), 1u);   // <= 1
  EXPECT_EQ(h.cumulative(1), 2u);   // <= 10
  EXPECT_EQ(h.cumulative(2), 3u);   // <= 100
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // +Inf bucket
}

TEST(BucketHistogramTest, ExponentialBoundaries) {
  const auto h = BucketHistogram::exponential(1.0, 10.0, 3);
  ASSERT_EQ(h.boundaries().size(), 3u);
  EXPECT_DOUBLE_EQ(h.boundaries()[2], 100.0);
}

TEST(QuantileRecorderTest, Quantiles) {
  QuantileRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(i);
  EXPECT_DOUBLE_EQ(r.mean(), 50.5);
  EXPECT_NEAR(r.quantile(0.5), 50.5, 0.01);
  EXPECT_NEAR(r.quantile(0.95), 95.05, 0.01);
  EXPECT_DOUBLE_EQ(r.min(), 1);
  EXPECT_DOUBLE_EQ(r.max(), 100);
  EXPECT_NEAR(r.stddev(), 29.0115, 0.001);
}

TEST(QuantileRecorderTest, EmptyIsSafe) {
  QuantileRecorder r;
  EXPECT_DOUBLE_EQ(r.mean(), 0);
  EXPECT_DOUBLE_EQ(r.quantile(0.5), 0);
}

TEST(Ids, StrongTypesAreDistinctAndOrdered) {
  IdGenerator<JobTag> jobs;
  const JobId a = jobs.next();
  const JobId b = jobs.next();
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(JobId{}.valid());
  static_assert(!std::is_convertible_v<JobId, SessionId>);
}

TEST(Ids, GeneratorIsThreadSafe) {
  IdGenerator<TaskTag> gen;
  std::set<std::uint64_t> seen;
  std::mutex mutex;
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const TaskId id = gen.next();
        std::scoped_lock lock(mutex);
        EXPECT_TRUE(seen.insert(id.value).second);
      }
    });
  }
  threads.clear();
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(11), b(11), c(12);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  EXPECT_NE(a.uniform(), c.uniform());
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const auto n = rng.uniform_int(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(7);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.exponential_mean(3.0);
  EXPECT_NEAR(acc / n, 3.0, 0.1);
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng parent(9);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(1000);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(ClockTest, AutoAdvanceSleep) {
  ManualClock clock(0, /*auto_advance=*/true);
  clock.sleep_for(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
}

TEST(ClockTest, BlockingSleepWokenByAdvance) {
  ManualClock clock(0, /*auto_advance=*/false);
  std::atomic<bool> woke{false};
  std::jthread sleeper([&] {
    clock.sleep_for(kSecond);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.advance(kSecond);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock clock;
  const TimeNs a = clock.now();
  const TimeNs b = clock.now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000'000), 1.5);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000);
  EXPECT_EQ(from_millis(1.5), 1'500'000);
}

}  // namespace
}  // namespace qcenv::common
