#include <cstdlib>

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace qcenv::common {
namespace {

TEST(Config, LoadStringParsesKeyValues) {
  Config config;
  ASSERT_TRUE(config
                  .load_string("# comment\n"
                               "QRMI_RESOURCE_ID = fresnel\n"
                               "\n"
                               "QRMI_TIMEOUT=30\n")
                  .ok());
  EXPECT_EQ(config.get_or("QRMI_RESOURCE_ID", ""), "fresnel");
  EXPECT_EQ(config.get_int_or("QRMI_TIMEOUT", 0), 30);
}

TEST(Config, RejectsMalformedLines) {
  Config config;
  auto status = config.load_string("NOEQUALS\n");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kInvalidArgument);
}

TEST(Config, OverrideBeatsFile) {
  Config config;
  ASSERT_TRUE(config.load_string("KEY=file\n").ok());
  config.set("KEY", "override");
  EXPECT_EQ(config.get_or("KEY", ""), "override");
}

TEST(Config, EnvBeatsFile) {
  ::setenv("QCENVTEST_LAYER", "env", 1);
  Config config;
  ASSERT_TRUE(config.load_string("QCENVTEST_LAYER=file\n").ok());
  config.load_env("QCENVTEST_");
  EXPECT_EQ(config.get_or("QCENVTEST_LAYER", ""), "env");
  ::unsetenv("QCENVTEST_LAYER");
}

TEST(Config, RequireErrorsOnMissing) {
  Config config;
  auto missing = config.require("NOPE");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kNotFound);
}

TEST(Config, TypedAccessorsFallBackOnGarbage) {
  Config config;
  ASSERT_TRUE(config.load_string("N=abc\nX=1.5zzz\nB=maybe\n").ok());
  EXPECT_EQ(config.get_int_or("N", 7), 7);
  EXPECT_DOUBLE_EQ(config.get_double_or("X", 2.0), 2.0);
  EXPECT_TRUE(config.get_bool_or("B", true));
}

TEST(Config, BoolParsing) {
  Config config;
  ASSERT_TRUE(
      config.load_string("A=true\nB=0\nC=YES\nD=off\n").ok());
  EXPECT_TRUE(config.get_bool_or("A", false));
  EXPECT_FALSE(config.get_bool_or("B", true));
  EXPECT_TRUE(config.get_bool_or("C", false));
  EXPECT_FALSE(config.get_bool_or("D", true));
}

TEST(Config, WithPrefixMergesLayers) {
  Config config;
  ASSERT_TRUE(config.load_string("QRMI_A=1\nQRMI_B=2\nOTHER=3\n").ok());
  config.set("QRMI_B", "override");
  const auto qrmi = config.with_prefix("QRMI_");
  ASSERT_EQ(qrmi.size(), 2u);
  EXPECT_EQ(qrmi.at("QRMI_A"), "1");
  EXPECT_EQ(qrmi.at("QRMI_B"), "override");
}

TEST(Config, MissingFileErrors) {
  Config config;
  EXPECT_FALSE(config.load_file("/nonexistent/qcenv.conf").ok());
}

}  // namespace
}  // namespace qcenv::common
