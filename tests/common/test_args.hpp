// Shared --seed / --verbose handling for randomized tests. Tests that link
// test_args_main.cpp (the SEEDED flavour of qcenv_add_test) accept
//   <test> --seed=12345 [--verbose]
// and print the active seed at startup, so any stochastic failure
// reproduces deterministically from the seed in the log. The environment
// variable QCENV_TEST_SEED works everywhere (including under plain ctest,
// which does not forward flags).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace qcenv::testargs {

namespace detail {
inline std::uint64_t g_seed = 0;
inline bool g_seed_explicit = false;
inline bool g_verbose = false;
}  // namespace detail

/// Parses --seed=N / --seed N and --verbose (called by the shared main
/// after InitGoogleTest has stripped gtest's own flags).
inline void parse(int argc, char** argv) {
  const char* env = std::getenv("QCENV_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    detail::g_seed = std::strtoull(env, nullptr, 10);
    detail::g_seed_explicit = true;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      detail::g_seed = std::strtoull(arg + 7, nullptr, 10);
      detail::g_seed_explicit = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      detail::g_seed = std::strtoull(argv[++i], nullptr, 10);
      detail::g_seed_explicit = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      detail::g_verbose = true;
    }
  }
}

/// The run's seed: explicit (--seed / QCENV_TEST_SEED) or `fallback`.
/// Every randomized test derives all of its randomness from this one
/// value and prints it, so the log always carries the replay recipe.
inline std::uint64_t seed(std::uint64_t fallback = 0x5EEDF00Dull) {
  return detail::g_seed_explicit ? detail::g_seed : fallback;
}

inline bool verbose() { return detail::g_verbose; }

/// Announces the seed in the test log ("seed = N (replay: --seed=N)").
inline void announce(std::uint64_t active_seed) {
  std::printf("seed = %llu (replay: --seed=%llu)\n",
              static_cast<unsigned long long>(active_seed),
              static_cast<unsigned long long>(active_seed));
}

}  // namespace qcenv::testargs
