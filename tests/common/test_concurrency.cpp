// BlockingQueue and ThreadPool behaviour.
#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "common/queue.hpp"
#include "common/thread_pool.hpp"

namespace qcenv::common {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.close();
  EXPECT_FALSE(queue.push(2));
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.try_pop().has_value());
  queue.push(9);
  EXPECT_EQ(queue.try_pop().value(), 9);
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> queue;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(20 * kMillisecond).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(BlockingQueueTest, CrossThreadHandoff) {
  BlockingQueue<int> queue;
  std::jthread producer([&] {
    for (int i = 0; i < 100; ++i) queue.push(i);
    queue.close();
  });
  int sum = 0;
  while (auto v = queue.pop()) sum += *v;
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, SubmitReturnsFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionCorrectly) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(10, 110, [&](std::size_t lo, std::size_t hi) {
    std::scoped_lock lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 110u);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(5, 5, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace qcenv::common
