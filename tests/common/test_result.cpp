#include <gtest/gtest.h>

#include "common/result.hpp"

namespace qcenv::common {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = err::not_found("missing thing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing thing");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, ErrorToString) {
  const Error e = err::invalid_argument("shots must be positive");
  EXPECT_EQ(e.to_string(), "invalid_argument: shots must be positive");
}

TEST(Result, AndThenChainsOnSuccess) {
  Result<int> r(10);
  auto doubled = r.and_then([](int v) -> Result<int> { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 20);
}

TEST(Result, AndThenForwardsError) {
  Result<int> r = err::timeout("slow");
  bool called = false;
  auto out = r.and_then([&](int v) -> Result<int> {
    called = true;
    return v;
  });
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(called);
  EXPECT_EQ(out.error().code(), ErrorCode::kTimeout);
}

TEST(Result, MapTransformsValue) {
  Result<int> r(5);
  auto text = r.map([](int v) { return std::to_string(v); });
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "5");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s = err::permission_denied("nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kPermissionDenied);
}

TEST(Status, ReturnIfErrorMacro) {
  auto inner = []() -> Status { return err::io("disk gone"); };
  auto outer = [&]() -> Status {
    QCENV_RETURN_IF_ERROR(inner());
    return Status::ok_status();
  };
  EXPECT_EQ(outer().error().code(), ErrorCode::kIo);
}

TEST(ErrorCodes, AllHaveNames) {
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(ErrorCode::kResourceExhausted), "resource_exhausted");
  EXPECT_STREQ(to_string(ErrorCode::kUnavailable), "unavailable");
  EXPECT_STREQ(to_string(ErrorCode::kProtocol), "protocol");
}

}  // namespace
}  // namespace qcenv::common
