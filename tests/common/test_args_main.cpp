// Custom gtest main for seeded tests: InitGoogleTest strips gtest flags,
// then the remaining --seed/--verbose are ours (see test_args.hpp).
#include <gtest/gtest.h>

#include "test_args.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  qcenv::testargs::parse(argc, argv);
  return RUN_ALL_TESTS();
}
