// Quota changes racing live dispatch: POST /admin/quotas/:user may shrink
// max_inflight_shots below what the user already has in flight while
// batches are executing and releasing reservations concurrently. The
// bucket accounting must never underflow (a wrapped uint64 would lock the
// tenant out forever) and must drain to exactly zero once the work lands.
// Runs under ASan/UBSan in CI via the accounting\. test regex.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::accounting {
namespace {

using common::Json;

quantum::Payload small_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

TEST(QuotaRace, ShrinkBelowInflightNeverUnderflowsBucketAccounting) {
  common::WallClock clock;
  daemon::DaemonOptions options;
  options.admin_key = "root";
  options.queue_policy.non_production_batch_shots = 10;
  auto daemon = std::make_unique<daemon::MiddlewareDaemon>(
      options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
      nullptr, &clock);
  ASSERT_TRUE(daemon->start().ok());

  net::HttpClient plain(daemon->port());
  auto opened =
      plain.post("/v1/sessions", R"({"user":"alice","class":"test"})");
  ASSERT_EQ(opened.value().status, 201);
  net::HttpClient alice(daemon->port());
  alice.set_default_header(
      "X-Session-Token",
      Json::parse(opened.value().body).value().get_string("token").value());

  // Queue a pile of work while drained so reservations are held, then let
  // dispatch race the quota churn.
  daemon->dispatcher().drain();
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 8; ++i) {
    Json body = Json::object();
    body["payload"] = small_payload(60).to_json();
    auto accepted = alice.post("/v1/jobs", body.dump());
    ASSERT_EQ(accepted.value().status, 201) << accepted.value().body;
    jobs.push_back(static_cast<std::uint64_t>(
        Json::parse(accepted.value().body).value().get_int("job_id")
            .value()));
  }
  ASSERT_EQ(daemon->accounting().rate_limiter().inflight_shots("alice"),
            8u * 60u);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    net::HttpClient admin(daemon->port());
    admin.set_default_header("X-Admin-Key", "root");
    bool shrink = true;
    while (!stop.load()) {
      // Alternate between far below current in-flight and unlimited.
      auto response = admin.post(
          "/admin/quotas/alice",
          shrink ? R"({"max_inflight_shots": 5})"
                 : R"({"max_inflight_shots": 0})");
      EXPECT_EQ(response.value().status, 200);
      shrink = !shrink;
    }
  });

  daemon->dispatcher().resume();
  for (const auto id : jobs) {
    auto done = daemon->dispatcher().wait(id, 120 * common::kSecond);
    EXPECT_TRUE(done.ok()) << done.error().to_string();
  }
  stop.store(true);
  churn.join();

  // Everything released exactly once: no residue, and — the underflow
  // failure mode — no wrapped-around astronomical reservation either.
  EXPECT_EQ(daemon->accounting().rate_limiter().inflight_shots("alice"),
            0u);

  // The tenant is still serviceable under a sane final quota.
  net::HttpClient admin(daemon->port());
  admin.set_default_header("X-Admin-Key", "root");
  ASSERT_EQ(admin.post("/admin/quotas/alice",
                       R"({"max_inflight_shots": 1000})")
                .value()
                .status,
            200);
  Json body = Json::object();
  body["payload"] = small_payload(20).to_json();
  auto accepted = alice.post("/v1/jobs", body.dump());
  EXPECT_EQ(accepted.value().status, 201) << accepted.value().body;
}

}  // namespace
}  // namespace qcenv::accounting
