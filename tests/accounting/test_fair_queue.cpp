// Fair-share scheduling through PriorityQueueCore's priority hook, driven
// in deterministic virtual time (no threads, no wall clock) the same way
// the simkit benches drive the core.
//
// Covers the acceptance criteria: 3 users at 50/30/20 shares under
// identical sustained load converge to served-shot fractions within 10% of
// their shares, and a mid-run ledger snapshot/restore (the kill-and-restart
// path) reproduces the exact post-restart dispatch order of an
// uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "../common/test_args.hpp"
#include "accounting/accounting.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "daemon/queue_core.hpp"

namespace qcenv::daemon {
namespace {

using accounting::AccountingManager;
using accounting::AccountingOptions;
using common::kSecond;
using common::ManualClock;

// ---- Hook ordering units ----------------------------------------------------

TEST(QueueCoreHook, OrdersWithinClassByDescendingPriority) {
  QueuePolicy policy;
  policy.non_production_batch_shots = 0;
  PriorityQueueCore core(policy);
  std::map<std::uint64_t, double> priority = {{1, 0.2}, {2, 0.9}, {3, 0.5}};
  core.set_priority_hook([&](std::uint64_t id, common::TimeNs) {
    return priority.at(id);
  });
  core.enqueue(1, JobClass::kTest, 10, 0);
  core.enqueue(2, JobClass::kTest, 10, 1);
  core.enqueue(3, JobClass::kTest, 10, 2);
  EXPECT_EQ(core.next_batch(3)->job_id, 2u);
  EXPECT_EQ(core.next_batch(3)->job_id, 3u);
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);
}

TEST(QueueCoreHook, ClassRankStillDominatesHookPriority) {
  QueuePolicy policy;
  policy.non_production_batch_shots = 0;
  policy.age_to_boost = 0;
  PriorityQueueCore core(policy);
  core.set_priority_hook([](std::uint64_t id, common::TimeNs) {
    return id == 1 ? 1.0 : 0.0;  // the dev job is maximally under-served
  });
  core.enqueue(1, JobClass::kDevelopment, 10, 0);
  core.enqueue(2, JobClass::kProduction, 10, 1);
  // Production first regardless: fair-share only reorders within a tier.
  EXPECT_EQ(core.next_batch(2)->job_id, 2u);
  EXPECT_EQ(core.next_batch(2)->job_id, 1u);
}

TEST(QueueCoreHook, TiesFallThroughToShortestThenFifo) {
  QueuePolicy policy;
  policy.non_production_batch_shots = 0;
  policy.shortest_first_within_class = true;
  PriorityQueueCore core(policy);
  core.set_priority_hook(
      [](std::uint64_t, common::TimeNs) { return 0.5; });  // all tied
  core.enqueue(1, JobClass::kTest, 500, 0);
  core.enqueue(2, JobClass::kTest, 50, 1);
  core.enqueue(3, JobClass::kTest, 50, 2);
  EXPECT_EQ(core.next_batch(3)->job_id, 2u);  // shortest, then seq
  EXPECT_EQ(core.next_batch(3)->job_id, 3u);
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);
}

// ---- Virtual-time multi-tenant simulation -----------------------------------

/// Drives a PriorityQueueCore + AccountingManager pair the way the daemon
/// does, but in pure virtual time: one emulated QPU serving `rate`
/// shots/second, each user keeping `backlog` identical jobs pending.
class TenantSim {
 public:
  TenantSim(QueuePolicy policy, AccountingOptions accounting,
            common::TimeNs start, double rate_shots_per_sec)
      : clock_(start),
        accounting_(accounting, &clock_, nullptr),
        core_(policy),
        rate_(rate_shots_per_sec) {
    core_.set_priority_hook([this](std::uint64_t id, common::TimeNs now) {
      return accounting_.priority(user_of_.at(id), now);
    });
  }

  common::TimeNs now() const { return clock_.now(); }
  AccountingManager& accounting() { return accounting_; }
  PriorityQueueCore& core() { return core_; }

  std::uint64_t submit(const std::string& user, JobClass cls,
                       std::uint64_t shots) {
    const std::uint64_t id = next_id_++;
    user_of_[id] = user;
    remaining_[id] = shots;
    class_of_[id] = cls;
    core_.enqueue(id, cls, shots, clock_.now());
    return id;
  }

  /// Re-creates another sim's pending state (the dispatcher-restore path:
  /// same ids, same enqueue times folded to "now", remaining shots exact).
  void adopt_pending(const TenantSim& other) {
    next_id_ = other.next_id_;
    for (const auto& [id, shots] : other.remaining_) {
      user_of_[id] = other.user_of_.at(id);
      remaining_[id] = shots;
      class_of_[id] = other.class_of_.at(id);
      core_.enqueue(id, other.class_of_.at(id), shots, clock_.now());
    }
  }

  /// Serves one batch; returns the user served ("" when idle). `top_up`
  /// re-submits a fresh identical job for the user whose job finished.
  std::string step(bool top_up, std::uint64_t top_up_shots) {
    auto batch = core_.next_batch(clock_.now());
    if (!batch.has_value()) return "";
    const std::string user = user_of_.at(batch->job_id);
    const common::DurationNs elapsed = common::from_seconds(
        static_cast<double>(batch->shots) / rate_);
    clock_.advance(elapsed);
    accounting_.charge_batch(user, batch->shots, elapsed);
    served_[user] += batch->shots;
    remaining_[batch->job_id] -= batch->shots;
    core_.batch_done(*batch);
    if (batch->final_batch) {
      remaining_.erase(batch->job_id);
      user_of_.erase(batch->job_id);
      class_of_.erase(batch->job_id);
      accounting_.job_finished(user, 0, true);
      if (top_up) submit(user, batch->cls, top_up_shots);
    }
    return user;
  }

  const std::map<std::string, std::uint64_t>& served() const {
    return served_;
  }

 private:
  ManualClock clock_;
  AccountingManager accounting_;
  PriorityQueueCore core_;
  double rate_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::string> user_of_;
  std::map<std::uint64_t, std::uint64_t> remaining_;
  std::map<std::uint64_t, JobClass> class_of_;
  std::map<std::string, std::uint64_t> served_;
};

AccountingOptions three_tenant_options() {
  AccountingOptions options;
  options.ledger.half_life = 120 * kSecond;
  options.fair_share.user_shares["alice"] = {"default", 50.0};
  options.fair_share.user_shares["bob"] = {"default", 30.0};
  options.fair_share.user_shares["carol"] = {"default", 20.0};
  return options;
}

QueuePolicy dev_batch_policy(std::uint64_t batch) {
  QueuePolicy policy;
  policy.class_priority = true;
  policy.non_production_batch_shots = batch;
  policy.age_to_boost = 0;
  return policy;
}

TEST(FairShareQueue, ServedFractionsConvergeToShares) {
  // Acceptance: 3 users at 50/30/20 shares under sustained dev-class load
  // on one emulated QPU -> served-shot fractions within 10% of the shares
  // inside 30 virtual minutes. Job sizes are randomized from one printed
  // seed (fair-share must converge regardless of how the backlog is cut
  // into jobs); any failure replays with --seed=N.
  const std::uint64_t seed = testargs::seed(0xFA1E5EEDull);
  testargs::announce(seed);
  common::Rng rng(seed);
  const auto job_size = [&rng] {
    return static_cast<std::uint64_t>(rng.uniform_int(6'000, 14'000));
  };
  TenantSim sim(dev_batch_policy(100), three_tenant_options(), 0,
                /*rate_shots_per_sec=*/1000.0);
  const std::vector<std::string> users = {"alice", "bob", "carol"};
  for (const auto& user : users) {
    sim.submit(user, JobClass::kDevelopment, job_size());
    sim.submit(user, JobClass::kDevelopment, job_size());
  }
  const common::TimeNs horizon = 30 * 60 * kSecond;
  while (sim.now() < horizon) {
    ASSERT_NE(sim.step(/*top_up=*/true, job_size()), "");
  }
  std::uint64_t total = 0;
  for (const auto& [_, shots] : sim.served()) total += shots;
  ASSERT_GT(total, 0u);
  const std::map<std::string, double> share = {
      {"alice", 0.50}, {"bob", 0.30}, {"carol", 0.20}};
  for (const auto& user : users) {
    const double fraction =
        static_cast<double>(sim.served().at(user)) /
        static_cast<double>(total);
    EXPECT_LT(std::abs(fraction / share.at(user) - 1.0), 0.10)
        << user << " served fraction " << fraction << " vs share "
        << share.at(user);
  }
}

TEST(FairShareQueue, RestartReproducesUninterruptedOrdering) {
  // Acceptance: snapshot the decayed ledger mid-run, restore it into a
  // fresh manager + core (the daemon's kill-and-restart path), and the
  // dispatch order after the restart matches the run that never stopped.
  const common::TimeNs half = 5 * 60 * kSecond;
  const int post_steps = 500;

  TenantSim continuous(dev_batch_policy(100), three_tenant_options(), 0,
                       1000.0);
  for (const auto& user : {"alice", "bob", "carol"}) {
    continuous.submit(user, JobClass::kDevelopment, 10'000);
    continuous.submit(user, JobClass::kDevelopment, 10'000);
  }
  while (continuous.now() < half) {
    ASSERT_NE(continuous.step(true, 10'000), "");
  }

  // "Kill": capture the durable image (ledger records + pending jobs).
  const auto usage =
      continuous.accounting().usage_records(continuous.now());
  TenantSim restarted(dev_batch_policy(100), three_tenant_options(),
                      continuous.now(), 1000.0);
  restarted.accounting().restore(usage, {});
  restarted.adopt_pending(continuous);

  std::vector<std::string> order_continuous;
  std::vector<std::string> order_restarted;
  for (int i = 0; i < post_steps; ++i) {
    order_continuous.push_back(continuous.step(true, 10'000));
    order_restarted.push_back(restarted.step(true, 10'000));
  }
  EXPECT_EQ(order_continuous, order_restarted);
  for (const auto& user : {"alice", "bob", "carol"}) {
    EXPECT_NEAR(
        restarted.accounting().ledger().units(user, restarted.now()),
        continuous.accounting().ledger().units(user, continuous.now()),
        1e-6)
        << user;
  }
}

TEST(FairShareQueue, StarvedLowShareUserStillDispatches) {
  // Satellite: aging + shortest_first_within_class + the fair-share hook
  // must not livelock. A 1-share user's dev job sits behind a 99-share
  // user's endless stream of shorter production jobs; aging lifts it into
  // the production tier, and the hog's accumulating usage then drops their
  // priority below the idle user's — the starved job dispatches.
  QueuePolicy policy;
  policy.class_priority = true;
  policy.non_production_batch_shots = 50;
  policy.age_to_boost = 60 * kSecond;
  policy.shortest_first_within_class = true;
  AccountingOptions accounting;
  accounting.ledger.half_life = 300 * kSecond;
  accounting.fair_share.user_shares["hog"] = {"default", 99.0};
  accounting.fair_share.user_shares["meek"] = {"default", 1.0};

  TenantSim sim(policy, accounting, 0, 1000.0);
  // Shorter than meek's job, so shortest-first alone would always pick hog.
  for (int i = 0; i < 3; ++i) sim.submit("hog", JobClass::kProduction, 200);
  const std::uint64_t meek_job = sim.submit("meek", JobClass::kDevelopment,
                                            500);
  int steps = 0;
  while (sim.served().count("meek") == 0 ||
         sim.served().at("meek") < 500) {
    ASSERT_LT(steps, 20'000) << "meek's job livelocked behind the hog";
    const std::string user = sim.step(false, 0);
    ASSERT_NE(user, "");
    // The hog's stream never dries up.
    if (sim.core().depth() < 3) sim.submit("hog", JobClass::kProduction, 200);
    ++steps;
  }
  // Bounded delay: within the aging window plus a handful of half-lives.
  EXPECT_LT(sim.now(), 20 * 60 * kSecond);
  EXPECT_FALSE(sim.core().pending(meek_job));
}

}  // namespace
}  // namespace qcenv::daemon
