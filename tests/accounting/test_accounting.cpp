// UsageLedger decay, FairShareIndex priority math and RateLimiter buckets —
// the deterministic core of the multi-tenant accounting subsystem.
#include <gtest/gtest.h>

#include "accounting/accounting.hpp"
#include "common/clock.hpp"

namespace qcenv::accounting {
namespace {

using common::kSecond;
using common::ManualClock;

TEST(UsageLedger, ChargesAndDecaysWithHalfLife) {
  LedgerOptions options;
  options.half_life = 60 * kSecond;
  UsageLedger ledger(options);
  ledger.charge("alice", 1000, 2 * kSecond, 0, 0);
  EXPECT_DOUBLE_EQ(ledger.units("alice", 0), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.usage("alice", 0).qpu_seconds, 2.0);
  // One half-life later: half the decayed usage, raw totals untouched.
  EXPECT_NEAR(ledger.units("alice", 60 * kSecond), 500.0, 1e-6);
  EXPECT_NEAR(ledger.units("alice", 120 * kSecond), 250.0, 1e-6);
  EXPECT_EQ(ledger.usage("alice", 120 * kSecond).raw_shots, 1000u);
}

TEST(UsageLedger, DecayDisabledAccumulatesForever) {
  LedgerOptions options;
  options.half_life = 0;
  UsageLedger ledger(options);
  ledger.charge("bob", 100, 0, 0, 0);
  ledger.charge("bob", 100, 0, 0, 1000 * kSecond);
  EXPECT_DOUBLE_EQ(ledger.units("bob", 2000 * kSecond), 200.0);
}

TEST(UsageLedger, WeightsFoldTimeAndJobsIntoUnits) {
  LedgerOptions options;
  options.half_life = 0;
  options.shot_weight = 1.0;
  options.qpu_second_weight = 10.0;
  options.job_weight = 5.0;
  UsageLedger ledger(options);
  ledger.charge("carol", 100, 3 * kSecond, 2, 0);
  EXPECT_DOUBLE_EQ(ledger.units("carol", 0), 100 + 30 + 10);
}

TEST(UsageLedger, UnknownUserIsZero) {
  UsageLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.units("nobody", 123), 0.0);
  EXPECT_EQ(ledger.usage("nobody", 123).raw_shots, 0u);
  EXPECT_DOUBLE_EQ(ledger.total_units(123), 0.0);
}

TEST(UsageLedger, RecordsRestoreRoundTripIsExact) {
  LedgerOptions options;
  options.half_life = 60 * kSecond;
  UsageLedger ledger(options);
  ledger.charge("alice", 1000, kSecond, 1, 0);
  ledger.charge("bob", 300, 0, 0, 30 * kSecond);
  const auto records = ledger.records(45 * kSecond);

  UsageLedger revived(options);
  revived.restore(records);
  for (const char* user : {"alice", "bob"}) {
    EXPECT_NEAR(revived.units(user, 200 * kSecond),
                ledger.units(user, 200 * kSecond), 1e-9)
        << user;
    EXPECT_EQ(revived.usage(user, 0).raw_shots,
              ledger.usage(user, 0).raw_shots);
  }
}

TEST(UsageLedger, ReplayedChargeOlderThanSnapshotIsPreDecayed) {
  // A journal delta with a timestamp before the restored snapshot's as_of
  // must contribute its *decayed* value, not rewind the clock.
  LedgerOptions options;
  options.half_life = 60 * kSecond;
  UsageLedger continuous(options);
  continuous.charge("alice", 1000, 0, 0, 0);
  continuous.charge("alice", 500, 0, 0, 30 * kSecond);

  UsageLedger restored(options);
  // Snapshot taken at t=60s reflecting only the first charge...
  UsageLedger first_only(options);
  first_only.charge("alice", 1000, 0, 0, 0);
  restored.restore(first_only.records(60 * kSecond));
  // ...then the t=30s delta replays on top.
  restored.charge("alice", 500, 0, 0, 30 * kSecond);
  EXPECT_NEAR(restored.units("alice", 120 * kSecond),
              continuous.units("alice", 120 * kSecond), 1e-6);
}

TEST(FairShare, UntouchedUsersHaveMaxPriority) {
  UsageLedger ledger;
  FairShareIndex index({}, &ledger);
  EXPECT_DOUBLE_EQ(index.priority("anyone", 0), 1.0);
}

TEST(FairShare, UsageDepressesPriority) {
  UsageLedger ledger;
  FairShareIndex index({}, &ledger);
  ledger.charge("greedy", 1000, 0, 0, 0);
  EXPECT_LT(index.priority("greedy", 0), index.priority("frugal", 0));
}

TEST(FairShare, LargerShareToleratesMoreUsage) {
  UsageLedger ledger;
  FairShareOptions options;
  options.user_shares["alice"] = {"default", 50};
  options.user_shares["bob"] = {"default", 10};
  FairShareIndex index(options, &ledger);
  // Identical decayed usage: the larger share is less over-served.
  ledger.charge("alice", 500, 0, 0, 0);
  ledger.charge("bob", 500, 0, 0, 0);
  EXPECT_GT(index.priority("alice", 0), index.priority("bob", 0));
}

TEST(FairShare, OverservedAccountDepressesItsIdleUsers) {
  UsageLedger ledger;
  FairShareOptions options;
  options.account_shares["physics"] = 1.0;
  options.account_shares["chem"] = 1.0;
  options.user_shares["phys-hog"] = {"physics", 1.0};
  options.user_shares["phys-idle"] = {"physics", 1.0};
  options.user_shares["chem-idle"] = {"chem", 1.0};
  FairShareIndex index(options, &ledger);
  ledger.charge("phys-hog", 10000, 0, 0, 0);
  // Fair tree: the idle chem user outranks the idle physics user, because
  // physics as an account has consumed everything.
  EXPECT_GT(index.priority("chem-idle", 0), index.priority("phys-idle", 0));
  // And within physics the hog still ranks below their idle colleague.
  EXPECT_GT(index.priority("phys-idle", 0), index.priority("phys-hog", 0));
}

TEST(FairShare, AdminCanRegrantShares) {
  UsageLedger ledger;
  FairShareIndex index({}, &ledger);
  index.set_user("alice", "hpc", 42.0);
  const auto grant = index.share_of("alice");
  EXPECT_EQ(grant.account, "hpc");
  EXPECT_DOUBLE_EQ(grant.shares, 42.0);
  const auto table = index.to_json(0);
  EXPECT_TRUE(table.at_or_null("users").contains("alice"));
  EXPECT_TRUE(table.at_or_null("accounts").contains("hpc"));
}

TEST(RateLimiter, UnlimitedByDefault) {
  RateLimiter limiter;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.admit("alice", 1000, 0).ok());
  }
}

TEST(RateLimiter, TokenBucketThrottlesAndRefills) {
  RateLimitOptions options;
  options.submit_per_sec = 1.0;
  options.submit_burst = 2.0;
  RateLimiter limiter(options);
  EXPECT_TRUE(limiter.admit("bob", 10, 0).ok());
  EXPECT_TRUE(limiter.admit("bob", 10, 0).ok());
  const auto rejected = limiter.admit("bob", 10, 0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_NE(rejected.error().message().find("rate limit"),
            std::string::npos);
  // One second later one token has refilled.
  EXPECT_TRUE(limiter.admit("bob", 10, kSecond).ok());
  EXPECT_FALSE(limiter.admit("bob", 10, kSecond).ok());
}

TEST(RateLimiter, InflightShotCap) {
  RateLimitOptions options;
  options.max_inflight_shots = 100;
  RateLimiter limiter(options);
  EXPECT_TRUE(limiter.admit("carol", 60, 0).ok());
  const auto rejected = limiter.admit("carol", 60, 0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message().find("per-user cap"),
            std::string::npos);
  limiter.release("carol", 60);
  EXPECT_TRUE(limiter.admit("carol", 60, 0).ok());
  EXPECT_EQ(limiter.inflight_shots("carol"), 60u);
  // Releases clamp at zero (paths that bypassed admit stay harmless).
  limiter.release("carol", 1000);
  EXPECT_EQ(limiter.inflight_shots("carol"), 0u);
}

TEST(RateLimiter, RetryAfterReportsTokenRefillTime) {
  RateLimitOptions options;
  options.submit_per_sec = 2.0;
  options.submit_burst = 1.0;
  RateLimiter limiter(options);
  // Never-seen users start with a primed (full) bucket: no wait.
  EXPECT_EQ(limiter.retry_after("dave", 0), 0);
  ASSERT_TRUE(limiter.admit("dave", 1, 0).ok());
  // Bucket empty; at 2 tokens/s a whole token is 500ms away.
  EXPECT_EQ(limiter.retry_after("dave", 0), common::kSecond / 2);
  // The readout is time-aware: half the refill later, half the wait left.
  EXPECT_EQ(limiter.retry_after("dave", common::kSecond / 4),
            common::kSecond / 4);
  // ...and read-only: asking repeatedly never consumes the refill.
  EXPECT_EQ(limiter.retry_after("dave", common::kSecond / 4),
            common::kSecond / 4);
  // Once a token is back the user is no longer limited.
  EXPECT_EQ(limiter.retry_after("dave", common::kSecond), 0);
  EXPECT_TRUE(limiter.admit("dave", 1, common::kSecond).ok());
  // Unlimited users never wait, bucket state or not.
  RateLimiter open;
  ASSERT_TRUE(open.admit("erin", 1, 0).ok());
  EXPECT_EQ(open.retry_after("erin", 0), 0);
}

TEST(RateLimiter, PerUserOverrides) {
  RateLimiter limiter;  // permissive defaults
  RateLimitOptions strict;
  strict.submit_per_sec = 0.1;
  strict.submit_burst = 1.0;
  limiter.set_override("noisy", strict);
  EXPECT_TRUE(limiter.admit("noisy", 1, 0).ok());
  EXPECT_FALSE(limiter.admit("noisy", 1, 0).ok());
  EXPECT_TRUE(limiter.admit("quiet", 1, 0).ok());
  EXPECT_TRUE(limiter.admit("quiet", 1, 0).ok());
  EXPECT_DOUBLE_EQ(limiter.effective("noisy").submit_per_sec, 0.1);
  EXPECT_DOUBLE_EQ(limiter.effective("quiet").submit_per_sec, 0.0);
}

TEST(AccountingManager, ChargesReleaseInflightAndExportMetrics) {
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  AccountingOptions options;
  options.rate_limit.max_inflight_shots = 100;
  AccountingManager manager(options, &clock, &metrics);
  ASSERT_TRUE(manager.admit_submission("alice", 80).ok());
  EXPECT_FALSE(manager.admit_submission("alice", 80).ok());
  manager.charge_batch("alice", 50, common::kMillisecond);
  // 50 executed shots left the in-flight budget; 30 remain reserved.
  EXPECT_EQ(manager.rate_limiter().inflight_shots("alice"), 30u);
  manager.job_finished("alice", 30, true);
  EXPECT_EQ(manager.rate_limiter().inflight_shots("alice"), 0u);
  EXPECT_DOUBLE_EQ(manager.ledger().usage("alice", clock.now()).jobs, 1.0);
  const std::string exposition = metrics.expose();
  EXPECT_NE(exposition.find("accounting_usage_units"), std::string::npos);
  EXPECT_NE(exposition.find("accounting_charged_shots_total"),
            std::string::npos);
}

TEST(AccountingManager, PendingLimitOverrides) {
  ManualClock clock;
  AccountingManager manager({}, &clock, nullptr);
  EXPECT_FALSE(manager.pending_limit("alice").has_value());
  manager.set_pending_limit("alice", 5);
  ASSERT_TRUE(manager.pending_limit("alice").has_value());
  EXPECT_EQ(*manager.pending_limit("alice"), 5u);
  // 0 is a real override meaning "unlimited for this user" — it must beat
  // a non-zero global policy, so it is stored, not erased.
  manager.set_pending_limit("alice", 0);
  ASSERT_TRUE(manager.pending_limit("alice").has_value());
  EXPECT_EQ(*manager.pending_limit("alice"), 0u);
  manager.clear_pending_limit("alice");  // back to the policy default
  EXPECT_FALSE(manager.pending_limit("alice").has_value());
}

TEST(AccountingManager, RestoreInflightReinstallsReservations) {
  // Recovery re-reserves a restored queued job's un-executed shots so its
  // later releases cannot drain reservations newly admitted work holds.
  ManualClock clock;
  AccountingOptions options;
  options.rate_limit.max_inflight_shots = 1000;
  AccountingManager manager(options, &clock, nullptr);
  manager.restore_inflight("alice", 800);  // recovered job, no token spent
  EXPECT_EQ(manager.rate_limiter().inflight_shots("alice"), 800u);
  // Only 200 shots of headroom remain under the cap.
  EXPECT_FALSE(manager.admit_submission("alice", 300).ok());
  EXPECT_TRUE(manager.admit_submission("alice", 200).ok());
  // The recovered job executing releases exactly what it reserved.
  manager.charge_batch("alice", 800, 0);
  EXPECT_EQ(manager.rate_limiter().inflight_shots("alice"), 200u);
}

TEST(AccountingManager, UsageJsonShape) {
  ManualClock clock;
  AccountingOptions options;
  options.fair_share.user_shares["alice"] = {"hpc", 50.0};
  AccountingManager manager(options, &clock, nullptr);
  manager.charge_batch("alice", 100, 2 * common::kMillisecond);
  const auto json = manager.usage_json("alice", 3);
  EXPECT_EQ(json.at_or_null("user").as_string(), "alice");
  EXPECT_DOUBLE_EQ(json.at_or_null("decayed").at_or_null("shots").as_double(),
                   100.0);
  EXPECT_EQ(json.at_or_null("raw").at_or_null("shots").as_int(), 100);
  EXPECT_EQ(json.at_or_null("share").at_or_null("account").as_string(),
            "hpc");
  EXPECT_EQ(json.at_or_null("pending_jobs").as_int(), 3);
  EXPECT_TRUE(json.contains("fairshare_priority"));
  EXPECT_TRUE(json.contains("rate_limit"));
}

}  // namespace
}  // namespace qcenv::accounting
