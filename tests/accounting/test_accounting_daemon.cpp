// Multi-tenant accounting over the full REST daemon: /v1/usage,
// /admin/fairshare, /admin/quotas/:user, 429-style rate limiting, per-user
// queue reporting, and usage surviving a kill-and-restart.
#include <gtest/gtest.h>

#include <memory>

#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;
using common::kSecond;
using common::TempDir;

quantum::Payload small_payload(std::uint64_t shots = 40) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

class AccountingDaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DaemonOptions options;
    options.admin_key = "root";
    options.accounting.fair_share.user_shares["alice"] = {"default", 50.0};
    options.accounting.fair_share.user_shares["bob"] = {"default", 30.0};
    options.admission.max_pending_per_user = 2;
    daemon_ = std::make_unique<MiddlewareDaemon>(
        options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
        nullptr, &clock_);
    auto port = daemon_->start();
    ASSERT_TRUE(port.ok());
    port_ = port.value();
  }

  net::HttpClient session_client(const std::string& user) {
    net::HttpClient plain(port_);
    Json body = Json::object();
    body["user"] = user;
    body["class"] = "test";
    auto opened = plain.post("/v1/sessions", body.dump());
    EXPECT_EQ(opened.value().status, 201);
    net::HttpClient authed(port_);
    authed.set_default_header(
        "X-Session-Token",
        Json::parse(opened.value().body).value().get_string("token").value());
    return authed;
  }

  net::HttpClient admin_client() {
    net::HttpClient admin(port_);
    admin.set_default_header("X-Admin-Key", "root");
    return admin;
  }

  std::uint64_t submit(net::HttpClient& client, std::uint64_t shots,
                       int expect_status = 201) {
    Json body = Json::object();
    body["payload"] = small_payload(shots).to_json();
    auto response = client.post("/v1/jobs", body.dump());
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, expect_status)
        << response.value().body;
    if (response.value().status != 201) return 0;
    return static_cast<std::uint64_t>(Json::parse(response.value().body)
                                          .value()
                                          .get_int("job_id")
                                          .value());
  }

  common::WallClock clock_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::uint16_t port_ = 0;
};

TEST_F(AccountingDaemonFixture, UsageEndpointReportsCharges) {
  auto alice = session_client("alice");
  const auto id = submit(alice, 30);
  ASSERT_TRUE(daemon_->dispatcher().wait(id, 60 * kSecond).ok());

  auto usage = alice.get("/v1/usage");
  ASSERT_TRUE(usage.ok());
  ASSERT_EQ(usage.value().status, 200);
  const Json body = Json::parse(usage.value().body).value();
  EXPECT_EQ(body.at_or_null("user").as_string(), "alice");
  EXPECT_EQ(body.at_or_null("raw").at_or_null("shots").as_int(), 30);
  EXPECT_GT(body.at_or_null("decayed").at_or_null("shots").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(
      body.at_or_null("share").at_or_null("shares").as_double(), 50.0);
  const double priority = body.at_or_null("fairshare_priority").as_double();
  EXPECT_GT(priority, 0.0);
  EXPECT_LT(priority, 1.0);  // alice consumed; no longer untouched

  // Unauthenticated access is refused.
  net::HttpClient plain(port_);
  auto denied = plain.get("/v1/usage");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);
}

TEST_F(AccountingDaemonFixture, FairshareAdminTable) {
  auto alice = session_client("alice");
  const auto id = submit(alice, 30);
  ASSERT_TRUE(daemon_->dispatcher().wait(id, 60 * kSecond).ok());

  net::HttpClient plain(port_);
  auto denied = plain.get("/admin/fairshare");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);

  auto admin = admin_client();
  auto table = admin.get("/admin/fairshare");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().status, 200);
  const Json body = Json::parse(table.value().body).value();
  ASSERT_TRUE(body.at_or_null("users").contains("alice"));
  const Json& row = body.at_or_null("users").at_or_null("alice");
  EXPECT_DOUBLE_EQ(row.at_or_null("shares").as_double(), 50.0);
  EXPECT_GT(row.at_or_null("usage_units").as_double(), 0.0);
  // bob is configured but idle: full priority, zero usage.
  ASSERT_TRUE(body.at_or_null("users").contains("bob"));
  EXPECT_GT(body.at_or_null("users")
                .at_or_null("bob")
                .at_or_null("priority")
                .as_double(),
            row.at_or_null("priority").as_double());
}

TEST_F(AccountingDaemonFixture, QuotaRateLimitYields429) {
  auto admin = admin_client();
  auto quota = admin.post("/admin/quotas/bob",
                          R"({"submit_per_sec": 0.001, "submit_burst": 1})");
  ASSERT_TRUE(quota.ok());
  ASSERT_EQ(quota.value().status, 200);
  const Json applied = Json::parse(quota.value().body).value();
  EXPECT_DOUBLE_EQ(applied.at_or_null("rate_limit")
                       .at_or_null("submit_per_sec")
                       .as_double(),
                   0.001);

  auto bob = session_client("bob");
  (void)submit(bob, 10);  // consumes the single burst token
  Json body = Json::object();
  body["payload"] = small_payload(10).to_json();
  auto throttled = bob.post("/v1/jobs", body.dump());
  ASSERT_TRUE(throttled.ok());
  EXPECT_EQ(throttled.value().status, 429);
  EXPECT_NE(throttled.value().body.find("rate limit"), std::string::npos);
  // Other users are unaffected.
  auto alice = session_client("alice");
  (void)submit(alice, 10);
}

TEST_F(AccountingDaemonFixture, InflightShotCapYields429) {
  auto admin = admin_client();
  auto quota =
      admin.post("/admin/quotas/alice", R"({"max_inflight_shots": 50})");
  ASSERT_EQ(quota.value().status, 200);
  daemon_->dispatcher().drain();  // keep reservations in flight
  auto alice = session_client("alice");
  (void)submit(alice, 40);
  Json body = Json::object();
  body["payload"] = small_payload(20).to_json();
  auto rejected = alice.post("/v1/jobs", body.dump());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 429);
  EXPECT_NE(rejected.value().body.find("per-user cap"), std::string::npos);
  daemon_->dispatcher().resume();
}

TEST_F(AccountingDaemonFixture, PerUserPendingLimitAndQueueCounts) {
  daemon_->dispatcher().drain();
  auto alice = session_client("alice");
  (void)submit(alice, 10);
  (void)submit(alice, 10);
  // Third queued job trips max_pending_per_user=2 with a 429 naming alice.
  Json body = Json::object();
  body["payload"] = small_payload(10).to_json();
  auto rejected = alice.post("/v1/jobs", body.dump());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 429);
  EXPECT_NE(rejected.value().body.find("user 'alice'"), std::string::npos);
  EXPECT_NE(rejected.value().body.find("per-user limit 2"),
            std::string::npos);
  // Another tenant still gets in: the limit is per user, not global.
  auto bob = session_client("bob");
  (void)submit(bob, 10);

  // /v1/queue exposes the per-user pending counts.
  net::HttpClient plain(port_);
  auto queue = plain.get("/v1/queue");
  ASSERT_TRUE(queue.ok());
  const Json parsed = Json::parse(queue.value().body).value();
  EXPECT_EQ(parsed.at_or_null("users").at_or_null("alice").as_int(), 2);
  EXPECT_EQ(parsed.at_or_null("users").at_or_null("bob").as_int(), 1);
  daemon_->dispatcher().resume();
}

TEST_F(AccountingDaemonFixture, QuotaEndpointValidatesInput) {
  auto admin = admin_client();
  auto bad = admin.post("/admin/quotas/alice", R"({"shares": "lots"})");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);
  // Negative limits are typos, not requests for huge uint64 wraparounds.
  auto negative =
      admin.post("/admin/quotas/alice", R"({"max_pending_jobs": -1})");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value().status, 400);
  auto reshared =
      admin.post("/admin/quotas/alice", R"({"shares": 75, "account": "hpc"})");
  ASSERT_EQ(reshared.value().status, 200);
  const Json body = Json::parse(reshared.value().body).value();
  EXPECT_EQ(body.at_or_null("account").as_string(), "hpc");
  EXPECT_DOUBLE_EQ(body.at_or_null("shares").as_double(), 75.0);
  // 0 = unlimited for this user (beats the fixture's global limit of 2);
  // null clears the override back to the policy default.
  ASSERT_EQ(admin.post("/admin/quotas/alice", R"({"max_pending_jobs": 0})")
                .value()
                .status,
            200);
  ASSERT_TRUE(daemon_->accounting().pending_limit("alice").has_value());
  EXPECT_EQ(*daemon_->accounting().pending_limit("alice"), 0u);
  daemon_->dispatcher().drain();
  auto alice = session_client("alice");
  for (int i = 0; i < 4; ++i) (void)submit(alice, 10);  // over the global 2
  daemon_->dispatcher().resume();
  ASSERT_EQ(admin.post("/admin/quotas/alice", R"({"max_pending_jobs": null})")
                .value()
                .status,
            200);
  EXPECT_FALSE(daemon_->accounting().pending_limit("alice").has_value());
}

TEST(DispatcherPendingCap, EnforcedAtomicallyUnderTheQueueLock) {
  // The admission boundary's read-then-submit can be raced by concurrent
  // submissions; the dispatcher's own check cannot.
  common::WallClock clock;
  Dispatcher dispatcher(qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
                        QueuePolicy{}, &clock, nullptr);
  dispatcher.drain();  // keep everything queued
  Dispatcher::SubmitOptions hints;
  hints.user_pending_limit = 2;
  ASSERT_TRUE(dispatcher
                  .submit(common::SessionId{1}, "alice", JobClass::kTest,
                          small_payload(10), hints)
                  .ok());
  ASSERT_TRUE(dispatcher
                  .submit(common::SessionId{1}, "alice", JobClass::kTest,
                          small_payload(10), hints)
                  .ok());
  auto rejected = dispatcher.submit(common::SessionId{1}, "alice",
                                    JobClass::kTest, small_payload(10),
                                    hints);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_NE(rejected.error().message().find("per-user limit 2"),
            std::string::npos);
  // Another user is not affected by alice's cap.
  EXPECT_TRUE(dispatcher
                  .submit(common::SessionId{2}, "bob", JobClass::kTest,
                          small_payload(10), hints)
                  .ok());
  dispatcher.resume();
}

TEST(AccountingRestart, UsageSurvivesKillAndRestart) {
  // Daemon-level acceptance: decayed usage journals through the store, so
  // a restarted daemon ranks tenants exactly as the dead one did.
  TempDir dir;
  common::WallClock clock;
  const auto make_daemon = [&] {
    DaemonOptions options;
    options.admin_key = "root";
    options.store.data_dir = dir.path();
    options.accounting.fair_share.user_shares["alice"] = {"default", 50.0};
    options.accounting.fair_share.user_shares["bob"] = {"default", 50.0};
    auto daemon = std::make_unique<MiddlewareDaemon>(
        options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
        nullptr, &clock);
    EXPECT_TRUE(daemon->start().ok());
    return daemon;
  };
  const auto run_job = [](MiddlewareDaemon& daemon, const std::string& user,
                          std::uint64_t shots) {
    net::HttpClient plain(daemon.port());
    Json open = Json::object();
    open["user"] = user;
    open["class"] = "test";
    auto session = plain.post("/v1/sessions", open.dump());
    ASSERT_EQ(session.value().status, 201);
    net::HttpClient authed(daemon.port());
    authed.set_default_header(
        "X-Session-Token",
        Json::parse(session.value().body).value().get_string("token").value());
    Json body = Json::object();
    body["payload"] = small_payload(shots).to_json();
    auto submitted = authed.post("/v1/jobs", body.dump());
    ASSERT_EQ(submitted.value().status, 201) << submitted.value().body;
    const auto id = static_cast<std::uint64_t>(
        Json::parse(submitted.value().body).value().get_int("job_id").value());
    ASSERT_TRUE(daemon.dispatcher().wait(id, 60 * kSecond).ok());
  };

  double alice_units = 0;
  double bob_units = 0;
  {
    auto daemon = make_daemon();
    run_job(*daemon, "alice", 200);
    run_job(*daemon, "bob", 40);
    const auto now = clock.now();
    alice_units = daemon->accounting().ledger().units("alice", now);
    bob_units = daemon->accounting().ledger().units("bob", now);
    EXPECT_GT(alice_units, bob_units);
  }  // destructor = kill

  auto revived = make_daemon();
  const auto now = clock.now();
  // Decay between the two reads is negligible (default 1h half-life, the
  // restart takes milliseconds): recovered usage matches what died.
  EXPECT_NEAR(revived->accounting().ledger().units("alice", now),
              alice_units, alice_units * 0.01 + 1e-9);
  EXPECT_NEAR(revived->accounting().ledger().units("bob", now), bob_units,
              bob_units * 0.01 + 1e-9);
  EXPECT_EQ(revived->accounting().ledger().usage("alice", now).raw_shots,
            200u);
  // Post-recovery ordering: with equal shares, the under-served tenant's
  // job dispatches first — the same decision the dead daemon would make.
  revived->dispatcher().drain();
  {
    net::HttpClient plain(revived->port());
    for (const std::string user : {"alice", "bob"}) {
      Json open = Json::object();
      open["user"] = user;
      open["class"] = "test";
      auto session = plain.post("/v1/sessions", open.dump());
      ASSERT_EQ(session.value().status, 201);
      net::HttpClient authed(revived->port());
      authed.set_default_header("X-Session-Token",
                                Json::parse(session.value().body)
                                    .value()
                                    .get_string("token")
                                    .value());
      Json body = Json::object();
      body["payload"] = small_payload(10).to_json();
      ASSERT_EQ(authed.post("/v1/jobs", body.dump()).value().status, 201);
    }
  }
  const auto order = revived->dispatcher().queue_order();
  ASSERT_EQ(order.size(), 2u);
  // Alice submitted first but consumed 5x bob's shots: bob goes first.
  EXPECT_EQ(revived->dispatcher().query(order.front()).value().user, "bob");
  revived->dispatcher().resume();
}

}  // namespace
}  // namespace qcenv::daemon
