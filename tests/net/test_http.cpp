// HTTP codec: parsing, serialization, router matching.
#include <gtest/gtest.h>

#include "net/http.hpp"
#include "net/http_server.hpp"

namespace qcenv::net {
namespace {

TEST(HttpCodec, RequestSerializeAddsContentLength) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/jobs";
  request.body = "hello";
  const std::string wire = request.serialize();
  EXPECT_NE(wire.find("POST /v1/jobs HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpCodec, RequestParserHandlesSplitDelivery) {
  HttpRequestParser parser;
  const std::string wire =
      "GET /v1/device?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: "
      "4\r\n\r\nbody";
  // Feed byte by byte.
  for (const char c : wire) {
    auto progress = parser.feed(std::string_view(&c, 1));
    ASSERT_TRUE(progress.ok());
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path(), "/v1/device");
  EXPECT_EQ(parser.request().query_param("verbose").value(), "1");
  EXPECT_EQ(parser.request().body, "body");
}

TEST(HttpCodec, HeadersAreCaseInsensitive) {
  HttpRequestParser parser;
  ASSERT_TRUE(
      parser.feed("GET / HTTP/1.1\r\ncontent-length: 0\r\nX-A: b\r\n\r\n")
          .ok());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().headers.at("Content-Length"), "0");
  EXPECT_EQ(parser.request().headers.at("x-a"), "b");
}

TEST(HttpCodec, MalformedRequestLineRejected) {
  HttpRequestParser parser;
  auto result = parser.feed("NOT_A_REQUEST\r\n\r\n");
  EXPECT_FALSE(result.ok());
}

TEST(HttpCodec, UnsupportedVersionRejected) {
  HttpRequestParser parser;
  EXPECT_FALSE(parser.feed("GET / HTTP/2\r\n\r\n").ok());
}

TEST(HttpCodec, BadContentLengthRejected) {
  HttpRequestParser parser;
  EXPECT_FALSE(
      parser.feed("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n").ok());
}

TEST(HttpCodec, ResponseRoundTrip) {
  HttpResponse response = HttpResponse::json(201, R"({"id":1})");
  HttpResponseParser parser;
  ASSERT_TRUE(parser.feed(response.serialize()).ok());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().status, 201);
  EXPECT_EQ(parser.response().body, R"({"id":1})");
  EXPECT_EQ(parser.response().headers.at("Content-Type"),
            "application/json");
}

TEST(HttpCodec, ParseHeaderBlockErrors) {
  EXPECT_FALSE(parse_header_block("no colon here").ok());
  EXPECT_FALSE(parse_header_block(": empty name").ok());
  auto ok = parse_header_block("A: 1\r\nB: two\r\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().at("A"), "1");
}

TEST(Router, ExactAndParamMatching) {
  Router router;
  router.add("GET", "/v1/jobs/:id", [](const HttpRequest&,
                                       const PathParams& params) {
    return HttpResponse::json(200, params.at("id"));
  });
  router.add("GET", "/v1/jobs", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::json(200, "list");
  });
  HttpRequest request;
  request.method = "GET";
  request.target = "/v1/jobs/42";
  EXPECT_EQ(router.dispatch(request).body, "42");
  request.target = "/v1/jobs";
  EXPECT_EQ(router.dispatch(request).body, "list");
}

TEST(Router, NotFoundAndMethodNotAllowed) {
  Router router;
  router.add("GET", "/thing", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::json(200, "ok");
  });
  HttpRequest request;
  request.method = "GET";
  request.target = "/other";
  EXPECT_EQ(router.dispatch(request).status, 404);
  request.method = "POST";
  request.target = "/thing";
  EXPECT_EQ(router.dispatch(request).status, 405);
}

TEST(Router, MultipleParams) {
  Router router;
  router.add("GET", "/a/:x/b/:y",
             [](const HttpRequest&, const PathParams& params) {
               return HttpResponse::json(200,
                                         params.at("x") + "-" + params.at("y"));
             });
  HttpRequest request;
  request.method = "GET";
  request.target = "/a/1/b/2";
  EXPECT_EQ(router.dispatch(request).body, "1-2");
}

}  // namespace
}  // namespace qcenv::net
