// Live HTTP server + client over loopback sockets.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "net/http_client.hpp"
#include "net/http_server.hpp"

namespace qcenv::net {
namespace {

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.router().add("GET", "/ping",
                         [](const HttpRequest&, const PathParams&) {
                           return HttpResponse::json(200, R"({"pong":true})");
                         });
    server_.router().add("POST", "/echo",
                         [](const HttpRequest& request, const PathParams&) {
                           return HttpResponse::json(200, request.body);
                         });
    server_.router().add(
        "GET", "/items/:id",
        [](const HttpRequest&, const PathParams& params) {
          return HttpResponse::json(200, params.at("id"));
        });
    auto port = server_.start();
    ASSERT_TRUE(port.ok()) << port.error().to_string();
    port_ = port.value();
  }

  HttpServer server_;
  std::uint16_t port_ = 0;
};

TEST_F(ServerFixture, GetRoundTrip) {
  HttpClient client(port_);
  auto response = client.get("/ping");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, R"({"pong":true})");
}

TEST_F(ServerFixture, PostEchoesBody) {
  HttpClient client(port_);
  const std::string body(10000, 'x');  // multi-read body
  auto response = client.post("/echo", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body, body);
}

TEST_F(ServerFixture, PathParamsReachHandler) {
  HttpClient client(port_);
  auto response = client.get("/items/abc-123");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body, "abc-123");
}

TEST_F(ServerFixture, UnknownRouteIs404) {
  HttpClient client(port_);
  auto response = client.get("/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
}

TEST_F(ServerFixture, ConcurrentClients) {
  std::atomic<int> ok_count{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      HttpClient client(port_);
      for (int i = 0; i < 10; ++i) {
        auto response = client.get("/ping");
        if (response.ok() && response.value().status == 200) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  threads.clear();
  EXPECT_EQ(ok_count.load(), 80);
  EXPECT_GE(server_.requests_served(), 80u);
}

TEST_F(ServerFixture, MiddlewareShortCircuits) {
  server_.set_middleware(
      [](const HttpRequest& request) -> std::optional<HttpResponse> {
        if (request.headers.find("X-Auth") == request.headers.end()) {
          return HttpResponse::json(401, R"({"error":"no auth"})");
        }
        return std::nullopt;
      });
  HttpClient anonymous(port_);
  auto denied = anonymous.get("/ping");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);

  HttpClient authed(port_);
  authed.set_default_header("X-Auth", "yes");
  auto allowed = authed.get("/ping");
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed.value().status, 200);
}

TEST_F(ServerFixture, StopThenConnectFails) {
  server_.stop();
  HttpClient client(port_, 200 * common::kMillisecond);
  auto response = client.get("/ping");
  EXPECT_FALSE(response.ok());
}

TEST(ServerLifecycle, EphemeralPortsAreDistinct) {
  HttpServer a, b;
  auto pa = a.start();
  auto pb = b.start();
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_NE(pa.value(), pb.value());
}

TEST(ServerLifecycle, MalformedRequestGets400) {
  HttpServer server;
  auto port = server.start();
  ASSERT_TRUE(port.ok());
  auto socket = connect_local(port.value());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket.value().send_all("GARBAGE\r\n\r\n").ok());
  auto reply = socket.value().recv_some();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.value().find("400"), std::string::npos);
}

}  // namespace
}  // namespace qcenv::net
