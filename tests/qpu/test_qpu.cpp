// Calibration drift, QPU device pacing/cancellation, controller queue.
#include <numbers>

#include <gtest/gtest.h>

#include "qpu/calibration.hpp"
#include "qpu/controller.hpp"
#include "qpu/qpu_device.hpp"

namespace qcenv::qpu {
namespace {

using common::kSecond;
using common::ManualClock;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots, std::size_t atoms = 2) {
  Sequence seq(AtomRegister::linear_chain(atoms, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

QpuOptions fast_options() {
  QpuOptions options;
  options.time_scale = 1e9;  // compress device time away for tests
  options.setup_seconds = 2.0;
  return options;
}

TEST(CalibrationModel, StartsNominal) {
  CalibrationModel model(quantum::CalibrationSnapshot{}, DriftParams{}, 1);
  EXPECT_DOUBLE_EQ(model.current().rabi_scale, 1.0);
}

TEST(CalibrationModel, DriftMovesParameters) {
  CalibrationModel model(quantum::CalibrationSnapshot{}, DriftParams{}, 7);
  model.advance_to(4LL * 3600 * kSecond);  // 4 hours
  const auto& cal = model.current();
  const bool anything_moved = cal.rabi_scale != 1.0 ||
                              cal.detuning_offset != 0.0 ||
                              cal.dephasing_rate != 0.008;
  EXPECT_TRUE(anything_moved);
  EXPECT_EQ(cal.timestamp_ns, 4LL * 3600 * kSecond);
}

TEST(CalibrationModel, DephasingDegradesSecularly) {
  DriftParams params;
  params.dephasing_sigma = 0.0;  // isolate the secular term
  params.rabi_scale_sigma = 0.0;
  params.detuning_offset_sigma = 0.0;
  params.dephasing_degradation_per_hour = 0.01;
  CalibrationModel model(quantum::CalibrationSnapshot{}, params, 3);
  // Advance in steps so the OU mean reversion tracks the degrading mean.
  for (int h = 1; h <= 10; ++h) {
    model.advance_to(h * 3600LL * kSecond);
  }
  EXPECT_GT(model.current().dephasing_rate, 0.05);
}

TEST(CalibrationModel, RecalibrateResets) {
  CalibrationModel model(quantum::CalibrationSnapshot{}, DriftParams{}, 7);
  model.advance_to(10LL * 3600 * kSecond);
  model.recalibrate(11LL * 3600 * kSecond);
  EXPECT_DOUBLE_EQ(model.current().rabi_scale, 1.0);
  EXPECT_DOUBLE_EQ(model.current().dephasing_rate, 0.008);
  EXPECT_EQ(model.last_recalibration_ns(), 11LL * 3600 * kSecond);
}

TEST(CalibrationModel, DeterministicUnderSeed) {
  CalibrationModel a(quantum::CalibrationSnapshot{}, DriftParams{}, 42);
  CalibrationModel b(quantum::CalibrationSnapshot{}, DriftParams{}, 42);
  a.advance_to(3600LL * kSecond);
  b.advance_to(3600LL * kSecond);
  EXPECT_EQ(a.current(), b.current());
}

TEST(QpuDeviceTest, ExecutePacesDeviceTime) {
  ManualClock clock;
  QpuOptions options;
  options.setup_seconds = 2.0;
  options.time_scale = 1.0;  // ManualClock auto-advances: no real waiting
  QpuDevice device(options, &clock);
  const auto start = clock.now();
  auto samples = device.execute(small_payload(10));
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  // 2 s setup + 10 shots at 1 Hz = 12 s of device time.
  EXPECT_NEAR(common::to_seconds(clock.now() - start), 12.0, 0.01);
  EXPECT_EQ(device.counters().jobs_executed, 1u);
  EXPECT_EQ(device.counters().shots_executed, 10u);
}

TEST(QpuDeviceTest, ShotRateScalesDuration) {
  ManualClock clock;
  QpuOptions options;
  options.spec.shot_rate_hz = 100.0;  // roadmap rate
  options.setup_seconds = 1.0;
  QpuDevice device(options, &clock);
  const auto start = clock.now();
  ASSERT_TRUE(device.execute(small_payload(500)).ok());
  EXPECT_NEAR(common::to_seconds(clock.now() - start), 1.0 + 5.0, 0.01);
}

TEST(QpuDeviceTest, EstimatedDurationMatchesModel) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  EXPECT_NEAR(device.estimated_duration_seconds(small_payload(100)), 102.0,
              1e-9);
}

TEST(QpuDeviceTest, RejectsDigitalPayloads) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  quantum::Circuit c(2);
  c.h(0);
  auto result = device.execute(Payload::from_circuit(c, 10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), common::ErrorCode::kFailedPrecondition);
}

TEST(QpuDeviceTest, ValidatesAgainstSpec) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  auto result = device.execute(small_payload(10, 30));  // exceeds radius
  EXPECT_FALSE(result.ok());
}

TEST(QpuDeviceTest, CancellationBetweenBatches) {
  ManualClock clock;
  QpuOptions options;
  options.shot_batch = 5;
  QpuDevice device(options, &clock);
  std::atomic<bool> cancel{true};  // cancel immediately
  auto result = device.execute(small_payload(100), &cancel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), common::ErrorCode::kCancelled);
  EXPECT_EQ(device.counters().jobs_cancelled, 1u);
}

TEST(QpuDeviceTest, ResultsCarryCalibrationMetadata) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  auto samples = device.execute(small_payload(20));
  ASSERT_TRUE(samples.ok());
  const auto& meta = samples.value().metadata();
  EXPECT_TRUE(meta.contains("calibration"));
  EXPECT_EQ(meta.at_or_null("backend").as_string(), "qpu:sim-analog");
  EXPECT_NEAR(meta.at_or_null("device_seconds").as_double(), 22.0, 1e-9);
}

TEST(QpuDeviceTest, QaCheckNearOneWhenCalibrated) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  device.recalibrate();
  auto quality = device.run_qa_check();
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality.value(), 0.9);
}

TEST(QpuDeviceTest, SetShotRateGuardsPositive) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  EXPECT_FALSE(device.set_shot_rate(0.0).ok());
  EXPECT_TRUE(device.set_shot_rate(50.0).ok());
  EXPECT_DOUBLE_EQ(device.spec().shot_rate_hz, 50.0);
}

// ---- Controller -------------------------------------------------------------

TEST(QpuControllerTest, ExecutesFifo) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  const auto a = controller.submit(small_payload(5));
  const auto b = controller.submit(small_payload(5));
  auto result_a = controller.wait(a);
  auto result_b = controller.wait(b);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  const auto info_a = controller.info(a).value();
  const auto info_b = controller.info(b).value();
  EXPECT_LE(info_a.finished_ns, info_b.started_ns);
}

TEST(QpuControllerTest, StatusTransitions) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  const auto id = controller.submit(small_payload(5));
  auto samples = controller.wait(id);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(controller.status(id).value(), TaskState::kDone);
  EXPECT_EQ(samples.value().total_shots(), 5u);
}

TEST(QpuControllerTest, CancelQueuedTask) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  // Saturate with one long task, then queue a victim.
  const auto running = controller.submit(small_payload(50));
  const auto victim = controller.submit(small_payload(50));
  ASSERT_TRUE(controller.cancel(victim).ok());
  auto result = controller.wait(victim);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), common::ErrorCode::kCancelled);
  EXPECT_TRUE(controller.wait(running).ok());
}

TEST(QpuControllerTest, UnknownTaskErrors) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  EXPECT_FALSE(controller.status(common::TaskId{999}).ok());
  EXPECT_FALSE(controller.result(common::TaskId{999}).ok());
  EXPECT_FALSE(controller.cancel(common::TaskId{999}).ok());
}

TEST(QpuControllerTest, FailedJobReportsError) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  const auto id = controller.submit(small_payload(5, 30));  // invalid radius
  auto result = controller.wait(id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(controller.status(id).value(), TaskState::kFailed);
  EXPECT_FALSE(controller.info(id).value().error.empty());
}

TEST(QpuControllerTest, ListTasksReflectsHistory) {
  ManualClock clock;
  QpuDevice device(fast_options(), &clock);
  QpuController controller(&device, &clock);
  const auto a = controller.submit(small_payload(2));
  ASSERT_TRUE(controller.wait(a).ok());
  const auto tasks = controller.list_tasks();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].id, a);
  EXPECT_EQ(tasks[0].shots, 2u);
}

}  // namespace
}  // namespace qcenv::qpu
