// Maintenance scheduler: periodic QA cadence and threshold-triggered
// recalibration on a drifting device.
#include <gtest/gtest.h>

#include "qpu/maintenance.hpp"

namespace qcenv::qpu {
namespace {

using common::kSecond;
using common::ManualClock;

QpuOptions drifting_options() {
  QpuOptions options;
  options.time_scale = 1e9;
  // Aggressive degradation so quality visibly decays within hours.
  options.drift.dephasing_degradation_per_hour = 0.05;
  options.drift.detuning_offset_sigma = 0.8;
  options.seed = 11;
  return options;
}

TEST(Maintenance, QaRunsOnFirstTickThenRespectsInterval) {
  ManualClock clock;
  QpuDevice device(drifting_options(), &clock);
  MaintenancePolicy policy;
  policy.qa_interval = 3600 * kSecond;
  policy.quality_threshold = 0.0;  // never trigger recalibration
  MaintenanceScheduler scheduler(&device, policy);

  auto first = scheduler.tick(clock.now());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().qa_ran);
  EXPECT_EQ(scheduler.counters().qa_runs, 1u);

  // Too early: no QA.
  clock.advance(600 * kSecond);
  auto early = scheduler.tick(clock.now());
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early.value().qa_ran);
  EXPECT_EQ(scheduler.counters().qa_runs, 1u);

  // Past the interval: QA again.
  clock.advance(3600 * kSecond);
  auto due = scheduler.tick(clock.now());
  ASSERT_TRUE(due.ok());
  EXPECT_TRUE(due.value().qa_ran);
  EXPECT_EQ(scheduler.counters().qa_runs, 2u);
}

TEST(Maintenance, BadQualityTriggersRecalibrationAndRecovers) {
  ManualClock clock;
  QpuDevice device(drifting_options(), &clock);
  MaintenancePolicy policy;
  policy.qa_interval = 3600 * kSecond;
  policy.quality_threshold = 0.9;
  policy.max_calibration_age = 0;
  MaintenanceScheduler scheduler(&device, policy);

  // Let the device degrade for a simulated day, ticking hourly.
  bool triggered = false;
  for (int hour = 1; hour <= 48 && !triggered; ++hour) {
    clock.advance(3600 * kSecond);
    auto outcome = scheduler.tick(clock.now());
    ASSERT_TRUE(outcome.ok());
    triggered = outcome.value().recalibrated;
    if (triggered) {
      // Post-recalibration confirmation QA must look healthy again.
      EXPECT_GT(outcome.value().quality, 0.9);
    }
  }
  EXPECT_TRUE(triggered);
  EXPECT_GE(scheduler.counters().quality_triggers, 1u);
}

TEST(Maintenance, StaleCalibrationForcesRecalibration) {
  ManualClock clock;
  QpuOptions options = drifting_options();
  options.drift.dephasing_degradation_per_hour = 0.0;  // quality stays fine
  QpuDevice device(options, &clock);
  MaintenancePolicy policy;
  policy.qa_interval = 3600 * kSecond;
  policy.quality_threshold = 0.0;
  policy.max_calibration_age = 10 * 3600 * kSecond;
  MaintenanceScheduler scheduler(&device, policy);

  ASSERT_TRUE(scheduler.tick(clock.now()).ok());  // baseline (arms age)
  EXPECT_EQ(scheduler.counters().recalibrations, 0u);
  clock.advance(11LL * 3600 * kSecond);  // past max_calibration_age
  auto outcome = scheduler.tick(clock.now());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().recalibrated);
  EXPECT_EQ(scheduler.counters().recalibrations, 1u);
  EXPECT_EQ(scheduler.counters().quality_triggers, 0u);
}

}  // namespace
}  // namespace qcenv::qpu
