// Journal format migration: v1 JSON files (including torn tails) must
// open, replay and append under the v2-native code; compaction rewrites
// them as v2; corrupt v2 frames are rejected at their frame boundary; and
// the binary job_submitted body round-trips to exactly the JSON the v1
// encoding would have produced.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/temp_dir.hpp"
#include "quantum/payload.hpp"
#include "store/crc32c.hpp"
#include "store/journal.hpp"
#include "store/recovery.hpp"
#include "store/records.hpp"

namespace qcenv::store {
namespace {

using common::Json;
using common::TempDir;

constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kFrameHeaderLen = 8;

quantum::Payload small_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(50, 2.0),
                               quantum::Waveform::constant(50, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

std::string v1_line(std::uint64_t seq, const std::string& type,
                    const std::string& data) {
  return "{\"seq\":" + std::to_string(seq) + ",\"t\":" +
         std::to_string(seq * 10) + ",\"e\":\"" + type + "\",\"d\":" + data +
         "}\n";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A v1 journal: one submitted job, one batch, one completion.
std::string sample_v1_journal() {
  JobRecord job;
  job.id = 7;
  job.session = 1;
  job.user = "alice";
  job.total_shots = 100;
  job.submit_time = 10;
  Json wrapped = Json::object();
  wrapped["job"] = job.to_json();
  std::string content = v1_line(1, "job_submitted", wrapped.dump());
  content += v1_line(2, "batch_dispatched",
                     R"({"id":7,"resource":"emu0","shots":100})");
  content += v1_line(3, "batch_done", R"({"id":7,"shots":100})");
  content += v1_line(4, "job_completed", R"({"id":7})");
  return content;
}

/// Byte offsets of every v2 frame in `content` (after the magic).
std::vector<std::size_t> frame_offsets(const std::string& content) {
  std::vector<std::size_t> offsets;
  std::size_t pos = kMagicLen;
  while (pos + kFrameHeaderLen <= content.size()) {
    offsets.push_back(pos);
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(content.data() + pos);
    const std::uint32_t len =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    pos += kFrameHeaderLen + len;
  }
  return offsets;
}

TEST(JournalMigration, V1FileOpensReplaysAndAppendsInV1) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.log";
  write_file(path, sample_v1_journal());

  auto entries = JobJournal::read_file(path);
  ASSERT_TRUE(entries.ok()) << entries.error().to_string();
  ASSERT_EQ(entries.value().size(), 4u);
  EXPECT_EQ(entries.value()[0].type, "job_submitted");
  EXPECT_EQ(entries.value()[3].seq, 4u);

  // Opening with v2-native options keeps appending v1: one segment, one
  // encoding.
  common::WallClock clock;
  JournalOptions options;
  options.sync = SyncMode::kAlways;
  ASSERT_EQ(options.format, JournalFormat::kBinaryV2);
  JobJournal journal(options, &clock, nullptr);
  ASSERT_TRUE(journal.open(path).ok());
  EXPECT_EQ(journal.active_format(), JournalFormat::kJsonV1);
  Json data = Json::object();
  data["id"] = 7;
  journal.append("job_evicted", std::move(data));

  const std::string raw = read_raw(path);
  EXPECT_EQ(raw.front(), '{') << "appends must stay v1 until compaction";
  auto after = JobJournal::read_file(path);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), 5u);
  EXPECT_EQ(after.value()[4].type, "job_evicted");
  EXPECT_EQ(after.value()[4].seq, 5u);
}

TEST(JournalMigration, V1TornTailIsTruncatedOnOpen) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.log";
  // A crash mid-append: the final line has no terminating newline.
  write_file(path, sample_v1_journal() + R"({"seq":5,"t":50,"e":"job_)");

  auto entries = JobJournal::read_file(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 4u) << "torn tail must be dropped";

  common::WallClock clock;
  JournalOptions options;
  options.sync = SyncMode::kAlways;
  JobJournal journal(options, &clock, nullptr);
  ASSERT_TRUE(journal.open(path).ok());
  // The fragment is gone from disk, so the next append cannot splice onto
  // garbage and seq numbering continues after the last COMPLETE line.
  const std::string raw = read_raw(path);
  EXPECT_EQ(raw.size(), sample_v1_journal().size());
  Json data = Json::object();
  data["id"] = 7;
  journal.append("job_evicted", std::move(data));
  auto after = JobJournal::read_file(path);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), 5u);
  EXPECT_EQ(after.value()[4].seq, 5u);
}

TEST(JournalMigration, CompactionRewritesV1AsV2WithIdenticalReplay) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.log";
  write_file(path, sample_v1_journal());

  auto before = JobJournal::read_file(path);
  ASSERT_TRUE(before.ok());

  common::WallClock clock;
  JournalOptions options;
  options.sync = SyncMode::kAlways;
  JobJournal journal(options, &clock, nullptr);
  ASSERT_TRUE(journal.open(path).ok());
  ASSERT_TRUE(journal.drop_through(0).ok());  // keep everything, re-encode

  const std::string raw = read_raw(path);
  ASSERT_GE(raw.size(), kMagicLen);
  EXPECT_EQ(raw.substr(0, 6), "QCWAL2") << "migration must rewrite as v2";
  EXPECT_EQ(journal.active_format(), JournalFormat::kBinaryV2);

  auto after = JobJournal::read_file(path);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), before.value().size());
  for (std::size_t i = 0; i < after.value().size(); ++i) {
    EXPECT_EQ(after.value()[i].seq, before.value()[i].seq);
    EXPECT_EQ(after.value()[i].type, before.value()[i].type);
    EXPECT_EQ(after.value()[i].data.dump(), before.value()[i].data.dump())
        << "event " << i << " must replay identically after migration";
  }

  // The replayer agrees: same recovered job either way.
  RecoveredState replayed =
      RecoveryReplayer::apply(std::nullopt, after.value());
  ASSERT_EQ(replayed.jobs.size(), 1u);
  EXPECT_EQ(replayed.jobs[0].id, 7u);
  EXPECT_EQ(replayed.jobs[0].phase, JobPhase::kCompleted);
  EXPECT_EQ(replayed.jobs[0].shots_done, 100u);
}

TEST(JournalMigration, CorruptCrcFrameIsRejectedAtItsBoundary) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.wal";
  common::WallClock clock;
  {
    JournalOptions options;
    options.sync = SyncMode::kAlways;
    JobJournal journal(options, &clock, nullptr);
    ASSERT_TRUE(journal.open(path).ok());
    for (int i = 1; i <= 3; ++i) {
      Json data = Json::object();
      data["id"] = i;
      journal.append("job_evicted", std::move(data));
    }
  }
  std::string content = read_raw(path);
  const std::vector<std::size_t> offsets = frame_offsets(content);
  ASSERT_EQ(offsets.size(), 3u);

  // Flip one payload byte of the MIDDLE frame: corruption before the
  // tail must be an error naming the frame, not a silent truncation that
  // also discards the intact frame after it.
  std::string corrupted = content;
  corrupted[offsets[1] + kFrameHeaderLen + 2] ^= 0x40;
  write_file(path, corrupted);
  auto entries = JobJournal::read_file(path);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.error().message().find("frame 2"), std::string::npos)
      << entries.error().message();

  // The same flip in the FINAL frame is indistinguishable from a torn
  // tail: dropped, everything before it replays.
  corrupted = content;
  corrupted[offsets[2] + kFrameHeaderLen + 2] ^= 0x40;
  write_file(path, corrupted);
  entries = JobJournal::read_file(path);
  ASSERT_TRUE(entries.ok()) << entries.error().to_string();
  EXPECT_EQ(entries.value().size(), 2u);
}

TEST(JournalMigration, BinaryBodyMatchesJsonBodyExactly) {
  TempDir dir("qcenv-migration-");
  common::WallClock clock;
  const auto payload =
      std::make_shared<const quantum::Payload>(small_payload(64));
  JobRecord meta;
  meta.id = 1;
  meta.session = 2;
  meta.user = "alice";
  meta.job_class = daemon::JobClass::kProduction;
  meta.total_shots = 64;
  meta.submit_time = 1234;
  meta.resource = "emu0";
  meta.policy = "round_robin";

  const auto run = [&](JournalFormat format) {
    JournalOptions options;
    options.sync = SyncMode::kAlways;
    options.format = format;
    JobJournal journal(options, &clock, nullptr);
    const std::string path =
        dir.path() + "/journal-" + to_string(format) + ".wal";
    EXPECT_TRUE(journal.open(path).ok());
    // Two submissions of the same program: the first embeds the payload
    // body, the second dedups to the fingerprint.
    JobRecord second = meta;
    second.id = 2;
    journal.append_job_submitted(meta, payload);
    journal.append_job_submitted(second, payload);
    auto entries = JobJournal::read_file(path);
    EXPECT_TRUE(entries.ok()) << entries.error().to_string();
    return std::move(entries).value();
  };

  const auto v1 = run(JournalFormat::kJsonV1);
  const auto v2 = run(JournalFormat::kBinaryV2);
  ASSERT_EQ(v1.size(), 2u);
  ASSERT_EQ(v2.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(v2[i].data.dump(), v1[i].data.dump())
        << "binary body " << i
        << " must decode to the exact JSON the v1 encoding carries";
  }
  // Sanity on the dedup: first sighting embeds, repeat references.
  EXPECT_FALSE(v2[0].data.at_or_null("job").at_or_null("payload").is_null());
  EXPECT_TRUE(v2[1].data.at_or_null("job").at_or_null("payload").is_null());
  EXPECT_EQ(
      v2[1].data.at_or_null("job").at_or_null("payload_hash").as_int(),
      v2[0].data.at_or_null("job").at_or_null("payload_hash").as_int());
}

TEST(JournalMigration, BinaryBodyTranscodesOnDowngradeToV1) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.wal";
  common::WallClock clock;
  const auto payload =
      std::make_shared<const quantum::Payload>(small_payload(64));
  JobRecord meta;
  meta.id = 1;
  meta.user = "alice";
  meta.total_shots = 64;
  {
    JournalOptions options;
    options.sync = SyncMode::kAlways;
    JobJournal journal(options, &clock, nullptr);
    ASSERT_TRUE(journal.open(path).ok());
    journal.append_job_submitted(meta, payload);
  }
  auto before = JobJournal::read_file(path);
  ASSERT_TRUE(before.ok());
  {
    JournalOptions options;
    options.sync = SyncMode::kAlways;
    options.format = JournalFormat::kJsonV1;  // debugging downgrade
    JobJournal journal(options, &clock, nullptr);
    ASSERT_TRUE(journal.open(path).ok());
    ASSERT_TRUE(journal.drop_through(0).ok());
  }
  const std::string raw = read_raw(path);
  EXPECT_EQ(raw.front(), '{');
  auto after = JobJournal::read_file(path);
  ASSERT_TRUE(after.ok()) << after.error().to_string();
  ASSERT_EQ(after.value().size(), before.value().size());
  EXPECT_EQ(after.value()[0].data.dump(), before.value()[0].data.dump());
}

TEST(JournalMigration, MalformedBinaryBodyIsRejectedAtItsFrame) {
  TempDir dir("qcenv-migration-");
  const std::string path = dir.path() + "/journal.wal";
  common::WallClock clock;
  {
    JournalOptions options;
    options.sync = SyncMode::kAlways;
    JobJournal journal(options, &clock, nullptr);
    ASSERT_TRUE(journal.open(path).ok());
    Json data = Json::object();
    data["id"] = 1;
    journal.append("job_evicted", std::move(data));
  }
  // Hand-craft a frame whose CRC is valid but whose body is a truncated
  // binary record (marker byte then garbage): the decoder, not the CRC,
  // must reject it, and the error must name this frame.
  std::string content = read_raw(path);
  const std::string type = "job_submitted";
  std::string payload;
  const auto le32 = [&](std::uint32_t v) {
    payload.push_back(static_cast<char>(v & 0xFF));
    payload.push_back(static_cast<char>((v >> 8) & 0xFF));
    payload.push_back(static_cast<char>((v >> 16) & 0xFF));
    payload.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  le32(2);  // seq lo
  le32(0);  // seq hi
  le32(20);  // time lo
  le32(0);   // time hi
  le32(static_cast<std::uint32_t>(type.size()));
  payload += type;
  payload += '\x01';  // binary marker...
  payload += "junk";  // ...followed by a hopelessly truncated record
  std::string frame;
  frame.reserve(kFrameHeaderLen + payload.size());
  const auto frame_le32 = [&](std::uint32_t v) {
    frame.push_back(static_cast<char>(v & 0xFF));
    frame.push_back(static_cast<char>((v >> 8) & 0xFF));
    frame.push_back(static_cast<char>((v >> 16) & 0xFF));
    frame.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  frame_le32(static_cast<std::uint32_t>(payload.size()));
  frame_le32(crc32c(payload));
  frame += payload;
  // Mid-file position: append one more valid-looking frame after it so
  // the rejection cannot masquerade as a dropped torn tail.
  write_file(path, content + frame + frame);
  auto entries = JobJournal::read_file(path);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.error().message().find("frame 2"), std::string::npos)
      << entries.error().message();
  EXPECT_NE(entries.error().message().find("binary"), std::string::npos)
      << entries.error().message();
}

}  // namespace
}  // namespace qcenv::store
