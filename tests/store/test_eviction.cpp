// Terminal-job GC: records_ must stop growing with uptime. Retention and
// LRU-cap eviction at the dispatcher, journal-visible job_evicted events,
// and replay agreeing that evicted jobs stay gone.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;
using common::kSecond;
using common::ManualClock;
using common::TempDir;

quantum::Payload small_payload(std::uint64_t shots = 30) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

std::uint64_t run_to_completion(Dispatcher& dispatcher, std::uint64_t shots,
                                const std::string& user = "alice") {
  const auto id = dispatcher.submit(common::SessionId{1}, user,
                                    JobClass::kTest, small_payload(shots));
  EXPECT_TRUE(dispatcher.wait(id, 60 * kSecond).ok());
  return id;
}

TEST(TerminalJobGc, RetentionEvictsOldTerminalRecords) {
  ManualClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  dispatcher.set_terminal_retention(100 * kSecond, 0);

  const auto old_id = run_to_completion(dispatcher, 30);
  EXPECT_TRUE(dispatcher.result(old_id).ok());

  clock.advance(200 * kSecond);
  // The next submission pays for the sweep.
  const auto fresh_id = run_to_completion(dispatcher, 30);
  auto evicted = dispatcher.query(old_id);
  ASSERT_FALSE(evicted.ok());
  EXPECT_EQ(evicted.error().code(), common::ErrorCode::kNotFound);
  EXPECT_FALSE(dispatcher.result(old_id).ok());
  // The fresh job is inside its retention window.
  EXPECT_TRUE(dispatcher.result(fresh_id).ok());
}

TEST(TerminalJobGc, CapEvictsOldestFirst) {
  ManualClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  dispatcher.set_terminal_retention(0, 2);

  const auto first = run_to_completion(dispatcher, 30);
  clock.advance(kSecond);
  const auto second = run_to_completion(dispatcher, 30);
  clock.advance(kSecond);
  const auto third = run_to_completion(dispatcher, 30);
  EXPECT_EQ(dispatcher.sweep_terminal(), 1u);
  EXPECT_FALSE(dispatcher.query(first).ok());
  EXPECT_TRUE(dispatcher.result(second).ok());
  EXPECT_TRUE(dispatcher.result(third).ok());
}

TEST(TerminalJobGc, DisabledKeepsEverything) {
  ManualClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  const auto id = run_to_completion(dispatcher, 30);
  clock.advance(365LL * 24 * 3600 * kSecond);
  EXPECT_EQ(dispatcher.sweep_terminal(), 0u);
  EXPECT_TRUE(dispatcher.result(id).ok());
}

TEST(TerminalJobGc, EvictionIsJournaledAndSurvivesRestart) {
  TempDir dir;
  ManualClock clock;
  std::uint64_t old_id = 0;
  std::uint64_t kept_id = 0;
  {
    DaemonOptions options;
    options.admin_key = "root";
    options.store.data_dir = dir.path();
    options.store.terminal_job_retention = 100 * kSecond;
    MiddlewareDaemon daemon(
        options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
        nullptr, &clock);
    ASSERT_TRUE(daemon.start().ok());
    net::HttpClient client(daemon.port());
    auto opened =
        client.post("/v1/sessions", R"({"user":"alice","class":"test"})");
    ASSERT_EQ(opened.value().status, 201);
    net::HttpClient authed(daemon.port());
    authed.set_default_header(
        "X-Session-Token",
        Json::parse(opened.value().body).value().get_string("token").value());
    const auto submit = [&](std::uint64_t shots) {
      Json body = Json::object();
      body["payload"] = small_payload(shots).to_json();
      auto response = authed.post("/v1/jobs", body.dump());
      EXPECT_EQ(response.value().status, 201);
      return static_cast<std::uint64_t>(Json::parse(response.value().body)
                                            .value()
                                            .get_int("job_id")
                                            .value());
    };
    old_id = submit(30);
    ASSERT_TRUE(daemon.dispatcher().wait(old_id, 60 * kSecond).ok());
    clock.advance(200 * kSecond);
    kept_id = submit(30);  // triggers the sweep that evicts old_id
    ASSERT_TRUE(daemon.dispatcher().wait(kept_id, 60 * kSecond).ok());
    ASSERT_FALSE(daemon.dispatcher().query(old_id).ok());
    ASSERT_TRUE(daemon.state_store()->flush().ok());
    // The eviction is journal-visible, not a silent in-memory drop.
    std::ifstream journal(daemon.state_store()->journal_path());
    std::ostringstream text;
    text << journal.rdbuf();
    EXPECT_NE(text.str().find("job_evicted"), std::string::npos);
  }  // kill

  DaemonOptions options;
  options.admin_key = "root";
  options.store.data_dir = dir.path();
  options.store.terminal_job_retention = 100 * kSecond;
  MiddlewareDaemon revived(
      options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(), nullptr,
      &clock);
  ASSERT_TRUE(revived.start().ok());
  // Replay agrees: the evicted record stays gone, the kept one survives.
  EXPECT_FALSE(revived.dispatcher().query(old_id).ok());
  ASSERT_TRUE(revived.dispatcher().query(kept_id).ok());
  EXPECT_TRUE(revived.dispatcher().result(kept_id).ok());
  EXPECT_GE(revived.state_store()->status().replay.evicted_jobs, 1u);
}

}  // namespace
}  // namespace qcenv::daemon
