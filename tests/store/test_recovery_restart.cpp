// Kill-and-restart integration test: a daemon with queued, partially
// executed and completed jobs is stopped mid-dispatch and restarted on the
// same data-dir. Everything must come back — sessions authenticate with
// their old tokens, completed results are re-served from the store, and
// interrupted jobs finish with zero lost and zero duplicated shots.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "../common/test_args.hpp"
#include "common/rng.hpp"
#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;

using common::TempDir;

quantum::Payload small_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

class RecoveryRestartTest : public ::testing::Test {
 protected:
  std::unique_ptr<MiddlewareDaemon> make_daemon() {
    DaemonOptions options;
    options.admin_key = "root";
    // Small batches so a job is reliably caught mid-execution.
    options.queue_policy.non_production_batch_shots = 25;
    options.store.data_dir = dir_.path();
    auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
    auto daemon = std::make_unique<MiddlewareDaemon>(options, resource,
                                                     nullptr, &clock_);
    auto port = daemon->start();
    EXPECT_TRUE(port.ok());
    return daemon;
  }

  static std::uint64_t submit(net::HttpClient& client, std::uint64_t shots) {
    Json body = Json::object();
    body["payload"] = small_payload(shots).to_json();
    auto response = client.post("/v1/jobs", body.dump());
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 201) << response.value().body;
    return static_cast<std::uint64_t>(Json::parse(response.value().body)
                                          .value()
                                          .get_int("job_id")
                                          .value());
  }

  TempDir dir_;
  common::WallClock clock_;
};

TEST_F(RecoveryRestartTest, KillAndRestartRecoversAllState) {
  // Shot counts (and hence which batch boundary the kill lands on) derive
  // from one printed seed: any failure replays with --seed=N.
  const std::uint64_t seed = testargs::seed(0x5EEDC0DEull);
  testargs::announce(seed);
  common::Rng rng(seed);
  std::string token;
  std::uint64_t completed_id = 0;
  std::uint64_t partial_id = 0;
  std::uint64_t queued_id = 0;
  std::string completed_result_body;
  std::uint64_t partial_shots_at_kill = 0;
  const std::uint64_t kPartialShots =
      static_cast<std::uint64_t>(rng.uniform_int(1200, 3000));
  const std::uint64_t completed_shots =
      static_cast<std::uint64_t>(rng.uniform_int(20, 60));
  const std::uint64_t queued_shots =
      static_cast<std::uint64_t>(rng.uniform_int(30, 80));

  // ---- First life: build up queued + in-flight + completed state ----------
  {
    auto daemon = make_daemon();
    net::HttpClient client(daemon->port());
    Json body = Json::object();
    body["user"] = "alice";
    body["class"] = "test";
    auto opened = client.post("/v1/sessions", body.dump());
    ASSERT_TRUE(opened.ok());
    ASSERT_EQ(opened.value().status, 201);
    token =
        Json::parse(opened.value().body).value().get_string("token").value();
    net::HttpClient authed(daemon->port());
    authed.set_default_header("X-Session-Token", token);

    // Job 1 runs to completion; its result must survive the restart.
    completed_id = submit(authed, completed_shots);
    ASSERT_TRUE(
        daemon->dispatcher().wait(completed_id, 60 * common::kSecond).ok());
    auto result = authed.get("/v1/jobs/" + std::to_string(completed_id) +
                             "/result");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().status, 200);
    completed_result_body = result.value().body;

    // Job 2 gets caught mid-dispatch: wait for some batches, then freeze
    // dispatch so the daemon dies with the job partially executed.
    partial_id = submit(authed, kPartialShots);
    for (int i = 0; i < 5000; ++i) {
      if (daemon->dispatcher().query(partial_id).value().shots_done >= 25) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    daemon->dispatcher().drain();
    // Let the in-flight batch land (its batch_done must be journaled).
    std::uint64_t last = 0;
    for (int stable = 0; stable < 5;) {
      const auto done =
          daemon->dispatcher().query(partial_id).value().shots_done;
      stable = done == last ? stable + 1 : 0;
      last = done;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    partial_shots_at_kill = last;
    ASSERT_GT(partial_shots_at_kill, 0u);
    ASSERT_LT(partial_shots_at_kill, kPartialShots);

    // Job 3 is submitted while dispatch is frozen: purely queued.
    queued_id = submit(authed, queued_shots);
    EXPECT_EQ(daemon->dispatcher().query(queued_id).value().shots_done, 0u);
    // "Kill": tear the daemon down mid-dispatch with work outstanding.
  }

  // ---- Second life: same data-dir, fresh process state --------------------
  auto daemon = make_daemon();
  net::HttpClient admin(daemon->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto store_status = admin.get("/admin/store");
  ASSERT_TRUE(store_status.ok());
  ASSERT_EQ(store_status.value().status, 200);
  auto parsed = Json::parse(store_status.value().body).value();
  EXPECT_TRUE(parsed.at_or_null("enabled").as_bool());
  const Json& replay = parsed.at_or_null("replay");
  EXPECT_EQ(replay.at_or_null("recovered_jobs").as_int(), 3);
  EXPECT_EQ(replay.at_or_null("recovered_sessions").as_int(), 1);
  EXPECT_EQ(replay.at_or_null("requeued_jobs").as_int(), 2);

  // The old session token still authenticates.
  net::HttpClient authed(daemon->port());
  authed.set_default_header("X-Session-Token", token);
  auto job = authed.get("/v1/jobs/" + std::to_string(completed_id));
  ASSERT_TRUE(job.ok());
  ASSERT_EQ(job.value().status, 200) << job.value().body;
  EXPECT_EQ(
      Json::parse(job.value().body).value().get_string("state").value(),
      "completed");

  // Completed results are re-served from the snapshot/journal, bit for bit.
  auto result =
      authed.get("/v1/jobs/" + std::to_string(completed_id) + "/result");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().status, 200);
  EXPECT_EQ(result.value().body, completed_result_body);

  // The interrupted and queued jobs finish with exactly their shot budget:
  // nothing lost, nothing re-executed.
  auto partial =
      daemon->dispatcher().wait(partial_id, 120 * common::kSecond);
  ASSERT_TRUE(partial.ok()) << partial.error().to_string();
  EXPECT_EQ(partial.value().total_shots(), kPartialShots);
  EXPECT_EQ(daemon->dispatcher().query(partial_id).value().shots_done,
            kPartialShots);
  auto queued = daemon->dispatcher().wait(queued_id, 120 * common::kSecond);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued.value().total_shots(), queued_shots);

  // Replay progress is visible on /metrics, and new ids never collide
  // with recovered ones.
  auto metrics = admin.get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("store_recovery_replayed_jobs"),
            std::string::npos);
  const std::uint64_t fresh_id = submit(authed, 10);
  EXPECT_GT(fresh_id, queued_id);
}

TEST_F(RecoveryRestartTest, CompactionSurvivesRestart) {
  std::string token;
  std::uint64_t job_id = 0;
  {
    auto daemon = make_daemon();
    net::HttpClient client(daemon->port());
    auto opened =
        client.post("/v1/sessions", R"({"user":"bob","class":"test"})");
    ASSERT_TRUE(opened.ok());
    token =
        Json::parse(opened.value().body).value().get_string("token").value();
    net::HttpClient authed(daemon->port());
    authed.set_default_header("X-Session-Token", token);
    job_id = submit(authed, 50);
    ASSERT_TRUE(daemon->dispatcher().wait(job_id, 60 * common::kSecond).ok());

    net::HttpClient admin(daemon->port());
    admin.set_default_header("X-Admin-Key", "root");
    auto compacted = admin.post("/admin/store/compact", "{}");
    ASSERT_TRUE(compacted.ok());
    ASSERT_EQ(compacted.value().status, 200) << compacted.value().body;
    // Everything folded into the snapshot: the journal is empty again.
    EXPECT_EQ(Json::parse(compacted.value().body)
                  .value()
                  .get_int("journal_events")
                  .value(),
              0);
  }
  auto daemon = make_daemon();
  net::HttpClient authed(daemon->port());
  authed.set_default_header("X-Session-Token", token);
  auto result = authed.get("/v1/jobs/" + std::to_string(job_id) + "/result");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().status, 200) << result.value().body;
  auto samples =
      quantum::Samples::from_json(Json::parse(result.value().body).value());
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 50u);
}

TEST(StoreDisabledTest, DaemonWithoutDataDirReportsDisabled) {
  common::WallClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  DaemonOptions options;
  options.admin_key = "root";
  MiddlewareDaemon daemon(options, resource, nullptr, &clock);
  ASSERT_TRUE(daemon.start().ok());
  EXPECT_EQ(daemon.state_store(), nullptr);
  net::HttpClient admin(daemon.port());
  admin.set_default_header("X-Admin-Key", "root");
  auto store_status = admin.get("/admin/store");
  ASSERT_TRUE(store_status.ok());
  ASSERT_EQ(store_status.value().status, 200);
  EXPECT_FALSE(
      Json::parse(store_status.value().body).value().at_or_null("enabled")
          .as_bool());
  auto compacted = admin.post("/admin/store/compact", "{}");
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted.value().status, 409);
}

}  // namespace
}  // namespace qcenv::daemon
