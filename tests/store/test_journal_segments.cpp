// WAL segment shipping: the journal-side half of standby replication.
// read_segment must serve contiguous, CRC-clean v2 frames strictly after
// the follower's cursor and never past the durable watermark; compaction
// gaps and v1 segments must flag snapshot_needed instead of shipping a
// hole; read_segment_file must salvage the clean prefix of a dead
// leader's torn journal; and validate_frames — the follower's acceptance
// check — must reject corruption, torn tails and replayed frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/temp_dir.hpp"
#include "store/journal.hpp"

namespace qcenv::store {
namespace {

using common::Json;
using common::TempDir;

constexpr std::uint64_t kNoCap = std::numeric_limits<std::uint64_t>::max();

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_raw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

Json event_body(std::uint64_t n) {
  Json data = Json::object();
  data["n"] = static_cast<long long>(n);
  return data;
}

/// A fully-durable v2 journal with `events` appended events.
class SegmentFixture : public ::testing::Test {
 protected:
  void append_events(JobJournal& journal, std::uint64_t events) {
    for (std::uint64_t n = 1; n <= events; ++n) {
      journal.append("segment_test", event_body(n));
    }
    ASSERT_TRUE(journal.flush().ok());
  }

  JournalOptions durable_options() {
    JournalOptions options;
    options.sync = SyncMode::kAlways;  // durable watermark == last append
    return options;
  }

  common::WallClock clock_;
  TempDir dir_{"qcenv-segments-"};
  std::string path_ = dir_.path() + "/journal.log";
};

TEST_F(SegmentFixture, ReadSegmentServesFramesAfterCursor) {
  JobJournal journal(durable_options(), &clock_, nullptr);
  ASSERT_TRUE(journal.open(path_).ok());
  append_events(journal, 5);

  auto segment = journal.read_segment(0, kNoCap);
  ASSERT_TRUE(segment.ok()) << segment.error().to_string();
  EXPECT_FALSE(segment.value().snapshot_needed);
  EXPECT_EQ(segment.value().first_seq, 1u);
  EXPECT_EQ(segment.value().end_seq, 5u);
  EXPECT_EQ(segment.value().durable_seq, 5u);

  // The shipped bytes are exactly the frames the follower's own
  // validation accepts: five of them, ending at the same seq.
  const auto prefix =
      JobJournal::validate_frames(segment.value().bytes, 0);
  EXPECT_EQ(prefix.frames, 5u);
  EXPECT_EQ(prefix.end_seq, 5u);
  EXPECT_EQ(prefix.bytes, segment.value().bytes.size());

  // A cursor mid-stream serves only the remainder.
  auto tail = journal.read_segment(3, kNoCap);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().first_seq, 4u);
  EXPECT_EQ(tail.value().end_seq, 5u);

  // A caught-up cursor serves nothing.
  auto done = journal.read_segment(5, kNoCap);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().first_seq, 0u);
  EXPECT_EQ(done.value().end_seq, 0u);
  EXPECT_TRUE(done.value().bytes.empty());
  EXPECT_EQ(done.value().durable_seq, 5u);
}

TEST_F(SegmentFixture, ChunkedPullsReassembleTheWholeJournal) {
  JobJournal journal(durable_options(), &clock_, nullptr);
  ASSERT_TRUE(journal.open(path_).ok());
  append_events(journal, 20);

  // A tiny max_bytes still makes progress: every pull ships at least one
  // frame, and sequential pulls reassemble the journal without gaps.
  std::string mirror;
  std::uint64_t cursor = 0;
  std::size_t pulls = 0;
  while (cursor < 20) {
    auto segment = journal.read_segment(cursor, 1);
    ASSERT_TRUE(segment.ok());
    ASSERT_GT(segment.value().end_seq, cursor)
        << "pull made no progress at cursor " << cursor;
    ASSERT_EQ(segment.value().first_seq, cursor + 1)
        << "pull skipped frames";
    mirror += segment.value().bytes;
    cursor = segment.value().end_seq;
    ASSERT_LT(++pulls, 100u);
  }
  EXPECT_GT(pulls, 1u) << "cap never split the stream";

  const auto prefix = JobJournal::validate_frames(mirror, 0);
  EXPECT_EQ(prefix.frames, 20u);
  EXPECT_EQ(prefix.end_seq, 20u);
  EXPECT_EQ(prefix.bytes, mirror.size());
}

TEST_F(SegmentFixture, CompactionGapFlagsSnapshotNeeded) {
  JobJournal journal(durable_options(), &clock_, nullptr);
  ASSERT_TRUE(journal.open(path_).ok());
  append_events(journal, 8);
  ASSERT_TRUE(journal.drop_through(5).ok());

  // A follower whose cursor predates the compaction cannot be served from
  // the WAL — the events between were dropped. It must take a snapshot.
  auto stale = journal.read_segment(2, kNoCap);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().snapshot_needed);
  EXPECT_TRUE(stale.value().bytes.empty());

  // A follower at the watermark resumes streaming normally.
  auto resumed = journal.read_segment(5, kNoCap);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed.value().snapshot_needed);
  EXPECT_EQ(resumed.value().first_seq, 6u);
  EXPECT_EQ(resumed.value().end_seq, 8u);
}

TEST_F(SegmentFixture, V1JournalIsNotStreamable) {
  write_raw(path_,
            "{\"seq\":1,\"t\":10,\"e\":\"job_submitted\",\"d\":{}}\n");
  auto segment = JobJournal::read_segment_file(path_, 0, kNoCap);
  ASSERT_TRUE(segment.ok());
  EXPECT_TRUE(segment.value().snapshot_needed);
  EXPECT_TRUE(segment.value().bytes.empty());
}

TEST_F(SegmentFixture, ReadSegmentFileSalvagesCleanPrefixOfTornTail) {
  {
    JobJournal journal(durable_options(), &clock_, nullptr);
    ASSERT_TRUE(journal.open(path_).ok());
    append_events(journal, 6);
  }
  // Tear the dead leader's journal mid-frame: cut the last 5 bytes and
  // corrupt the new final byte, as a crash mid-write would.
  std::string content = read_raw(path_);
  ASSERT_GT(content.size(), 5u);
  content.resize(content.size() - 5);
  content.back() = static_cast<char>(content.back() ^ 0x5a);
  write_raw(path_, content);

  auto segment = JobJournal::read_segment_file(path_, 0, kNoCap);
  ASSERT_TRUE(segment.ok()) << segment.error().to_string();
  EXPECT_FALSE(segment.value().snapshot_needed);
  EXPECT_EQ(segment.value().first_seq, 1u);
  EXPECT_EQ(segment.value().end_seq, 5u) << "torn final frame shipped";

  const auto prefix =
      JobJournal::validate_frames(segment.value().bytes, 0);
  EXPECT_EQ(prefix.frames, 5u);
  EXPECT_EQ(prefix.end_seq, 5u);
}

TEST_F(SegmentFixture, ReadSegmentFileRejectsUnknownHeader) {
  write_raw(path_, "not a journal at all");
  auto segment = JobJournal::read_segment_file(path_, 0, kNoCap);
  EXPECT_FALSE(segment.ok());
}

TEST_F(SegmentFixture, ValidateFramesRejectsCorruptionAndReplay) {
  JobJournal journal(durable_options(), &clock_, nullptr);
  ASSERT_TRUE(journal.open(path_).ok());
  append_events(journal, 4);
  auto segment = journal.read_segment(0, kNoCap);
  ASSERT_TRUE(segment.ok());
  const std::string frames = segment.value().bytes;

  // The journal file is magic + frames, nothing else.
  EXPECT_EQ(read_raw(path_),
            std::string(wal_v2_magic()) + frames);

  // Clean buffer: all four frames accepted.
  auto clean = JobJournal::validate_frames(frames, 0);
  EXPECT_EQ(clean.frames, 4u);
  EXPECT_EQ(clean.end_seq, 4u);

  // Torn tail: the clean prefix survives, the partial frame does not.
  auto torn = JobJournal::validate_frames(
      std::string_view(frames).substr(0, frames.size() - 3), 0);
  EXPECT_EQ(torn.frames, 3u);
  EXPECT_EQ(torn.end_seq, 3u);

  // A flipped byte mid-stream fails that frame's CRC and ends the prefix
  // there — nothing after a corrupt frame is trusted.
  std::string corrupt = frames;
  corrupt[corrupt.size() / 2] ^= 0x40;
  auto cut = JobJournal::validate_frames(corrupt, 0);
  EXPECT_LT(cut.frames, 4u);

  // Replayed frames (seq at or below the cursor) are rejected outright:
  // a chunk that starts at seq 1 is no use to a follower already at 4.
  auto replayed = JobJournal::validate_frames(frames, 4);
  EXPECT_EQ(replayed.frames, 0u);
  EXPECT_EQ(replayed.end_seq, 0u);
}

}  // namespace
}  // namespace qcenv::store
