// Fault-injection seams of the durable store, and the admission-rollback
// contract they enforce: a submission that passes the rate limiter but
// fails its journal append must come back as a 500 with every reservation
// released — ledger, rate limiter and queue exactly as if the request had
// never arrived — because the ack'd alternative would be a job a restart
// silently forgets.
#include <gtest/gtest.h>

#include <memory>

#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"
#include "store/fault_injector.hpp"

namespace qcenv::store {
namespace {

using common::Json;
using common::TempDir;

quantum::Payload small_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

TEST(FaultInjector, CountingSchedulesFailAndTearDeterministically) {
  CountingFaultInjector injector;
  injector.fail_journal_writes_after(2);
  EXPECT_EQ(injector.on_write(FsOp::kJournalWrite, "j", 100).kind,
            FaultDecision::Kind::kPass);
  EXPECT_EQ(injector.on_write(FsOp::kJournalWrite, "j", 100).kind,
            FaultDecision::Kind::kPass);
  EXPECT_EQ(injector.on_write(FsOp::kJournalWrite, "j", 100).kind,
            FaultDecision::Kind::kFail);
  // Snapshot writes are independent of the journal schedule.
  EXPECT_EQ(injector.on_write(FsOp::kAtomicWrite, "s", 100).kind,
            FaultDecision::Kind::kPass);
  injector.heal();
  EXPECT_EQ(injector.on_write(FsOp::kJournalWrite, "j", 100).kind,
            FaultDecision::Kind::kPass);

  CountingFaultInjector tearing;
  tearing.tear_journal_write_after(0, 7);
  const auto torn = tearing.on_write(FsOp::kJournalWrite, "j", 100);
  EXPECT_EQ(torn.kind, FaultDecision::Kind::kShortWrite);
  EXPECT_EQ(torn.bytes, 7u);
  // After the tear the disk is dead.
  EXPECT_EQ(tearing.on_write(FsOp::kJournalWrite, "j", 100).kind,
            FaultDecision::Kind::kFail);
}

class JournalFaultDaemon : public ::testing::Test {
 protected:
  std::unique_ptr<daemon::MiddlewareDaemon> make_daemon() {
    daemon::DaemonOptions options;
    options.admin_key = "root";
    options.store.data_dir = dir_.path();
    // Inline appends: a failed write surfaces on the submit that did it.
    options.store.journal.sync = SyncMode::kAlways;
    auto daemon = std::make_unique<daemon::MiddlewareDaemon>(
        options, qrmi::LocalEmulatorQrmi::create("emu", "sv").value(),
        nullptr, &clock_);
    EXPECT_TRUE(daemon->start().ok());
    return daemon;
  }

  net::HttpClient session_client(daemon::MiddlewareDaemon& daemon,
                                 const std::string& user) {
    net::HttpClient plain(daemon.port());
    Json body = Json::object();
    body["user"] = user;
    body["class"] = "test";
    auto opened = plain.post("/v1/sessions", body.dump());
    EXPECT_EQ(opened.value().status, 201);
    net::HttpClient authed(daemon.port());
    authed.set_default_header(
        "X-Session-Token",
        Json::parse(opened.value().body).value().get_string("token").value());
    return authed;
  }

  TempDir dir_;
  common::WallClock clock_;
};

TEST_F(JournalFaultDaemon, FailedJournalAppendRollsBackAdmission) {
  auto daemon = make_daemon();
  auto alice = session_client(*daemon, "alice");

  // Baseline: a healthy submit runs to completion and charges the ledger.
  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto accepted = alice.post("/v1/jobs", body.dump());
  ASSERT_EQ(accepted.value().status, 201) << accepted.value().body;
  const auto id = static_cast<std::uint64_t>(
      Json::parse(accepted.value().body).value().get_int("job_id").value());
  ASSERT_TRUE(daemon->dispatcher().wait(id, 60 * common::kSecond).ok());

  const auto now = clock_.now();
  const auto raw_before =
      daemon->accounting().ledger().usage("alice", now).raw_shots;
  ASSERT_EQ(
      daemon->accounting().rate_limiter().inflight_shots("alice"), 0u);

  // The disk dies; the next submit passes admission and the rate limiter,
  // reserves its shots — and must hand every reservation back with the
  // 500 when the journal append fails.
  CountingFaultInjector injector;
  injector.fail_journal_writes_after(0);
  ScopedFaultInjector guard(&injector);
  Json doomed = Json::object();
  doomed["payload"] = small_payload(500).to_json();
  auto rejected = alice.post("/v1/jobs", doomed.dump());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 500) << rejected.value().body;
  EXPECT_NE(rejected.value().body.find("journal"), std::string::npos);

  // Ledger, limiter and queue exactly as before the doomed request.
  EXPECT_EQ(
      daemon->accounting().rate_limiter().inflight_shots("alice"), 0u);
  EXPECT_EQ(
      daemon->accounting().ledger().usage("alice", clock_.now()).raw_shots,
      raw_before);
  EXPECT_EQ(daemon->dispatcher().pending_for_user("alice"), 0u);
  for (const auto& [_, depth] : daemon->dispatcher().queue_depths()) {
    EXPECT_EQ(depth, 0u);
  }
  // The fail-stop is sticky: later submissions are refused up front (the
  // daemon cannot promise durability it does not have) and roll back too.
  auto refused = alice.post("/v1/jobs", doomed.dump());
  EXPECT_EQ(refused.value().status, 500);
  EXPECT_EQ(
      daemon->accounting().rate_limiter().inflight_shots("alice"), 0u);
  // /admin/store names the durability loss.
  net::HttpClient admin(daemon->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto status = admin.get("/admin/store");
  ASSERT_EQ(status.value().status, 200);
  const Json error = Json::parse(status.value().body)
                         .value()
                         .at_or_null("journal")
                         .at_or_null("error");
  ASSERT_TRUE(error.is_string());
  EXPECT_NE(error.as_string().find("journal"), std::string::npos);
}

TEST_F(JournalFaultDaemon, TornTailIsDroppedAndDurablePrefixRecovers) {
  std::string token;
  std::uint64_t completed_id = 0;
  {
    auto daemon = make_daemon();
    auto alice = session_client(*daemon, "alice");
    Json body = Json::object();
    body["payload"] = small_payload(40).to_json();
    auto accepted = alice.post("/v1/jobs", body.dump());
    ASSERT_EQ(accepted.value().status, 201);
    completed_id = static_cast<std::uint64_t>(Json::parse(
                                                  accepted.value().body)
                                                  .value()
                                                  .get_int("job_id")
                                                  .value());
    ASSERT_TRUE(
        daemon->dispatcher().wait(completed_id, 60 * common::kSecond).ok());

    // The disk tears the very next journal line mid-write and dies: the
    // next submission is rolled back, and the file now ends in garbage a
    // restart must shear off.
    CountingFaultInjector injector;
    injector.tear_journal_write_after(0, 9);
    ScopedFaultInjector guard(&injector);
    auto doomed = alice.post("/v1/jobs", body.dump());
    EXPECT_EQ(doomed.value().status, 500);
  }  // kill

  auto revived = make_daemon();
  net::HttpClient admin(revived->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto status = admin.get("/admin/store");
  ASSERT_EQ(status.value().status, 200);
  const Json parsed = Json::parse(status.value().body).value();
  // The new life's journal is healthy again: no error field.
  EXPECT_TRUE(
      parsed.at_or_null("journal").at_or_null("error").is_null());
  // Exactly the durable prefix came back: the completed job (re-served
  // result included), no trace of the torn submission.
  EXPECT_EQ(
      parsed.at_or_null("replay").at_or_null("recovered_jobs").as_int(), 1);
  auto job = revived->dispatcher().query(completed_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value().state, daemon::DaemonJobState::kCompleted);
  EXPECT_EQ(revived->dispatcher().result(completed_id).value().total_shots(),
            40u);
}

}  // namespace
}  // namespace qcenv::store
