// Durable state store: journal append/flush/compaction, snapshot
// round-trips and the recovery replayer's semantics.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "common/temp_dir.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"
#include "store/journal.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "store/state_store.hpp"

namespace qcenv::store {
namespace {

using common::Json;
using common::ManualClock;

using common::TempDir;

Json event_payload(int value) {
  Json data = Json::object();
  data["value"] = value;
  return data;
}

quantum::Payload small_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

Json samples_json(std::uint64_t zeros, std::uint64_t ones) {
  quantum::Samples samples(2);
  if (zeros > 0) samples.record("00", zeros);
  if (ones > 0) samples.record("11", ones);
  return samples.to_json();
}

JobRecord make_job(std::uint64_t id, std::uint64_t shots) {
  JobRecord job;
  job.id = id;
  job.session = 1;
  job.user = "alice";
  job.job_class = daemon::JobClass::kTest;
  job.total_shots = shots;
  job.submit_time = 123;
  job.payload = small_payload(shots).to_json();
  return job;
}

JournalEntry event(std::uint64_t seq, const std::string& type, Json data) {
  JournalEntry entry;
  entry.seq = seq;
  entry.time = static_cast<common::TimeNs>(seq) * 10;
  entry.type = type;
  entry.data = std::move(data);
  return entry;
}

Json job_event(const JobRecord& job) {
  Json data = Json::object();
  data["job"] = job.to_json();
  return data;
}

Json id_event(std::uint64_t id) {
  Json data = Json::object();
  data["id"] = id;
  return data;
}

Json batch_done_event(std::uint64_t id, std::uint64_t shots, Json samples) {
  Json data = Json::object();
  data["id"] = id;
  data["shots"] = shots;
  data["final"] = false;
  data["samples"] = std::move(samples);
  return data;
}

// ---- JobJournal -------------------------------------------------------------

TEST(JobJournalTest, GroupCommitAppendFlushReadback) {
  TempDir dir;
  ManualClock clock;
  JournalOptions options;
  options.sync = SyncMode::kGroupCommit;
  JobJournal journal(options, &clock, nullptr);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  for (int i = 1; i <= 100; ++i) {
    EXPECT_EQ(journal.append("test_event", event_payload(i)),
              static_cast<std::uint64_t>(i));
  }
  ASSERT_TRUE(journal.flush().ok());
  EXPECT_EQ(journal.appends_total(), 100u);
  EXPECT_GE(journal.fsyncs_total(), 1u);
  // Group commit must not degenerate into one fsync per append.
  EXPECT_LT(journal.fsyncs_total(), 100u);
  EXPECT_EQ(journal.last_seq(), 100u);

  auto entries = JobJournal::read_file(dir.file("journal.log"));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 100u);
  EXPECT_EQ(entries.value().front().seq, 1u);
  EXPECT_EQ(entries.value().front().type, "test_event");
  EXPECT_EQ(entries.value().front().data.at_or_null("value").as_int(), 1);
  EXPECT_EQ(entries.value().back().seq, 100u);
}

TEST(JobJournalTest, FailStopSetsStickyErrorAndFailureGauge) {
  TempDir dir;
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  JournalOptions options;
  options.sync = SyncMode::kAlways;
  JobJournal journal(options, &clock, &metrics);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  EXPECT_EQ(metrics.gauge("store_journal_failed").value(), 0.0);

  // Cap the file size so a large append's write() fails with EFBIG — the
  // portable way to make a real fd fail mid-run. SIGXFSZ must be ignored
  // or the kernel kills the process instead of failing the write.
  signal(SIGXFSZ, SIG_IGN);
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit capped = old_limit;
  capped.rlim_cur = 256;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &capped), 0);
  Json big = Json::object();
  big["pad"] = std::string(4096, 'x');
  for (int i = 0; i < 4 && !journal.io_error().has_value(); ++i) {
    journal.append("event", big);
  }
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  signal(SIGXFSZ, SIG_DFL);

  ASSERT_TRUE(journal.io_error().has_value());
  EXPECT_EQ(metrics.gauge("store_journal_failed").value(), 1.0);
  EXPECT_FALSE(journal.flush().ok());
  // Fail-stop is sticky: lifting the limit does not resume writes.
  journal.append("event", event_payload(1));
  EXPECT_FALSE(journal.flush().ok());
}

TEST(JobJournalTest, AlwaysModeIsDurableWithoutFlush) {
  TempDir dir;
  ManualClock clock;
  JournalOptions options;
  options.sync = SyncMode::kAlways;
  JobJournal journal(options, &clock, nullptr);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  for (int i = 0; i < 5; ++i) journal.append("e", event_payload(i));
  // No flush: kAlways fsyncs inline.
  auto entries = JobJournal::read_file(dir.file("journal.log"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 5u);
  EXPECT_EQ(journal.fsyncs_total(), 5u);
}

TEST(JobJournalTest, ReopenContinuesSequenceNumbers) {
  TempDir dir;
  ManualClock clock;
  {
    JobJournal journal({}, &clock, nullptr);
    ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
    journal.append("a", event_payload(1));
    journal.append("a", event_payload(2));
    ASSERT_TRUE(journal.flush().ok());
  }
  JobJournal journal({}, &clock, nullptr);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  EXPECT_EQ(journal.last_seq(), 2u);
  EXPECT_EQ(journal.append("a", event_payload(3)), 3u);
}

TEST(JobJournalTest, TornTailLineIsDropped) {
  TempDir dir;
  ManualClock clock;
  {
    JobJournal journal({}, &clock, nullptr);
    ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
    journal.append("a", event_payload(1));
    journal.append("a", event_payload(2));
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    // Simulate a crash mid-append: garbage half-line at the tail.
    std::ofstream out(dir.file("journal.log"), std::ios::app);
    out << R"({"seq":3,"t":0,"e":"a","d":{"va)";
  }
  auto entries = JobJournal::read_file(dir.file("journal.log"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 2u);
  // Reopening continues above the surviving tail.
  JobJournal journal({}, &clock, nullptr);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  EXPECT_EQ(journal.append("a", event_payload(3)), 3u);
}

TEST(JobJournalTest, DropThroughCompactsPrefix) {
  TempDir dir;
  ManualClock clock;
  JobJournal journal({}, &clock, nullptr);
  ASSERT_TRUE(journal.open(dir.file("journal.log")).ok());
  for (int i = 1; i <= 10; ++i) journal.append("a", event_payload(i));
  const std::uint64_t before = journal.size_bytes();
  ASSERT_TRUE(journal.drop_through(7).ok());
  EXPECT_LT(journal.size_bytes(), before);
  EXPECT_EQ(journal.event_count(), 3u);
  auto entries = JobJournal::read_file(dir.file("journal.log"));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 3u);
  EXPECT_EQ(entries.value().front().seq, 8u);
  // Appends continue with unbroken sequence numbers.
  EXPECT_EQ(journal.append("a", event_payload(11)), 11u);
  ASSERT_TRUE(journal.flush().ok());
  entries = JobJournal::read_file(dir.file("journal.log"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().back().seq, 11u);
}

// ---- StoreSnapshot ----------------------------------------------------------

TEST(StoreSnapshotTest, AtomicWriteAndLoadRoundTrip) {
  TempDir dir;
  StoreSnapshot snapshot;
  snapshot.jobs_seq = 42;
  snapshot.sessions_seq = 40;
  snapshot.next_job_id = 7;
  snapshot.created = 999;
  SessionRecord session;
  session.id = 3;
  session.user = "alice";
  session.token = "tok-abc";
  session.job_class = daemon::JobClass::kProduction;
  snapshot.sessions.push_back(session);
  JobRecord job = make_job(5, 100);
  job.phase = JobPhase::kCompleted;
  job.shots_done = 100;
  job.samples = samples_json(60, 40);
  snapshot.jobs.push_back(job);

  ASSERT_TRUE(snapshot.write_atomic(dir.file("snapshot.json")).ok());
  auto loaded = StoreSnapshot::load(dir.file("snapshot.json"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  const StoreSnapshot& got = *loaded.value();
  EXPECT_EQ(got.jobs_seq, 42u);
  EXPECT_EQ(got.sessions_seq, 40u);
  EXPECT_EQ(got.next_job_id, 7u);
  ASSERT_EQ(got.sessions.size(), 1u);
  EXPECT_EQ(got.sessions.front().token, "tok-abc");
  EXPECT_EQ(got.sessions.front().job_class, daemon::JobClass::kProduction);
  ASSERT_EQ(got.jobs.size(), 1u);
  EXPECT_EQ(got.jobs.front().id, 5u);
  EXPECT_EQ(got.jobs.front().phase, JobPhase::kCompleted);
  EXPECT_EQ(got.jobs.front().samples, samples_json(60, 40));
}

TEST(StoreSnapshotTest, MissingFileLoadsAsEmpty) {
  TempDir dir;
  auto loaded = StoreSnapshot::load(dir.file("nope.json"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_value());
}

// ---- RecoveryReplayer -------------------------------------------------------

TEST(RecoveryReplayerTest, RebuildsJobsSessionsAndRequeuesInFlight) {
  std::vector<JournalEntry> entries;
  SessionRecord alice;
  alice.id = 1;
  alice.user = "alice";
  alice.token = "tok-alice";
  SessionRecord bob;
  bob.id = 2;
  bob.user = "bob";
  bob.token = "tok-bob";
  Json alice_event = Json::object();
  alice_event["session"] = alice.to_json();
  Json bob_event = Json::object();
  bob_event["session"] = bob.to_json();
  Json bob_closed = Json::object();
  bob_closed["token"] = bob.token;

  entries.push_back(event(1, "session_created", alice_event));
  entries.push_back(event(2, "session_created", bob_event));
  // Job 1: partially executed, then the daemon died mid-batch.
  entries.push_back(event(3, "job_submitted", job_event(make_job(1, 100))));
  entries.push_back(
      event(4, "batch_done", batch_done_event(1, 40, samples_json(25, 15))));
  entries.push_back(event(5, "batch_dispatched", id_event(1)));
  // Job 2: ran to completion.
  entries.push_back(event(6, "job_submitted", job_event(make_job(2, 50))));
  entries.push_back(
      event(7, "batch_done", batch_done_event(2, 50, samples_json(30, 20))));
  entries.push_back(event(8, "job_completed", id_event(2)));
  // Job 3: cancelled.
  entries.push_back(event(9, "job_submitted", job_event(make_job(3, 10))));
  entries.push_back(event(10, "job_cancelled", id_event(3)));
  entries.push_back(event(11, "session_closed", bob_closed));

  RecoveredState state = RecoveryReplayer::apply(std::nullopt, entries);
  EXPECT_EQ(state.stats.recovered_jobs, 3u);
  EXPECT_EQ(state.stats.recovered_sessions, 1u);
  EXPECT_EQ(state.stats.requeued_jobs, 1u);
  EXPECT_EQ(state.last_seq, 11u);
  EXPECT_EQ(state.next_job_id, 4u);
  ASSERT_EQ(state.sessions.size(), 1u);
  EXPECT_EQ(state.sessions.front().token, "tok-alice");

  ASSERT_EQ(state.jobs.size(), 3u);
  const JobRecord* partial = nullptr;
  const JobRecord* complete = nullptr;
  const JobRecord* cancelled = nullptr;
  for (const auto& job : state.jobs) {
    if (job.id == 1) partial = &job;
    if (job.id == 2) complete = &job;
    if (job.id == 3) cancelled = &job;
  }
  ASSERT_NE(partial, nullptr);
  // In-flight work folds back to queued with exactly the done-shot count:
  // the 60 un-executed shots (100 - 40) will be requeued.
  EXPECT_EQ(partial->phase, JobPhase::kQueued);
  EXPECT_EQ(partial->shots_done, 40u);
  EXPECT_TRUE(partial->resource.empty());
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->phase, JobPhase::kCompleted);
  auto complete_samples = quantum::Samples::from_json(complete->samples);
  ASSERT_TRUE(complete_samples.ok());
  EXPECT_EQ(complete_samples.value().total_shots(), 50u);
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->phase, JobPhase::kCancelled);
}

TEST(RecoveryReplayerTest, MergesBatchSamplesAcrossEvents) {
  std::vector<JournalEntry> entries;
  entries.push_back(event(1, "job_submitted", job_event(make_job(1, 100))));
  entries.push_back(
      event(2, "batch_done", batch_done_event(1, 40, samples_json(25, 15))));
  entries.push_back(
      event(3, "batch_done", batch_done_event(1, 60, samples_json(33, 27))));
  entries.push_back(event(4, "job_completed", id_event(1)));
  RecoveredState state = RecoveryReplayer::apply(std::nullopt, entries);
  ASSERT_EQ(state.jobs.size(), 1u);
  EXPECT_EQ(state.jobs.front().shots_done, 100u);
  auto samples = quantum::Samples::from_json(state.jobs.front().samples);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 100u);
  EXPECT_EQ(samples.value().counts().at("00"), 58u);
  EXPECT_EQ(samples.value().counts().at("11"), 42u);
}

TEST(RecoveryReplayerTest, SnapshotWatermarksSkipFoldedEvents) {
  StoreSnapshot snapshot;
  snapshot.jobs_seq = 5;
  snapshot.sessions_seq = 5;
  snapshot.next_job_id = 3;
  JobRecord job = make_job(1, 100);
  job.shots_done = 40;
  snapshot.jobs.push_back(job);

  std::vector<JournalEntry> entries;
  // Already folded into the snapshot: must NOT double-count.
  entries.push_back(
      event(4, "batch_done", batch_done_event(1, 40, samples_json(40, 0))));
  // Above the watermark: applies.
  entries.push_back(
      event(6, "batch_done", batch_done_event(1, 25, samples_json(25, 0))));
  RecoveredState state =
      RecoveryReplayer::apply(std::optional<StoreSnapshot>(snapshot),
                              entries);
  EXPECT_EQ(state.stats.skipped_events, 1u);
  ASSERT_EQ(state.jobs.size(), 1u);
  EXPECT_EQ(state.jobs.front().shots_done, 65u);  // 40 (snapshot) + 25
}

TEST(RecoveryReplayerTest, CancelIntentSurvivesCrash) {
  // cancel() on a running job journals the intent immediately; if the
  // daemon dies before the batch boundary writes job_cancelled, replay
  // must not resurrect the job.
  std::vector<JournalEntry> entries;
  entries.push_back(event(1, "job_submitted", job_event(make_job(1, 100))));
  entries.push_back(
      event(2, "batch_done", batch_done_event(1, 40, samples_json(40, 0))));
  entries.push_back(event(3, "batch_dispatched", id_event(1)));
  entries.push_back(event(4, "cancel_requested", id_event(1)));
  RecoveredState state = RecoveryReplayer::apply(std::nullopt, entries);
  ASSERT_EQ(state.jobs.size(), 1u);
  EXPECT_EQ(state.jobs.front().phase, JobPhase::kCancelled);
  EXPECT_EQ(state.stats.requeued_jobs, 0u);
}

TEST(RecoveryReplayerTest, FullyExecutedJobWithoutTerminalEventCompletes) {
  std::vector<JournalEntry> entries;
  entries.push_back(event(1, "job_submitted", job_event(make_job(1, 50))));
  entries.push_back(
      event(2, "batch_done", batch_done_event(1, 50, samples_json(50, 0))));
  // Crash before job_completed was journaled: nothing is left to run.
  RecoveredState state = RecoveryReplayer::apply(std::nullopt, entries);
  ASSERT_EQ(state.jobs.size(), 1u);
  EXPECT_EQ(state.jobs.front().phase, JobPhase::kCompleted);
  EXPECT_EQ(state.stats.requeued_jobs, 0u);
}

// ---- StateStore end-to-end --------------------------------------------------

TEST(StateStoreTest, OpenReplayAndCompactCycle) {
  TempDir dir;
  ManualClock clock;
  StoreOptions options;
  options.data_dir = dir.path();
  options.compact_every_events = 0;  // manual compaction only

  // First life: journal some state.
  {
    StateStore store(options, &clock, nullptr);
    auto recovered = store.open();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value().stats.recovered_jobs, 0u);
    SessionRecord session;
    session.id = 1;
    session.user = "alice";
    session.token = "tok";
    store.session_created(session);
    store.job_submitted(make_job(1, 100));
    store.batch_done(1, 40, 2 * common::kMillisecond, false,
                     samples_json(40, 0));
    store.job_submitted(make_job(2, 10));
    store.job_cancelled(2);
    ASSERT_TRUE(store.flush().ok());
  }

  // Second life: state comes back; compact folds it into a snapshot.
  {
    StateStore store(options, &clock, nullptr);
    auto recovered = store.open();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value().stats.recovered_jobs, 2u);
    EXPECT_EQ(recovered.value().stats.recovered_sessions, 1u);
    EXPECT_EQ(recovered.value().stats.requeued_jobs, 1u);
    const std::uint64_t journal_before = store.journal().size_bytes();
    EXPECT_GT(journal_before, 0u);

    // Compact with a provider that mirrors the recovered state.
    RecoveredState state = std::move(recovered).value();
    store.set_snapshot_provider([&] {
      StoreSnapshot snapshot;
      snapshot.jobs_seq = store.journal().last_seq();
      snapshot.sessions_seq = snapshot.jobs_seq;
      snapshot.next_job_id = state.next_job_id;
      snapshot.jobs = state.jobs;
      snapshot.sessions = state.sessions;
      return snapshot;
    });
    ASSERT_TRUE(store.compact().ok());
    EXPECT_LT(store.journal().size_bytes(), journal_before);
    EXPECT_EQ(store.journal().event_count(), 0u);
    EXPECT_EQ(store.status().compactions_total, 1u);
  }

  // Third life: recovery now reads from the snapshot alone.
  {
    StateStore store(options, &clock, nullptr);
    auto recovered = store.open();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value().stats.recovered_jobs, 2u);
    EXPECT_EQ(recovered.value().stats.snapshot_jobs, 2u);
    EXPECT_EQ(recovered.value().stats.journal_events, 0u);
    bool saw_partial = false;
    for (const auto& job : recovered.value().jobs) {
      if (job.id == 1) {
        saw_partial = true;
        EXPECT_EQ(job.phase, JobPhase::kQueued);
        EXPECT_EQ(job.shots_done, 40u);
      }
    }
    EXPECT_TRUE(saw_partial);
  }
}

TEST(StateStoreTest, PayloadDedupEmbedsEachProgramOnce) {
  TempDir dir;
  ManualClock clock;
  StoreOptions options;
  options.data_dir = dir.path();
  options.compact_every_events = 0;
  const auto payload =
      std::make_shared<const quantum::Payload>(small_payload(100));
  {
    StateStore store(options, &clock, nullptr);
    ASSERT_TRUE(store.open().ok());
    for (std::uint64_t id = 1; id <= 3; ++id) {
      JobRecord meta;
      meta.id = id;
      meta.user = "alice";
      meta.total_shots = 100;
      store.job_submitted(meta, payload);
    }
    // Dedup is scoped per user: bob's first sighting re-embeds.
    JobRecord meta;
    meta.id = 4;
    meta.user = "bob";
    meta.total_shots = 100;
    store.job_submitted(meta, payload);
    ASSERT_TRUE(store.flush().ok());
  }
  auto entries = JobJournal::read_file(dir.path() + "/journal.log");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 4u);
  int embedded = 0;
  for (const auto& entry : entries.value()) {
    const Json& job = entry.data.at_or_null("job");
    EXPECT_EQ(static_cast<std::uint64_t>(
                  job.at_or_null("payload_hash").as_int()),
              payload_fingerprint(*payload));
    if (!job.at_or_null("payload").is_null()) ++embedded;
  }
  EXPECT_EQ(embedded, 2);  // one embed per user; repeats reference it

  // Recovery resolves the deduped repeats back to the full payload.
  // (Compare via program_hash: the text round-trip may turn whole-number
  // doubles into ints, which dump identically.)
  StateStore store(options, &clock, nullptr);
  auto recovered = store.open();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered.value().jobs.size(), 4u);
  for (const auto& job : recovered.value().jobs) {
    auto decoded = quantum::Payload::from_json(job.payload);
    ASSERT_TRUE(decoded.ok()) << "job " << job.id;
    EXPECT_EQ(decoded.value().program_hash(), payload->program_hash())
        << "job " << job.id;
  }
}

TEST(StateStoreTest, PayloadDedupNeverAliasesDifferingMetadataOrShots) {
  // The fingerprint covers the FULL payload identity: two submissions of
  // the same program body with different metadata (or shots) must not
  // share a dedup key, or recovery would hand job 2 job 1's annotations.
  TempDir dir;
  ManualClock clock;
  StoreOptions options;
  options.data_dir = dir.path();
  options.compact_every_events = 0;
  quantum::Payload run_a = small_payload(100);
  run_a.metadata()["name"] = "run-A";
  quantum::Payload run_b = small_payload(100);
  run_b.metadata()["name"] = "run-B";
  quantum::Payload more_shots = small_payload(500);
  more_shots.metadata()["name"] = "run-A";
  EXPECT_NE(payload_fingerprint(run_a), payload_fingerprint(run_b));
  EXPECT_NE(payload_fingerprint(run_a), payload_fingerprint(more_shots));
  {
    StateStore store(options, &clock, nullptr);
    ASSERT_TRUE(store.open().ok());
    std::uint64_t id = 0;
    for (const auto* payload : {&run_a, &run_b, &more_shots}) {
      JobRecord meta;
      meta.id = ++id;
      meta.user = "alice";
      meta.total_shots = payload->shots();
      store.job_submitted(
          meta, std::make_shared<const quantum::Payload>(*payload));
    }
    ASSERT_TRUE(store.flush().ok());
  }
  StateStore store(options, &clock, nullptr);
  auto recovered = store.open();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered.value().jobs.size(), 3u);
  for (const auto& job : recovered.value().jobs) {
    auto decoded = quantum::Payload::from_json(job.payload);
    ASSERT_TRUE(decoded.ok()) << "job " << job.id;
    const std::string expected = job.id == 2 ? "run-B" : "run-A";
    EXPECT_EQ(decoded.value().metadata().at_or_null("name").as_string(),
              expected)
        << "job " << job.id;
    EXPECT_EQ(decoded.value().shots(), job.id == 3 ? 500u : 100u)
        << "job " << job.id;
  }
}

TEST(RecoveryReplayerTest, ResolvesPayloadHashFromSnapshot) {
  // Compaction can swallow the payload-defining event; the snapshot then
  // carries the body and journal-only references must resolve against it.
  const quantum::Payload payload = small_payload(50);
  StoreSnapshot snapshot;
  snapshot.jobs_seq = 10;
  snapshot.sessions_seq = 10;
  snapshot.next_job_id = 2;
  JobRecord defining = make_job(1, 50);
  defining.payload_hash = payload_fingerprint(payload);
  defining.payload = payload.to_json();
  snapshot.jobs.push_back(defining);

  JobRecord reference = make_job(2, 50);
  reference.payload_hash = defining.payload_hash;
  reference.payload = Json();  // deduped away in the journal
  std::vector<JournalEntry> entries;
  entries.push_back(event(11, "job_submitted", job_event(reference)));

  RecoveredState state = RecoveryReplayer::apply(
      std::optional<StoreSnapshot>(snapshot), entries);
  ASSERT_EQ(state.jobs.size(), 2u);
  for (const auto& job : state.jobs) {
    EXPECT_EQ(job.payload, payload.to_json()) << "job " << job.id;
  }
}

TEST(StateStoreTest, AutoCompactionBoundsJournal) {
  TempDir dir;
  ManualClock clock;
  StoreOptions options;
  options.data_dir = dir.path();
  options.compact_every_events = 64;
  StateStore store(options, &clock, nullptr);
  ASSERT_TRUE(store.open().ok());
  store.set_snapshot_provider([&] {
    StoreSnapshot snapshot;
    snapshot.jobs_seq = store.journal().last_seq();
    snapshot.sessions_seq = snapshot.jobs_seq;
    return snapshot;  // steady state: nothing live, journal fully folds
  });
  for (int i = 1; i <= 1000; ++i) {
    store.job_submitted(make_job(static_cast<std::uint64_t>(i), 10));
    store.job_cancelled(static_cast<std::uint64_t>(i));
  }
  ASSERT_TRUE(store.flush().ok());
  // The compactor had 2000 events / 64-event windows to act on; however
  // the race with the final appends resolves, the journal must stay far
  // below the un-compacted total.
  for (int tries = 0; tries < 200 && store.journal().event_count() > 200;
       ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(store.journal().event_count(), 200u);
  EXPECT_GE(store.status().compactions_total, 1u);
}

}  // namespace
}  // namespace qcenv::store
