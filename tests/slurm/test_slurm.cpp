// slurmlite: priority scheduling, backfill, preemption, GRES accounting,
// SPANK plugins — all in virtual time.
#include <gtest/gtest.h>

#include "qrmi/local_emulator.hpp"
#include "slurm/scheduler.hpp"

namespace qcenv::slurm {
namespace {

using common::kSecond;

ClusterConfig small_cluster() {
  ClusterConfig config;
  config.nodes = {{"n0", 8, 0}, {"n1", 8, 0}};
  config.partitions = {
      {"production", 300, true, 24LL * 3600 * kSecond},
      {"dev", 100, false, 24LL * 3600 * kSecond},
  };
  config.gres = {{"qpu", 10}};
  return config;
}

JobSubmission simple_job(const std::string& partition, DurationNs duration,
                         int cpus = 4) {
  JobSubmission submission;
  submission.name = "job";
  submission.user = "alice";
  submission.partition = partition;
  submission.cpus_per_node = cpus;
  submission.duration = duration;
  submission.time_limit = duration * 2;
  return submission;
}

TEST(SlurmScheduler, RunsJobToCompletion) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  bool started = false, ended = false;
  JobCallbacks callbacks;
  callbacks.on_start = [&](const BatchJob&) { started = true; };
  callbacks.on_end = [&](const BatchJob& job) {
    ended = true;
    EXPECT_EQ(job.state, JobState::kCompleted);
  };
  auto id = slurm.submit(simple_job("dev", 60 * kSecond), callbacks);
  ASSERT_TRUE(id.ok());
  sim.run();
  EXPECT_TRUE(started);
  EXPECT_TRUE(ended);
  EXPECT_EQ(sim.now(), 60 * kSecond);
}

TEST(SlurmScheduler, RejectsInvalidSubmissions) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  EXPECT_FALSE(slurm.submit(simple_job("nonexistent", kSecond)).ok());

  JobSubmission too_long = simple_job("dev", kSecond);
  too_long.time_limit = 100LL * 24 * 3600 * kSecond;
  EXPECT_FALSE(slurm.submit(too_long).ok());

  JobSubmission too_many_nodes = simple_job("dev", kSecond);
  too_many_nodes.nodes = 99;
  EXPECT_FALSE(slurm.submit(too_many_nodes).ok());

  JobSubmission bad_gres = simple_job("dev", kSecond);
  bad_gres.gres["fpga"] = 1;
  EXPECT_FALSE(slurm.submit(bad_gres).ok());

  JobSubmission too_much_gres = simple_job("dev", kSecond);
  too_much_gres.gres["qpu"] = 11;
  EXPECT_FALSE(slurm.submit(too_much_gres).ok());
}

TEST(SlurmScheduler, QueuesWhenFullThenRuns) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  // Each node has 8 cpus; 4 jobs of 8 cpus = 2 run, 2 wait.
  std::vector<common::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(
        slurm.submit(simple_job("dev", 100 * kSecond, 8)).value());
  }
  EXPECT_EQ(slurm.running_count(), 2u);
  EXPECT_EQ(slurm.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.now(), 200 * kSecond);  // two waves
  for (const auto id : ids) {
    EXPECT_EQ(slurm.query(id).value().state, JobState::kCompleted);
  }
}

TEST(SlurmScheduler, PriorityOrdersPendingJobs) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  // Fill the cluster.
  (void)slurm.submit(simple_job("dev", 50 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 50 * kSecond, 8)).value();
  // Queue a dev job first, then production: production must start first.
  auto dev = slurm.submit(simple_job("dev", 10 * kSecond, 8)).value();
  auto prod = slurm.submit(simple_job("production", 10 * kSecond, 8)).value();
  sim.run();
  const auto dev_job = slurm.query(dev).value();
  const auto prod_job = slurm.query(prod).value();
  EXPECT_LT(prod_job.start_time, dev_job.start_time);
}

TEST(SlurmScheduler, ProductionPreemptsLowerPartition) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  // Fill both nodes with dev work.
  auto victim1 = slurm.submit(simple_job("dev", 1000 * kSecond, 8)).value();
  auto victim2 = slurm.submit(simple_job("dev", 1000 * kSecond, 8)).value();
  EXPECT_EQ(slurm.running_count(), 2u);
  // Production job arrives needing a full node.
  auto prod = slurm.submit(simple_job("production", 10 * kSecond, 8)).value();
  // Preemption happens synchronously at submit.
  EXPECT_EQ(slurm.query(prod).value().state, JobState::kRunning);
  const bool v1_preempted =
      slurm.query(victim1).value().preempt_count > 0;
  const bool v2_preempted =
      slurm.query(victim2).value().preempt_count > 0;
  EXPECT_TRUE(v1_preempted || v2_preempted);
  sim.run();
  EXPECT_GT(slurm.stats().jobs_preempted, 0u);
  // Everyone eventually completes (victims were requeued).
  EXPECT_EQ(slurm.query(victim1).value().state, JobState::kCompleted);
  EXPECT_EQ(slurm.query(victim2).value().state, JobState::kCompleted);
}

TEST(SlurmScheduler, EasyBackfillRunsShortJobsAround) {
  simkit::Simulator sim;
  ClusterConfig config = small_cluster();
  SlurmScheduler slurm(config, &sim);
  // One node busy for 100s with 8 cpus; node 2 free with 8.
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  // Head job needs 2 nodes: blocked, reserves t=200 (time limits).
  JobSubmission wide = simple_job("dev", 50 * kSecond, 8);
  wide.nodes = 2;
  auto blocked = slurm.submit(wide).value();
  // Short job fits the backfill window (ends before the reservation).
  JobSubmission shorty = simple_job("dev", 10 * kSecond, 8);
  shorty.time_limit = 20 * kSecond;
  auto backfilled = slurm.submit(shorty).value();
  EXPECT_EQ(slurm.query(blocked).value().state, JobState::kPending);
  sim.run();
  // The backfilled job must have started before the wide job.
  EXPECT_LT(slurm.query(backfilled).value().start_time,
            slurm.query(blocked).value().start_time);
}

TEST(SlurmScheduler, BackfillNeverDelaysReservedHead) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  JobSubmission wide = simple_job("dev", 50 * kSecond, 8);
  wide.nodes = 2;
  auto head = slurm.submit(wide).value();
  // Long job that would push past the reservation must NOT backfill.
  JobSubmission long_job = simple_job("dev", 500 * kSecond, 8);
  long_job.time_limit = 1000 * kSecond;
  auto hopeful = slurm.submit(long_job).value();
  sim.run();
  // Head starts exactly when the first wave ends.
  EXPECT_EQ(slurm.query(head).value().start_time, 100 * kSecond);
  EXPECT_GE(slurm.query(hopeful).value().start_time,
            slurm.query(head).value().start_time);
}

TEST(SlurmScheduler, GresSerializesQpuJobs) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  JobSubmission qpu_job = simple_job("dev", 50 * kSecond, 2);
  qpu_job.gres["qpu"] = 10;
  auto a = slurm.submit(qpu_job).value();
  auto b = slurm.submit(qpu_job).value();
  EXPECT_EQ(slurm.running_count(), 1u);  // only one holds the QPU
  sim.run();
  EXPECT_EQ(slurm.query(b).value().start_time, 50 * kSecond);
  (void)a;
}

TEST(SlurmScheduler, FractionalGresSharesCoexist) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  JobSubmission half = simple_job("dev", 50 * kSecond, 2);
  half.gres["qpu"] = 5;  // 50% timeshare (paper §3.5)
  (void)slurm.submit(half).value();
  (void)slurm.submit(half).value();
  EXPECT_EQ(slurm.running_count(), 2u);  // both fit in 10 units
}

TEST(SlurmScheduler, TimeoutEnforced) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  JobSubmission runaway = simple_job("dev", 100 * kSecond);
  runaway.time_limit = 30 * kSecond;
  auto id = slurm.submit(runaway).value();
  sim.run();
  EXPECT_EQ(slurm.query(id).value().state, JobState::kTimeout);
  EXPECT_EQ(sim.now(), 30 * kSecond);
}

TEST(SlurmScheduler, CancelPendingAndRunning) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  auto running = slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  auto pending = slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  EXPECT_TRUE(slurm.cancel(pending).ok());
  EXPECT_TRUE(slurm.cancel(running).ok());
  EXPECT_FALSE(slurm.cancel(pending).ok());  // already cancelled
  EXPECT_EQ(slurm.query(pending).value().state, JobState::kCancelled);
  sim.run();
}

TEST(SlurmScheduler, ExternalCompletionJobs) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  JobSubmission external = simple_job("dev", 0);
  external.external_completion = true;
  external.time_limit = 1000 * kSecond;
  common::JobId id;
  JobCallbacks callbacks;
  callbacks.on_start = [&](const BatchJob& job) {
    // Finish it 42 seconds after start via an external event.
    sim.schedule_after(42 * kSecond, [&slurm, id = job.id] {
      EXPECT_TRUE(slurm.complete(id).ok());
    });
  };
  id = slurm.submit(external, callbacks).value();
  sim.run();
  const auto job = slurm.query(id).value();
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.end_time - job.start_time, 42 * kSecond);
}

TEST(SlurmScheduler, UtilizationAccounting) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);  // 16 cpus total
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  sim.run();
  const auto stats = slurm.finish_accounting();
  // 8 cpus busy for 100 s out of 16 * 100.
  EXPECT_NEAR(stats.cpu_busy_seconds, 800.0, 1e-6);
  EXPECT_NEAR(stats.cpu_capacity_seconds, 1600.0, 1e-6);
  EXPECT_NEAR(stats.cpu_utilization(), 0.5, 1e-9);
}

TEST(SpankPlugins, QrmiPluginInjectsEnv) {
  qrmi::ResourceRegistry registry;
  registry.add("emu",
               qrmi::LocalEmulatorQrmi::create("emu", "sv").value());
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  slurm.register_plugin(std::make_unique<QrmiSpankPlugin>(&registry, 8765));
  slurm.register_plugin(std::make_unique<HintSpankPlugin>());

  JobSubmission hybrid = simple_job("dev", 10 * kSecond);
  hybrid.qpu_resource = "emu";
  hybrid.hint = "qc-balanced";
  auto id = slurm.submit(hybrid).value();
  const auto job = slurm.query(id).value();
  EXPECT_EQ(job.env.at("QRMI_RESOURCE_ID"), "emu");
  EXPECT_EQ(job.env.at("QRMI_RESOURCE_TYPE"), "local-emulator");
  EXPECT_EQ(job.env.at("QRMI_DAEMON_PORT"), "8765");
  EXPECT_EQ(job.env.at("QCENV_WORKLOAD_HINT"), "qc-balanced");
  sim.run();
}

TEST(SpankPlugins, RejectsUnknownResourceAndHint) {
  qrmi::ResourceRegistry registry;
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  slurm.register_plugin(std::make_unique<QrmiSpankPlugin>(&registry));
  slurm.register_plugin(std::make_unique<HintSpankPlugin>());

  JobSubmission unknown_resource = simple_job("dev", kSecond);
  unknown_resource.qpu_resource = "missing-qpu";
  EXPECT_FALSE(slurm.submit(unknown_resource).ok());

  JobSubmission bad_hint = simple_job("dev", kSecond);
  bad_hint.hint = "qc-sometimes";
  EXPECT_FALSE(slurm.submit(bad_hint).ok());
}


TEST(SlurmScheduler, LicensePoolsGateJobs) {
  simkit::Simulator sim;
  ClusterConfig config = small_cluster();
  config.licenses = {{"qpu_license", 2}};
  SlurmScheduler slurm(config, &sim);
  JobSubmission licensed = simple_job("dev", 50 * kSecond, 2);
  licensed.licenses["qpu_license"] = 1;
  (void)slurm.submit(licensed).value();
  (void)slurm.submit(licensed).value();
  auto third = slurm.submit(licensed).value();
  // Two licenses: third job must wait even though cpus are free.
  EXPECT_EQ(slurm.running_count(), 2u);
  sim.run();
  EXPECT_EQ(slurm.query(third).value().start_time, 50 * kSecond);
}

TEST(SlurmScheduler, UnknownLicensePoolRejectedAtAllocation) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  JobSubmission bad = simple_job("dev", kSecond, 2);
  bad.licenses["imaginary"] = 1;
  // Unknown license pools never allocate; the job stays pending forever
  // rather than crashing the scheduler.
  auto id = slurm.submit(bad).value();
  sim.run();
  EXPECT_EQ(slurm.query(id).value().state, JobState::kPending);
}

TEST(SlurmScheduler, WaitStatsByPartition) {
  simkit::Simulator sim;
  SlurmScheduler slurm(small_cluster(), &sim);
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 100 * kSecond, 8)).value();
  (void)slurm.submit(simple_job("dev", 10 * kSecond, 8)).value();  // waits
  sim.run();
  const auto waits = slurm.mean_wait_seconds_by_partition();
  ASSERT_TRUE(waits.count("dev"));
  EXPECT_GT(waits.at("dev"), 0.0);
}

}  // namespace
}  // namespace qcenv::slurm
