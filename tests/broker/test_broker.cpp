// ResourceBroker: policies, health/backoff, drain, and multi-resource
// dispatch with failover through the Dispatcher.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "broker/broker.hpp"
#include "daemon/dispatcher.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::broker {
namespace {

using common::ManualClock;
using common::WallClock;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 40) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

/// Minimal controllable resource for broker unit tests: settable health and
/// device spec, no real execution.
class FakeQrmi final : public qrmi::Qrmi {
 public:
  FakeQrmi(std::string id, quantum::DeviceSpec spec)
      : id_(std::move(id)), spec_(std::move(spec)) {}

  std::string resource_id() const override { return id_; }
  qrmi::ResourceType type() const override {
    return qrmi::ResourceType::kLocalEmulator;
  }
  common::Result<bool> is_accessible() override {
    ++probes;
    return accessible.load();
  }
  common::Result<std::string> acquire() override { return std::string("t"); }
  common::Status release(const std::string&) override {
    return common::Status::ok_status();
  }
  common::Result<std::string> task_start(const quantum::Payload&) override {
    return start_error;
  }
  common::Result<qrmi::TaskStatus> task_status(const std::string&) override {
    return common::err::not_found("no tasks");
  }
  common::Result<quantum::Samples> task_result(const std::string&) override {
    return common::err::not_found("no tasks");
  }
  common::Status task_stop(const std::string&) override {
    return common::err::not_found("no tasks");
  }
  common::Result<quantum::DeviceSpec> target() override { return spec_; }
  common::Json metadata() override { return common::Json::object(); }

  std::atomic<bool> accessible{true};
  std::atomic<int> probes{0};
  /// What task_start returns (fakes never execute).
  common::Error start_error =
      common::err::unavailable("fake resource does not execute");

 private:
  std::string id_;
  quantum::DeviceSpec spec_;
};

std::shared_ptr<FakeQrmi> fake(const std::string& id,
                               quantum::DeviceSpec spec =
                                   quantum::DeviceSpec::emulator_default()) {
  return std::make_shared<FakeQrmi>(id, std::move(spec));
}

TEST(PolicyTest, StringsRoundTrip) {
  const SchedulingPolicy policies[] = {SchedulingPolicy::kRoundRobin,
                                       SchedulingPolicy::kLeastLoaded,
                                       SchedulingPolicy::kCalibrationAware};
  for (const auto policy : policies) {
    auto back = policy_from_string(to_string(policy));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), policy);
  }
  auto bad = policy_from_string("random");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("least_loaded"), std::string::npos);
}

TEST(PolicyTest, CalibrationScoreRanksDegradedSpecsLower) {
  auto pristine = quantum::DeviceSpec::emulator_default();
  auto degraded = pristine;
  degraded.calibration.readout_p10 = 0.3;
  degraded.calibration.dephasing_rate = 0.2;
  EXPECT_GT(calibration_score(pristine), calibration_score(degraded));

  auto big = pristine;
  big.max_qubits = 64;
  auto small = pristine;
  small.max_qubits = 8;
  EXPECT_GT(calibration_score(big), calibration_score(small));
}

TEST(BrokerTest, RoundRobinCyclesInRegistrationOrder) {
  ManualClock clock;
  ResourceBroker broker({.default_policy = SchedulingPolicy::kRoundRobin},
                        &clock, nullptr);
  ASSERT_TRUE(broker.add("a", fake("a")).ok());
  ASSERT_TRUE(broker.add("b", fake("b")).ok());
  ASSERT_TRUE(broker.add("c", fake("c")).ok());
  std::vector<std::string> picked;
  for (int i = 0; i < 6; ++i) picked.push_back(broker.pick().value());
  EXPECT_EQ(picked,
            (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));
}

TEST(BrokerTest, LeastLoadedFollowsBoundJobs) {
  ManualClock clock;
  ResourceBroker broker({.default_policy = SchedulingPolicy::kLeastLoaded},
                        &clock, nullptr);
  ASSERT_TRUE(broker.add("a", fake("a")).ok());
  ASSERT_TRUE(broker.add("b", fake("b")).ok());
  // Bound counts break ties in registration order, then track load.
  EXPECT_EQ(broker.pick().value(), "a");
  EXPECT_EQ(broker.pick().value(), "b");
  EXPECT_EQ(broker.pick().value(), "a");
  broker.unbind("a");
  broker.unbind("a");  // a: 0 bound, b: 1 bound
  EXPECT_EQ(broker.pick().value(), "a");
}

TEST(BrokerTest, CalibrationAwarePrefersBestScore) {
  ManualClock clock;
  auto good_spec = quantum::DeviceSpec::emulator_default();
  auto bad_spec = good_spec;
  bad_spec.calibration.readout_p10 = 0.4;
  ResourceBroker broker(
      {.default_policy = SchedulingPolicy::kCalibrationAware}, &clock,
      nullptr);
  ASSERT_TRUE(broker.add("noisy", fake("noisy", bad_spec)).ok());
  ASSERT_TRUE(broker.add("clean", fake("clean", good_spec)).ok());
  EXPECT_EQ(broker.pick().value(), "clean");
  EXPECT_EQ(broker.pick().value(), "clean");
}

TEST(BrokerTest, ResourceHintPinsPlacement) {
  ManualClock clock;
  ResourceBroker broker({}, &clock, nullptr);
  ASSERT_TRUE(broker.add("a", fake("a")).ok());
  ASSERT_TRUE(broker.add("b", fake("b")).ok());
  ResourceBroker::PlacementRequest pin_b;
  pin_b.resource_hint = "b";
  EXPECT_EQ(broker.pick(pin_b).value(), "b");

  ResourceBroker::PlacementRequest pin_z;
  pin_z.resource_hint = "z";
  auto unknown = broker.pick(pin_z);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code(), common::ErrorCode::kNotFound);
  // User-centric diagnostics: the error lists what IS available.
  EXPECT_NE(unknown.error().message().find("a, b"), std::string::npos);

  ASSERT_TRUE(broker.drain("b").ok());
  auto draining = broker.pick(pin_b);
  ASSERT_FALSE(draining.ok());
  EXPECT_EQ(draining.error().code(), common::ErrorCode::kUnavailable);
}

TEST(BrokerTest, DrainExcludesAndResumeRestores) {
  ManualClock clock;
  ResourceBroker broker({.default_policy = SchedulingPolicy::kRoundRobin},
                        &clock, nullptr);
  ASSERT_TRUE(broker.add("a", fake("a")).ok());
  ASSERT_TRUE(broker.add("b", fake("b")).ok());
  ASSERT_TRUE(broker.drain("a").ok());
  EXPECT_TRUE(broker.draining("a"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(broker.pick().value(), "b");
  ASSERT_TRUE(broker.resume("a").ok());
  std::vector<std::string> picked;
  for (int i = 0; i < 2; ++i) picked.push_back(broker.pick().value());
  EXPECT_NE(std::find(picked.begin(), picked.end(), "a"), picked.end());
  EXPECT_FALSE(broker.drain("nope").ok());
}

TEST(BrokerTest, FailureArmsBackoffAndRecoveryProbes) {
  ManualClock clock;
  BrokerOptions options;
  options.initial_backoff = 100 * common::kMillisecond;
  options.max_backoff = common::kSecond;
  ResourceBroker broker(options, &clock, nullptr);
  auto resource = fake("a");
  ASSERT_TRUE(broker.add("a", resource).ok());
  EXPECT_TRUE(broker.healthy("a"));

  broker.on_failure("a", common::err::unavailable("node lost"));
  EXPECT_FALSE(broker.healthy("a"));
  const int probes_before = resource->probes.load();
  // Within the backoff window no probe happens even if the node is back.
  EXPECT_FALSE(broker.check_health("a"));
  EXPECT_EQ(resource->probes.load(), probes_before);
  // After the backoff elapses the probe runs and the resource recovers.
  clock.advance(150 * common::kMillisecond);
  EXPECT_TRUE(broker.check_health("a"));
  EXPECT_TRUE(broker.healthy("a"));
}

TEST(BrokerTest, NoHealthyResourceErrorNamesFleetState) {
  ManualClock clock;
  ResourceBroker broker({}, &clock, nullptr);
  auto down = fake("a");
  down->accessible = false;
  ASSERT_TRUE(broker.add("a", down).ok());
  ASSERT_TRUE(broker.add("b", fake("b")).ok());
  ASSERT_TRUE(broker.drain("b").ok());
  auto pick = broker.pick();
  ASSERT_FALSE(pick.ok());
  EXPECT_EQ(pick.error().code(), common::ErrorCode::kUnavailable);
  EXPECT_NE(pick.error().message().find("a=down"), std::string::npos);
  EXPECT_NE(pick.error().message().find("b=draining"), std::string::npos);

  ResourceBroker empty({}, &clock, nullptr);
  EXPECT_EQ(empty.pick().error().code(),
            common::ErrorCode::kFailedPrecondition);
}

TEST(BrokerTest, SnapshotTracksAccounting) {
  ManualClock clock;
  ResourceBroker broker({}, &clock, nullptr);
  ASSERT_TRUE(broker.add("a", fake("a")).ok());
  EXPECT_FALSE(broker.add("a", fake("a")).ok());  // duplicate name
  broker.on_dispatch("a", 30);
  auto mid = broker.snapshot();
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].inflight_batches, 1u);
  broker.on_success("a", 30);
  auto done = broker.snapshot();
  EXPECT_EQ(done[0].inflight_batches, 0u);
  EXPECT_EQ(done[0].batches_done, 1u);
  EXPECT_EQ(done[0].shots_done, 30u);
  EXPECT_GT(done[0].score, 0.0);
}

// ---- Multi-resource dispatch through the Dispatcher -----------------------

TEST(BrokerDispatchTest, JobsExecuteConcurrentlyAcrossResources) {
  WallClock clock;
  BrokerOptions options;
  options.default_policy = SchedulingPolicy::kRoundRobin;
  auto broker = std::make_shared<ResourceBroker>(options, &clock, nullptr);
  ASSERT_TRUE(
      broker->add("emu0",
                  qrmi::LocalEmulatorQrmi::create("emu0", "sv").value())
          .ok());
  ASSERT_TRUE(
      broker->add("emu1",
                  qrmi::LocalEmulatorQrmi::create("emu1", "sv").value())
          .ok());
  daemon::QueuePolicy queue_policy;
  queue_policy.non_production_batch_shots = 0;
  daemon::Dispatcher dispatcher(broker, queue_policy, &clock, nullptr);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(dispatcher.submit(common::SessionId{1}, "u",
                                    daemon::JobClass::kDevelopment,
                                    small_payload(30)));
  }
  for (const auto id : ids) {
    auto samples = dispatcher.wait(id, 30 * common::kSecond);
    ASSERT_TRUE(samples.ok()) << samples.error().to_string();
    EXPECT_EQ(samples.value().total_shots(), 30u);
  }
  // Round-robin placement: both fleet members did real work.
  for (const auto& status : broker->snapshot()) {
    EXPECT_GT(status.batches_done, 0u) << status.name;
  }
}

TEST(BrokerDispatchTest, FailoverCompletesJobOnSurvivorWithAllShots) {
  WallClock clock;
  BrokerOptions options;
  options.initial_backoff = 50 * common::kMillisecond;
  auto broker = std::make_shared<ResourceBroker>(options, &clock, nullptr);
  auto doomed = qrmi::LocalEmulatorQrmi::create("doomed", "sv").value();
  auto survivor = qrmi::LocalEmulatorQrmi::create("survivor", "sv").value();
  ASSERT_TRUE(broker->add("doomed", doomed).ok());
  ASSERT_TRUE(broker->add("survivor", survivor).ok());
  daemon::QueuePolicy queue_policy;
  queue_policy.non_production_batch_shots = 20;  // 400 shots -> 20 batches
  daemon::Dispatcher dispatcher(broker, queue_policy, &clock, nullptr);

  daemon::Dispatcher::SubmitOptions pin;
  pin.resource = "doomed";
  auto id = dispatcher.submit(common::SessionId{1}, "u",
                              daemon::JobClass::kDevelopment,
                              small_payload(400), pin);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dispatcher.query(id.value()).value().resource, "doomed");

  // Kill the resource once the job is demonstrably mid-flight.
  for (int i = 0; i < 1000; ++i) {
    if (dispatcher.query(id.value()).value().shots_done > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(dispatcher.query(id.value()).value().shots_done, 0u);
  doomed->set_offline(true);

  auto samples = dispatcher.wait(id.value(), 60 * common::kSecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  // Zero lost shots: every one of the 400 shots was executed somewhere.
  EXPECT_EQ(samples.value().total_shots(), 400u);
  const auto job = dispatcher.query(id.value()).value();
  EXPECT_EQ(job.state, daemon::DaemonJobState::kCompleted);
  EXPECT_EQ(job.resource, "survivor");
  EXPECT_FALSE(broker->healthy("doomed"));
}

TEST(BrokerDispatchTest, UnplacedJobRunsOnceFleetRecovers) {
  WallClock clock;
  BrokerOptions options;
  options.initial_backoff = 20 * common::kMillisecond;
  auto broker = std::make_shared<ResourceBroker>(options, &clock, nullptr);
  auto flaky = qrmi::LocalEmulatorQrmi::create("flaky", "sv").value();
  flaky->set_offline(true);  // fleet is down at submit time
  ASSERT_TRUE(broker->add("flaky", flaky).ok());
  daemon::Dispatcher dispatcher(broker, {}, &clock, nullptr);

  const auto id = dispatcher.submit(common::SessionId{1}, "u",
                                    daemon::JobClass::kDevelopment,
                                    small_payload(20));
  EXPECT_TRUE(dispatcher.query(id).value().resource.empty());
  flaky->set_offline(false);
  auto samples = dispatcher.wait(id, 30 * common::kSecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(dispatcher.query(id).value().resource, "flaky");
}

TEST(BrokerDispatchTest, DrainResourceMovesQueuedJobs) {
  WallClock clock;
  BrokerOptions options;
  options.default_policy = SchedulingPolicy::kRoundRobin;
  auto broker = std::make_shared<ResourceBroker>(options, &clock, nullptr);
  ASSERT_TRUE(
      broker->add("emu0",
                  qrmi::LocalEmulatorQrmi::create("emu0", "sv").value())
          .ok());
  ASSERT_TRUE(
      broker->add("emu1",
                  qrmi::LocalEmulatorQrmi::create("emu1", "sv").value())
          .ok());
  daemon::Dispatcher dispatcher(broker, {}, &clock, nullptr);
  dispatcher.drain();  // hold dispatch while we stage the queue

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(dispatcher.submit(common::SessionId{1}, "u",
                                    daemon::JobClass::kDevelopment,
                                    small_payload(10)));
  }
  ASSERT_TRUE(dispatcher.drain_resource("emu0").ok());
  for (const auto id : ids) {
    EXPECT_EQ(dispatcher.query(id).value().resource, "emu1");
  }
  dispatcher.resume();
  for (const auto id : ids) {
    ASSERT_TRUE(dispatcher.wait(id, 30 * common::kSecond).ok());
  }
  for (const auto& status : broker->snapshot()) {
    if (status.name == "emu0") {
      EXPECT_EQ(status.batches_done, 0u);
    } else {
      EXPECT_GT(status.batches_done, 0u);
    }
  }
}

TEST(BrokerDispatchTest, RejectedUnpinnedJobRePlacesInsteadOfFailing) {
  // A spec rejection in a heterogeneous fleet is a placement problem, not a
  // job problem: the broker retries the job on another resource.
  WallClock clock;
  BrokerOptions options;
  options.default_policy = SchedulingPolicy::kRoundRobin;
  auto broker = std::make_shared<ResourceBroker>(options, &clock, nullptr);
  auto picky = fake("picky");
  picky->start_error = common::err::invalid_argument("unsupported payload");
  ASSERT_TRUE(broker->add("picky", picky).ok());
  ASSERT_TRUE(
      broker->add("capable",
                  qrmi::LocalEmulatorQrmi::create("capable", "sv").value())
          .ok());
  daemon::Dispatcher dispatcher(broker, {}, &clock, nullptr);

  // Freeze dispatch while asserting the initial placement: otherwise the
  // lane can reject and re-place the job before the query runs.
  dispatcher.drain();
  const auto id = dispatcher.submit(common::SessionId{1}, "u",
                                    daemon::JobClass::kDevelopment,
                                    small_payload(20));
  ASSERT_EQ(dispatcher.query(id).value().resource, "picky");
  dispatcher.resume();
  auto samples = dispatcher.wait(id, 30 * common::kSecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 20u);
  EXPECT_EQ(dispatcher.query(id).value().resource, "capable");
  // The rejection did not indict the resource's health.
  EXPECT_TRUE(broker->healthy("picky"));
}

TEST(BrokerDispatchTest, RejectedPinnedJobFailsImmediately) {
  WallClock clock;
  auto broker = std::make_shared<ResourceBroker>(BrokerOptions{}, &clock,
                                                 nullptr);
  auto picky = fake("picky");
  picky->start_error = common::err::invalid_argument("unsupported payload");
  ASSERT_TRUE(broker->add("picky", picky).ok());
  ASSERT_TRUE(
      broker->add("capable",
                  qrmi::LocalEmulatorQrmi::create("capable", "sv").value())
          .ok());
  daemon::Dispatcher dispatcher(broker, {}, &clock, nullptr);

  daemon::Dispatcher::SubmitOptions pin;
  pin.resource = "picky";
  auto id = dispatcher.submit(common::SessionId{1}, "u",
                              daemon::JobClass::kDevelopment,
                              small_payload(20), pin);
  ASSERT_TRUE(id.ok());
  auto samples = dispatcher.wait(id.value(), 30 * common::kSecond);
  ASSERT_FALSE(samples.ok());
  EXPECT_NE(samples.error().message().find("unsupported payload"),
            std::string::npos);
  EXPECT_EQ(dispatcher.query(id.value()).value().state,
            daemon::DaemonJobState::kFailed);
}

TEST(BrokerDispatchTest, WaitTimesOutInsteadOfBlockingForever) {
  WallClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  daemon::Dispatcher dispatcher(resource, {}, &clock, nullptr);
  dispatcher.drain();  // wedge the queue
  const auto id = dispatcher.submit(common::SessionId{1}, "u",
                                    daemon::JobClass::kDevelopment,
                                    small_payload(10));
  auto timed_out = dispatcher.wait(id, 50 * common::kMillisecond);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.error().code(), common::ErrorCode::kTimeout);
  EXPECT_NE(timed_out.error().message().find("queued"), std::string::npos);
  dispatcher.resume();
  EXPECT_TRUE(dispatcher.wait(id, 30 * common::kSecond).ok());
  EXPECT_FALSE(dispatcher.wait(424242, common::kSecond).ok());
}

}  // namespace
}  // namespace qcenv::broker
