// QRMI resources: local emulator, direct QPU, registry, and the cloud
// client against a live CloudService.
#include <gtest/gtest.h>

#include "cloud/cloud_service.hpp"
#include "qrmi/cloud_client.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"
#include "qrmi/registry.hpp"

namespace qcenv::qrmi {
namespace {

using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 50) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

TEST(LocalEmulatorQrmiTest, FullTaskLifecycle) {
  auto resource = LocalEmulatorQrmi::create("emu", "sv");
  ASSERT_TRUE(resource.ok());
  Qrmi& qrmi = *resource.value();
  EXPECT_EQ(qrmi.type(), ResourceType::kLocalEmulator);
  EXPECT_TRUE(qrmi.is_accessible().value());

  auto token = qrmi.acquire();
  ASSERT_TRUE(token.ok());
  auto task = qrmi.task_start(small_payload());
  ASSERT_TRUE(task.ok());
  auto samples = qrmi.task_result(task.value());  // waits for completion
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 50u);
  EXPECT_EQ(qrmi.task_status(task.value()).value(), TaskStatus::kCompleted);
  EXPECT_TRUE(qrmi.release(token.value()).ok());
}

TEST(LocalEmulatorQrmiTest, RunSyncConvenience) {
  auto resource = LocalEmulatorQrmi::create("emu", "mps:8");
  ASSERT_TRUE(resource.ok());
  auto samples = resource.value()->run_sync(small_payload(30));
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 30u);
}

TEST(LocalEmulatorQrmiTest, UnknownTaskAndBackend) {
  EXPECT_FALSE(LocalEmulatorQrmi::create("x", "quantum-annealer").ok());
  auto resource = LocalEmulatorQrmi::create("emu", "sv");
  ASSERT_TRUE(resource.ok());
  EXPECT_FALSE(resource.value()->task_status("local-999").ok());
  EXPECT_FALSE(resource.value()->task_result("local-999").ok());
}

TEST(LocalEmulatorQrmiTest, TargetReportsEmulatorSpec) {
  auto resource = LocalEmulatorQrmi::create("emu", "sv");
  ASSERT_TRUE(resource.ok());
  auto spec = resource.value()->target();
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().supports_digital);
  EXPECT_EQ(resource.value()->metadata().at_or_null("engine").as_string(),
            "sv");
}

TEST(DirectQpuQrmiTest, ExclusiveLease) {
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  qpu::QpuDevice device(options, &clock);
  qpu::QpuController controller(&device, &clock);
  DirectQpuQrmi qrmi("fresnel", &device, &controller);

  auto lease = qrmi.acquire();
  ASSERT_TRUE(lease.ok());
  auto second = qrmi.acquire();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_FALSE(qrmi.release("wrong-token").ok());
  EXPECT_TRUE(qrmi.release(lease.value()).ok());
  EXPECT_TRUE(qrmi.acquire().ok());
}

TEST(DirectQpuQrmiTest, ExecutesThroughController) {
  common::ManualClock clock;
  qpu::QpuOptions options;
  options.time_scale = 1e9;
  qpu::QpuDevice device(options, &clock);
  qpu::QpuController controller(&device, &clock);
  DirectQpuQrmi qrmi("fresnel", &device, &controller);

  auto samples = qrmi.run_sync(small_payload(20), common::kMillisecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 20u);
  auto spec = qrmi.target();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().name, "sim-analog");
  EXPECT_FALSE(qrmi.task_status("not-a-number").ok());
}

TEST(RegistryTest, LookupAndNames) {
  ResourceRegistry registry;
  registry.add("emu", LocalEmulatorQrmi::create("emu", "sv").value());
  registry.add("mock", LocalEmulatorQrmi::create("mock", "mps-mock").value());
  EXPECT_TRUE(registry.contains("emu"));
  EXPECT_FALSE(registry.contains("qpu"));
  EXPECT_EQ(registry.names().size(), 2u);
  auto missing = registry.lookup("qpu");
  ASSERT_FALSE(missing.ok());
  // Error message lists available resources to help users.
  EXPECT_NE(missing.error().message().find("emu"), std::string::npos);
}

TEST(RegistryTest, NamesPreserveRegistrationOrder) {
  // Fleet consumers treat the first declared resource as the primary, so
  // names() must not be alphabetised.
  ResourceRegistry registry;
  registry.add("zeta", LocalEmulatorQrmi::create("zeta", "sv").value());
  registry.add("alpha", LocalEmulatorQrmi::create("alpha", "sv").value());
  registry.add("zeta", LocalEmulatorQrmi::create("zeta2", "sv").value());
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"zeta", "alpha"}));
  EXPECT_EQ(registry.lookup("zeta").value()->resource_id(), "zeta2");
}

TEST(RegistryTest, LoadFromConfig) {
  common::Config config;
  ASSERT_TRUE(config
                  .load_string(
                      "QRMI_RESOURCES=dev-emu, big-mps\n"
                      "QRMI_DEV_EMU_TYPE=local-emulator\n"
                      "QRMI_DEV_EMU_ENGINE=sv\n"
                      "QRMI_BIG_MPS_TYPE=local-emulator\n"
                      "QRMI_BIG_MPS_ENGINE=mps:32\n")
                  .ok());
  ResourceRegistry registry;
  ASSERT_TRUE(registry.load_from_config(config).ok());
  EXPECT_TRUE(registry.contains("dev-emu"));
  EXPECT_TRUE(registry.contains("big-mps"));
  EXPECT_EQ(registry.lookup("big-mps").value()->metadata()
                .at_or_null("engine").as_string(),
            "mps:32");
}

TEST(RegistryTest, ConfigErrors) {
  // Every config error must name the offending resource and config key so
  // users can fix their environment without reading the loader code.
  ResourceRegistry registry;
  common::Config missing_type;
  ASSERT_TRUE(missing_type.load_string("QRMI_RESOURCES=x\n").ok());
  auto status = registry.load_from_config(missing_type);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("resource 'x'"), std::string::npos);
  EXPECT_NE(status.error().message().find("QRMI_X_TYPE"), std::string::npos);

  common::Config bad_type;
  ASSERT_TRUE(bad_type
                  .load_string("QRMI_RESOURCES=x\nQRMI_X_TYPE=teleport\n")
                  .ok());
  status = registry.load_from_config(bad_type);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("QRMI_X_TYPE=teleport"),
            std::string::npos);

  common::Config bad_engine;
  ASSERT_TRUE(bad_engine
                  .load_string("QRMI_RESOURCES=x\n"
                               "QRMI_X_TYPE=local-emulator\n"
                               "QRMI_X_ENGINE=quantum-annealer\n")
                  .ok());
  status = registry.load_from_config(bad_engine);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("resource 'x'"), std::string::npos);
  EXPECT_NE(status.error().message().find("QRMI_X_ENGINE=quantum-annealer"),
            std::string::npos);

  common::Config direct;
  ASSERT_TRUE(direct
                  .load_string("QRMI_RESOURCES=x\nQRMI_X_TYPE=direct-access\n")
                  .ok());
  status = registry.load_from_config(direct);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("resource 'x'"), std::string::npos);

  common::Config cloud_no_port;
  ASSERT_TRUE(cloud_no_port
                  .load_string("QRMI_RESOURCES=x\nQRMI_X_TYPE=cloud-qpu\n")
                  .ok());
  status = registry.load_from_config(cloud_no_port);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("resource 'x'"), std::string::npos);
  EXPECT_NE(status.error().message().find("QRMI_X_PORT"), std::string::npos);

  common::Config bad_port;
  ASSERT_TRUE(bad_port
                  .load_string("QRMI_RESOURCES=x\nQRMI_X_TYPE=cloud-qpu\n"
                               "QRMI_X_PORT=99999\n")
                  .ok());
  status = registry.load_from_config(bad_port);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("99999"), std::string::npos);
}

TEST(RegistryTest, EmptyRegistryLookupPointsAtConfiguration) {
  ResourceRegistry registry;
  auto missing = registry.lookup("anything");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message().find("QRMI_RESOURCES"),
            std::string::npos);
}

TEST(RegistryTest, ConfigKeyNameMangling) {
  EXPECT_EQ(config_key_name("dev-emu"), "DEV_EMU");
  EXPECT_EQ(config_key_name("Fresnel2"), "FRESNEL2");
}

// ---- Cloud client against a live service ---------------------------------

class CloudFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto backend = LocalEmulatorQrmi::create("cloud-backend", "sv");
    ASSERT_TRUE(backend.ok());
    cloud::CloudServiceOptions options;
    options.api_key = "secret";
    options.latency.base = 0;  // keep tests fast
    options.latency.jitter = 0;
    service_ = std::make_unique<cloud::CloudService>(backend.value(), options);
    auto port = service_->start();
    ASSERT_TRUE(port.ok());
    port_ = port.value();
  }

  std::unique_ptr<cloud::CloudService> service_;
  std::uint16_t port_ = 0;
};

TEST_F(CloudFixture, EndToEndJob) {
  CloudQrmi qrmi("cloud-emu", ResourceType::kCloudEmulator, port_, "secret");
  EXPECT_TRUE(qrmi.is_accessible().value());
  auto samples = qrmi.run_sync(small_payload(25), common::kMillisecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 25u);
}

TEST_F(CloudFixture, DeviceSpecFetch) {
  CloudQrmi qrmi("cloud-emu", ResourceType::kCloudEmulator, port_, "secret");
  auto spec = qrmi.target();
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().supports_digital);
}

TEST_F(CloudFixture, WrongApiKeyRejected) {
  CloudQrmi qrmi("cloud-emu", ResourceType::kCloudEmulator, port_, "wrong");
  auto task = qrmi.task_start(small_payload());
  ASSERT_FALSE(task.ok());
  EXPECT_EQ(task.error().code(), common::ErrorCode::kPermissionDenied);
}

TEST_F(CloudFixture, UnknownJobIs404) {
  CloudQrmi qrmi("cloud-emu", ResourceType::kCloudEmulator, port_, "secret");
  auto status = qrmi.task_status("local-424242");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), common::ErrorCode::kNotFound);
}

TEST_F(CloudFixture, MalformedPayloadIs400) {
  net::HttpClient client(port_);
  client.set_default_header("Authorization", "Bearer secret");
  auto response = client.post("/api/v1/jobs", "{\"not\":\"a payload\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
}

TEST_F(CloudFixture, UnreachableEndpointIsUnavailable) {
  service_->stop();
  CloudQrmi qrmi("cloud-emu", ResourceType::kCloudEmulator, port_, "secret");
  auto task = qrmi.task_start(small_payload());
  ASSERT_FALSE(task.ok());
  EXPECT_EQ(task.error().code(), common::ErrorCode::kUnavailable);
}

TEST(ResourceTypeNames, RoundTrip) {
  const ResourceType types[] = {
      ResourceType::kLocalEmulator, ResourceType::kDirectAccess,
      ResourceType::kCloudQpu, ResourceType::kCloudEmulator};
  for (const auto type : types) {
    auto back = resource_type_from_string(to_string(type));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), type);
  }
  EXPECT_FALSE(resource_type_from_string("fpga").ok());
}

}  // namespace
}  // namespace qcenv::qrmi
