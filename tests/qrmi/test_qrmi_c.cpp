// QRMI C ABI: the flat interface other-language SDKs consume.
#include <gtest/gtest.h>

#include "qrmi/local_emulator.hpp"
#include "qrmi/qrmi_c.h"
#include "qrmi/registry.hpp"
#include "quantum/payload.hpp"

namespace {

using namespace qcenv;

quantum::Payload small_payload() {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, 25);
}

class QrmiCApi : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.add("emu",
                  qrmi::LocalEmulatorQrmi::create("emu", "sv").value());
    qrmi::qrmi_c_register(&registry_);
  }
  void TearDown() override { qrmi::qrmi_c_register(nullptr); }

  qrmi::ResourceRegistry registry_;
};

TEST_F(QrmiCApi, FullLifecycle) {
  qrmi_handle* handle = nullptr;
  ASSERT_EQ(qrmi_open("emu", &handle), QRMI_OK);
  ASSERT_NE(handle, nullptr);

  int accessible = 0;
  EXPECT_EQ(qrmi_is_accessible(handle, &accessible), QRMI_OK);
  EXPECT_EQ(accessible, 1);

  char* token = nullptr;
  ASSERT_EQ(qrmi_acquire(handle, &token), QRMI_OK);
  ASSERT_NE(token, nullptr);

  char* task_id = nullptr;
  const std::string payload = small_payload().serialize();
  ASSERT_EQ(qrmi_task_start(handle, payload.c_str(), &task_id), QRMI_OK);
  ASSERT_NE(task_id, nullptr);

  char* samples_json = nullptr;
  ASSERT_EQ(qrmi_task_result(handle, task_id, &samples_json), QRMI_OK);
  auto samples = quantum::Samples::from_json(
      common::Json::parse(samples_json).value());
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 25u);

  int status = -1;
  EXPECT_EQ(qrmi_task_status(handle, task_id, &status), QRMI_OK);
  EXPECT_EQ(status, QRMI_TASK_COMPLETED);

  char* spec_json = nullptr;
  ASSERT_EQ(qrmi_target(handle, &spec_json), QRMI_OK);
  EXPECT_NE(std::string(spec_json).find("emu-sv"), std::string::npos);

  EXPECT_EQ(qrmi_release(handle, token), QRMI_OK);
  qrmi_string_free(token);
  qrmi_string_free(task_id);
  qrmi_string_free(samples_json);
  qrmi_string_free(spec_json);
  qrmi_close(handle);
}

TEST_F(QrmiCApi, ErrorMapping) {
  qrmi_handle* handle = nullptr;
  EXPECT_EQ(qrmi_open("nope", &handle), QRMI_ERR_NOT_FOUND);
  ASSERT_EQ(qrmi_open("emu", &handle), QRMI_OK);

  char* task_id = nullptr;
  EXPECT_EQ(qrmi_task_start(handle, "not json", &task_id),
            QRMI_ERR_INVALID);
  int status = 0;
  EXPECT_EQ(qrmi_task_status(handle, "local-999", &status),
            QRMI_ERR_NOT_FOUND);
  EXPECT_EQ(qrmi_task_start(nullptr, "x", &task_id), QRMI_ERR_INVALID);
  qrmi_close(handle);
}

TEST_F(QrmiCApi, UnregisteredRegistryIsUnavailable) {
  qrmi::qrmi_c_register(nullptr);
  qrmi_handle* handle = nullptr;
  EXPECT_EQ(qrmi_open("emu", &handle), QRMI_ERR_UNAVAILABLE);
}

}  // namespace
