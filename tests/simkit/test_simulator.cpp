// Discrete-event simulator: ordering, cancellation, virtual time.
#include <gtest/gtest.h>

#include "simkit/simulator.hpp"

namespace qcenv::simkit {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, StableTieBreakAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(50, [&] { order.push_back(1); });
  sim.schedule_at(50, [&] { order.push_back(2); });
  sim.schedule_at(50, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  common::TimeNs fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { EXPECT_EQ(sim.now(), 100); });
  });
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsRejected) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(999));
  EXPECT_FALSE(sim.cancel(0));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i * 100, [&] { ++count; });
  }
  sim.run(500);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 500);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleChains) {
  // A self-perpetuating process: 100 links.
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) sim.schedule_after(10, hop);
  };
  sim.schedule_at(0, hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(sim.now(), 990);
}

TEST(Simulator, PendingCountTracksLiveEvents) {
  Simulator sim;
  EXPECT_TRUE(sim.empty());
  const auto a = sim.schedule_at(5, [] {});
  sim.schedule_at(6, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(SimClockTest, ReflectsSimulatorTime) {
  Simulator sim;
  SimClock clock(sim);
  sim.schedule_at(42, [] {});
  sim.run();
  EXPECT_EQ(clock.now(), 42);
}

}  // namespace
}  // namespace qcenv::simkit
