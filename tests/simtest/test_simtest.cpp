// The simulation harness's own test suite: plan determinism, invariant
// checkers biting on synthetic corruption, end-to-end scenarios across the
// fault spectrum, the planted-bug detection proof (a stack that silently
// drops shots MUST fail the sweep), and fair-share/ledger equivalence
// between a faulted run and the same seed run fault-free.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "../common/test_args.hpp"
#include "simtest/fault_plan.hpp"
#include "simtest/invariants.hpp"
#include "simtest/scenario.hpp"
#include "simtest/sweep.hpp"

namespace qcenv::simtest {
namespace {

using daemon::DaemonJobState;

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlanOptions options;
  options.fleet_size = 3;
  options.disk_fault = true;
  options.global_drain = true;
  common::Rng a(42), b(42), c(43);
  const FaultPlan plan_a = make_fault_plan(a, options);
  const FaultPlan plan_b = make_fault_plan(b, options);
  const FaultPlan plan_c = make_fault_plan(c, options);
  EXPECT_EQ(plan_a.to_string(), plan_b.to_string());
  EXPECT_NE(plan_a.to_string(), plan_c.to_string());
  ASSERT_FALSE(plan_a.events.empty());
}

TEST(FaultPlan, EveryOutageRecoversBeforeTheHorizon) {
  FaultPlanOptions options;
  options.fleet_size = 2;
  options.flaps = 6;
  options.drains = 4;
  options.global_drain = true;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng(seed);
    const FaultPlan plan = make_fault_plan(rng, options);
    std::map<std::size_t, int> qpu_down;
    std::map<std::size_t, int> draining;
    int global = 0;
    for (const auto& event : plan.events) {
      EXPECT_LE(event.at, options.horizon) << event.to_string();
      switch (event.op) {
        case FaultOp::kQpuOffline: ++qpu_down[event.target]; break;
        case FaultOp::kQpuOnline: --qpu_down[event.target]; break;
        case FaultOp::kDrainResource: ++draining[event.target]; break;
        case FaultOp::kResumeResource: --draining[event.target]; break;
        case FaultOp::kDrainAll: ++global; break;
        case FaultOp::kResumeAll: --global; break;
        default: break;
      }
    }
    // Sorted by time, every down has its up: the plan ends healed.
    for (const auto& [target, down] : qpu_down) {
      EXPECT_EQ(down, 0) << "resource " << target << " left offline";
    }
    for (const auto& [target, down] : draining) {
      EXPECT_EQ(down, 0) << "resource " << target << " left draining";
    }
    EXPECT_EQ(global, 0) << "dispatch left globally drained";
  }
}

TEST(FaultPlan, DiskFaultIsAlwaysFollowedByARestart) {
  FaultPlanOptions options;
  options.disk_fault = true;
  options.restarts = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng(seed);
    const FaultPlan plan = make_fault_plan(rng, options);
    bool disk_dead = false;
    bool restarted_after = false;
    for (const auto& event : plan.events) {
      if (event.op == FaultOp::kJournalFailStop ||
          event.op == FaultOp::kTornTail) {
        disk_dead = true;
      }
      if (disk_dead && event.op == FaultOp::kKillRestart) {
        restarted_after = true;
      }
    }
    ASSERT_TRUE(disk_dead);
    EXPECT_TRUE(restarted_after);
  }
}

// ---- invariant checkers on synthetic state ---------------------------------

InvariantInput healthy_input() {
  InvariantInput input;
  TrackedJob tracked{1, "alice", 100, false, std::nullopt};
  input.tracked.push_back(tracked);
  daemon::DaemonJob job;
  job.id = 1;
  job.user = "alice";
  job.state = DaemonJobState::kCompleted;
  job.total_shots = 100;
  job.shots_done = 100;
  input.jobs.emplace(1, job);
  input.result_shots[1] = 100;
  input.ledger_raw_shots["alice"] = 100;
  input.inflight_shots["alice"] = 0;
  return input;
}

TEST(Invariants, CleanStatePasses) {
  EXPECT_TRUE(check_invariants(healthy_input()).empty());
}

TEST(Invariants, LostShotsAreCaught) {
  auto input = healthy_input();
  input.result_shots[1] = 99;  // one shot silently dropped
  const auto violations = check_invariants(input);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("lost or duplicated"), std::string::npos);
}

TEST(Invariants, StuckJobIsCaught) {
  auto input = healthy_input();
  input.jobs.at(1).state = DaemonJobState::kRunning;
  const auto violations = check_invariants(input);
  // Stuck job + the ledger no longer balancing against executed shots is
  // acceptable; the stuck-job message must be among them.
  bool found = false;
  for (const auto& violation : violations) {
    found = found || violation.find("terminal") != std::string::npos;
  }
  EXPECT_TRUE(found) << violations.size();
}

TEST(Invariants, CancelResurrectionIsCaught) {
  auto input = healthy_input();
  input.tracked[0].must_cancel = true;
  const auto violations = check_invariants(input);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("resurrected"), std::string::npos);
}

TEST(Invariants, TerminalStateFlipAcrossRestartIsCaught) {
  auto input = healthy_input();
  input.tracked[0].durable_terminal = DaemonJobState::kCancelled;
  const auto violations = check_invariants(input);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("changed terminal state"),
            std::string::npos);
}

TEST(Invariants, LedgerImbalanceAndLeakedReservationsAreCaught) {
  auto input = healthy_input();
  input.ledger_raw_shots["alice"] = 60;
  input.inflight_shots["alice"] = 40;
  const auto violations = check_invariants(input);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].find("ledger imbalance"), std::string::npos);
  EXPECT_NE(violations[1].find("leaked"), std::string::npos);
}

TEST(Invariants, VanishedJobAndUnboundedRecordsAreCaught) {
  auto input = healthy_input();
  input.jobs.clear();
  auto vanished = check_invariants(input);
  ASSERT_FALSE(vanished.empty());
  EXPECT_NE(vanished[0].find("vanished"), std::string::npos);

  input = healthy_input();
  input.gc_enabled = true;
  input.records_cap = 10;
  input.records_count = 50;
  auto unbounded = check_invariants(input);
  ASSERT_FALSE(unbounded.empty());
  EXPECT_NE(unbounded[0].find("unbounded"), std::string::npos);
}

TEST(Invariants, EtaMiscalibrationIsCaughtAndBoundedMissesTolerated) {
  auto input = healthy_input();
  input.eta_confidence = 0.95;
  // Within the bound: calibrated.
  input.eta_samples.push_back({1, 5000, 4000});
  EXPECT_TRUE(check_invariants(input).empty());

  // One miss in one sample exceeds the 5% allowance.
  input.eta_samples[0].first_dispatch = 9000;
  const auto violations = check_invariants(input);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].find("miscalibrated"), std::string::npos);
  EXPECT_NE(violations[1].find("past its predicted start"),
            std::string::npos);

  // A low claimed confidence tolerates the same miss.
  input.eta_confidence = 0.5;
  input.eta_samples.push_back({2, 5000, 4000});
  EXPECT_TRUE(check_invariants(input).empty());

  // Unbounded predictions (start_latest = -1) are never scored.
  input.eta_confidence = 0.95;
  input.eta_samples.clear();
  input.eta_samples.push_back({3, -1, 9000});
  EXPECT_TRUE(check_invariants(input).empty());
}

TEST(Invariants, InexactExplainPartitionIsCaught) {
  auto input = healthy_input();
  input.explain_checks.push_back({1, 5000, 5000});
  EXPECT_TRUE(check_invariants(input).empty());
  input.explain_checks.push_back({1, 5000, 4999});  // one lost nanosecond
  const auto violations = check_invariants(input);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("exact partition"), std::string::npos);
}

// ---- end-to-end scenarios ---------------------------------------------------

TEST(Scenario, InMemoryFlapAndStormUpholdsInvariants) {
  ScenarioOptions options;
  options.seed = testargs::seed(11);
  testargs::announce(options.seed);
  options.durable = false;
  options.fleet_size = 2;
  options.jobs = 12;
  options.horizon = 10 * common::kSecond;
  options.faults.flaps = 2;
  options.faults.storms = 1;
  options.faults.cancels = 2;
  const auto result = run_scenario(options);
  EXPECT_TRUE(result.ok()) << summary_line(result) << "\n" << result.plan
                           << result.violations.front();
  EXPECT_GT(result.stats.submitted, 0u);
}

TEST(Scenario, DurableKillRestartWithDiskFaultUpholdsInvariants) {
  ScenarioOptions options;
  options.seed = testargs::seed(7);
  testargs::announce(options.seed);
  options.durable = true;
  options.fleet_size = 2;
  options.jobs = 14;
  options.horizon = 15 * common::kSecond;
  options.faults.flaps = 1;
  options.faults.restarts = 1;
  options.faults.disk_fault = true;
  options.faults.compactions = 1;
  const auto result = run_scenario(options);
  EXPECT_TRUE(result.ok()) << summary_line(result) << "\n" << result.plan
                           << result.violations.front();
  EXPECT_GE(result.stats.restarts, 1u);
  EXPECT_GE(result.stats.disk_faults, 1u);
}

TEST(Scenario, GcScenarioKeepsRecordsBounded) {
  ScenarioOptions options;
  options.seed = testargs::seed(5);
  options.durable = true;
  options.gc = true;
  options.fleet_size = 1;
  options.jobs = 30;
  options.horizon = 12 * common::kSecond;
  options.faults.cancels = 1;
  const auto result = run_scenario(options);
  EXPECT_TRUE(result.ok()) << summary_line(result) << "\n" << result.plan
                           << result.violations.front();
}

TEST(Scenario, PlantedShotLossIsCaughtWithReplayableSeed) {
  // The acceptance proof: a stack that silently loses shots MUST fail the
  // sweep, and the failure must carry the seed that replays it.
  ScenarioOptions options;
  options.seed = 99;
  options.durable = false;
  options.fleet_size = 1;
  options.jobs = 6;
  options.horizon = 5 * common::kSecond;
  options.faults.cancels = 0;
  options.faults.flaps = 0;
  options.faults.storms = 0;
  options.faults.session_churns = 0;
  options.plant_shot_loss = true;
  const auto result = run_scenario(options);
  ASSERT_FALSE(result.ok()) << "planted shot loss went undetected";
  EXPECT_EQ(result.seed, 99u);
  bool names_shots = false;
  for (const auto& violation : result.violations) {
    names_shots = names_shots ||
                  violation.find("shots") != std::string::npos;
  }
  EXPECT_TRUE(names_shots);
}

TEST(Scenario, FaultedRunMatchesFaultFreeLedgerAndFairShareOrder) {
  // Post-restart fair-share equivalence: the same seeded workload run
  // (a) clean and (b) through kill-and-restart + compaction must leave
  // identical raw ledger totals per tenant and the same fair-share
  // ranking — the restart neither loses nor double-charges usage.
  ScenarioOptions clean;
  clean.seed = testargs::seed(21);
  testargs::announce(clean.seed);
  clean.durable = true;
  clean.fleet_size = 1;
  clean.users = 3;
  clean.jobs = 12;
  clean.horizon = 10 * common::kSecond;
  clean.faults.flaps = 0;
  clean.faults.cancels = 0;
  clean.faults.storms = 0;
  clean.faults.session_churns = 0;
  clean.faults.restarts = 0;
  clean.faults.compactions = 0;

  ScenarioOptions faulted = clean;
  faulted.faults.restarts = 2;
  faulted.faults.compactions = 1;

  const auto clean_result = run_scenario(clean);
  const auto faulted_result = run_scenario(faulted);
  ASSERT_TRUE(clean_result.ok()) << clean_result.violations.front();
  ASSERT_TRUE(faulted_result.ok()) << faulted_result.plan
                                   << faulted_result.violations.front();
  ASSERT_GE(faulted_result.stats.restarts, 2u);
  // Identical workload, identical completions: both scenarios passed the
  // per-user ledger-balance invariant against the SAME submitted shots,
  // so equality here means the restarts preserved the ledger exactly.
  EXPECT_EQ(clean_result.stats.submitted, faulted_result.stats.submitted);
  EXPECT_EQ(clean_result.stats.completed, faulted_result.stats.completed);
}

TEST(Scenario, EtaProbeIsBitIdenticalAcrossReplays) {
  // The post-scenario probe daemon's state is a pure function of the
  // seed: two runs must serialize the same eta/explain bytes. (The sweep
  // re-checks this across its whole seed range; this is the fixed-seed
  // smoke version.)
  ScenarioOptions options;
  options.seed = 31;
  options.durable = false;
  options.fleet_size = 2;
  options.jobs = 8;
  options.horizon = 8 * common::kSecond;
  options.faults.flaps = 1;
  options.faults.eta_probes = 1;
  const auto first = run_scenario(options);
  const auto second = run_scenario(options);
  ASSERT_TRUE(first.ok()) << first.plan << first.violations.front();
  ASSERT_FALSE(first.eta_probe.empty());
  EXPECT_EQ(first.eta_probe, second.eta_probe);
  // The probe responses carry the fields clients key on.
  EXPECT_NE(first.eta_probe[0].find("\"bounded\""), std::string::npos);
  EXPECT_NE(first.eta_probe[0].find("\"causes_total_ns\""),
            std::string::npos);
}

TEST(Sweep, AFewSeedsRunGreen) {
  SweepOptions options;
  options.first_seed = testargs::seed(1);
  options.seeds = 3;
  options.quick = true;
  options.verbose = testargs::verbose();
  std::ostringstream log;
  const auto outcome = run_sweep(options, log);
  EXPECT_TRUE(outcome.ok()) << log.str();
  EXPECT_EQ(outcome.ran, 3u);
}

}  // namespace
}  // namespace qcenv::simtest
