// simtest_sweep: the deterministic simulation harness's command-line
// driver.
//
//   simtest_sweep --seeds 200 --quick          # the CI sweep
//   simtest_sweep --seed 1337                  # replay one failing seed
//   simtest_sweep --seeds 2000 --first 1000    # nightly range
//   --verbose                                  # per-seed summary lines
//   --artifact FILE                            # append failures for CI
//   --trace        # dump event log + per-job traces for failing seeds
//
// Exit status 0 iff every seed upholds every invariant. A failure prints
// the seed, its expanded fault schedule and each violated invariant — the
// whole reproduction recipe in one block of log.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "simtest/sweep.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seeds N] [--first N] [--seed N] [--quick] [--full]\n"
               "       [--verbose] [--artifact FILE] [--trace]\n";
}

}  // namespace

int main(int argc, char** argv) {
  qcenv::simtest::SweepOptions options;
  options.quick = true;
  std::int64_t only_seed = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.seeds = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--first") {
      options.first_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      only_seed = static_cast<std::int64_t>(
          std::strtoull(value(), nullptr, 10));
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--full") {
      options.quick = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--artifact") {
      options.artifact_path = value();
    } else if (arg == "--trace") {
      options.trace = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (only_seed >= 0) {
    // Replay mode: one seed, chatty.
    options.first_seed = static_cast<std::uint64_t>(only_seed);
    options.seeds = 1;
    options.verbose = true;
  }
  const auto outcome = qcenv::simtest::run_sweep(options, std::cout);
  return outcome.ok() ? 0 : 1;
}
