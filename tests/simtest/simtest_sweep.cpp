// simtest_sweep: the deterministic simulation harness's command-line
// driver.
//
//   simtest_sweep --seeds 200 --quick          # the CI sweep
//   simtest_sweep --seed 1337                  # replay one failing seed
//   simtest_sweep --seeds 2000 --first 1000    # nightly range
//   simtest_sweep --dump-check                 # nightly: force a journal
//                                              # disk-death and validate the
//                                              # flight recorder's forensics
//   simtest_sweep --seeds 40 --quick --ha      # CI HA slice: every seed
//                                              # federated, leader killed,
//                                              # standby promoted
//   --verbose                                  # per-seed summary lines
//   --artifact FILE                            # append failures for CI
//   --trace        # dump event log + per-job traces for failing seeds
//
// Exit status 0 iff every seed upholds every invariant. A failure prints
// the seed, its expanded fault schedule and each violated invariant — the
// whole reproduction recipe in one block of log.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/json.hpp"
#include "simtest/sweep.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seeds N] [--first N] [--seed N] [--quick] [--full]\n"
               "       [--verbose] [--artifact FILE] [--trace] [--ha]"
               " [--dump-check]\n";
}

/// Kill-and-restart forensics check: a scenario with a guaranteed journal
/// disk-death must leave a parseable flight dump naming the fail-stop
/// event, carrying a bounded event tail that includes it, and the daemon's
/// next life (the plan's forced restart) must still satisfy every
/// invariant. Run nightly so dump-format rot is caught by CI, not by the
/// first real incident.
int run_dump_check(std::uint64_t seed) {
  qcenv::simtest::ScenarioOptions options =
      qcenv::simtest::scenario_for_seed(seed, /*quick=*/true);
  options.durable = true;
  options.faults.disk_fault = true;
  const auto result = qcenv::simtest::run_scenario(options);
  std::cout << qcenv::simtest::summary_line(result) << "\n";
  const auto fail = [&](const std::string& why) {
    std::cerr << "dump-check FAILED (seed " << seed << "): " << why << "\n";
    return 1;
  };
  if (!result.ok()) {
    for (const auto& violation : result.violations) {
      std::cerr << "  violation: " << violation << "\n";
    }
    return fail("scenario violated invariants");
  }
  if (result.stats.disk_faults == 0) {
    return fail("the forced disk fault never armed");
  }
  if (result.flight_dump.empty()) {
    return fail("journal fail-stopped but no flight dump was written");
  }
  auto parsed = qcenv::common::Json::parse(result.flight_dump);
  if (!parsed.ok()) {
    return fail("flight dump is not valid JSON: " +
                parsed.error().to_string());
  }
  const auto& dump = parsed.value();
  const auto& reason = dump.at_or_null("reason");
  if (!reason.is_string() ||
      reason.as_string().rfind("journal_fail_stop", 0) != 0) {
    return fail("dump reason does not name the fail-stop: " +
                dump.at_or_null("reason").dump());
  }
  const auto& events = dump.at_or_null("events");
  if (!events.is_array() || events.as_array().empty()) {
    return fail("dump carries no event tail");
  }
  if (events.as_array().size() > 50) {
    return fail("event tail unbounded: " +
                std::to_string(events.as_array().size()) + " events");
  }
  bool names_fail_stop = false;
  for (const auto& event : events.as_array()) {
    if (event.at_or_null("kind").is_string() &&
        event.at_or_null("kind").as_string() == "journal_fail_stop") {
      names_fail_stop = true;
    }
  }
  if (!names_fail_stop) {
    return fail("event tail does not include the journal_fail_stop event");
  }
  if (!dump.at_or_null("heartbeats").is_object()) {
    return fail("dump carries no watchdog heartbeats");
  }
  std::cout << "dump-check OK: " << events.as_array().size()
            << "-event tail, reason '" << reason.as_string() << "'\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qcenv::simtest::SweepOptions options;
  options.quick = true;
  std::int64_t only_seed = -1;
  bool dump_check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.seeds = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--first") {
      options.first_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      only_seed = static_cast<std::int64_t>(
          std::strtoull(value(), nullptr, 10));
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--full") {
      options.quick = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--artifact") {
      options.artifact_path = value();
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--ha") {
      options.ha = true;
    } else if (arg == "--dump-check") {
      dump_check = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (dump_check) {
    return run_dump_check(only_seed >= 0
                              ? static_cast<std::uint64_t>(only_seed)
                              : options.first_seed);
  }
  if (only_seed >= 0) {
    // Replay mode: one seed, chatty.
    options.first_seed = static_cast<std::uint64_t>(only_seed);
    options.seeds = 1;
    options.verbose = true;
  }
  const auto outcome = qcenv::simtest::run_sweep(options, std::cout);
  return outcome.ok() ? 0 : 1;
}
