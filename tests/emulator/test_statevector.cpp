// State-vector simulator: gate algebra, sampling, and analog evolution
// validated against closed-form quantum mechanics.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "emulator/statevector.hpp"
#include "quantum/observable.hpp"

namespace qcenv::emulator {
namespace {

using quantum::AtomRegister;
using quantum::Observable;
using quantum::Sequence;
using quantum::SequenceSamples;
using quantum::Waveform;

constexpr double kPi = std::numbers::pi;

TEST(StateVector, InitializesToGroundState) {
  StateVector psi(3);
  EXPECT_EQ(psi.dimension(), 8u);
  EXPECT_DOUBLE_EQ(std::norm(psi.amplitudes()[0]), 1.0);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(psi.z_expectation(0), 1.0);
}

TEST(StateVector, XGateFlipsQubit) {
  StateVector psi(2);
  psi.apply_1q(gate_x(), 0);
  EXPECT_NEAR(std::norm(psi.amplitudes()[1]), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(psi.z_expectation(0), -1.0);
  EXPECT_DOUBLE_EQ(psi.z_expectation(1), 1.0);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector psi(1);
  psi.apply_1q(gate_h(), 0);
  EXPECT_NEAR(psi.excitation_probability(0), 0.5, 1e-12);
  psi.apply_1q(gate_h(), 0);
  EXPECT_NEAR(psi.excitation_probability(0), 0.0, 1e-12);
}

TEST(StateVector, CxProducesBellState) {
  StateVector psi(2);
  psi.apply_1q(gate_h(), 0);
  psi.apply_2q(gate_cx(), 0, 1);  // control qubit 0
  // |00> + |11> (up to normalization)
  EXPECT_NEAR(std::norm(psi.amplitudes()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(psi.amplitudes()[3]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(psi.amplitudes()[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::norm(psi.amplitudes()[2]), 0.0, 1e-12);
}

TEST(StateVector, TwoQubitGateRespectsOperandOrder) {
  // CX with control=1, target=0 acting on |01> (qubit0=1): control clear,
  // nothing happens; acting on |10> flips qubit 0.
  StateVector psi(2);
  psi.apply_1q(gate_x(), 1);  // |10> in (q1,q0) = index 2
  psi.apply_2q(gate_cx(), 1, 0);
  EXPECT_NEAR(std::norm(psi.amplitudes()[3]), 1.0, 1e-12);
}

TEST(StateVector, GateApplicationPreservesNorm) {
  StateVector psi(5);
  for (std::size_t q = 0; q < 5; ++q) psi.apply_1q(gate_h(), q);
  psi.apply_2q(gate_cz(), 0, 3);
  psi.apply_2q(gate_cx(), 2, 4);
  psi.apply_1q(gate_t(), 1);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(StateVector, ParallelAndSerialGateAgree) {
  common::ThreadPool pool(2);
  StateVector serial(15);
  StateVector parallel(15);
  for (std::size_t q = 0; q < 15; ++q) {
    serial.apply_1q(gate_h(), q);
    parallel.apply_1q(gate_h(), q, &pool);
  }
  serial.apply_2q(gate_cz(), 3, 11);
  parallel.apply_2q(gate_cz(), 3, 11, &pool);
  EXPECT_NEAR(serial.fidelity(parallel), 1.0, 1e-10);
}

TEST(StateVector, SamplingMatchesAmplitudes) {
  StateVector psi(2);
  psi.apply_1q(gate_h(), 0);  // (|00> + |01>)/sqrt2 in bit order q0
  common::Rng rng(7);
  const auto samples = psi.sample(20000, rng);
  EXPECT_EQ(samples.total_shots(), 20000u);
  EXPECT_NEAR(samples.probability("00"), 0.5, 0.02);
  EXPECT_NEAR(samples.probability("10"), 0.5, 0.02);
  EXPECT_NEAR(samples.probability("01"), 0.0, 1e-12);
}

TEST(StateVector, ExpectationOfPauliStrings) {
  StateVector psi(2);
  psi.apply_1q(gate_h(), 0);
  psi.apply_2q(gate_cx(), 0, 1);  // Bell state
  Observable zz(2);
  ASSERT_TRUE(zz.add_term(1.0, "ZZ").ok());
  auto value = psi.expectation(zz);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), 1.0, 1e-12);

  Observable xx(2);
  ASSERT_TRUE(xx.add_term(1.0, "XX").ok());
  value = psi.expectation(xx);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), 1.0, 1e-12);

  Observable yy(2);
  ASSERT_TRUE(yy.add_term(1.0, "YY").ok());
  value = psi.expectation(yy);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), -1.0, 1e-12);

  Observable zi(2);
  ASSERT_TRUE(zi.add_term(1.0, "ZI").ok());
  value = psi.expectation(zi);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), 0.0, 1e-12);
}

// ---- Analog evolution against closed-form results ------------------------

SequenceSamples resonant_drive(double omega, double duration_us,
                               quantum::DurationNsQ dt_ns = 2) {
  Sequence seq(AtomRegister::linear_chain(1, 10.0));
  seq.add_pulse(quantum::Pulse{
      Waveform::constant(static_cast<quantum::DurationNsQ>(duration_us * 1e3),
                         omega),
      Waveform::constant(static_cast<quantum::DurationNsQ>(duration_us * 1e3),
                         0.0),
      0.0});
  return seq.sample(dt_ns);
}

TEST(AnalogEvolution, SingleQubitRabiOscillation) {
  // P1(t) = sin^2(Omega t / 2); pick Omega*t = pi => full inversion.
  const double omega = 2.0 * kPi;  // rad/us
  const double t_pi = kPi / omega;  // 0.5 us
  AtomRegister reg = AtomRegister::linear_chain(1, 10.0);
  StateVector psi(1);
  evolve_analog(psi, reg, resonant_drive(omega, t_pi), 0.0, {});
  EXPECT_NEAR(psi.excitation_probability(0), 1.0, 1e-6);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(AnalogEvolution, HalfPiPulseGivesEqualSuperposition) {
  const double omega = 2.0 * kPi;
  const double t_half = kPi / (2.0 * omega);
  AtomRegister reg = AtomRegister::linear_chain(1, 10.0);
  StateVector psi(1);
  evolve_analog(psi, reg, resonant_drive(omega, t_half), 0.0, {});
  EXPECT_NEAR(psi.excitation_probability(0), 0.5, 1e-6);
}

TEST(AnalogEvolution, DetunedRabiReducedContrast) {
  // Generalized Rabi: P1_max = Omega^2 / (Omega^2 + delta^2).
  const double omega = 2.0 * kPi;
  const double delta = 2.0 * kPi;  // equal detuning => contrast 1/2
  const double omega_eff = std::sqrt(omega * omega + delta * delta);
  const double t_peak = kPi / omega_eff;
  Sequence seq(AtomRegister::linear_chain(1, 10.0));
  const auto dur = static_cast<quantum::DurationNsQ>(t_peak * 1e3);
  seq.add_pulse(quantum::Pulse{Waveform::constant(dur, omega),
                               Waveform::constant(dur, delta), 0.0});
  StateVector psi(1);
  evolve_analog(psi, seq.atom_register(), seq.sample(1), 0.0, {});
  EXPECT_NEAR(psi.excitation_probability(0), 0.5, 5e-3);
}

TEST(AnalogEvolution, RydbergBlockadeEnhancedRabi) {
  // Two atoms well inside the blockade radius driven resonantly: the pair
  // oscillates between |00> and (|01>+|10>)/sqrt2 at sqrt(2)*Omega, and
  // |11> stays empty.
  const double omega = 2.0 * kPi;
  const double t_collective_pi = kPi / (std::sqrt(2.0) * omega);
  AtomRegister reg = AtomRegister::linear_chain(2, 4.0);  // 4 um: U >> Omega
  Sequence seq(reg);
  const auto dur = static_cast<quantum::DurationNsQ>(t_collective_pi * 1e3);
  seq.add_pulse(quantum::Pulse{Waveform::constant(dur, omega),
                               Waveform::constant(dur, 0.0), 0.0});
  StateVector psi(2);
  AnalogEvolveOptions options;
  options.max_substep_ns = 1;
  evolve_analog(psi, reg, seq.sample(1), 5420503.0, options);
  // One excitation shared, double excitation blockaded.
  EXPECT_NEAR(std::norm(psi.amplitudes()[3]), 0.0, 1e-3);
  const double p_single =
      std::norm(psi.amplitudes()[1]) + std::norm(psi.amplitudes()[2]);
  EXPECT_NEAR(p_single, 1.0, 5e-3);
}

TEST(AnalogEvolution, FarSeparatedAtomsEvolveIndependently) {
  // 30 um apart: U ~ C6/30^6 = 7.4e-3 rad/us, negligible over 0.5 us.
  const double omega = 2.0 * kPi;
  const double t_pi = kPi / omega;
  AtomRegister reg = AtomRegister::linear_chain(2, 30.0);
  Sequence seq(reg);
  const auto dur = static_cast<quantum::DurationNsQ>(t_pi * 1e3);
  seq.add_pulse(quantum::Pulse{Waveform::constant(dur, omega),
                               Waveform::constant(dur, 0.0), 0.0});
  StateVector psi(2);
  evolve_analog(psi, reg, seq.sample(1), 5420503.0, {});
  EXPECT_NEAR(std::norm(psi.amplitudes()[3]), 1.0, 5e-3);
}

TEST(AnalogEvolution, InactiveAtomStaysInGroundState) {
  const double omega = 2.0 * kPi;
  const double t_pi = kPi / omega;
  AtomRegister reg = AtomRegister::linear_chain(2, 30.0);
  Sequence seq(reg);
  const auto dur = static_cast<quantum::DurationNsQ>(t_pi * 1e3);
  seq.add_pulse(quantum::Pulse{Waveform::constant(dur, omega),
                               Waveform::constant(dur, 0.0), 0.0});
  StateVector psi(2);
  AnalogEvolveOptions options;
  options.active = {true, false};  // atom 1 failed to load
  evolve_analog(psi, reg, seq.sample(1), 5420503.0, options);
  EXPECT_NEAR(psi.excitation_probability(0), 1.0, 5e-3);
  EXPECT_NEAR(psi.excitation_probability(1), 0.0, 1e-12);
}

TEST(AnalogEvolution, RabiScaleErrorShiftsRotationAngle) {
  // With rabi_scale = 0.5, a nominal pi pulse becomes pi/2.
  const double omega = 2.0 * kPi;
  const double t_pi = kPi / omega;
  AtomRegister reg = AtomRegister::linear_chain(1, 10.0);
  StateVector psi(1);
  AnalogEvolveOptions options;
  options.rabi_scale = 0.5;
  evolve_analog(psi, reg, resonant_drive(omega, t_pi), 0.0, options);
  EXPECT_NEAR(psi.excitation_probability(0), 0.5, 1e-6);
}

TEST(AnalogEvolution, DetuningDisorderDephasesSuperposition) {
  // Static disorder rotates the superposition phase; the excitation
  // probability after a second half-pi pulse depends on that phase.
  const double omega = 2.0 * kPi;
  const double t_half = kPi / (2.0 * omega);
  AtomRegister reg = AtomRegister::linear_chain(1, 10.0);
  StateVector with_noise(1);
  AnalogEvolveOptions options;
  options.delta_disorder = {3.0};  // rad/us
  evolve_analog(with_noise, reg, resonant_drive(omega, t_half), 0.0, options);
  StateVector clean(1);
  evolve_analog(clean, reg, resonant_drive(omega, t_half), 0.0, {});
  EXPECT_LT(with_noise.fidelity(clean), 1.0 - 1e-4);
}

TEST(AnalogEvolution, NormPreservedUnderStrongInteractions) {
  AtomRegister reg = AtomRegister::linear_chain(4, 4.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(400, 4.0 * kPi),
                               Waveform::ramp(400, -6.0, 6.0), 0.3});
  StateVector psi(4);
  evolve_analog(psi, reg, seq.sample(2), 5420503.0, {});
  EXPECT_NEAR(psi.norm(), 1.0, 1e-10);
}

TEST(AnalogEvolution, LocalDetuningMapBiasesMarkedQubit) {
  // A strong negative local detuning on qubit 0 shifts it out of resonance,
  // suppressing its excitation relative to the unbiased qubit.
  const double omega = 2.0 * kPi;
  AtomRegister reg = AtomRegister::linear_chain(2, 30.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(500, omega),
                               Waveform::constant(500, 0.0), 0.0});
  quantum::DetuningMap map;
  map.weights = {1.0, 0.0};
  map.detuning = Waveform::constant(500, -40.0);
  seq.set_detuning_map(map);
  StateVector psi(2);
  evolve_analog(psi, reg, seq.sample(1), 5420503.0, {});
  EXPECT_LT(psi.excitation_probability(0), 0.1);
  EXPECT_GT(psi.excitation_probability(1), 0.9);
}

}  // namespace
}  // namespace qcenv::emulator
