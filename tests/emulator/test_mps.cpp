// MPS emulator: validated against the dense state vector on small systems,
// plus bond-dimension and mock-mode behaviour.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "emulator/mps.hpp"
#include "emulator/statevector.hpp"

namespace qcenv::emulator {
namespace {

using quantum::AtomRegister;
using quantum::Sequence;
using quantum::Waveform;

constexpr double kPi = std::numbers::pi;

MpsOptions chi(std::size_t bond) {
  MpsOptions options;
  options.max_bond = bond;
  return options;
}

TEST(Mps, InitialStateIsGround) {
  Mps psi(4);
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_DOUBLE_EQ(psi.z_expectation(q), 1.0);
  }
  EXPECT_EQ(psi.max_bond_dim(), 1u);
}

TEST(Mps, SingleQubitGatesMatchStateVector) {
  Mps mps(3);
  StateVector sv(3);
  mps.apply_1q(gate_h(), 0);
  sv.apply_1q(gate_h(), 0);
  mps.apply_1q(gate_rx(0.8), 1);
  sv.apply_1q(gate_rx(0.8), 1);
  mps.apply_1q(gate_t(), 2);
  sv.apply_1q(gate_t(), 2);
  EXPECT_NEAR(mps.to_statevector().fidelity(sv), 1.0, 1e-12);
}

TEST(Mps, BellStateViaAdjacentCx) {
  Mps psi(2);
  psi.apply_1q(gate_h(), 0);
  psi.apply_2q_adjacent(gate_cx(), 0, chi(4));
  EXPECT_EQ(psi.bond_dim(0), 2u);
  EXPECT_NEAR(psi.entanglement_entropy(0), std::log(2.0), 1e-10);
  StateVector sv(2);
  sv.apply_1q(gate_h(), 0);
  sv.apply_2q(gate_cx(), 0, 1);
  EXPECT_NEAR(psi.to_statevector().fidelity(sv), 1.0, 1e-12);
}

TEST(Mps, NonAdjacentGateSwapRouting) {
  Mps psi(4);
  psi.apply_1q(gate_h(), 0);
  psi.apply_2q(gate_cx(), 0, 3, chi(8));
  StateVector sv(4);
  sv.apply_1q(gate_h(), 0);
  sv.apply_2q(gate_cx(), 0, 3);
  EXPECT_NEAR(psi.to_statevector().fidelity(sv), 1.0, 1e-10);
}

TEST(Mps, ReversedOperandOrder) {
  // CX with control above target index.
  Mps psi(3);
  psi.apply_1q(gate_x(), 2);
  psi.apply_2q(gate_cx(), 2, 0, chi(8));  // control 2, target 0
  StateVector sv(3);
  sv.apply_1q(gate_x(), 2);
  sv.apply_2q(gate_cx(), 2, 0);
  EXPECT_NEAR(psi.to_statevector().fidelity(sv), 1.0, 1e-10);
}

TEST(Mps, RandomCircuitMatchesStateVectorExactly) {
  // chi = 2^(n/2) is enough for exact representation of n = 6.
  common::Rng rng(99);
  Mps mps(6);
  StateVector sv(6);
  for (int layer = 0; layer < 4; ++layer) {
    for (std::size_t q = 0; q < 6; ++q) {
      const double angle = rng.uniform(-kPi, kPi);
      mps.apply_1q(gate_ry(angle), q);
      sv.apply_1q(gate_ry(angle), q);
    }
    for (std::size_t q = layer % 2; q + 1 < 6; q += 2) {
      mps.apply_2q_adjacent(gate_cz(), q, chi(8));
      sv.apply_2q(gate_cz(), q, q + 1);
    }
  }
  EXPECT_NEAR(mps.to_statevector().fidelity(sv), 1.0, 1e-9);
  EXPECT_LT(mps.truncation_weight(), 1e-12);
}

TEST(Mps, TruncationDegradesFidelityGracefully) {
  // The same circuit with chi = 2 must lose fidelity but stay normalized.
  common::Rng rng(99);
  Mps truncated(6);
  StateVector sv(6);
  for (int layer = 0; layer < 4; ++layer) {
    for (std::size_t q = 0; q < 6; ++q) {
      const double angle = rng.uniform(-kPi, kPi);
      truncated.apply_1q(gate_ry(angle), q);
      sv.apply_1q(gate_ry(angle), q);
    }
    for (std::size_t q = layer % 2; q + 1 < 6; q += 2) {
      truncated.apply_2q_adjacent(gate_cz(), q, chi(2));
      sv.apply_2q(gate_cz(), q, q + 1);
    }
  }
  const double f = truncated.to_statevector().fidelity(sv);
  EXPECT_LT(f, 1.0);
  EXPECT_GT(f, 0.3);  // graceful, not catastrophic
  EXPECT_GT(truncated.truncation_weight(), 0.0);
  // State stays normalized after truncation (up to accumulated roundoff
  // from the guarded lambda inversions).
  EXPECT_NEAR(truncated.to_statevector().norm(), 1.0, 1e-6);
}

TEST(Mps, SamplingMatchesDistribution) {
  Mps psi(2);
  psi.apply_1q(gate_h(), 0);
  psi.apply_2q_adjacent(gate_cx(), 0, chi(4));
  common::Rng rng(5);
  const auto samples = psi.sample(20000, rng);
  EXPECT_NEAR(samples.probability("00"), 0.5, 0.02);
  EXPECT_NEAR(samples.probability("11"), 0.5, 0.02);
  EXPECT_NEAR(samples.probability("01") + samples.probability("10"), 0.0,
              1e-12);
}

TEST(Mps, ProductStateMockNeverEntangles) {
  // chi = 1: the paper's end-to-end mock mode. Entangling gates execute but
  // the state remains a product state.
  Mps psi(8);
  for (std::size_t q = 0; q < 8; ++q) psi.apply_1q(gate_h(), q);
  for (std::size_t q = 0; q + 1 < 8; ++q) {
    psi.apply_2q_adjacent(gate_cz(), q, chi(1));
  }
  EXPECT_EQ(psi.max_bond_dim(), 1u);
  for (std::size_t b = 0; b + 1 < 8; ++b) {
    EXPECT_NEAR(psi.entanglement_entropy(b), 0.0, 1e-12);
  }
  common::Rng rng(11);
  EXPECT_EQ(psi.sample_bits(rng).size(), 8u);
}

// ---- TEBD analog evolution vs dense integration --------------------------

TEST(MpsEvolve, MatchesStateVectorOnChain) {
  // 6-atom chain, adiabatic-ish ramp; chain interactions dominate so the
  // range-2 TEBD should track the dense solution closely.
  AtomRegister reg = AtomRegister::linear_chain(6, 6.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(300, 2.0 * kPi),
                               Waveform::ramp(300, -4.0, 8.0), 0.0});
  const auto grid = seq.sample(4);

  StateVector sv(6);
  AnalogEvolveOptions sv_options;
  sv_options.max_substep_ns = 1;
  evolve_analog(sv, reg, grid, 5420503.0, sv_options);

  Mps mps(6);
  MpsEvolveOptions mps_options;
  mps_options.max_substep_ns = 1;
  mps_options.mps = chi(32);
  mps_options.interaction_range = 3;
  evolve_analog_mps(mps, reg, grid, 5420503.0, mps_options);

  EXPECT_GT(mps.to_statevector().fidelity(sv), 0.995);
}

TEST(MpsEvolve, SingleQubitRabiExact) {
  AtomRegister reg = AtomRegister::linear_chain(1, 10.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(500, 2.0 * kPi),
                               Waveform::constant(500, 0.0), 0.0});
  Mps psi(1);
  evolve_analog_mps(psi, reg, seq.sample(2), 0.0, {});
  EXPECT_NEAR(psi.z_expectation(0), -1.0, 1e-5);
}

TEST(MpsEvolve, BondDimensionOneIsProductEvolution) {
  AtomRegister reg = AtomRegister::linear_chain(4, 5.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0 * kPi),
                               Waveform::constant(200, 1.0), 0.0});
  Mps psi(4);
  MpsEvolveOptions options;
  options.mps = chi(1);
  evolve_analog_mps(psi, reg, seq.sample(4), 5420503.0, options);
  EXPECT_EQ(psi.max_bond_dim(), 1u);
  // Still a valid normalized state that can be sampled.
  common::Rng rng(3);
  const auto samples = psi.sample(100, rng);
  EXPECT_EQ(samples.total_shots(), 100u);
}

TEST(MpsEvolve, WideRegisterRunsWhereDenseCannot) {
  // 40 qubits: far beyond dense reach; chi-limited TEBD must complete.
  AtomRegister reg = AtomRegister::linear_chain(40, 6.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(100, 2.0 * kPi),
                               Waveform::constant(100, 2.0), 0.0});
  Mps psi(40);
  MpsEvolveOptions options;
  options.mps = chi(4);
  options.max_substep_ns = 10;
  evolve_analog_mps(psi, reg, seq.sample(10), 5420503.0, options);
  common::Rng rng(17);
  EXPECT_EQ(psi.sample_bits(rng).size(), 40u);
  EXPECT_LE(psi.max_bond_dim(), 4u);
}

}  // namespace
}  // namespace qcenv::emulator
