// Property sweeps: MPS vs dense state vector on randomized circuits with
// arbitrary (swap-routed) two-qubit gate placements.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "emulator/mps.hpp"
#include "emulator/statevector.hpp"

namespace qcenv::emulator {
namespace {

struct RandomCircuitCase {
  unsigned seed;
  std::size_t qubits;
  std::size_t gates;
};

class MpsRandomCircuit : public ::testing::TestWithParam<RandomCircuitCase> {};

TEST_P(MpsRandomCircuit, MatchesDenseWithFullBond) {
  const auto& param = GetParam();
  common::Rng rng(param.seed);
  MpsOptions options;
  // chi = 2^(n/2) represents any n-qubit state exactly.
  options.max_bond = std::size_t{1} << ((param.qubits + 1) / 2);
  Mps mps(param.qubits);
  StateVector sv(param.qubits);

  for (std::size_t g = 0; g < param.gates; ++g) {
    if (rng.bernoulli(0.5)) {
      const auto q = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(param.qubits) - 1));
      const double angle = rng.uniform(-3.0, 3.0);
      const int which = static_cast<int>(rng.uniform_int(0, 2));
      const CMatrix u = which == 0   ? gate_rx(angle)
                        : which == 1 ? gate_ry(angle)
                                     : gate_rz(angle);
      mps.apply_1q(u, q);
      sv.apply_1q(u, q);
    } else {
      auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(param.qubits) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(param.qubits) - 1));
      if (a == b) b = (b + 1) % param.qubits;
      const int which = static_cast<int>(rng.uniform_int(0, 2));
      const CMatrix u = which == 0   ? gate_cz()
                        : which == 1 ? gate_cx()
                                     : gate_swap();
      mps.apply_2q(u, a, b, options);
      sv.apply_2q(u, a, b);
    }
  }
  EXPECT_GT(mps.to_statevector().fidelity(sv), 1.0 - 1e-8)
      << "seed " << param.seed;
  // Per-qubit observables agree too.
  for (std::size_t q = 0; q < param.qubits; ++q) {
    EXPECT_NEAR(mps.z_expectation(q), sv.z_expectation(q), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MpsRandomCircuit,
    ::testing::Values(RandomCircuitCase{1, 3, 20}, RandomCircuitCase{2, 4, 30},
                      RandomCircuitCase{3, 5, 40}, RandomCircuitCase{4, 6, 40},
                      RandomCircuitCase{5, 7, 30}, RandomCircuitCase{6, 4, 60},
                      RandomCircuitCase{7, 6, 25}, RandomCircuitCase{8, 5, 50}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.qubits);
    });

struct EvolveCase {
  unsigned seed;
  std::size_t atoms;
  double spacing;
};

class MpsEvolveAgreement : public ::testing::TestWithParam<EvolveCase> {};

TEST_P(MpsEvolveAgreement, TracksDenseForRandomPulses) {
  const auto& param = GetParam();
  common::Rng rng(param.seed);
  quantum::AtomRegister reg =
      quantum::AtomRegister::linear_chain(param.atoms, param.spacing);
  quantum::Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{
      quantum::Waveform::constant(200, rng.uniform(1.0, 8.0)),
      quantum::Waveform::ramp(200, rng.uniform(-6.0, 0.0),
                              rng.uniform(0.0, 8.0)),
      rng.uniform(0.0, 1.0)});
  const auto grid = seq.sample(4);

  StateVector sv(param.atoms);
  AnalogEvolveOptions sv_options;
  sv_options.max_substep_ns = 1;
  evolve_analog(sv, reg, grid, 5420503.0, sv_options);

  Mps mps(param.atoms);
  MpsEvolveOptions mps_options;
  mps_options.max_substep_ns = 1;
  mps_options.mps.max_bond = 64;
  mps_options.interaction_range = 3;
  evolve_analog_mps(mps, reg, grid, 5420503.0, mps_options);

  // Range-3 chain truncation vs all-pairs dense: high but not perfect
  // fidelity at these spacings.
  EXPECT_GT(mps.to_statevector().fidelity(sv), 0.99) << "seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MpsEvolveAgreement,
    ::testing::Values(EvolveCase{11, 4, 5.5}, EvolveCase{12, 5, 6.0},
                      EvolveCase{13, 6, 6.5}, EvolveCase{14, 7, 6.0},
                      EvolveCase{15, 5, 5.0}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.atoms);
    });

TEST(SamplesOrderParameter, AbsStaggeredMagnetization) {
  quantum::Samples neel(4);
  neel.record("1010", 50);
  neel.record("0101", 50);  // both Neel patterns: |m| = 1 each
  EXPECT_DOUBLE_EQ(neel.mean_abs_staggered_magnetization(), 1.0);
  quantum::Samples uniform(4);
  uniform.record("1111", 50);
  uniform.record("0000", 50);  // |m| = 0 each
  EXPECT_DOUBLE_EQ(uniform.mean_abs_staggered_magnetization(), 0.0);
}

}  // namespace
}  // namespace qcenv::emulator
