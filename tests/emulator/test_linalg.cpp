// Dense linear algebra: matmul/kron identities and SVD reconstruction,
// including randomized property sweeps.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "emulator/linalg.hpp"

namespace qcenv::emulator {
namespace {

CMatrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist;
  CMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = Complex(dist(rng), dist(rng));
    }
  }
  return m;
}

CMatrix reconstruct(const SvdResult& svd_result) {
  const std::size_t k = svd_result.s.size();
  CMatrix us(svd_result.u.rows(), k);
  for (std::size_t r = 0; r < us.rows(); ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      us.at(r, c) = svd_result.u.at(r, c) * svd_result.s[c];
    }
  }
  return matmul(us, svd_result.vh);
}

TEST(Linalg, MatmulIdentity) {
  const CMatrix a = random_matrix(4, 4, 1);
  const CMatrix i = CMatrix::identity(4);
  EXPECT_LT(max_abs_diff(matmul(a, i), a), 1e-14);
  EXPECT_LT(max_abs_diff(matmul(i, a), a), 1e-14);
}

TEST(Linalg, MatmulAssociativity) {
  const CMatrix a = random_matrix(3, 4, 2);
  const CMatrix b = random_matrix(4, 5, 3);
  const CMatrix c = random_matrix(5, 2, 4);
  EXPECT_LT(max_abs_diff(matmul(matmul(a, b), c), matmul(a, matmul(b, c))),
            1e-12);
}

TEST(Linalg, AdjointInvolution) {
  const CMatrix a = random_matrix(3, 5, 5);
  EXPECT_LT(max_abs_diff(a.adjoint().adjoint(), a), 1e-15);
}

TEST(Linalg, KronDimensions) {
  const CMatrix a = random_matrix(2, 3, 6);
  const CMatrix b = random_matrix(4, 5, 7);
  const CMatrix k = kron(a, b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
  // Spot-check an element: K[(ar*bR+br),(ac*bC+bc)] = A[ar,ac]*B[br,bc].
  EXPECT_NEAR(std::abs(k.at(5, 7) - a.at(1, 1) * b.at(1, 2)), 0.0, 1e-15);
}

TEST(Linalg, GateMatricesAreUnitary) {
  const CMatrix gates2[] = {gate_x(),  gate_y(),   gate_z(),  gate_h(),
                            gate_s(),  gate_sdg(), gate_t(),  gate_tdg(),
                            gate_rx(0.7), gate_ry(-1.2), gate_rz(2.9),
                            gate_phase(0.4)};
  for (const auto& g : gates2) {
    EXPECT_LT(max_abs_diff(matmul(g.adjoint(), g), CMatrix::identity(2)),
              1e-14);
  }
  const CMatrix gates4[] = {gate_cz(), gate_cx(), gate_swap()};
  for (const auto& g : gates4) {
    EXPECT_LT(max_abs_diff(matmul(g.adjoint(), g), CMatrix::identity(4)),
              1e-14);
  }
}

TEST(Linalg, HadamardSquaresToIdentity) {
  EXPECT_LT(max_abs_diff(matmul(gate_h(), gate_h()), CMatrix::identity(2)),
            1e-14);
}

TEST(Linalg, RzComposition) {
  const CMatrix a = gate_rz(0.3);
  const CMatrix b = gate_rz(0.9);
  EXPECT_LT(max_abs_diff(matmul(a, b), gate_rz(1.2)), 1e-14);
}

struct SvdCase {
  std::size_t rows;
  std::size_t cols;
  unsigned seed;
};

class SvdProperty : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdProperty, ReconstructsAndIsOrthonormal) {
  const auto& param = GetParam();
  const CMatrix a = random_matrix(param.rows, param.cols, param.seed);
  const SvdResult result = svd(a);
  const std::size_t k = std::min(param.rows, param.cols);
  ASSERT_EQ(result.s.size(), k);
  // Non-increasing, non-negative singular values.
  for (std::size_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(result.s[i], result.s[i + 1] - 1e-12);
  }
  for (const double s : result.s) EXPECT_GE(s, 0.0);
  // A == U S Vh.
  EXPECT_LT(max_abs_diff(reconstruct(result), a), 1e-10);
  // U^h U == I and Vh Vh^h == I.
  EXPECT_LT(max_abs_diff(matmul(result.u.adjoint(), result.u),
                         CMatrix::identity(k)),
            1e-10);
  EXPECT_LT(max_abs_diff(matmul(result.vh, result.vh.adjoint()),
                         CMatrix::identity(k)),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(SvdCase{2, 2, 11}, SvdCase{4, 4, 12}, SvdCase{8, 8, 13},
                      SvdCase{16, 16, 14}, SvdCase{6, 3, 15},
                      SvdCase{3, 6, 16}, SvdCase{32, 8, 17},
                      SvdCase{8, 32, 18}, SvdCase{1, 5, 19},
                      SvdCase{5, 1, 20}));

TEST(Svd, RankDeficientMatrix) {
  // Outer product => rank 1.
  CMatrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.at(r, c) = Complex(static_cast<double>(r + 1), 0) *
                   Complex(static_cast<double>(c + 1), 0);
    }
  }
  const SvdResult result = svd(a);
  EXPECT_GT(result.s[0], 1.0);
  for (std::size_t i = 1; i < result.s.size(); ++i) {
    EXPECT_LT(result.s[i], 1e-10);
  }
  EXPECT_LT(max_abs_diff(reconstruct(result), a), 1e-10);
}

TEST(Svd, TruncationKeepsLeadingValuesAndReportsWeight) {
  const CMatrix a = random_matrix(8, 8, 42);
  SvdResult result = svd(a);
  const auto full = result.s;
  double expected_discard = 0;
  double total = 0;
  for (const double s : full) total += s * s;
  for (std::size_t i = 4; i < full.size(); ++i) {
    expected_discard += full[i] * full[i];
  }
  const double weight = truncate_svd(result, 4, 0.0);
  ASSERT_EQ(result.s.size(), 4u);
  EXPECT_EQ(result.u.cols(), 4u);
  EXPECT_EQ(result.vh.rows(), 4u);
  EXPECT_NEAR(weight, expected_discard / total, 1e-12);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(result.s[i], full[i]);
}

TEST(Svd, CutoffDropsTinyValues) {
  CMatrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 1e-3;
  a.at(2, 2) = 1e-14;
  SvdResult result = svd(a);
  truncate_svd(result, 10, 1e-10);
  EXPECT_EQ(result.s.size(), 2u);
}

}  // namespace
}  // namespace qcenv::emulator
