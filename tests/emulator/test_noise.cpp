// Noise model: trajectory draws and readout corruption statistics.
#include <gtest/gtest.h>

#include "emulator/noise.hpp"

namespace qcenv::emulator {
namespace {

using quantum::CalibrationSnapshot;
using quantum::Samples;

TEST(NoiseModel, DisabledByDefault) {
  NoiseModel model;
  EXPECT_FALSE(model.enabled());
  EXPECT_FALSE(model.stochastic());
  common::Rng rng(1);
  const auto traj = model.draw_trajectory(4, rng);
  EXPECT_TRUE(traj.delta_disorder.empty());
  EXPECT_TRUE(traj.active.empty());
  EXPECT_DOUBLE_EQ(traj.rabi_scale, 1.0);
}

TEST(NoiseModel, DeterministicTermsOnlyAreNotStochastic) {
  CalibrationSnapshot cal;
  cal.rabi_scale = 0.95;
  cal.detuning_offset = 0.4;
  cal.dephasing_rate = 0.0;
  cal.fill_success = 1.0;
  NoiseModel model(cal);
  EXPECT_TRUE(model.enabled());
  EXPECT_FALSE(model.stochastic());
  common::Rng rng(1);
  const auto traj = model.draw_trajectory(3, rng);
  EXPECT_DOUBLE_EQ(traj.rabi_scale, 0.95);
  EXPECT_DOUBLE_EQ(traj.detuning_offset, 0.4);
}

TEST(NoiseModel, DisorderScalesWithDephasingRate) {
  CalibrationSnapshot cal;
  cal.dephasing_rate = 0.5;
  NoiseModel model(cal);
  EXPECT_TRUE(model.stochastic());
  common::Rng rng(123);
  double acc = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    const auto traj = model.draw_trajectory(1, rng);
    ASSERT_EQ(traj.delta_disorder.size(), 1u);
    acc += traj.delta_disorder[0] * traj.delta_disorder[0];
  }
  const double sigma = std::sqrt(acc / draws);
  EXPECT_NEAR(sigma, std::sqrt(2.0) * 0.5, 0.03);
}

TEST(NoiseModel, FillFailureRateMatchesProbability) {
  CalibrationSnapshot cal;
  cal.fill_success = 0.9;
  NoiseModel model(cal);
  common::Rng rng(55);
  int loaded = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    const auto traj = model.draw_trajectory(10, rng);
    for (const bool a : traj.active) {
      ++total;
      loaded += a ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(loaded) / total, 0.9, 0.02);
}

TEST(NoiseModel, ReadoutErrorRates) {
  CalibrationSnapshot cal;
  cal.readout_p01 = 0.1;
  cal.readout_p10 = 0.2;
  NoiseModel model(cal);
  Samples clean(1);
  clean.record("0", 10000);
  clean.record("1", 10000);
  common::Rng rng(9);
  const Samples corrupted = model.apply_readout_errors(clean, rng);
  EXPECT_EQ(corrupted.total_shots(), 20000u);
  // Of the 10000 zeros, ~10% flip to 1; of the 10000 ones, ~20% flip to 0:
  // expected ones = 10000 * 0.1 + 10000 * 0.8 = 9000.
  const auto& counts = corrupted.counts();
  const double ones = static_cast<double>(counts.at("1"));
  EXPECT_NEAR(ones, 10000 * 0.1 + 10000 * 0.8, 300);
}

TEST(NoiseModel, ZeroRatesLeaveSamplesUntouched) {
  CalibrationSnapshot cal;
  cal.readout_p01 = 0.0;
  cal.readout_p10 = 0.0;
  NoiseModel model(cal);
  Samples clean(2);
  clean.record("01", 5);
  clean.record("10", 7);
  common::Rng rng(1);
  const Samples out = model.apply_readout_errors(clean, rng);
  EXPECT_EQ(out.counts(), clean.counts());
}

TEST(NoiseModel, MaskInactiveForcesZeros) {
  Samples samples(3);
  samples.record("111", 4);
  samples.record("101", 2);
  const Samples masked = NoiseModel::mask_inactive(samples, {true, false, true});
  EXPECT_EQ(masked.counts().at("101"), 6u);
  EXPECT_EQ(masked.total_shots(), 6u);
}

}  // namespace
}  // namespace qcenv::emulator
