// Backend interface: payload round-trips, determinism, noise and the
// factory.
#include <numbers>

#include <gtest/gtest.h>

#include "emulator/backend.hpp"

namespace qcenv::emulator {
namespace {

using quantum::AtomRegister;
using quantum::CalibrationSnapshot;
using quantum::Circuit;
using quantum::Payload;
using quantum::Samples;
using quantum::Sequence;
using quantum::Waveform;

constexpr double kPi = std::numbers::pi;

Payload pi_pulse_payload(std::size_t atoms, std::uint64_t shots) {
  AtomRegister reg = AtomRegister::linear_chain(atoms, 30.0);
  Sequence seq(reg);
  const double omega = 2.0 * kPi;
  const auto dur = static_cast<quantum::DurationNsQ>(500);  // pi pulse
  seq.add_pulse(quantum::Pulse{Waveform::constant(dur, omega),
                               Waveform::constant(dur, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

Payload bell_payload(std::uint64_t shots) {
  Circuit circuit(2);
  circuit.h(0).cx(0, 1);
  return Payload::from_circuit(circuit, shots);
}

TEST(StateVectorBackendTest, RunsAnalogPayload) {
  StateVectorBackend backend;
  auto samples = backend.run(pi_pulse_payload(2, 500));
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 500u);
  // Ideal pi pulse: everything in |11>.
  EXPECT_GT(samples.value().probability("11"), 0.98);
}

TEST(StateVectorBackendTest, RunsDigitalPayload) {
  StateVectorBackend backend;
  auto samples = backend.run(bell_payload(2000));
  ASSERT_TRUE(samples.ok());
  EXPECT_NEAR(samples.value().probability("00"), 0.5, 0.05);
  EXPECT_NEAR(samples.value().probability("11"), 0.5, 0.05);
}

TEST(StateVectorBackendTest, DeterministicUnderSeed) {
  StateVectorBackend backend;
  RunOptions options;
  options.seed = 77;
  auto a = backend.run(bell_payload(100), options);
  auto b = backend.run(bell_payload(100), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().counts(), b.value().counts());
  options.seed = 78;
  auto c = backend.run(bell_payload(100), options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().counts(), c.value().counts());
}

TEST(StateVectorBackendTest, RejectsOversizedPayload) {
  StateVectorBackend backend(4);
  auto samples = backend.run(pi_pulse_payload(5, 10));
  ASSERT_FALSE(samples.ok());
  EXPECT_EQ(samples.error().code(), common::ErrorCode::kResourceExhausted);
}

TEST(StateVectorBackendTest, ReadoutErrorsCorruptIdealOutcome) {
  StateVectorBackend backend;
  CalibrationSnapshot cal;
  cal.readout_p10 = 0.25;  // strong 1 -> 0 flips
  cal.dephasing_rate = 0.0;
  cal.fill_success = 1.0;
  RunOptions options;
  options.calibration = &cal;
  auto samples = backend.run(pi_pulse_payload(2, 4000), options);
  ASSERT_TRUE(samples.ok());
  // P(read 11) ~ (1 - 0.25)^2 ~ 0.56.
  EXPECT_NEAR(samples.value().probability("11"), 0.5625, 0.05);
}

TEST(StateVectorBackendTest, CalibrationMetadataAttached) {
  StateVectorBackend backend;
  CalibrationSnapshot cal;
  cal.rabi_scale = 0.97;
  RunOptions options;
  options.calibration = &cal;
  auto samples = backend.run(pi_pulse_payload(1, 50), options);
  ASSERT_TRUE(samples.ok());
  const auto& meta = samples.value().metadata();
  EXPECT_EQ(meta.at_or_null("backend").as_string(), "emu-sv");
  EXPECT_TRUE(meta.contains("calibration"));
  EXPECT_NEAR(
      meta.at_or_null("calibration").at_or_null("rabi_scale").as_double(),
      0.97, 1e-12);
}

TEST(StateVectorBackendTest, StochasticNoiseUsesTrajectories) {
  StateVectorBackend backend;
  CalibrationSnapshot cal;
  cal.dephasing_rate = 0.05;
  RunOptions options;
  options.calibration = &cal;
  options.trajectories = 4;
  auto samples = backend.run(pi_pulse_payload(1, 100), options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().metadata().at_or_null("trajectories").as_int(), 4);
  EXPECT_EQ(samples.value().total_shots(), 100u);
}

TEST(MpsBackendTest, AgreesWithStateVectorOnAnalogPayload) {
  StateVectorBackend sv;
  MpsOptions mps_options;
  mps_options.max_bond = 8;
  MpsBackend mps(mps_options);
  RunOptions options;
  options.seed = 5;
  const Payload payload = pi_pulse_payload(3, 3000);
  auto a = sv.run(payload, options);
  auto b = mps.run(payload, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(Samples::total_variation_distance(a.value(), b.value()), 0.05);
}

TEST(MpsBackendTest, DigitalCircuitWithRouting) {
  MpsBackend backend;
  Circuit circuit(4);
  circuit.h(0).cx(0, 3);  // requires swap routing
  auto samples = backend.run(Payload::from_circuit(circuit, 2000));
  ASSERT_TRUE(samples.ok());
  EXPECT_NEAR(samples.value().probability("0000"), 0.5, 0.05);
  EXPECT_NEAR(samples.value().probability("1001"), 0.5, 0.05);
}

TEST(MpsBackendTest, MetadataReportsBondDimension) {
  MpsOptions mps_options;
  mps_options.max_bond = 2;
  MpsBackend backend(mps_options);
  Circuit circuit(5);
  for (std::size_t q = 0; q < 5; ++q) circuit.ry(q, 0.7);
  for (std::size_t q = 0; q + 1 < 5; ++q) circuit.cz(q, q + 1);
  auto samples = backend.run(Payload::from_circuit(circuit, 10));
  ASSERT_TRUE(samples.ok());
  EXPECT_LE(samples.value().metadata().at_or_null("max_bond_dim").as_int(), 2);
  EXPECT_EQ(backend.name(), "emu-mps-chi2");
}

TEST(BackendFactory, MakesKnownKinds) {
  EXPECT_TRUE(make_emulator_backend("sv").ok());
  EXPECT_TRUE(make_emulator_backend("statevector").ok());
  EXPECT_TRUE(make_emulator_backend("mps").ok());
  auto mock = make_emulator_backend("mps-mock");
  ASSERT_TRUE(mock.ok());
  EXPECT_EQ(mock.value()->name(), "emu-mps-chi1");
  auto chi32 = make_emulator_backend("mps:32");
  ASSERT_TRUE(chi32.ok());
  EXPECT_EQ(chi32.value()->name(), "emu-mps-chi32");
}

TEST(BackendFactory, RejectsUnknownAndMalformed) {
  EXPECT_FALSE(make_emulator_backend("gpu").ok());
  EXPECT_FALSE(make_emulator_backend("mps:zero").ok());
  EXPECT_FALSE(make_emulator_backend("mps:0").ok());
}

TEST(MockBackend, RunsVeryWideRegister) {
  // The chi=1 mock accepts registers far beyond dense reach; the paper uses
  // this to mock the QPU in end-to-end tests.
  auto mock = make_emulator_backend("mps-mock");
  ASSERT_TRUE(mock.ok());
  AtomRegister reg = AtomRegister::linear_chain(200, 6.0);
  Sequence seq(reg);
  seq.add_pulse(quantum::Pulse{Waveform::constant(100, 2.0),
                               Waveform::constant(100, 0.0), 0.0});
  RunOptions options;
  options.sample_dt_ns = 20;
  options.max_substep_ns = 20;
  auto samples = mock.value()->run(Payload::from_sequence(seq, 25), options);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().num_qubits(), 200u);
}

}  // namespace
}  // namespace qcenv::emulator
