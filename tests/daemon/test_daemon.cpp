// Sessions, admission, dispatcher and the full REST daemon over loopback.
#include <gtest/gtest.h>

#include <algorithm>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qpu/controller.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;
using common::kSecond;
using common::ManualClock;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 40) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

TEST(SessionManagerTest, CreateAuthenticateClose) {
  ManualClock clock;
  SessionManager manager({}, &clock);
  auto session = manager.create("alice", JobClass::kTest);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session.value().token.empty());
  auto authed = manager.authenticate(session.value().token);
  ASSERT_TRUE(authed.ok());
  EXPECT_EQ(authed.value().user, "alice");
  EXPECT_EQ(authed.value().job_class, JobClass::kTest);
  EXPECT_TRUE(manager.close(session.value().token).ok());
  EXPECT_FALSE(manager.authenticate(session.value().token).ok());
}

TEST(SessionManagerTest, RejectsBadTokensAndEmptyUser) {
  ManualClock clock;
  SessionManager manager({}, &clock);
  EXPECT_FALSE(manager.authenticate("bogus").ok());
  EXPECT_FALSE(manager.create("", JobClass::kTest).ok());
  EXPECT_FALSE(manager.close("bogus").ok());
}

TEST(SessionManagerTest, PerUserLimit) {
  ManualClock clock;
  SessionManagerOptions options;
  options.max_sessions_per_user = 2;
  SessionManager manager(options, &clock);
  ASSERT_TRUE(manager.create("bob", JobClass::kDevelopment).ok());
  ASSERT_TRUE(manager.create("bob", JobClass::kDevelopment).ok());
  EXPECT_FALSE(manager.create("bob", JobClass::kDevelopment).ok());
  EXPECT_TRUE(manager.create("carol", JobClass::kDevelopment).ok());
}

TEST(SessionManagerTest, IdleExpiry) {
  ManualClock clock;
  SessionManagerOptions options;
  options.idle_expiry = 10 * kSecond;
  SessionManager manager(options, &clock);
  auto fresh = manager.create("alice", JobClass::kTest).value();
  auto stale = manager.create("bob", JobClass::kTest).value();
  clock.advance(8 * kSecond);
  ASSERT_TRUE(manager.authenticate(fresh.token).ok());  // refresh alice
  clock.advance(5 * kSecond);
  const auto expired = manager.expire_idle();  // bob expired at 13s idle
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired.front().user, "bob");
  EXPECT_TRUE(manager.authenticate(fresh.token).ok());
  EXPECT_FALSE(manager.authenticate(stale.token).ok());
}

TEST(AdmissionTest, EnforcesClassShotQuotas) {
  AdmissionController admission;
  const auto spec = quantum::DeviceSpec::analog_default();
  EXPECT_FALSE(admission
                   .validate(small_payload(5000), JobClass::kDevelopment,
                             spec, AdmissionContext{})
                   .ok());
  EXPECT_TRUE(admission
                  .validate(small_payload(5000), JobClass::kProduction, spec,
                            AdmissionContext{})
                  .ok());
}

TEST(AdmissionTest, EnforcesDeviceLimitsAndQueueDepth) {
  AdmissionPolicy policy;
  policy.max_queue_depth = 2;
  AdmissionController admission(policy);
  const auto spec = quantum::DeviceSpec::analog_default();
  AdmissionContext full;
  full.queue_depth = 2;
  auto rejected =
      admission.validate(small_payload(), JobClass::kProduction, spec, full);
  ASSERT_FALSE(rejected.ok());
  // The rejection names the limit that fired (global, not per-user).
  EXPECT_NE(rejected.error().message().find("global max_queue_depth=2"),
            std::string::npos)
      << rejected.error().message();
  quantum::Circuit c(2);
  c.h(0);
  EXPECT_FALSE(admission
                   .validate(Payload::from_circuit(c, 10),
                             JobClass::kProduction, spec, AdmissionContext{})
                   .ok());  // analog device rejects digital
}

TEST(AdmissionTest, PerUserPendingLimitNamesTheUser) {
  AdmissionPolicy policy;
  policy.max_pending_per_user = 3;
  AdmissionController admission(policy);
  const auto spec = quantum::DeviceSpec::analog_default();
  AdmissionContext context;
  context.user = "alice";
  context.queue_depth = 5;  // well under the global limit
  context.user_pending = 3;
  auto rejected =
      admission.validate(small_payload(), JobClass::kProduction, spec,
                         context);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_NE(rejected.error().message().find("user 'alice'"),
            std::string::npos);
  EXPECT_NE(rejected.error().message().find("per-user limit 3"),
            std::string::npos);
  // A per-user override from /admin/quotas wins over the policy default.
  context.user_pending_limit = 10;
  EXPECT_TRUE(admission
                  .validate(small_payload(), JobClass::kProduction, spec,
                            context)
                  .ok());
}

TEST(DispatcherTest, RunsJobsInClassOrder) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  QueuePolicy policy;
  policy.non_production_batch_shots = 0;
  Dispatcher dispatcher(resource, policy, &clock, nullptr);
  const auto dev =
      dispatcher.submit(common::SessionId{1}, "dev", JobClass::kDevelopment,
                        small_payload(20));
  const auto prod =
      dispatcher.submit(common::SessionId{2}, "prod", JobClass::kProduction,
                        small_payload(20));
  ASSERT_TRUE(dispatcher.wait(dev).ok());
  ASSERT_TRUE(dispatcher.wait(prod).ok());
  const auto dev_job = dispatcher.query(dev).value();
  const auto prod_job = dispatcher.query(prod).value();
  EXPECT_EQ(dev_job.state, DaemonJobState::kCompleted);
  EXPECT_EQ(prod_job.state, DaemonJobState::kCompleted);
  EXPECT_EQ(dev_job.shots_done, 20u);
}

TEST(DispatcherTest, BatchesMergeToFullShotCount) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  QueuePolicy policy;
  policy.non_production_batch_shots = 7;  // 40 shots -> 6 batches
  Dispatcher dispatcher(resource, policy, &clock, nullptr);
  const auto id = dispatcher.submit(common::SessionId{1}, "dev",
                                    JobClass::kDevelopment, small_payload(40));
  auto samples = dispatcher.wait(id);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 40u);
}

TEST(DispatcherTest, CancelPendingJob) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  dispatcher.drain();  // hold dispatch so the job stays queued
  const auto id = dispatcher.submit(common::SessionId{1}, "dev",
                                    JobClass::kDevelopment, small_payload());
  ASSERT_TRUE(dispatcher.cancel(id).ok());
  auto result = dispatcher.wait(id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), common::ErrorCode::kCancelled);
  dispatcher.resume();
}

TEST(DispatcherTest, DrainPausesDispatch) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  dispatcher.drain();
  const auto id = dispatcher.submit(common::SessionId{1}, "dev",
                                    JobClass::kDevelopment, small_payload());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(dispatcher.query(id).value().state, DaemonJobState::kQueued);
  dispatcher.resume();
  EXPECT_TRUE(dispatcher.wait(id).ok());
}

TEST(DispatcherTest, CancelRacingFailoverBatch) {
  // A cancel that lands while the job's in-flight batch is failing over
  // (resource died mid-dispatch) must terminate the job even though no
  // healthy resource is left to serve the requeued work.
  auto doomed = qrmi::LocalEmulatorQrmi::create("doomed", "sv").value();
  common::WallClock clock;
  broker::BrokerOptions broker_options;
  broker_options.initial_backoff = 50 * common::kMillisecond;
  auto fleet = std::make_shared<broker::ResourceBroker>(broker_options,
                                                        &clock, nullptr);
  ASSERT_TRUE(fleet->add("doomed", doomed).ok());
  QueuePolicy policy;
  policy.non_production_batch_shots = 10;
  Dispatcher dispatcher(fleet, policy, &clock, nullptr);
  const auto id = dispatcher.submit(common::SessionId{1}, "dev",
                                    JobClass::kDevelopment,
                                    small_payload(1000));
  for (int i = 0; i < 5000; ++i) {
    const auto job = dispatcher.query(id).value();
    if (job.state == DaemonJobState::kRunning && job.shots_done > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  doomed->set_offline(true);  // next batch dispatch fails: kUnavailable
  ASSERT_TRUE(dispatcher.cancel(id).ok());
  auto result = dispatcher.wait(id, 30 * common::kSecond);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), common::ErrorCode::kCancelled)
      << result.error().to_string();
  const auto job = dispatcher.query(id).value();
  EXPECT_EQ(job.state, DaemonJobState::kCancelled);
  EXPECT_LT(job.shots_done, 1000u);  // the failed batch was not counted
}

TEST(DispatcherTest, SessionCancelSweepsQueuedJobs) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, nullptr);
  dispatcher.drain();  // keep everything queued
  const auto mine_a = dispatcher.submit(common::SessionId{7}, "alice",
                                        JobClass::kDevelopment,
                                        small_payload());
  const auto mine_b = dispatcher.submit(common::SessionId{7}, "alice",
                                        JobClass::kDevelopment,
                                        small_payload());
  const auto other = dispatcher.submit(common::SessionId{8}, "bob",
                                       JobClass::kDevelopment,
                                       small_payload());
  EXPECT_EQ(dispatcher.cancel_for_session(common::SessionId{7}), 2u);
  EXPECT_EQ(dispatcher.query(mine_a).value().state,
            DaemonJobState::kCancelled);
  EXPECT_EQ(dispatcher.query(mine_b).value().state,
            DaemonJobState::kCancelled);
  EXPECT_EQ(dispatcher.query(other).value().state, DaemonJobState::kQueued);
  dispatcher.resume();
  EXPECT_TRUE(dispatcher.wait(other).ok());
}

TEST(DispatcherTest, MetricsRecorded) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  telemetry::MetricsRegistry metrics;
  Dispatcher dispatcher(resource, QueuePolicy{}, &clock, &metrics);
  const auto id = dispatcher.submit(common::SessionId{1}, "u",
                                    JobClass::kTest, small_payload());
  ASSERT_TRUE(dispatcher.wait(id).ok());
  const std::string exposition = metrics.expose();
  EXPECT_NE(exposition.find("daemon_jobs_submitted_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("daemon_jobs_finished_total"),
            std::string::npos);
}

// ---- Full REST daemon -------------------------------------------------------

class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    resource_ = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
    DaemonOptions options;
    options.admin_key = "root";
    daemon_ = std::make_unique<MiddlewareDaemon>(options, resource_, nullptr,
                                                 &clock_);
    auto port = daemon_->start();
    ASSERT_TRUE(port.ok());
    client_ = std::make_unique<net::HttpClient>(port.value());
  }

  std::string open_session(const std::string& user,
                           const std::string& cls = "development") {
    Json body = Json::object();
    body["user"] = user;
    body["class"] = cls;
    auto response = client_->post("/v1/sessions", body.dump());
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 201);
    auto parsed = Json::parse(response.value().body);
    return parsed.value().get_string("token").value();
  }

  common::WallClock clock_;
  qrmi::QrmiPtr resource_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::unique_ptr<net::HttpClient> client_;
};

TEST_F(DaemonFixture, SessionLifecycleOverRest) {
  const std::string token = open_session("alice");
  EXPECT_EQ(daemon_->sessions().count(), 1u);
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  auto closed = authed.del("/v1/sessions");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.value().status, 200);
  EXPECT_EQ(daemon_->sessions().count(), 0u);
}

TEST_F(DaemonFixture, JobSubmitPollResult) {
  const std::string token = open_session("alice", "test");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);

  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201) << submitted.value().body;
  const auto job_id =
      Json::parse(submitted.value().body).value().get_int("job_id").value();

  // Poll until terminal.
  std::string state;
  for (int i = 0; i < 200; ++i) {
    auto status = authed.get("/v1/jobs/" + std::to_string(job_id));
    ASSERT_TRUE(status.ok());
    state = Json::parse(status.value().body)
                .value()
                .get_string("state")
                .value();
    if (state == "completed" || state == "failed") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(state, "completed");

  auto result = authed.get("/v1/jobs/" + std::to_string(job_id) + "/result");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().status, 200);
  auto samples =
      quantum::Samples::from_json(Json::parse(result.value().body).value());
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 30u);
}

TEST_F(DaemonFixture, RejectsUnauthenticatedAndOversized) {
  auto denied = client_->post("/v1/jobs", "{}");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);

  const std::string token = open_session("dave", "development");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(100000).to_json();  // over dev quota
  auto rejected = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 400);
}

TEST_F(DaemonFixture, PartitionOverridesSessionClass) {
  const std::string token = open_session("eve", "development");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(10).to_json();
  body["partition"] = "production";  // Slurm partition mapping
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201);
  EXPECT_EQ(Json::parse(submitted.value().body)
                .value()
                .get_string("class")
                .value(),
            "production");
}

TEST_F(DaemonFixture, QueueAndMetricsEndpoints) {
  auto queue = client_->get("/v1/queue");
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ(queue.value().status, 200);
  auto parsed = Json::parse(queue.value().body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().contains("depths"));
  // Multi-lane view: every fleet resource reports its queue + in-flight
  // batches (this daemon has the single "emu" lane).
  const Json& lanes = parsed.value().at_or_null("lanes");
  ASSERT_TRUE(lanes.is_object());
  const Json& lane = lanes.at_or_null("emu");
  ASSERT_TRUE(lane.is_object());
  EXPECT_TRUE(lane.contains("queued"));
  EXPECT_TRUE(lane.contains("running"));
  EXPECT_TRUE(lane.contains("inflight_batches"));

  auto metrics = client_->get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().body.find("daemon_http_requests_total"),
            std::string::npos);
}

TEST_F(DaemonFixture, DeviceEndpointServesSpec) {
  auto device = client_->get("/v1/device");
  ASSERT_TRUE(device.ok());
  ASSERT_EQ(device.value().status, 200);
  auto spec =
      quantum::DeviceSpec::from_json(Json::parse(device.value().body).value());
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().supports_digital);
}

TEST_F(DaemonFixture, TraceEndpointShowsWellNestedTimeline) {
  const std::string token = open_session("alice", "test");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201) << submitted.value().body;
  const auto parsed = Json::parse(submitted.value().body).value();
  const auto job_id = parsed.get_int("job_id").value();
  // Accepted submissions echo their trace id for correlation.
  EXPECT_GT(parsed.get_int("trace_id").value_or(0), 0);

  auto samples = daemon_->dispatcher().wait(job_id);
  ASSERT_TRUE(samples.ok());

  auto traced = authed.get("/v1/jobs/" + std::to_string(job_id) + "/trace");
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced.value().status, 200) << traced.value().body;
  const auto timeline = Json::parse(traced.value().body).value();
  EXPECT_EQ(timeline.at_or_null("job_id").as_int(), job_id);
  EXPECT_TRUE(timeline.contains("finish_ns"));
  const Json& spans = timeline.at_or_null("spans");
  ASSERT_TRUE(spans.is_array());
  std::vector<std::string> stages;
  for (const Json& span : spans.as_array()) {
    stages.push_back(span.at_or_null("stage").as_string());
  }
  const auto has = [&](const char* stage) {
    return std::find(stages.begin(), stages.end(), stage) != stages.end();
  };
  EXPECT_TRUE(has("admission")) << traced.value().body;
  EXPECT_TRUE(has("queue_wait")) << traced.value().body;
  EXPECT_TRUE(has("shard_dispatch")) << traced.value().body;
  EXPECT_TRUE(has("qrmi_execute")) << traced.value().body;
  // Every span of the finished timeline is closed (duration recorded).
  for (const Json& span : spans.as_array()) {
    EXPECT_TRUE(span.contains("duration_ns")) << traced.value().body;
  }
}

TEST_F(DaemonFixture, TraceEndpointMaterializesQueuedJobsMidFlight) {
  // Park the lanes so the job stays queued: its deferred trace must still
  // be readable (materialized on demand by the read itself).
  daemon_->dispatcher().drain();
  const std::string token = open_session("bob", "test");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201);
  const auto job_id =
      Json::parse(submitted.value().body).value().get_int("job_id").value();

  auto traced = authed.get("/v1/jobs/" + std::to_string(job_id) + "/trace");
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced.value().status, 200) << traced.value().body;
  const auto timeline = Json::parse(traced.value().body).value();
  EXPECT_FALSE(timeline.contains("finish_ns"));
  const Json& spans = timeline.at_or_null("spans");
  ASSERT_TRUE(spans.is_array());
  ASSERT_GT(spans.size(), 0u);
  // The open stage of a queued job is queue_wait.
  const Json& last = spans.as_array().back();
  EXPECT_EQ(last.at_or_null("stage").as_string(), "queue_wait");
  EXPECT_FALSE(last.contains("end_ns"));
  daemon_->dispatcher().resume();
}

TEST_F(DaemonFixture, RejectedSubmissionCarriesTraceIdInErrorBody) {
  const std::string token = open_session("carol", "development");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(100000).to_json();  // over dev quota
  auto rejected = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 400);
  const auto parsed = Json::parse(rejected.value().body).value();
  // The error body names the trace that explains the rejection...
  const auto trace_id = parsed.get_int("trace_id").value_or(0);
  EXPECT_GT(trace_id, 0);
  // ...and that trace exists, finished, with its admission span closed.
  ASSERT_NE(daemon_->traces(), nullptr);
  const auto trace =
      daemon_->traces()->find(static_cast<telemetry::TraceId>(trace_id));
  ASSERT_TRUE(trace.has_value());
  EXPECT_GE(trace->finish, 0);
  ASSERT_EQ(trace->spans.size(), 1u);
  EXPECT_EQ(trace->spans[0].stage, "admission");
}

TEST_F(DaemonFixture, AdminEventsTailsStructuredLog) {
  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  // Unauthenticated and non-admin callers are refused.
  EXPECT_EQ(client_->get("/admin/events").value().status, 401);

  const std::string token = open_session("dave", "development");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(100000).to_json();  // force a rejection
  ASSERT_EQ(authed.post("/v1/jobs", body.dump()).value().status, 400);

  auto events = admin.get("/admin/events?since=0");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().status, 200);
  const auto parsed = Json::parse(events.value().body).value();
  const Json& list = parsed.at_or_null("events");
  ASSERT_TRUE(list.is_array());
  bool saw_rejection = false;
  for (const Json& event : list.as_array()) {
    if (event.at_or_null("kind").as_string() == "submit_rejected") {
      saw_rejection = true;
      EXPECT_EQ(event.at_or_null("user").as_string(), "dave");
    }
  }
  EXPECT_TRUE(saw_rejection) << events.value().body;
  // Tailing from last_seq returns nothing new.
  const auto last_seq = parsed.at_or_null("last_seq").as_int();
  auto tail = admin.get("/admin/events?since=" + std::to_string(last_seq));
  ASSERT_EQ(tail.value().status, 200);
  EXPECT_EQ(Json::parse(tail.value().body).value().at_or_null("events").size(),
            0u);
}

TEST_F(DaemonFixture, MetricsExposeStageHistogramsWithPrometheusType) {
  const std::string token = open_session("erin", "test");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_EQ(submitted.value().status, 201);
  const auto job_id =
      Json::parse(submitted.value().body).value().get_int("job_id").value();
  ASSERT_TRUE(daemon_->dispatcher().wait(job_id).ok());

  auto metrics = client_->get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  const auto content_type = metrics.value().headers.find("Content-Type");
  ASSERT_NE(content_type, metrics.value().headers.end());
  EXPECT_EQ(content_type->second, "text/plain; version=0.0.4");
  // Per-stage latency histograms with cumulative le buckets.
  EXPECT_NE(metrics.value().body.find("daemon_stage_seconds_bucket{"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(metrics.value().body.find("daemon_stage_seconds_count"),
            std::string::npos);
}

TEST_F(DaemonFixture, AdminEndpointsRequireKey) {
  auto denied = client_->get("/admin/status");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);

  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto status = admin.get("/admin/status");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().status, 200);

  auto drained = admin.post("/admin/drain", "{}");
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(daemon_->dispatcher().draining());
  auto resumed = admin.post("/admin/resume", "{}");
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(daemon_->dispatcher().draining());
}

TEST_F(DaemonFixture, ClosingSessionCancelsItsQueuedJobs) {
  const std::string token = open_session("alice", "test");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  ASSERT_TRUE(admin.post("/admin/drain", "{}").ok());  // keep jobs queued

  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto first = authed.post("/v1/jobs", body.dump());
  ASSERT_EQ(first.value().status, 201);
  const auto first_id =
      Json::parse(first.value().body).value().get_int("job_id").value();
  auto second = authed.post("/v1/jobs", body.dump());
  ASSERT_EQ(second.value().status, 201);

  auto closed = authed.del("/v1/sessions");
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed.value().status, 200);
  // No orphans: both queued jobs died with the session.
  EXPECT_EQ(Json::parse(closed.value().body)
                .value()
                .get_int("cancelled_jobs")
                .value(),
            2);
  const auto job = daemon_->dispatcher().query(
      static_cast<std::uint64_t>(first_id));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value().state, DaemonJobState::kCancelled);
  ASSERT_TRUE(admin.post("/admin/resume", "{}").ok());
}

TEST(DaemonExpiry, IdleExpiryCancelsOrphanedJobs) {
  // ManualClock daemon: advance time past the idle window and check the
  // expired session's queued work is swept with it.
  common::ManualClock clock;
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  DaemonOptions options;
  options.admin_key = "root";
  options.sessions.idle_expiry = 10 * kSecond;
  MiddlewareDaemon daemon(options, resource, nullptr, &clock);
  ASSERT_TRUE(daemon.start().ok());
  daemon.dispatcher().drain();

  net::HttpClient client(daemon.port());
  auto opened =
      client.post("/v1/sessions", R"({"user":"sleepy","class":"test"})");
  ASSERT_EQ(opened.value().status, 201);
  const std::string token =
      Json::parse(opened.value().body).value().get_string("token").value();
  net::HttpClient authed(daemon.port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(30).to_json();
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_EQ(submitted.value().status, 201);
  const auto job_id = static_cast<std::uint64_t>(
      Json::parse(submitted.value().body).value().get_int("job_id").value());

  clock.advance(60 * kSecond);
  net::HttpClient admin(daemon.port());
  admin.set_default_header("X-Admin-Key", "root");
  auto expired = admin.post("/admin/expire_sessions", "{}");
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(expired.value().status, 200);
  auto parsed = Json::parse(expired.value().body).value();
  EXPECT_EQ(parsed.get_int("expired").value(), 1);
  EXPECT_EQ(parsed.get_int("cancelled_jobs").value(), 1);
  EXPECT_EQ(daemon.dispatcher().query(job_id).value().state,
            DaemonJobState::kCancelled);
  EXPECT_FALSE(daemon.sessions().authenticate(token).ok());
}

TEST_F(DaemonFixture, AdminExpireSessions) {
  (void)open_session("sleepy");
  EXPECT_EQ(daemon_->sessions().count(), 1u);
  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto expired = admin.post("/admin/expire_sessions", "{}");
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(expired.value().status, 200);
  // Nothing idle long enough yet.
  EXPECT_EQ(Json::parse(expired.value().body).value().get_int("expired")
                .value(),
            0);
}

TEST_F(DaemonFixture, LowLevelEndpointsNeedDevice) {
  // This daemon fronts an emulator (device == nullptr): guarded endpoints
  // refuse rather than crash.
  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto recal = admin.post("/admin/recalibrate", "{}");
  ASSERT_TRUE(recal.ok());
  EXPECT_EQ(recal.value().status, 409);
}

// ---- Multi-resource fleet over REST ----------------------------------------

class FleetDaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    qrmi::ResourceRegistry fleet;
    fleet.add("emu-a", qrmi::LocalEmulatorQrmi::create("emu-a", "sv").value());
    fleet.add("emu-b",
              qrmi::LocalEmulatorQrmi::create("emu-b", "mps-mock").value());
    DaemonOptions options;
    options.admin_key = "root";
    options.broker.default_policy = broker::SchedulingPolicy::kRoundRobin;
    daemon_ = std::make_unique<MiddlewareDaemon>(options, fleet, nullptr,
                                                 &clock_);
    auto port = daemon_->start();
    ASSERT_TRUE(port.ok());
    client_ = std::make_unique<net::HttpClient>(port.value());
  }

  std::string open_session(const std::string& user) {
    Json body = Json::object();
    body["user"] = user;
    body["class"] = "test";
    auto response = client_->post("/v1/sessions", body.dump());
    EXPECT_TRUE(response.ok());
    return Json::parse(response.value().body)
        .value()
        .get_string("token")
        .value();
  }

  common::WallClock clock_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::unique_ptr<net::HttpClient> client_;
};

TEST_F(FleetDaemonFixture, ResourcesEndpointListsFleet) {
  auto response = client_->get("/v1/resources");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  auto parsed = Json::parse(response.value().body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  const auto& first = parsed.value().as_array().front();
  EXPECT_EQ(first.at_or_null("name").as_string(), "emu-a");
  EXPECT_TRUE(first.at_or_null("healthy").as_bool());
  EXPECT_TRUE(first.contains("score"));
}

TEST_F(FleetDaemonFixture, ResourceHintPinsJobAndIsReported) {
  const std::string token = open_session("alice");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);

  Json body = Json::object();
  body["payload"] = small_payload(20).to_json();
  body["resource"] = "emu-b";
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201) << submitted.value().body;
  auto parsed = Json::parse(submitted.value().body).value();
  EXPECT_EQ(parsed.get_string("resource").value(), "emu-b");
  const auto job_id = parsed.get_int("job_id").value();

  auto samples = daemon_->dispatcher().wait(
      static_cast<std::uint64_t>(job_id), 30 * common::kSecond);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  auto job = authed.get("/v1/jobs/" + std::to_string(job_id));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(Json::parse(job.value().body)
                .value()
                .get_string("resource")
                .value(),
            "emu-b");
}

TEST_F(FleetDaemonFixture, BadPlacementHintsAreRejected) {
  const std::string token = open_session("bob");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);

  Json body = Json::object();
  body["payload"] = small_payload(20).to_json();
  body["resource"] = "emu-z";
  auto unknown = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 404);
  // User-centric diagnostics: the error lists the available resources.
  EXPECT_NE(unknown.value().body.find("emu-a"), std::string::npos);

  body = Json::object();
  body["payload"] = small_payload(20).to_json();
  body["policy"] = "best_effort";
  auto bad_policy = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(bad_policy.ok());
  EXPECT_EQ(bad_policy.value().status, 400);

  // Wrong JSON types must come back as 400s, not dropped connections.
  body = Json::object();
  body["payload"] = small_payload(20).to_json();
  body["resource"] = static_cast<long long>(123);
  auto non_string = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(non_string.ok());
  EXPECT_EQ(non_string.value().status, 400);
}

TEST_F(FleetDaemonFixture, PolicyHintAccepted) {
  const std::string token = open_session("carol");
  net::HttpClient authed(client_->port());
  authed.set_default_header("X-Session-Token", token);
  Json body = Json::object();
  body["payload"] = small_payload(20).to_json();
  body["policy"] = "calibration_aware";
  auto submitted = authed.post("/v1/jobs", body.dump());
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().status, 201) << submitted.value().body;
  EXPECT_FALSE(Json::parse(submitted.value().body)
                   .value()
                   .get_string("resource")
                   .value()
                   .empty());
}

TEST_F(FleetDaemonFixture, PerResourceDrainAndResume) {
  auto denied = client_->post("/admin/resources/emu-a/drain", "{}");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, 401);

  net::HttpClient admin(client_->port());
  admin.set_default_header("X-Admin-Key", "root");
  auto drained = admin.post("/admin/resources/emu-a/drain", "{}");
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained.value().status, 200);
  EXPECT_TRUE(daemon_->broker().draining("emu-a"));

  auto listed = client_->get("/v1/resources");
  ASSERT_TRUE(listed.ok());
  EXPECT_NE(listed.value().body.find("\"draining\":true"),
            std::string::npos);

  auto resumed = admin.post("/admin/resources/emu-a/resume", "{}");
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed.value().status, 200);
  EXPECT_FALSE(daemon_->broker().draining("emu-a"));

  auto unknown = admin.post("/admin/resources/nope/drain", "{}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 404);
}

TEST(DaemonWithDevice, AdminControlsActOnQpu) {
  common::ManualClock clock;
  qpu::QpuOptions qpu_options;
  qpu_options.time_scale = 1e9;
  qpu::QpuDevice device(qpu_options, &clock);
  qpu::QpuController controller(&device, &clock);
  auto resource = std::make_shared<qrmi::DirectQpuQrmi>("fresnel", &device,
                                                        &controller);
  DaemonOptions options;
  options.admin_key = "root";
  common::WallClock wall;
  MiddlewareDaemon daemon(options, resource, &device, &wall);
  auto port = daemon.start();
  ASSERT_TRUE(port.ok());

  net::HttpClient admin(port.value());
  admin.set_default_header("X-Admin-Key", "root");

  // Safeguarded low-level control: out-of-bounds rejected.
  auto too_fast = admin.post("/admin/lowlevel/shot_rate",
                             R"({"value": 99999.0})");
  ASSERT_TRUE(too_fast.ok());
  EXPECT_EQ(too_fast.value().status, 400);

  auto ok_rate = admin.post("/admin/lowlevel/shot_rate", R"({"value": 10})");
  ASSERT_TRUE(ok_rate.ok());
  EXPECT_EQ(ok_rate.value().status, 200);
  EXPECT_DOUBLE_EQ(device.shot_rate_hz(), 10.0);

  auto recal = admin.post("/admin/recalibrate", "{}");
  ASSERT_TRUE(recal.ok());
  EXPECT_EQ(recal.value().status, 200);

  auto qa = admin.post("/admin/qa", "{}");
  ASSERT_TRUE(qa.ok());
  ASSERT_EQ(qa.value().status, 200);
  EXPECT_GT(Json::parse(qa.value().body).value().get_double("qa_quality")
                .value(),
            0.9);
}

}  // namespace
}  // namespace qcenv::daemon
