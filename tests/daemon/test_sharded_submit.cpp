// Sharded submit pipeline: the per-tenant shards must be invisible in
// every observable ordering — dispatch runs a tournament over shard heads
// with the queue core's exact comparator, so an 8-shard dispatcher has to
// behave bit-identically to the single-queue layout — while the per-shard
// locks keep per-user invariants (pending limits) atomic under
// concurrent submission.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "daemon/dispatcher.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 20) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

/// Drained dispatcher over one local emulator with `shards` submit shards.
struct Harness {
  explicit Harness(std::size_t shards) {
    auto broker = std::make_shared<broker::ResourceBroker>(
        broker::BrokerOptions{}, &clock, nullptr);
    EXPECT_TRUE(
        broker->add("emu0", qrmi::LocalEmulatorQrmi::create("emu0", "sv")
                                .value())
            .ok());
    QueuePolicy policy;
    policy.submit_shards = shards;
    dispatcher = std::make_unique<Dispatcher>(broker, policy, &clock,
                                              nullptr);
    dispatcher->drain();  // keep submissions queued: ordering is the test
  }
  common::WallClock clock;
  std::unique_ptr<Dispatcher> dispatcher;
};

// The same interleaved multi-tenant workload submitted to a 1-shard and
// an 8-shard dispatcher must produce the same global dispatch order: job
// ids come from one global allocator, so queue_order() (the k-way merge
// every lane's tournament replays) is directly comparable.
TEST(ShardedSubmit, TournamentOrderMatchesSingleQueue) {
  Harness single(1);
  Harness sharded(8);
  ASSERT_EQ(single.dispatcher->shard_count(), 1u);
  ASSERT_EQ(sharded.dispatcher->shard_count(), 8u);

  const JobClass classes[] = {JobClass::kDevelopment, JobClass::kProduction,
                              JobClass::kTest};
  for (int i = 0; i < 24; ++i) {
    const std::string user = "tenant" + std::to_string(i % 12);
    const JobClass cls = classes[i % 3];
    const auto a = single.dispatcher->submit(common::SessionId{1}, user, cls,
                                             small_payload());
    const auto b = sharded.dispatcher->submit(common::SessionId{1}, user,
                                              cls, small_payload());
    // Same allocator discipline on both sides: ids line up 1:1.
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(single.dispatcher->queue_order(),
            sharded.dispatcher->queue_order());
  EXPECT_EQ(sharded.dispatcher->queued_total(), 24u);
}

// Class priority must hold ACROSS shards: production jobs submitted last,
// by tenants hashing onto different shards than the earlier development
// jobs, still head the merged dispatch order.
TEST(ShardedSubmit, ClassPriorityHoldsAcrossShards) {
  Harness h(8);
  std::vector<std::uint64_t> dev_ids;
  std::vector<std::uint64_t> prod_ids;
  for (int i = 0; i < 16; ++i) {
    dev_ids.push_back(h.dispatcher->submit(
        common::SessionId{1}, "dev-tenant" + std::to_string(i),
        JobClass::kDevelopment, small_payload()));
  }
  for (int i = 0; i < 8; ++i) {
    prod_ids.push_back(h.dispatcher->submit(
        common::SessionId{2}, "prod-tenant" + std::to_string(i),
        JobClass::kProduction, small_payload()));
  }
  const auto order = h.dispatcher->queue_order();
  ASSERT_EQ(order.size(), dev_ids.size() + prod_ids.size());
  // Every production job outranks every development job, and within each
  // class the global FIFO seq (== job id) breaks ties.
  for (std::size_t i = 0; i < prod_ids.size(); ++i) {
    EXPECT_EQ(order[i], prod_ids[i]) << "position " << i;
  }
  for (std::size_t i = 0; i < dev_ids.size(); ++i) {
    EXPECT_EQ(order[prod_ids.size() + i], dev_ids[i]) << "position " << i;
  }
}

// The per-user pending limit is enforced under the user's shard lock, so
// a burst of concurrent submissions for one user admits EXACTLY the limit
// — never limit+k from check-then-act races. The dispatcher stays drained
// so the pending count can only grow.
TEST(ShardedSubmit, PerUserPendingLimitIsAtomicUnderConcurrency) {
  Harness h(8);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 16;
  constexpr std::size_t kLimit = 10;
  Dispatcher::SubmitOptions options;
  options.user_pending_limit = kLimit;

  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t j = 0; j < kPerThread; ++j) {
        const auto result =
            h.dispatcher->submit(common::SessionId{1}, "burst-user",
                                 JobClass::kDevelopment, small_payload(),
                                 options);
        if (result.ok()) {
          admitted.fetch_add(1);
        } else {
          EXPECT_EQ(result.error().code(),
                    common::ErrorCode::kResourceExhausted);
          rejected.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(admitted.load(), kLimit);
  EXPECT_EQ(rejected.load(), kThreads * kPerThread - kLimit);
  EXPECT_EQ(h.dispatcher->pending_for_user("burst-user"), kLimit);
  // Another tenant is not collateral damage of the burst user's ceiling.
  EXPECT_TRUE(h.dispatcher
                  ->submit(common::SessionId{2}, "other-user",
                           JobClass::kDevelopment, small_payload(), options)
                  .ok());
}

// One dispatch lane, eight shards: the lane's tournament must steal work
// from EVERY shard, not just the one its last job came from — jobs from
// tenants spread across all shards all complete on the single resource.
TEST(ShardedSubmit, SingleLaneStealsAcrossAllShards) {
  Harness h(8);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 24; ++i) {
    ids.push_back(h.dispatcher->submit(
        common::SessionId{1}, "tenant" + std::to_string(i),
        JobClass::kDevelopment, small_payload()));
  }
  EXPECT_EQ(h.dispatcher->queued_total(), ids.size());
  h.dispatcher->resume();
  for (const auto id : ids) {
    ASSERT_TRUE(h.dispatcher->wait(id, 60 * common::kSecond).ok())
        << "job " << id;
    const auto job = h.dispatcher->query(id).value();
    EXPECT_EQ(job.state, DaemonJobState::kCompleted);
    EXPECT_EQ(job.resource, "emu0");
    EXPECT_EQ(job.shots_done, 20u);
  }
  EXPECT_EQ(h.dispatcher->queued_total(), 0u);
}

// Aggregated per-user views must merge the shards: each tenant's pending
// count survives the hash onto whatever shard it landed in.
TEST(ShardedSubmit, UserPendingCountsAggregateAcrossShards) {
  Harness h(8);
  for (int i = 0; i < 12; ++i) {
    const std::string user = "tenant" + std::to_string(i % 6);
    (void)h.dispatcher->submit(common::SessionId{1}, user,
                               JobClass::kDevelopment, small_payload());
  }
  const auto counts = h.dispatcher->user_pending_counts();
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [user, count] : counts) {
    EXPECT_EQ(count, 2u) << user;
    EXPECT_EQ(h.dispatcher->pending_for_user(user), 2u) << user;
  }
}

}  // namespace
}  // namespace qcenv::daemon
