// PriorityQueueCore: the deterministic second-level scheduling policy.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "daemon/queue_core.hpp"

namespace qcenv::daemon {
namespace {

using common::kSecond;

QueuePolicy batched_policy(std::uint64_t batch = 100) {
  QueuePolicy policy;
  policy.class_priority = true;
  policy.non_production_batch_shots = batch;
  policy.age_to_boost = 0;
  return policy;
}

TEST(QueueCore, FifoWithinClass) {
  PriorityQueueCore core(batched_policy(0));
  core.enqueue(1, JobClass::kProduction, 10, 0);
  core.enqueue(2, JobClass::kProduction, 10, 1);
  core.enqueue(3, JobClass::kProduction, 10, 2);
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);
  EXPECT_EQ(core.next_batch(3)->job_id, 2u);
  EXPECT_EQ(core.next_batch(3)->job_id, 3u);
}

TEST(QueueCore, ClassPriorityOrdersAcrossClasses) {
  PriorityQueueCore core(batched_policy(0));
  core.enqueue(1, JobClass::kDevelopment, 10, 0);
  core.enqueue(2, JobClass::kTest, 10, 1);
  core.enqueue(3, JobClass::kProduction, 10, 2);
  EXPECT_EQ(core.next_batch(3)->job_id, 3u);  // production first
  EXPECT_EQ(core.next_batch(3)->job_id, 2u);  // then test
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);  // then development
}

TEST(QueueCore, FifoBaselineIgnoresClasses) {
  QueuePolicy policy = batched_policy(0);
  policy.class_priority = false;
  PriorityQueueCore core(policy);
  core.enqueue(1, JobClass::kDevelopment, 10, 0);
  core.enqueue(2, JobClass::kProduction, 10, 1);
  EXPECT_EQ(core.next_batch(2)->job_id, 1u);  // strict arrival order
}

TEST(QueueCore, ProductionJobsDispatchWholeShots) {
  PriorityQueueCore core(batched_policy(50));
  core.enqueue(1, JobClass::kProduction, 1000, 0);
  const auto batch = core.next_batch(0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->shots, 1000u);
  EXPECT_TRUE(batch->final_batch);
}

TEST(QueueCore, NonProductionJobsAreChopped) {
  PriorityQueueCore core(batched_policy(50));
  core.enqueue(1, JobClass::kDevelopment, 120, 0);
  auto batch1 = core.next_batch(0);
  ASSERT_TRUE(batch1.has_value());
  EXPECT_EQ(batch1->shots, 50u);
  EXPECT_FALSE(batch1->final_batch);
  core.batch_done(*batch1);
  auto batch2 = core.next_batch(1);
  EXPECT_EQ(batch2->shots, 50u);
  core.batch_done(*batch2);
  auto batch3 = core.next_batch(2);
  EXPECT_EQ(batch3->shots, 20u);
  EXPECT_TRUE(batch3->final_batch);
  core.batch_done(*batch3);
  EXPECT_EQ(core.depth(), 0u);
}

TEST(QueueCore, ProductionArrivalWaitsAtMostOneBatch) {
  // The paper's key property: a production job arriving mid-development-job
  // preempts at the batch boundary, not at job completion.
  PriorityQueueCore core(batched_policy(10));
  core.enqueue(1, JobClass::kDevelopment, 100, 0);
  auto dev_batch = core.next_batch(0);
  ASSERT_EQ(dev_batch->shots, 10u);
  // Production arrives while the dev batch is in flight.
  core.enqueue(2, JobClass::kProduction, 500, 1);
  core.batch_done(*dev_batch);
  // Next dispatch must be the production job, not the dev remainder.
  auto next = core.next_batch(2);
  EXPECT_EQ(next->job_id, 2u);
  EXPECT_EQ(next->shots, 500u);
  core.batch_done(*next);
  // Dev job resumes afterwards.
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);
}

TEST(QueueCore, RemainderKeepsPositionWithinClass) {
  PriorityQueueCore core(batched_policy(10));
  core.enqueue(1, JobClass::kDevelopment, 30, 0);
  core.enqueue(2, JobClass::kDevelopment, 30, 1);
  auto batch = core.next_batch(2);
  EXPECT_EQ(batch->job_id, 1u);
  core.batch_done(*batch);
  // Job 1's remainder still precedes job 2 (contiguous batches).
  EXPECT_EQ(core.next_batch(3)->job_id, 1u);
}

TEST(QueueCore, AgingPromotesStarvedJobs) {
  QueuePolicy policy = batched_policy(0);
  policy.age_to_boost = 60 * kSecond;
  PriorityQueueCore core(policy);
  core.enqueue(1, JobClass::kDevelopment, 10, 0);
  core.enqueue(2, JobClass::kProduction, 10, 100 * kSecond);
  // At t=130s the dev job has waited 130s > 2 boosts worth: rank 2-2=0,
  // equal to production; FIFO seq then favours the dev job.
  EXPECT_EQ(core.next_batch(130 * kSecond)->job_id, 1u);
}

TEST(QueueCore, RemoveCancelsPending) {
  PriorityQueueCore core(batched_policy(0));
  core.enqueue(1, JobClass::kTest, 10, 0);
  EXPECT_TRUE(core.pending(1));
  EXPECT_TRUE(core.remove(1));
  EXPECT_FALSE(core.remove(1));
  EXPECT_FALSE(core.next_batch(1).has_value());
}

TEST(QueueCore, DepthAccounting) {
  PriorityQueueCore core(batched_policy(10));
  core.enqueue(1, JobClass::kProduction, 10, 0);
  core.enqueue(2, JobClass::kDevelopment, 10, 0);
  core.enqueue(3, JobClass::kDevelopment, 10, 0);
  EXPECT_EQ(core.depth(), 3u);
  EXPECT_EQ(core.depth_of(JobClass::kDevelopment), 2u);
  EXPECT_EQ(core.depth_of(JobClass::kProduction), 1u);
  EXPECT_EQ(core.depth_of(JobClass::kTest), 0u);
  const auto order = core.snapshot(0);
  EXPECT_EQ(order.front(), 1u);
}

TEST(QueueCore, EmptyQueueReturnsNothing) {
  PriorityQueueCore core(batched_policy());
  EXPECT_FALSE(core.next_batch(0).has_value());
}


TEST(QueueCore, ShortestFirstWithinClass) {
  // Pattern-aware ordering (the paper's §3.5 "expected time running on
  // the QC hardware" hint): within a class, less remaining work first.
  QueuePolicy policy = batched_policy(0);
  policy.shortest_first_within_class = true;
  PriorityQueueCore core(policy);
  core.enqueue(1, JobClass::kTest, 500, 0);
  core.enqueue(2, JobClass::kTest, 50, 1);
  core.enqueue(3, JobClass::kProduction, 900, 2);
  core.enqueue(4, JobClass::kTest, 200, 3);
  // Production still first (class priority beats SJF) ...
  EXPECT_EQ(core.next_batch(4)->job_id, 3u);
  // ... then tests by ascending remaining shots.
  EXPECT_EQ(core.next_batch(4)->job_id, 2u);
  EXPECT_EQ(core.next_batch(4)->job_id, 4u);
  EXPECT_EQ(core.next_batch(4)->job_id, 1u);
}

TEST(QueueCore, RandomizedShotConservation) {
  // Property: across any interleaving of enqueue/next_batch/batch_done,
  // dispatched shots per job sum exactly to the enqueued total.
  common::Rng rng(77);
  PriorityQueueCore core(batched_policy(17));
  std::map<std::uint64_t, std::uint64_t> requested, dispatched;
  std::vector<Batch> in_flight;
  std::uint64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.3) {
      const auto shots =
          static_cast<std::uint64_t>(rng.uniform_int(1, 300));
      const auto cls = static_cast<JobClass>(rng.uniform_int(0, 2));
      requested[next_id] = shots;
      core.enqueue(next_id, cls, shots, step);
      ++next_id;
    } else if (roll < 0.7) {
      auto batch = core.next_batch(step);
      if (batch.has_value()) in_flight.push_back(*batch);
    } else if (!in_flight.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
      const Batch batch = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
      dispatched[batch.job_id] += batch.shots;
      core.batch_done(batch);
    }
  }
  // Drain everything still queued or in flight.
  while (true) {
    auto batch = core.next_batch(100000);
    if (!batch.has_value()) break;
    dispatched[batch->job_id] += batch->shots;
    core.batch_done(*batch);
  }
  for (const Batch& batch : in_flight) {
    dispatched[batch.job_id] += batch.shots;
    core.batch_done(batch);
  }
  while (true) {
    auto batch = core.next_batch(200000);
    if (!batch.has_value()) break;
    dispatched[batch->job_id] += batch->shots;
    core.batch_done(*batch);
  }
  EXPECT_EQ(core.depth(), 0u);
  for (const auto& [job, shots] : requested) {
    EXPECT_EQ(dispatched[job], shots) << "job " << job;
  }
}

TEST(QueueCore, ClassNames) {
  EXPECT_STREQ(to_string(JobClass::kProduction), "production");
  EXPECT_STREQ(to_string(JobClass::kTest), "test");
  EXPECT_STREQ(to_string(JobClass::kDevelopment), "development");
  EXPECT_LT(class_rank(JobClass::kProduction),
            class_rank(JobClass::kDevelopment));
}

}  // namespace
}  // namespace qcenv::daemon
