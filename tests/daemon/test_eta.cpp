// The explainability surface: GET /v1/jobs/:id/{eta,explain}, the eta
// object embedded in submit 201s, Retry-After on rate-limited 429s, the
// /admin/profile critical-path endpoints and the /admin/events cursor
// semantics. Runs on virtual time (ManualClock auto_advance) so waits and
// retry-after numbers are deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;
using common::kSecond;
using common::ManualClock;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 20) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

class EtaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    resource_ = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
    DaemonOptions options;
    options.admin_key = "root";
    options.telemetry.observability.scrape_thread = false;
    daemon_ = std::make_unique<MiddlewareDaemon>(options, resource_, nullptr,
                                                 &clock_);
    auto port = daemon_->start();
    ASSERT_TRUE(port.ok());
    admin_ = std::make_unique<net::HttpClient>(port.value());
    admin_->set_default_header("X-Admin-Key", "root");
  }

  net::HttpClient user_client(const std::string& user,
                              JobClass cls = JobClass::kTest) {
    auto session = daemon_->open_session(user, cls).value();
    net::HttpClient client(admin_->port());
    client.set_default_header("X-Session-Token", session.token);
    return client;
  }

  /// Submits over REST and returns the parsed 201 body.
  Json submit(net::HttpClient& client, std::uint64_t shots = 20) {
    Json body = Json::object();
    body["payload"] = small_payload(shots).to_json();
    auto response = client.post("/v1/jobs", body.dump());
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 201) << response.value().body;
    return Json::parse(response.value().body).value();
  }

  Json get_json(net::HttpClient& client, const std::string& path,
                int expected = 200) {
    auto response = client.get(path);
    EXPECT_TRUE(response.ok()) << path;
    EXPECT_EQ(response.value().status, expected) << response.value().body;
    return Json::parse(response.value().body).value();
  }

  ManualClock clock_{0, /*auto_advance=*/true};
  std::shared_ptr<qrmi::LocalEmulatorQrmi> resource_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::unique_ptr<net::HttpClient> admin_;
};

TEST_F(EtaFixture, SubmitEmbedsEtaAndEndpointTracksQueuePosition) {
  // Park the lanes so both jobs stay queued and the snapshot is stable.
  daemon_->dispatcher().drain();
  auto alice = user_client("alice");
  const Json first = submit(alice);
  ASSERT_TRUE(first.contains("eta")) << first.dump();
  const Json& eta = first.at_or_null("eta");
  EXPECT_EQ(eta.at_or_null("state").as_string(), "queued");
  // Global drain: no active lane can serve the job -> unbounded window.
  EXPECT_FALSE(eta.at_or_null("bounded").as_bool());
  EXPECT_EQ(eta.at_or_null("active_lanes").as_int(), 0);
  EXPECT_EQ(eta.at_or_null("start").at_or_null("latest_ns").as_int(), -1);
  EXPECT_GE(eta.at_or_null("start").at_or_null("earliest_ns").as_int(), 0);
  // The drain shows up as a live pressure signal.
  bool drained_pressure = false;
  for (const auto& p : eta.at_or_null("pressures").as_array()) {
    if (p.at_or_null("cause").as_string() == "resource_drain") {
      drained_pressure = true;
    }
  }
  EXPECT_TRUE(drained_pressure) << first.dump();

  const auto second_id =
      submit(alice).get_int("job_id").value();
  const Json behind = get_json(
      alice, "/v1/jobs/" + std::to_string(second_id) + "/eta");
  EXPECT_EQ(behind.at_or_null("jobs_ahead").as_int(), 1);
  EXPECT_GE(behind.at_or_null("batches_ahead").as_int(), 1);

  daemon_->dispatcher().resume();
  ASSERT_TRUE(daemon_->dispatcher().wait(second_id).ok());
  // Terminal jobs report actuals at full confidence.
  const Json done = get_json(
      alice, "/v1/jobs/" + std::to_string(second_id) + "/eta");
  EXPECT_EQ(done.at_or_null("state").as_string(), "completed");
  EXPECT_DOUBLE_EQ(done.at_or_null("confidence").as_double(), 1.0);
  const auto start_ns =
      done.at_or_null("start").at_or_null("earliest_ns").as_int();
  const auto finish_ns =
      done.at_or_null("finish").at_or_null("latest_ns").as_int();
  EXPECT_GT(start_ns, 0);
  EXPECT_GE(finish_ns, start_ns);
  EXPECT_EQ(done.at_or_null("start").at_or_null("latest_ns").as_int(),
            start_ns);
}

TEST_F(EtaFixture, QueuedEtaIsBoundedWithLiveLanes) {
  // A queued job with healthy lanes gets a finite window: park the lane by
  // keeping a long-running job in front instead of draining.
  auto alice = user_client("alice");
  const auto front = submit(alice, 200).get_int("job_id").value();
  const auto back_id = submit(alice, 20).get_int("job_id").value();
  const Json eta =
      get_json(alice, "/v1/jobs/" + std::to_string(back_id) + "/eta");
  const std::string state = eta.at_or_null("state").as_string();
  if (state == "queued") {
    EXPECT_TRUE(eta.at_or_null("bounded").as_bool());
    EXPECT_EQ(eta.at_or_null("active_lanes").as_int(), 1);
    const auto now = eta.at_or_null("computed_at_ns").as_int();
    const auto latest =
        eta.at_or_null("start").at_or_null("latest_ns").as_int();
    EXPECT_GT(latest, now);
    EXPECT_GE(eta.at_or_null("finish").at_or_null("latest_ns").as_int(),
              latest);
    EXPECT_GT(eta.at_or_null("batch_latency_ns").as_int(), 0);
  }
  ASSERT_TRUE(daemon_->dispatcher().wait(front).ok());
  ASSERT_TRUE(daemon_->dispatcher().wait(back_id).ok());
}

TEST_F(EtaFixture, RateLimited429CarriesRetryAfterHeader) {
  daemon_->dispatcher().drain();  // no execution sleeps: time stands still
  accounting::RateLimitOptions strict;
  strict.submit_per_sec = 2.0;
  strict.submit_burst = 3.0;
  daemon_->accounting().rate_limiter().set_override("hog", strict);

  auto hog = user_client("hog");
  std::uint64_t queued_id = 0;
  for (int i = 0; i < 3; ++i) {
    queued_id = static_cast<std::uint64_t>(
        submit(hog).get_int("job_id").value());
  }
  Json body = Json::object();
  body["payload"] = small_payload().to_json();
  auto limited = hog.post("/v1/jobs", body.dump());
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited.value().status, 429) << limited.value().body;
  // The token bucket refills at 2/s, so a whole token is 500ms away —
  // rounded up to whole seconds for the header.
  const auto header = limited.value().headers.find("Retry-After");
  ASSERT_NE(header, limited.value().headers.end());
  EXPECT_EQ(header->second, "1");

  // The ETA endpoint reports the same backpressure as a rate_limited
  // pressure carrying the un-rounded refill time.
  const Json eta =
      get_json(hog, "/v1/jobs/" + std::to_string(queued_id) + "/eta");
  bool saw_rate_pressure = false;
  for (const auto& p : eta.at_or_null("pressures").as_array()) {
    if (p.at_or_null("cause").as_string() != "rate_limited") continue;
    saw_rate_pressure = true;
    const auto ns = p.at_or_null("duration_ns").as_int();
    EXPECT_GT(ns, 0);
    EXPECT_LE(ns, 1 * kSecond);  // consistent with the rounded-up header
  }
  EXPECT_TRUE(saw_rate_pressure) << eta.dump();
  // ...and explain files it as a zero-duration informational cause (the
  // limiter charged none of THIS job's wait — it was admitted).
  const Json report =
      get_json(hog, "/v1/jobs/" + std::to_string(queued_id) + "/explain");
  bool saw_rate_cause = false;
  for (const auto& cause : report.at_or_null("causes").as_array()) {
    if (cause.at_or_null("cause").as_string() != "rate_limited") continue;
    saw_rate_cause = true;
    EXPECT_EQ(cause.at_or_null("duration_ns").as_int(), 0);
  }
  EXPECT_TRUE(saw_rate_cause) << report.dump();
  daemon_->dispatcher().resume();
}

TEST_F(EtaFixture, ExplainPartitionsWaitIntoCauses) {
  daemon_->dispatcher().drain();
  auto alice = user_client("alice");
  const auto id = submit(alice).get_int("job_id").value();
  clock_.advance(5 * kSecond);

  const std::string path = "/v1/jobs/" + std::to_string(id) + "/explain";
  const Json open = get_json(alice, path);
  EXPECT_EQ(open.at_or_null("state").as_string(), "queued");
  EXPECT_FALSE(open.at_or_null("wait_closed").as_bool());
  // The partition property: causes sum to the observed wait exactly.
  EXPECT_EQ(open.at_or_null("causes_total_ns").as_int(),
            open.at_or_null("observed_wait_ns").as_int());
  EXPECT_GE(open.at_or_null("observed_wait_ns").as_int(), 5 * kSecond);
  // The whole wait so far happened under a global drain.
  bool outage_charged = false;
  for (const auto& cause : open.at_or_null("causes").as_array()) {
    if (cause.at_or_null("cause").as_string() == "resource_drain") {
      outage_charged = cause.at_or_null("duration_ns").as_int() > 0;
    }
  }
  EXPECT_TRUE(outage_charged) << open.dump();

  daemon_->dispatcher().resume();
  ASSERT_TRUE(daemon_->dispatcher().wait(id).ok());
  const Json closed = get_json(alice, path);
  EXPECT_TRUE(closed.at_or_null("wait_closed").as_bool());
  EXPECT_EQ(closed.at_or_null("causes_total_ns").as_int(),
            closed.at_or_null("observed_wait_ns").as_int());
  EXPECT_GE(closed.at_or_null("observed_wait_ns").as_int(), 5 * kSecond);
}

TEST_F(EtaFixture, EtaAndExplainEnforceOwnership) {
  daemon_->dispatcher().drain();
  auto alice = user_client("alice");
  const auto id = submit(alice).get_int("job_id").value();
  auto mallory = user_client("mallory");
  for (const char* suffix : {"/eta", "/explain"}) {
    const std::string path =
        "/v1/jobs/" + std::to_string(id) + suffix;
    // Cross-user access answers 401, same as every other job endpoint.
    EXPECT_EQ(mallory.get(path).value().status, 401) << path;
    EXPECT_EQ(alice.get(path).value().status, 200) << path;
    // Unknown jobs are a 404, not a leak.
    EXPECT_EQ(alice.get("/v1/jobs/999999" + std::string(suffix))
                  .value()
                  .status,
              404);
  }
  // Anonymous callers bounce at authentication.
  net::HttpClient anon(admin_->port());
  EXPECT_EQ(anon.get("/v1/jobs/" + std::to_string(id) + "/eta")
                .value()
                .status,
            401);
  daemon_->dispatcher().resume();
}

TEST_F(EtaFixture, ProfileEndpointsServeStacksAndBaseline) {
  net::HttpClient anon(admin_->port());
  EXPECT_EQ(anon.get("/admin/profile").value().status, 401);

  // Queue both jobs under a drain, then let them run: the queued stretch
  // gives every trace nonzero queue_wait self-time even on virtual time.
  // The latency hook does the same for qrmi_execute — without it an
  // execution can take 0 virtual ns and the zero-self stack would be
  // absent from the collapsed profile.
  qrmi::EmulatorFaultHooks hooks;
  hooks.latency = [](std::uint64_t) -> common::DurationNs {
    return common::kMillisecond;
  };
  resource_->set_fault_hooks(std::move(hooks), &clock_);
  daemon_->dispatcher().drain();
  auto alice = user_client("alice");
  const auto first = submit(alice).get_int("job_id").value();
  const auto second = submit(alice).get_int("job_id").value();
  clock_.advance(2 * kSecond);
  daemon_->dispatcher().resume();
  ASSERT_TRUE(daemon_->dispatcher().wait(first).ok());
  ASSERT_TRUE(daemon_->dispatcher().wait(second).ok());
  const Json profile = get_json(*admin_, "/admin/profile");
  EXPECT_GE(profile.at_or_null("jobs").as_int(), 2);
  EXPECT_FALSE(profile.at_or_null("baseline").as_bool());
  const std::string collapsed =
      profile.at_or_null("profile").get_string("collapsed").value();
  // Collapsed stacks name the pipeline stages, one "path value" per line.
  EXPECT_NE(collapsed.find("qrmi_execute"), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("queue_wait"), std::string::npos);
  EXPECT_GT(profile.at_or_null("profile").at_or_null("total_ns").as_int(), 0);
  // Per-tenant and per-resource splits carry the same format.
  EXPECT_TRUE(profile.at_or_null("by_user").contains("alice"));
  EXPECT_TRUE(profile.at_or_null("by_resource").contains("emu0"));

  auto recorded = admin_->post("/admin/profile/baseline", "");
  ASSERT_TRUE(recorded.ok());
  ASSERT_EQ(recorded.value().status, 200);
  const Json baseline = Json::parse(recorded.value().body).value();
  EXPECT_TRUE(baseline.at_or_null("recorded").as_bool());
  EXPECT_GE(baseline.at_or_null("jobs").as_int(), 2);

  // With a baseline recorded over the same jobs nothing regresses yet.
  const Json again = get_json(*admin_, "/admin/profile?threshold=0.05");
  EXPECT_TRUE(again.at_or_null("baseline").as_bool());
  EXPECT_TRUE(again.at_or_null("regressions").is_array());
  EXPECT_TRUE(again.at_or_null("regressions").as_array().empty());
}

TEST_F(EtaFixture, TsdbRateAggregationOnTheQueryRoute) {
  auto* pipeline = daemon_->observability();
  ASSERT_NE(pipeline, nullptr);
  common::TimeNs deadline = 0;
  for (int i = 0; i < 4; ++i) {
    deadline += kSecond;
    clock_.advance_to(deadline);
    pipeline->tick_at(deadline);
  }
  const Json out = get_json(
      *admin_,
      "/admin/tsdb/query?series=broker_resource_healthy,resource=emu0"
      "&window=" + std::to_string(2 * kSecond) + "&agg=rate");
  ASSERT_TRUE(out.at_or_null("windows").is_array());
  EXPECT_FALSE(out.at_or_null("windows").as_array().empty());
  // A constant gauge has zero per-second increase.
  for (const auto& window : out.at_or_null("windows").as_array()) {
    EXPECT_DOUBLE_EQ(window.at_or_null("value").as_double(), 0.0);
  }
  // The agg whitelist advertises rate.
  auto bad = admin_->get("/admin/tsdb/query?series=m&window=1000&agg=med");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);
  EXPECT_NE(bad.value().body.find("rate"), std::string::npos);
}

TEST_F(EtaFixture, EventsSinceBeyondHeadReturnsEmptyWithCursor) {
  const Json tail = get_json(*admin_, "/admin/events");
  const auto head = tail.at_or_null("last_seq").as_int();
  // A cursor past the head is a valid "nothing new yet" poll, not an
  // error; the response still carries the head cursor to resume from.
  const Json beyond = get_json(
      *admin_, "/admin/events?since=" + std::to_string(head + 1000));
  EXPECT_TRUE(beyond.at_or_null("events").as_array().empty());
  EXPECT_EQ(beyond.at_or_null("last_seq").as_int(), head);
}

TEST(EventCursorTest, CursorSurvivesRingEviction) {
  ManualClock clock(0, /*auto_advance=*/true);
  auto resource = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
  DaemonOptions options;
  options.admin_key = "root";
  options.telemetry.event_capacity = 8;
  options.telemetry.observability.scrape_thread = false;
  MiddlewareDaemon daemon(options, resource, nullptr, &clock);
  const auto port = daemon.start().value();
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "root");

  // Each drain/resume cycle logs drain_all + resume_all: 12 events into
  // an 8-slot ring evicts the oldest four.
  for (int i = 0; i < 6; ++i) {
    daemon.dispatcher().drain();
    daemon.dispatcher().resume();
  }
  auto response = admin.get("/admin/events?since=0");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  const Json all = Json::parse(response.value().body).value();
  const auto& events = all.at_or_null("events").as_array();
  ASSERT_FALSE(events.empty());
  ASSERT_LE(events.size(), 8u);
  const auto oldest = events.front().at_or_null("seq").as_int();
  const auto head = all.at_or_null("last_seq").as_int();
  ASSERT_GT(oldest, 1);  // the ring really evicted

  // A stale cursor pointing at an evicted sequence resumes from the
  // oldest retained event instead of erroring or duplicating.
  const auto stale = admin.get("/admin/events?since=1");
  ASSERT_EQ(stale.value().status, 200);
  const Json resumed = Json::parse(stale.value().body).value();
  EXPECT_EQ(resumed.at_or_null("events").as_array().front()
                .at_or_null("seq").as_int(),
            oldest);
  EXPECT_EQ(resumed.at_or_null("last_seq").as_int(), head);

  // And a cursor at (or past) the head after the wrap reads empty.
  for (const auto since : {head, head + 50}) {
    const auto empty =
        admin.get("/admin/events?since=" + std::to_string(since));
    ASSERT_EQ(empty.value().status, 200);
    EXPECT_TRUE(Json::parse(empty.value().body)
                    .value()
                    .at_or_null("events")
                    .as_array()
                    .empty());
  }
}

}  // namespace
}  // namespace qcenv::daemon
