// Per-user job isolation over the REST API: sessions cannot read or cancel
// other users' jobs.
#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;

quantum::Payload small_payload() {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, 20);
}

class OwnershipFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    resource_ = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
    DaemonOptions options;
    daemon_ = std::make_unique<MiddlewareDaemon>(options, resource_, nullptr,
                                                 &clock_);
    port_ = daemon_->start().value();
  }

  net::HttpClient client_for(const std::string& user) {
    net::HttpClient anon(port_);
    Json body = Json::object();
    body["user"] = user;
    body["class"] = "test";
    auto response = anon.post("/v1/sessions", body.dump());
    EXPECT_EQ(response.value().status, 201);
    const std::string token = Json::parse(response.value().body)
                                  .value()
                                  .get_string("token")
                                  .value();
    net::HttpClient client(port_);
    client.set_default_header("X-Session-Token", token);
    return client;
  }

  long long submit(net::HttpClient& client) {
    Json body = Json::object();
    body["payload"] = small_payload().to_json();
    auto response = client.post("/v1/jobs", body.dump());
    EXPECT_EQ(response.value().status, 201);
    return Json::parse(response.value().body).value().get_int("job_id").value();
  }

  common::WallClock clock_;
  qrmi::QrmiPtr resource_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::uint16_t port_ = 0;
};

TEST_F(OwnershipFixture, OtherUsersJobsAreHidden) {
  auto alice = client_for("alice");
  auto mallory = client_for("mallory");
  const long long job = submit(alice);
  const std::string path = "/v1/jobs/" + std::to_string(job);

  // Mallory cannot query, fetch results for, or cancel Alice's job.
  EXPECT_EQ(mallory.get(path).value().status, 401);
  EXPECT_EQ(mallory.get(path + "/result").value().status, 401);
  EXPECT_EQ(mallory.del(path).value().status, 401);
  // Alice can.
  EXPECT_EQ(alice.get(path).value().status, 200);
}

TEST_F(OwnershipFixture, JobListingIsScopedToUser) {
  auto alice = client_for("alice");
  auto bob = client_for("bob");
  submit(alice);
  submit(alice);
  submit(bob);
  auto alice_jobs = Json::parse(alice.get("/v1/jobs").value().body).value();
  auto bob_jobs = Json::parse(bob.get("/v1/jobs").value().body).value();
  EXPECT_EQ(alice_jobs.size(), 2u);
  EXPECT_EQ(bob_jobs.size(), 1u);
  for (const auto& job : alice_jobs.as_array()) {
    EXPECT_EQ(job.at_or_null("user").as_string(), "alice");
  }
}

}  // namespace
}  // namespace qcenv::daemon
