// The observability REST surface: /admin/tsdb/{query,export}, /admin/alerts,
// /admin/slo, /admin/events severity=/kind= filters and the operator-
// triggered flight dump. The daemon runs with the scrape thread off and the
// test drives the grid through tick_at(), exactly like simulation does.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::daemon {
namespace {

using common::Json;
using common::kSecond;
using common::ManualClock;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 20) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

class ObservabilityRoutesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    resource_ = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
    DaemonOptions options;
    options.admin_key = "root";
    options.store.data_dir = dir_.path();  // gives the recorder a dump path
    // A submit budget a storm can torch (drives the slo_submit burn rate).
    options.accounting.rate_limit.submit_per_sec = 2.0;
    options.accounting.rate_limit.submit_burst = 3.0;
    auto& obs = options.telemetry.observability;
    obs.scrape_thread = false;  // the test drives the grid
    obs.scrape_interval = kSecond;
    obs.slo_short_window = 4 * kSecond;
    obs.slo_long_window = 16 * kSecond;
    daemon_ = std::make_unique<MiddlewareDaemon>(options, resource_, nullptr,
                                                 &clock_);
    auto port = daemon_->start();
    ASSERT_TRUE(port.ok());
    ASSERT_NE(daemon_->observability(), nullptr);
    admin_ = std::make_unique<net::HttpClient>(port.value());
    admin_->set_default_header("X-Admin-Key", "root");
  }

  /// Advances virtual time by `seconds` grid deadlines and scrapes each.
  void tick(int seconds) {
    auto* pipeline = daemon_->observability();
    for (int i = 0; i < seconds; ++i) {
      next_deadline_ += kSecond;
      clock_.advance_to(next_deadline_);
      pipeline->tick_at(next_deadline_);
    }
  }

  /// Floods /v1/jobs past the rate limit for `seconds` grid steps so the
  /// submit-rejection SLO burns; returns how many submissions bounced.
  int storm_submits(int seconds) {
    auto session =
        daemon_->open_session("alice", JobClass::kDevelopment).value();
    net::HttpClient user(admin_->port());
    user.set_default_header("X-Session-Token", session.token);
    Json body = Json::object();
    body["payload"] = small_payload().to_json();
    const std::string request = body.dump();
    int rejected = 0;
    for (int s = 0; s < seconds; ++s) {
      for (int i = 0; i < 6; ++i) {
        auto response = user.post("/v1/jobs", request);
        EXPECT_TRUE(response.ok());
        if (response.value().status == 429) ++rejected;
      }
      tick(1);
    }
    return rejected;
  }

  Json get_json(const std::string& path) {
    auto response = admin_->get(path);
    EXPECT_TRUE(response.ok()) << path;
    EXPECT_EQ(response.value().status, 200) << response.value().body;
    return Json::parse(response.value().body).value();
  }

  ManualClock clock_{0, /*auto_advance=*/true};
  common::TempDir dir_{"qcenv-obs-routes-"};
  qrmi::QrmiPtr resource_;
  std::unique_ptr<MiddlewareDaemon> daemon_;
  std::unique_ptr<net::HttpClient> admin_;
  common::TimeNs next_deadline_ = 0;
};

TEST_F(ObservabilityRoutesFixture, EndpointsRequireAdminKey) {
  net::HttpClient anon(admin_->port());
  for (const char* path :
       {"/admin/tsdb/query?series=x", "/admin/tsdb/export", "/admin/alerts",
        "/admin/slo"}) {
    auto response = anon.get(path);
    ASSERT_TRUE(response.ok()) << path;
    EXPECT_EQ(response.value().status, 401) << path;
  }
  auto dump = anon.post("/admin/debug/dump", "{}");
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump.value().status, 401);
}

TEST_F(ObservabilityRoutesFixture, TsdbQueryRawPoints) {
  tick(3);
  const auto out = get_json(
      "/admin/tsdb/query?series=broker_resource_healthy,resource=emu0");
  EXPECT_EQ(out.get_string("series").value(),
            "broker_resource_healthy,resource=emu0");
  const auto& points = out.at_or_null("points");
  ASSERT_TRUE(points.is_array());
  ASSERT_EQ(points.as_array().size(), 3u);
  // Each point is a [time, value] pair stamped on the scrape grid.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& pair = points.as_array()[i].as_array();
    EXPECT_EQ(pair.at(0).as_int(),
              static_cast<long long>((i + 1) * kSecond));
    EXPECT_DOUBLE_EQ(pair.at(1).as_double(), 1.0);
  }
}

TEST_F(ObservabilityRoutesFixture, TsdbQueryWindowedAggregation) {
  tick(4);
  const auto out = get_json(
      "/admin/tsdb/query?series=broker_resource_healthy,resource=emu0"
      "&window=" + std::to_string(2 * kSecond) + "&agg=count");
  const auto& windows = out.at_or_null("windows");
  ASSERT_TRUE(windows.is_array());
  ASSERT_FALSE(windows.as_array().empty());
  std::size_t samples = 0;
  for (const auto& window : windows.as_array()) {
    samples += static_cast<std::size_t>(window.at_or_null("samples").as_int());
  }
  EXPECT_EQ(samples, 4u);  // every scrape landed in exactly one window
}

TEST_F(ObservabilityRoutesFixture, TsdbQueryRejectsBadInput) {
  EXPECT_EQ(admin_->get("/admin/tsdb/query").value().status, 400);
  EXPECT_EQ(admin_->get("/admin/tsdb/query?series=,broken").value().status,
            400);
  EXPECT_EQ(admin_
                ->get("/admin/tsdb/query?series=m&window=1000&agg=median")
                .value()
                .status,
            400);
}

TEST_F(ObservabilityRoutesFixture, TsdbExportRoundTripsThroughWriteLine) {
  tick(2);
  auto response =
      admin_->get("/admin/tsdb/export?series=calibration_score,resource=emu0");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  // Every exported line must re-ingest cleanly — the import path contract.
  telemetry::TimeSeriesDb copy;
  std::istringstream lines(response.value().body);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(copy.write_line(line).ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  const telemetry::SeriesKey key{"calibration_score", {{"resource", "emu0"}}};
  EXPECT_EQ(copy.point_count(key), 2u);

  // Full export (no series=) covers every series, including the broker's.
  auto all = admin_->get("/admin/tsdb/export");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().status, 200);
  EXPECT_NE(all.value().body.find("broker_resource_healthy"),
            std::string::npos);
}

TEST_F(ObservabilityRoutesFixture, SloAndAlertsReflectASubmitStorm) {
  const int rejected = storm_submits(8);
  ASSERT_GT(rejected, 0);

  const auto slo = get_json("/admin/slo");
  EXPECT_DOUBLE_EQ(slo.at_or_null("objective").as_double(), 0.99);
  EXPECT_EQ(slo.at_or_null("evaluated_at").as_int(),
            static_cast<long long>(next_deadline_));
  bool submit_burning = false;
  for (const auto& burn : slo.at_or_null("burn_rates").as_array()) {
    if (burn.at_or_null("rule").as_string() == "slo_submit" &&
        burn.at_or_null("label").as_string() == "alice") {
      submit_burning = burn.at_or_null("active").as_bool();
    }
  }
  EXPECT_TRUE(submit_burning);

  const auto alerts = get_json("/admin/alerts");
  bool alert_seen = false;
  for (const char* section : {"active", "recent"}) {
    for (const auto& record : alerts.at_or_null(section).as_array()) {
      if (record.at_or_null("rule").as_string() == "slo_submit" &&
          record.at_or_null("label").as_string() == "alice") {
        alert_seen = true;
        EXPECT_GT(record.at_or_null("fired_at").as_int(), 0);
      }
    }
  }
  EXPECT_TRUE(alert_seen);
}

TEST_F(ObservabilityRoutesFixture, EventFiltersBySeverityAndKind) {
  storm_submits(8);                                  // warn: alert_fired
  ASSERT_EQ(admin_->post("/admin/debug/dump", "{}").value().status,
            200);                                    // info: flight_dump

  const auto warns = get_json("/admin/events?severity=warn");
  bool saw_alert_fired = false;
  for (const auto& event : warns.at_or_null("events").as_array()) {
    EXPECT_EQ(event.at_or_null("severity").as_string(), "warn");
    if (event.at_or_null("kind").as_string() == "alert_fired") {
      saw_alert_fired = true;
    }
  }
  EXPECT_TRUE(saw_alert_fired);

  const auto dumps = get_json("/admin/events?kind=flight_dump");
  ASSERT_FALSE(dumps.at_or_null("events").as_array().empty());
  for (const auto& event : dumps.at_or_null("events").as_array()) {
    EXPECT_EQ(event.at_or_null("kind").as_string(), "flight_dump");
  }

  // Filters compose: nothing is both warn and kind=flight_dump.
  const auto both = get_json("/admin/events?severity=warn&kind=flight_dump");
  EXPECT_TRUE(both.at_or_null("events").as_array().empty());

  EXPECT_EQ(admin_->get("/admin/events?severity=fatal").value().status, 400);
}

TEST_F(ObservabilityRoutesFixture, EventsRejectNonNumericCursorsByName) {
  // Garbage and negative since=/max= are 400s that NAME the offending
  // parameter — a cursor silently parsed as 0 would replay the whole log.
  for (const char* query : {"since=abc", "since=-1", "since=1e3"}) {
    auto response = admin_->get(std::string("/admin/events?") + query);
    ASSERT_TRUE(response.ok()) << query;
    EXPECT_EQ(response.value().status, 400) << query;
    EXPECT_NE(response.value().body.find("since"), std::string::npos)
        << response.value().body;
  }
  for (const char* query : {"max=-1", "max=ten", "max=2.5"}) {
    auto response = admin_->get(std::string("/admin/events?") + query);
    ASSERT_TRUE(response.ok()) << query;
    EXPECT_EQ(response.value().status, 400) << query;
    EXPECT_NE(response.value().body.find("max"), std::string::npos)
        << response.value().body;
  }
  // Valid numeric cursors still work.
  EXPECT_EQ(admin_->get("/admin/events?since=0&max=10").value().status,
            200);
}

TEST_F(ObservabilityRoutesFixture, TsdbQueryRejectsNonNumericTimesByName) {
  tick(1);
  const std::string base =
      "/admin/tsdb/query?series=broker_resource_healthy,resource=emu0";
  const struct {
    const char* query;
    const char* param;
  } cases[] = {{"&start=abc", "start"},
               {"&end=-5", "end"},
               {"&window=oops&agg=mean", "window"}};
  for (const auto& bad : cases) {
    auto response = admin_->get(base + bad.query);
    ASSERT_TRUE(response.ok()) << bad.query;
    EXPECT_EQ(response.value().status, 400) << bad.query;
    EXPECT_NE(response.value().body.find(bad.param), std::string::npos)
        << response.value().body;
  }
  // The same values in their numeric spelling are accepted.
  EXPECT_EQ(admin_->get(base + "&start=0&end=" + std::to_string(kSecond))
                .value()
                .status,
            200);
}

TEST_F(ObservabilityRoutesFixture, ContentTypesCarryTheVersionOnlyOnMetrics) {
  tick(1);
  // /metrics speaks the Prometheus exposition format, version suffix and
  // all — that string is the scrape contract.
  auto metrics = admin_->get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  EXPECT_EQ(metrics.value().headers.at("Content-Type"),
            "text/plain; version=0.0.4");

  // Every other text response is plain text/plain: the TSDB export is
  // qcenv's own line format, not exposition format 0.0.4.
  auto exported = admin_->get("/admin/tsdb/export");
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported.value().status, 200);
  EXPECT_EQ(exported.value().headers.at("Content-Type"), "text/plain");
}

TEST_F(ObservabilityRoutesFixture, DebugDumpWritesParseableForensics) {
  tick(2);
  auto response = admin_->post("/admin/debug/dump", "{}");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  const auto out = Json::parse(response.value().body).value();
  EXPECT_GE(out.at_or_null("dumps").as_int(), 1);
  const std::string path = out.get_string("path").value();

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << path;
  std::stringstream contents;
  contents << file.rdbuf();
  auto dump = Json::parse(contents.str());
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump.value().at_or_null("reason").as_string(), "admin_request");
  EXPECT_TRUE(dump.value().at_or_null("events").is_array());
  EXPECT_TRUE(dump.value().at_or_null("heartbeats").is_object());
}

TEST(ObservabilityDisabledTest, EndpointsAnswer409) {
  ManualClock clock(0, /*auto_advance=*/true);
  auto resource = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
  DaemonOptions options;
  options.admin_key = "root";
  options.telemetry.observability.enabled = false;
  MiddlewareDaemon daemon(options, resource, nullptr, &clock);
  const auto port = daemon.start().value();
  EXPECT_EQ(daemon.observability(), nullptr);
  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "root");
  for (const char* path :
       {"/admin/tsdb/query?series=x", "/admin/tsdb/export", "/admin/alerts",
        "/admin/slo"}) {
    EXPECT_EQ(admin.get(path).value().status, 409) << path;
  }
  EXPECT_EQ(admin.post("/admin/debug/dump", "{}").value().status, 409);
  // The pre-pipeline surface still works without observability.
  EXPECT_EQ(admin.get("/admin/events").value().status, 200);
}

}  // namespace
}  // namespace qcenv::daemon
