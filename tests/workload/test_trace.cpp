// Timeline recording and Gantt rendering, including co-sim integration.
#include <gtest/gtest.h>

#include "workload/cosim.hpp"
#include "workload/trace.hpp"

namespace qcenv::workload {
namespace {

TEST(TimelineTest, RecordsAndAggregates) {
  Timeline timeline;
  timeline.record("job-a", PhaseKind::kClassical, 0.0, 10.0);
  timeline.record("job-a", PhaseKind::kQuantumWait, 10.0, 12.0);
  timeline.record("job-a", PhaseKind::kQuantumRun, 12.0, 20.0);
  timeline.record("job-b", PhaseKind::kQuantumRun, 20.0, 30.0);
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timeline.total_seconds(PhaseKind::kQuantumRun), 18.0);
  EXPECT_DOUBLE_EQ(timeline.total_seconds(PhaseKind::kQuantumWait), 2.0);
}

TEST(TimelineTest, GanttLayout) {
  Timeline timeline;
  timeline.record("alpha", PhaseKind::kClassical, 0.0, 50.0);
  timeline.record("alpha", PhaseKind::kQuantumRun, 50.0, 100.0);
  timeline.record("beta", PhaseKind::kQuantumWait, 0.0, 100.0);
  const std::string gantt = timeline.render_gantt(20);
  // One row per job, first-seen order, correct glyphs in halves.
  const auto alpha_pos = gantt.find("alpha");
  const auto beta_pos = gantt.find("beta");
  ASSERT_NE(alpha_pos, std::string::npos);
  ASSERT_NE(beta_pos, std::string::npos);
  EXPECT_LT(alpha_pos, beta_pos);
  EXPECT_NE(gantt.find("CCCCCCCCCCQQQQQQQQQQ"), std::string::npos);
  EXPECT_NE(gantt.find("wwwwwwwwwwwwwwwwwwww"), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
}

TEST(TimelineTest, EmptyAndDegenerate) {
  Timeline timeline;
  EXPECT_EQ(timeline.render_gantt(10), "(empty timeline)\n");
  timeline.record("x", PhaseKind::kQuantumRun, 5.0, 5.0);  // zero length
  const std::string gantt = timeline.render_gantt(10);
  EXPECT_NE(gantt.find("x"), std::string::npos);
  // Reversed interval is normalized.
  timeline.record("y", PhaseKind::kClassical, 9.0, 3.0);
  EXPECT_DOUBLE_EQ(timeline.total_seconds(PhaseKind::kClassical), 6.0);
}

TEST(TimelineTest, CosimIntegrationCoversAllPhaseKinds) {
  common::Rng rng(5);
  PatternOptions pattern_options;
  pattern_options.count = 6;
  pattern_options.arrival_window_seconds = 10.0;
  const auto jobs = generate(Pattern::kBalanced, pattern_options, rng);
  Timeline timeline;
  CosimOptions options;
  options.access = QpuAccess::kDaemonShared;
  options.queue_policy.non_production_batch_shots = 0;
  options.timeline = &timeline;
  const auto metrics = run_cosim(options, jobs);
  EXPECT_EQ(metrics.jobs_completed, 6u);
  EXPECT_GT(timeline.total_seconds(PhaseKind::kClassical), 0.0);
  EXPECT_GT(timeline.total_seconds(PhaseKind::kQuantumRun), 0.0);
  // Recorded QPU service must equal the metric.
  EXPECT_NEAR(timeline.total_seconds(PhaseKind::kQuantumRun),
              metrics.qpu_busy_seconds, 1e-6);
  // Six jobs contending for one QPU: someone must have waited.
  EXPECT_GT(timeline.total_seconds(PhaseKind::kQuantumWait), 0.0);
  const std::string gantt = timeline.render_gantt(60);
  for (const auto& job : jobs) {
    EXPECT_NE(gantt.find(job.name), std::string::npos);
  }
}

}  // namespace
}  // namespace qcenv::workload
