// Optimizers, pattern generators and the scheduling co-simulation.
#include <cmath>

#include <gtest/gtest.h>

#include "workload/cosim.hpp"
#include "workload/optimizer.hpp"
#include "workload/patterns.hpp"

namespace qcenv::workload {
namespace {

using daemon::JobClass;
using daemon::QueuePolicy;

// ---- Optimizers -------------------------------------------------------------

/// Drives a ParameterStrategy directly against an analytic cost function.
std::pair<std::vector<double>, double> drive(
    runtime::ParameterStrategy strategy, std::vector<double> initial,
    const std::function<double(const std::vector<double>&)>& cost,
    std::size_t max_evals = 300) {
  std::vector<std::vector<double>> params{initial};
  std::vector<double> costs{cost(initial)};
  for (std::size_t i = 0; i < max_evals; ++i) {
    auto next = strategy(params, costs);
    if (next.empty()) break;
    costs.push_back(cost(next));
    params.push_back(std::move(next));
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < costs.size(); ++i) {
    if (costs[i] < costs[best]) best = i;
  }
  return {params[best], costs[best]};
}

TEST(NelderMeadTest, MinimizesQuadraticBowl) {
  NelderMead optimizer(2);
  const auto [best, cost] = drive(
      optimizer.strategy(), {3.0, -2.0},
      [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 0.5) * (x[1] + 0.5);
      });
  EXPECT_NEAR(best[0], 1.0, 0.05);
  EXPECT_NEAR(best[1], -0.5, 0.05);
  EXPECT_LT(cost, 1e-2);
}

TEST(NelderMeadTest, MinimizesRosenbrockish) {
  NelderMead::Options options;
  options.max_evaluations = 400;
  options.tolerance = 1e-8;
  NelderMead optimizer(2, options);
  const auto [best, cost] = drive(
      optimizer.strategy(), {0.0, 0.0},
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 5.0 * b * b;
      },
      400);
  EXPECT_LT(cost, 0.05);
  (void)best;
}

TEST(NelderMeadTest, RespectsEvaluationBudget) {
  NelderMead::Options options;
  options.max_evaluations = 20;
  NelderMead optimizer(3, options);
  std::size_t evals = 1;
  std::vector<std::vector<double>> params{{0, 0, 0}};
  std::vector<double> costs{1.0};
  while (true) {
    auto next = optimizer.strategy()(params, costs);
    if (next.empty()) break;
    ++evals;
    params.push_back(next);
    costs.push_back(static_cast<double>(evals));
    ASSERT_LE(evals, 21u);
  }
  EXPECT_LE(evals, 21u);
}

TEST(SpsaTest, ConvergesOnNoisyQuadratic) {
  common::Rng noise(3);
  Spsa::Options options;
  options.max_iterations = 80;
  Spsa optimizer(2, /*seed=*/42, options);
  const auto [best, cost] = drive(
      optimizer.strategy(), {2.0, 2.0},
      [&](const std::vector<double>& x) {
        return x[0] * x[0] + x[1] * x[1] + 0.01 * noise.normal();
      },
      400);
  EXPECT_LT(std::abs(best[0]), 0.5);
  EXPECT_LT(std::abs(best[1]), 0.5);
  (void)cost;
}

TEST(GridSearchTest, CoversTheGrid) {
  auto strategy = grid_search(2, 0.0, 1.0, 3);
  std::vector<std::vector<double>> params{{0.0, 0.0}};
  std::vector<double> costs{0.0};
  std::size_t proposals = 0;
  while (true) {
    auto next = strategy(params, costs);
    if (next.empty()) break;
    ++proposals;
    params.push_back(next);
    costs.push_back(0.0);
  }
  EXPECT_EQ(proposals, 8u);  // 3^2 - 1 (initial point counts as first)
}

// ---- Patterns ---------------------------------------------------------------

TEST(Patterns, ShapesMatchTaxonomy) {
  common::Rng rng(1);
  PatternOptions options;
  options.count = 40;
  const auto a = generate(Pattern::kHighQcLowCc, options, rng);
  const auto b = generate(Pattern::kLowQcHighCc, options, rng);
  const auto c = generate(Pattern::kBalanced, options, rng);
  ASSERT_EQ(a.size(), 40u);

  double qa = 0, ca = 0, qb = 0, cb = 0, qc = 0, cc = 0;
  for (const auto& job : a) { qa += job.quantum_seconds(); ca += job.classical_seconds(); }
  for (const auto& job : b) { qb += job.quantum_seconds(); cb += job.classical_seconds(); }
  for (const auto& job : c) { qc += job.quantum_seconds(); cc += job.classical_seconds(); }
  EXPECT_GT(qa, 3.0 * ca);       // pattern A: quantum dominant
  EXPECT_GT(cb, 5.0 * qb);       // pattern B: classical dominant
  EXPECT_LT(std::abs(qc - cc) / (qc + cc), 0.5);  // pattern C: comparable
}

TEST(Patterns, ArrivalsAreOrderedAndSpread) {
  common::Rng rng(2);
  PatternOptions options;
  options.count = 30;
  options.arrival_window_seconds = 300;
  const auto jobs = generate(Pattern::kBalanced, options, rng);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_at_seconds, jobs[i - 1].submit_at_seconds);
  }
  EXPECT_GT(jobs.back().submit_at_seconds, 50.0);
}

TEST(Patterns, MixedClassesSortedByArrival) {
  common::Rng rng(3);
  const auto jobs =
      generate_mixed_classes(Pattern::kBalanced, 5, 5, 5, 100.0, rng);
  ASSERT_EQ(jobs.size(), 15u);
  std::size_t production = 0;
  for (const auto& job : jobs) {
    if (job.job_class == JobClass::kProduction) ++production;
  }
  EXPECT_EQ(production, 5u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_at_seconds, jobs[i - 1].submit_at_seconds);
  }
}

TEST(Patterns, HintsMatchTable1) {
  EXPECT_STREQ(scheduler_hint(Pattern::kHighQcLowCc), "sequential QPU queue");
  EXPECT_STREQ(scheduler_hint(Pattern::kLowQcHighCc),
               "interleave to kill QPU idle");
  EXPECT_STREQ(scheduler_hint(Pattern::kBalanced),
               "fine-grained orchestration");
}

// ---- Co-simulation ----------------------------------------------------------

CosimOptions shared_options() {
  CosimOptions options;
  options.access = QpuAccess::kDaemonShared;
  options.queue_policy.non_production_batch_shots = 0;
  return options;
}

TEST(Cosim, CompletesAllJobs) {
  common::Rng rng(7);
  PatternOptions pattern_options;
  pattern_options.count = 10;
  const auto jobs = generate(Pattern::kBalanced, pattern_options, rng);
  const auto metrics = run_cosim(shared_options(), jobs);
  EXPECT_EQ(metrics.jobs_completed, 10u);
  EXPECT_GT(metrics.makespan_seconds, 0.0);
  EXPECT_GT(metrics.qpu_busy_seconds, 0.0);
  EXPECT_LE(metrics.qpu_utilization, 1.0 + 1e-9);
}

TEST(Cosim, SharedModeBeatsExclusiveOnClassicalHeavyLoad) {
  // The headline claim (E1): the second scheduling layer removes the QPU
  // idle time that exclusive allocation wastes on CC-heavy jobs.
  common::Rng rng(11);
  PatternOptions pattern_options;
  pattern_options.count = 12;
  pattern_options.arrival_window_seconds = 100;
  const auto jobs = generate(Pattern::kLowQcHighCc, pattern_options, rng);

  CosimOptions exclusive = shared_options();
  exclusive.access = QpuAccess::kExclusiveSlurm;
  const auto one_level = run_cosim(exclusive, jobs);
  const auto two_level = run_cosim(shared_options(), jobs);

  EXPECT_EQ(one_level.jobs_completed, 12u);
  EXPECT_EQ(two_level.jobs_completed, 12u);
  // Two-level finishes sooner and keeps the QPU busier relative to its
  // exposure window.
  EXPECT_LT(two_level.makespan_seconds, one_level.makespan_seconds);
}

TEST(Cosim, QpuBusyAccountingIsConsistent) {
  common::Rng rng(13);
  PatternOptions pattern_options;
  pattern_options.count = 6;
  const auto jobs = generate(Pattern::kHighQcLowCc, pattern_options, rng);
  const auto metrics = run_cosim(shared_options(), jobs);
  // Busy time = quantum seconds + setup per dispatch.
  double quantum_total = 0;
  for (const auto& job : jobs) quantum_total += job.quantum_seconds();
  const double expected =
      quantum_total + 2.0 * static_cast<double>(metrics.qpu_dispatches);
  EXPECT_NEAR(metrics.qpu_busy_seconds, expected,
              1.0 + static_cast<double>(jobs.size()));  // shot rounding
}

TEST(Cosim, PriorityPolicyProtectsProduction) {
  // Production quantum waits must shrink when class priority + small
  // batches are on (E2).
  common::Rng rng(17);
  const auto jobs = generate_mixed_classes(Pattern::kHighQcLowCc,
                                           4, 6, 10, 60.0, rng);
  CosimOptions fifo = shared_options();
  fifo.queue_policy.class_priority = false;
  fifo.queue_policy.non_production_batch_shots = 0;
  const auto baseline = run_cosim(fifo, jobs);

  CosimOptions priority = shared_options();
  priority.queue_policy.class_priority = true;
  priority.queue_policy.non_production_batch_shots = 10;
  const auto protected_run = run_cosim(priority, jobs);

  const auto base_wait =
      baseline.by_class.at(JobClass::kProduction).mean_quantum_wait_seconds;
  const auto prio_wait = protected_run.by_class.at(JobClass::kProduction)
                             .mean_quantum_wait_seconds;
  EXPECT_LT(prio_wait, base_wait);
}

TEST(Cosim, MalleabilityImprovesUsefulCpuShare) {
  // E6: releasing CPUs during quantum waits lets other jobs use them.
  common::Rng rng(19);
  PatternOptions pattern_options;
  pattern_options.count = 16;
  pattern_options.arrival_window_seconds = 50;
  const auto jobs = generate(Pattern::kBalanced, pattern_options, rng);

  CosimOptions rigid = shared_options();
  rigid.nodes = 2;  // scarce classical nodes so holding them hurts
  rigid.cpus_per_node = 16;
  const auto fixed = run_cosim(rigid, jobs);

  CosimOptions malleable = rigid;
  malleable.malleable = true;
  const auto shrunk = run_cosim(malleable, jobs);

  EXPECT_EQ(fixed.jobs_completed, shrunk.jobs_completed);
  // Malleable jobs hold fewer cpu-seconds for the same useful work.
  const double fixed_efficiency =
      fixed.cpu_useful_seconds / std::max(fixed.cpu_held_seconds, 1e-9);
  const double malleable_efficiency =
      shrunk.cpu_useful_seconds / std::max(shrunk.cpu_held_seconds, 1e-9);
  EXPECT_GT(malleable_efficiency, fixed_efficiency);
}

TEST(Cosim, ShotRateSpeedsUpQuantumService) {
  common::Rng rng(23);
  PatternOptions pattern_options;
  pattern_options.count = 8;
  const auto jobs = generate(Pattern::kHighQcLowCc, pattern_options, rng);
  CosimOptions slow = shared_options();
  slow.shot_rate_hz = 1.0;
  CosimOptions fast = shared_options();
  fast.shot_rate_hz = 100.0;
  const auto at_1hz = run_cosim(slow, jobs);
  const auto at_100hz = run_cosim(fast, jobs);
  // At 100 Hz the same shot counts take ~1/100 the service time.
  EXPECT_LT(at_100hz.qpu_busy_seconds, at_1hz.qpu_busy_seconds);
  EXPECT_LE(at_100hz.makespan_seconds, at_1hz.makespan_seconds);
}


TEST(Cosim, NetworkLatencyDelaysJobsNotTheQpu) {
  // Loose coupling: WAN RTT stretches per-job turnaround but the QPU keeps
  // serving other jobs during the gaps, so busy time is unchanged.
  common::Rng rng(29);
  PatternOptions pattern_options;
  pattern_options.count = 8;
  const auto jobs = generate(Pattern::kBalanced, pattern_options, rng);
  CosimOptions local = shared_options();
  CosimOptions remote = shared_options();
  remote.network_roundtrip_seconds = 5.0;
  const auto near = run_cosim(local, jobs);
  const auto far = run_cosim(remote, jobs);
  EXPECT_EQ(near.jobs_completed, far.jobs_completed);
  EXPECT_NEAR(near.qpu_busy_seconds, far.qpu_busy_seconds, 1e-6);
  const double near_turnaround =
      near.by_class.at(JobClass::kProduction).mean_turnaround_seconds;
  const double far_turnaround =
      far.by_class.at(JobClass::kProduction).mean_turnaround_seconds;
  EXPECT_GT(far_turnaround, near_turnaround + 5.0);
}

TEST(Cosim, ExclusiveModeCountsSlurmWaitAsQuantumWait) {
  // In one-level mode the QPU wait IS the Slurm pending wait; the metric
  // must reflect it so one-level and two-level waits are comparable.
  common::Rng rng(31);
  PatternOptions pattern_options;
  pattern_options.count = 10;
  pattern_options.arrival_window_seconds = 1.0;  // all at once: contention
  const auto jobs = generate(Pattern::kHighQcLowCc, pattern_options, rng);
  CosimOptions exclusive = shared_options();
  exclusive.access = QpuAccess::kExclusiveSlurm;
  const auto metrics = run_cosim(exclusive, jobs);
  EXPECT_GT(metrics.by_class.at(JobClass::kProduction)
                .mean_quantum_wait_seconds,
            10.0);
}

TEST(Cosim, DeterministicForFixedSeed) {
  common::Rng rng_a(31), rng_b(31);
  PatternOptions pattern_options;
  pattern_options.count = 5;
  const auto jobs_a = generate(Pattern::kBalanced, pattern_options, rng_a);
  const auto jobs_b = generate(Pattern::kBalanced, pattern_options, rng_b);
  const auto m_a = run_cosim(shared_options(), jobs_a);
  const auto m_b = run_cosim(shared_options(), jobs_b);
  EXPECT_DOUBLE_EQ(m_a.makespan_seconds, m_b.makespan_seconds);
  EXPECT_DOUBLE_EQ(m_a.qpu_busy_seconds, m_b.qpu_busy_seconds);
}

}  // namespace
}  // namespace qcenv::workload
