// HybridRuntime: local and daemon modes, portability validation, executor.
#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "qrmi/local_emulator.hpp"
#include "runtime/executor.hpp"
#include "runtime/runtime.hpp"

namespace qcenv::runtime {
namespace {

using common::Config;
using common::Json;
using quantum::AtomRegister;
using quantum::Payload;
using quantum::Sequence;
using quantum::Waveform;

Payload small_payload(std::uint64_t shots = 40) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  return Payload::from_sequence(seq, shots);
}

qrmi::ResourceRegistry make_registry() {
  qrmi::ResourceRegistry registry;
  registry.add("emu-sv", qrmi::LocalEmulatorQrmi::create("emu-sv", "sv").value());
  registry.add("emu-mock",
               qrmi::LocalEmulatorQrmi::create("emu-mock", "mps-mock").value());
  return registry;
}

TEST(ResolveResource, PrecedenceChain) {
  Config config;
  ASSERT_TRUE(config.load_string("QCENV_QPU=from-config\n").ok());
  RuntimeOptions options;
  EXPECT_EQ(resolve_resource_name(options, config).value(), "from-config");
  options.resource = "explicit";
  EXPECT_EQ(resolve_resource_name(options, config).value(), "explicit");

  Config qrmi_only;
  ASSERT_TRUE(qrmi_only.load_string("QRMI_RESOURCE_ID=via-qrmi\n").ok());
  options.resource.clear();
  EXPECT_EQ(resolve_resource_name(options, qrmi_only).value(), "via-qrmi");

  Config empty;
  EXPECT_FALSE(resolve_resource_name(options, empty).ok());
}

TEST(HybridRuntimeLocal, RunsOnRegistryResource) {
  const auto registry = make_registry();
  RuntimeOptions options;
  options.resource = "emu-sv";
  auto runtime = HybridRuntime::connect_local(&registry, options);
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ(runtime.value()->mode(), "local");
  EXPECT_EQ(runtime.value()->resource_name(), "emu-sv");
  auto samples = runtime.value()->run(small_payload(33));
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().total_shots(), 33u);
}

TEST(HybridRuntimeLocal, SwitchingResourceIsConfigOnly) {
  // The Figure-1 property: identical code path, different --qpu value.
  const auto registry = make_registry();
  for (const std::string resource : {"emu-sv", "emu-mock"}) {
    RuntimeOptions options;
    options.resource = resource;
    auto runtime = HybridRuntime::connect_local(&registry, options);
    ASSERT_TRUE(runtime.ok());
    auto samples = runtime.value()->run(small_payload(10));
    ASSERT_TRUE(samples.ok()) << resource;
    EXPECT_EQ(samples.value().total_shots(), 10u);
  }
}

TEST(HybridRuntimeLocal, UnknownResourceFailsFast) {
  const auto registry = make_registry();
  RuntimeOptions options;
  options.resource = "fresnel-prod";
  EXPECT_FALSE(HybridRuntime::connect_local(&registry, options).ok());
}

TEST(HybridRuntimeLocal, SubmitWaitCancelSurface) {
  const auto registry = make_registry();
  RuntimeOptions options;
  options.resource = "emu-sv";
  auto runtime = HybridRuntime::connect_local(&registry, options);
  ASSERT_TRUE(runtime.ok());
  auto handle = runtime.value()->submit(small_payload(5));
  ASSERT_TRUE(handle.ok());
  auto samples = runtime.value()->wait(handle.value());
  ASSERT_TRUE(samples.ok());
}

TEST(Portability, ReportCompatibleProgram) {
  const auto spec = quantum::DeviceSpec::analog_default();
  const auto report = validate_payload(small_payload(), spec, 0);
  EXPECT_TRUE(report.compatible);
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.device, "sim-analog");
}

TEST(Portability, DeviceLimitViolationIsError) {
  const auto spec = quantum::DeviceSpec::analog_default();
  Sequence seq(AtomRegister::linear_chain(2, 2.0));  // too close
  seq.add_pulse(quantum::Pulse{Waveform::constant(200, 2.0),
                               Waveform::constant(200, 0.0), 0.0});
  const auto report =
      validate_payload(Payload::from_sequence(seq, 10), spec, 0);
  EXPECT_FALSE(report.compatible);
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_NE(report.to_string().find("INCOMPATIBLE"), std::string::npos);
}

TEST(Portability, DegradedCalibrationWarns) {
  auto spec = quantum::DeviceSpec::analog_default();
  spec.calibration.dephasing_rate = 0.2;  // badly drifted
  spec.calibration.readout_p10 = 0.2;
  const auto report = validate_payload(small_payload(), spec, 0);
  EXPECT_TRUE(report.compatible);  // warnings only
  EXPECT_GE(report.warning_count(), 1u);
}

TEST(Portability, StaleCalibrationWarns) {
  auto spec = quantum::DeviceSpec::analog_default();
  spec.calibration.timestamp_ns = common::kSecond;  // ancient snapshot
  const common::TimeNs now = 10LL * 3600 * common::kSecond;
  const auto report = validate_payload(small_payload(), spec, now);
  EXPECT_GE(report.warning_count(), 1u);
  EXPECT_NE(report.to_string().find("refetch"), std::string::npos);
}

TEST(HybridRuntimeDaemon, EndToEndThroughRest) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  common::WallClock clock;
  daemon::DaemonOptions daemon_options;
  daemon::MiddlewareDaemon middleware(daemon_options, resource, nullptr,
                                      &clock);
  auto port = middleware.start();
  ASSERT_TRUE(port.ok());

  RuntimeOptions options;
  options.user = "alice";
  options.job_class = daemon::JobClass::kTest;
  options.poll_interval = common::kMillisecond;
  auto runtime = HybridRuntime::connect_daemon(port.value(), options);
  ASSERT_TRUE(runtime.ok()) << runtime.error().to_string();
  EXPECT_EQ(runtime.value()->mode(), "daemon");

  auto spec = runtime.value()->device();
  ASSERT_TRUE(spec.ok());
  auto report = runtime.value()->validate(small_payload());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().compatible);

  auto samples = runtime.value()->run(small_payload(25));
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 25u);
}

TEST(HybridRuntimeDaemon, ConnectFailsWithoutDaemon) {
  RuntimeOptions options;
  auto runtime = HybridRuntime::connect_daemon(1, options);  // port 1: nobody
  EXPECT_FALSE(runtime.ok());
}

TEST(HybridExecutorTest, OptimizesSimpleLandscape) {
  // Cost = excitation probability of qubit 0 after an RX(theta): minimal at
  // theta = 0 (mod 2pi). Start at 2.0 and let the loop walk down.
  const auto registry = make_registry();
  RuntimeOptions options;
  options.resource = "emu-sv";
  auto runtime = HybridRuntime::connect_local(&registry, options);
  ASSERT_TRUE(runtime.ok());
  HybridExecutor executor(runtime.value().get());

  ParametricProgram program = [](const std::vector<double>& params) {
    quantum::Circuit c(1);
    c.rx(0, params[0]);
    return Payload::from_circuit(c, 400);
  };
  CostFunction cost = [](const quantum::Samples& samples) {
    return samples.marginal(0);
  };
  // Simple fixed-pattern strategy: golden-section-ish shrink around best.
  ParameterStrategy strategy =
      [](const std::vector<std::vector<double>>& params,
         const std::vector<double>& costs) -> std::vector<double> {
    if (params.size() >= 12) return {};
    std::size_t best = 0;
    for (std::size_t i = 1; i < costs.size(); ++i) {
      if (costs[i] < costs[best]) best = i;
    }
    const double step = 1.2 / static_cast<double>(params.size());
    return {params[best][0] - step};
  };

  auto loop = executor.optimize(program, cost, strategy, {2.0});
  ASSERT_TRUE(loop.ok());
  EXPECT_GE(loop.value().iterations.size(), 2u);
  EXPECT_LT(loop.value().best().cost, 0.3);
  EXPECT_LT(loop.value().best().parameters[0], 2.0);
}

TEST(HybridExecutorTest, EvaluateSingleShot) {
  const auto registry = make_registry();
  RuntimeOptions options;
  options.resource = "emu-sv";
  auto runtime = HybridRuntime::connect_local(&registry, options);
  ASSERT_TRUE(runtime.ok());
  HybridExecutor executor(runtime.value().get());
  auto result = executor.evaluate(
      [](const std::vector<double>&) {
        quantum::Circuit c(1);
        c.x(0);
        return Payload::from_circuit(c, 100);
      },
      [](const quantum::Samples& s) { return 1.0 - s.marginal(0); }, {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().cost, 0.0, 1e-9);
}

}  // namespace
}  // namespace qcenv::runtime
