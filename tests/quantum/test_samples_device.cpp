// Samples statistics, observables, device specs, payload round-trips.
#include <gtest/gtest.h>

#include "quantum/device.hpp"
#include "quantum/observable.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"

namespace qcenv::quantum {
namespace {

Samples make_samples() {
  Samples s(2);
  s.record("00", 400);
  s.record("11", 400);
  s.record("01", 100);
  s.record("10", 100);
  return s;
}

TEST(SamplesTest, CountsAndProbabilities) {
  const Samples s = make_samples();
  EXPECT_EQ(s.total_shots(), 1000u);
  EXPECT_DOUBLE_EQ(s.probability("00"), 0.4);
  EXPECT_DOUBLE_EQ(s.probability("umm"), 0.0);
}

TEST(SamplesTest, Marginals) {
  const Samples s = make_samples();
  EXPECT_DOUBLE_EQ(s.marginal(0), 0.5);  // qubit 0 is '1' in "11"+"10"
  EXPECT_DOUBLE_EQ(s.marginal(1), 0.5);
  EXPECT_DOUBLE_EQ(s.z_expectation(0), 0.0);
}

TEST(SamplesTest, ZZCorrelation) {
  const Samples s = make_samples();
  // P(same) - P(diff) = 0.8 - 0.2.
  EXPECT_NEAR(s.zz_correlation(0, 1), 0.6, 1e-12);
}

TEST(SamplesTest, MeanExcitationFraction) {
  Samples s(2);
  s.record("11", 10);
  s.record("00", 10);
  EXPECT_DOUBLE_EQ(s.mean_excitation_fraction(), 0.5);
}

TEST(SamplesTest, TotalVariationDistance) {
  Samples a(1), b(1);
  a.record("0", 100);
  b.record("1", 100);
  EXPECT_DOUBLE_EQ(Samples::total_variation_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Samples::total_variation_distance(a, a), 0.0);
  Samples c(1);
  c.record("0", 50);
  c.record("1", 50);
  EXPECT_DOUBLE_EQ(Samples::total_variation_distance(a, c), 0.5);
}

TEST(SamplesTest, MergeAccumulates) {
  Samples a(2), b(2);
  a.record("00", 5);
  b.record("00", 3);
  b.record("11", 2);
  ASSERT_TRUE(a.merge(b).ok());
  EXPECT_EQ(a.total_shots(), 10u);
  EXPECT_EQ(a.counts().at("00"), 8u);
}

TEST(SamplesTest, MergeRejectsWidthMismatch) {
  Samples a(2), b(3);
  a.record("00", 1);
  b.record("000", 1);
  EXPECT_FALSE(a.merge(b).ok());
}

TEST(SamplesTest, JsonRoundTripWithMetadata) {
  Samples s = make_samples();
  common::Json meta = common::Json::object();
  meta["backend"] = "qpu:test";
  s.set_metadata(meta);
  auto parsed = Samples::from_json(s.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().counts(), s.counts());
  EXPECT_EQ(parsed.value().metadata().at_or_null("backend").as_string(),
            "qpu:test");
}

// ---- Observables ------------------------------------------------------------

TEST(ObservableTest, DiagonalDetection) {
  Observable obs(3);
  ASSERT_TRUE(obs.add_term(1.0, "ZIZ").ok());
  EXPECT_TRUE(obs.is_diagonal());
  ASSERT_TRUE(obs.add_term(0.5, "XII").ok());
  EXPECT_FALSE(obs.is_diagonal());
}

TEST(ObservableTest, RejectsBadTerms) {
  Observable obs(2);
  EXPECT_FALSE(obs.add_term(1.0, "Z").ok());     // wrong length
  EXPECT_FALSE(obs.add_term(1.0, "ZQ").ok());    // bad character
}

TEST(ObservableTest, ExpectationFromSamples) {
  Observable zz(2);
  ASSERT_TRUE(zz.add_term(1.0, "ZZ").ok());
  auto value = zz.expectation_from_samples(make_samples());
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), 0.6, 1e-12);
}

TEST(ObservableTest, NonDiagonalNeedsStateBackend) {
  Observable xx(2);
  ASSERT_TRUE(xx.add_term(1.0, "XX").ok());
  EXPECT_FALSE(xx.expectation_from_samples(make_samples()).ok());
}

TEST(ObservableTest, StaggeredMagnetization) {
  const Observable obs = Observable::staggered_magnetization(4);
  Samples neel(4);
  neel.record("1010", 100);  // qubits 0,2 excited
  auto value = obs.expectation_from_samples(neel);
  ASSERT_TRUE(value.ok());
  // qubit 0: +w * (-1) [excited], qubit1: -w * (+1), qubit2: +w*(-1),
  // qubit3: -w*(+1) => sum = -1.
  EXPECT_NEAR(value.value(), -1.0, 1e-12);
}

// ---- Device specs -----------------------------------------------------------

TEST(DeviceSpecTest, AnalogDefaultIsSane) {
  const DeviceSpec spec = DeviceSpec::analog_default();
  EXPECT_FALSE(spec.supports_digital);
  EXPECT_DOUBLE_EQ(spec.shot_rate_hz, 1.0);
  // Blockade radius for C6=5420503, Omega=4pi: (C6/Omega)^(1/6) ~ 8.7 um.
  EXPECT_NEAR(spec.blockade_radius(), 8.69, 0.05);
}

TEST(DeviceSpecTest, ValidateSequenceLimits) {
  const DeviceSpec spec = DeviceSpec::analog_default();

  Sequence ok_seq(AtomRegister::linear_chain(4, 6.0));
  ok_seq.add_pulse(Pulse{Waveform::constant(500, 3.0),
                         Waveform::constant(500, 0.0), 0.0});
  EXPECT_TRUE(spec.validate(ok_seq).ok());

  Sequence too_close(AtomRegister::linear_chain(2, 2.0));
  too_close.add_pulse(Pulse{Waveform::constant(500, 3.0),
                            Waveform::constant(500, 0.0), 0.0});
  EXPECT_FALSE(spec.validate(too_close).ok());

  Sequence too_strong(AtomRegister::linear_chain(2, 6.0));
  too_strong.add_pulse(Pulse{Waveform::constant(500, 100.0),
                             Waveform::constant(500, 0.0), 0.0});
  EXPECT_FALSE(spec.validate(too_strong).ok());

  Sequence too_long(AtomRegister::linear_chain(2, 6.0));
  too_long.add_pulse(Pulse{Waveform::constant(200'000, 3.0),
                           Waveform::constant(200'000, 0.0), 0.0});
  EXPECT_FALSE(spec.validate(too_long).ok());

  Sequence too_wide(AtomRegister::linear_chain(30, 6.0));  // radius 87 um
  too_wide.add_pulse(Pulse{Waveform::constant(500, 3.0),
                           Waveform::constant(500, 0.0), 0.0});
  EXPECT_FALSE(spec.validate(too_wide).ok());
}

TEST(DeviceSpecTest, AnalogDeviceRejectsCircuits) {
  const DeviceSpec spec = DeviceSpec::analog_default();
  Circuit c(2);
  c.h(0);
  EXPECT_FALSE(spec.validate(c).ok());
  EXPECT_TRUE(DeviceSpec::emulator_default().validate(c).ok());
}

TEST(DeviceSpecTest, JsonRoundTrip) {
  DeviceSpec spec = DeviceSpec::analog_default();
  spec.calibration.rabi_scale = 0.97;
  spec.calibration.timestamp_ns = 12345;
  auto parsed = DeviceSpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, spec.name);
  EXPECT_DOUBLE_EQ(parsed.value().calibration.rabi_scale, 0.97);
  EXPECT_EQ(parsed.value().calibration.timestamp_ns, 12345);
}

TEST(CalibrationTest, FidelityDegradesWithErrors) {
  CalibrationSnapshot nominal;
  CalibrationSnapshot bad = nominal;
  bad.rabi_scale = 0.9;
  bad.dephasing_rate = 0.05;
  bad.readout_p10 = 0.1;
  EXPECT_GT(nominal.fidelity_estimate(), bad.fidelity_estimate());
  EXPECT_GT(bad.fidelity_estimate(), 0.0);
  EXPECT_LE(nominal.fidelity_estimate(), 1.0);
}

// ---- Payloads ---------------------------------------------------------------

TEST(PayloadTest, AnalogRoundTrip) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(100, 1.0),
                      Waveform::constant(100, 0.0), 0.0});
  Payload payload = Payload::from_sequence(seq, 250);
  payload.metadata()["sdk"] = "pulser";
  auto parsed = Payload::deserialize(payload.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind(), PayloadKind::kAnalog);
  EXPECT_EQ(parsed.value().shots(), 250u);
  EXPECT_EQ(parsed.value().num_qubits(), 2u);
  EXPECT_EQ(parsed.value().sequence().value(), seq);
  EXPECT_EQ(parsed.value().metadata().at_or_null("sdk").as_string(), "pulser");
}

TEST(PayloadTest, DigitalRoundTrip) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  const Payload payload = Payload::from_circuit(c, 99);
  auto parsed = Payload::deserialize(payload.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind(), PayloadKind::kDigital);
  EXPECT_EQ(parsed.value().circuit().value(), c);
}

TEST(PayloadTest, HashInvariantToShotsAndMetadata) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(100, 1.0),
                      Waveform::constant(100, 0.0), 0.0});
  Payload a = Payload::from_sequence(seq, 100);
  Payload b = Payload::from_sequence(seq, 5000);
  b.metadata()["note"] = "different metadata";
  EXPECT_EQ(a.program_hash(), b.program_hash());

  Sequence other(AtomRegister::linear_chain(2, 7.0));
  other.add_pulse(Pulse{Waveform::constant(100, 1.0),
                        Waveform::constant(100, 0.0), 0.0});
  EXPECT_NE(a.program_hash(),
            Payload::from_sequence(other, 100).program_hash());
}

TEST(PayloadTest, KindMismatchErrors) {
  Circuit c(1);
  c.x(0);
  const Payload payload = Payload::from_circuit(c, 10);
  EXPECT_FALSE(payload.sequence().ok());
  EXPECT_TRUE(payload.circuit().ok());
}

TEST(PayloadTest, DeserializeRejectsCorruptInput) {
  EXPECT_FALSE(Payload::deserialize("not json").ok());
  EXPECT_FALSE(Payload::deserialize(R"({"version":"other.v9"})").ok());
  // Valid envelope, corrupt body.
  EXPECT_FALSE(Payload::deserialize(
                   R"({"version":"qcenv.payload.v1","kind":"analog",)"
                   R"("body":{"bogus":1},"shots":10})")
                   .ok());
  // Non-positive shots.
  EXPECT_FALSE(Payload::deserialize(
                   R"({"version":"qcenv.payload.v1","kind":"digital",)"
                   R"("body":{"num_qubits":1,"gates":[]},"shots":0})")
                   .ok());
}

}  // namespace
}  // namespace qcenv::quantum
