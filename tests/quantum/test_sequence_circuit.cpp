// Analog sequences and gate circuits: validation, sampling, round-trips.
#include <gtest/gtest.h>

#include "quantum/circuit.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::quantum {
namespace {

Sequence valid_sequence() {
  Sequence seq(AtomRegister::linear_chain(3, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(200, 3.0),
                      Waveform::ramp(200, -1.0, 1.0), 0.25});
  seq.add_pulse(Pulse{Waveform::blackman(300, 2.0),
                      Waveform::constant(300, 0.5), 0.0});
  return seq;
}

TEST(SequenceTest, DurationSumsPulses) {
  EXPECT_EQ(valid_sequence().duration(), 500);
}

TEST(SequenceTest, ValidSequencePasses) {
  EXPECT_TRUE(valid_sequence().validate().ok());
}

TEST(SequenceTest, RejectsEmptyRegister) {
  Sequence seq{AtomRegister{}};
  EXPECT_FALSE(seq.validate().ok());
}

TEST(SequenceTest, RejectsMismatchedDurations) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(100, 1.0),
                      Waveform::constant(200, 0.0), 0.0});
  EXPECT_FALSE(seq.validate().ok());
}

TEST(SequenceTest, RejectsNegativeAmplitude) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(Pulse{Waveform::ramp(100, -1.0, 1.0),
                      Waveform::constant(100, 0.0), 0.0});
  EXPECT_FALSE(seq.validate().ok());
}

TEST(SequenceTest, DetuningMapValidation) {
  Sequence seq(AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(100, 1.0),
                      Waveform::constant(100, 0.0), 0.0});
  DetuningMap map;
  map.weights = {0.5};  // wrong size
  map.detuning = Waveform::constant(100, -1.0);
  seq.set_detuning_map(map);
  EXPECT_FALSE(seq.validate().ok());

  map.weights = {0.5, 1.5};  // out of range
  seq.set_detuning_map(map);
  EXPECT_FALSE(seq.validate().ok());

  map.weights = {0.5, 1.0};
  map.detuning = Waveform::constant(100, +1.0);  // positive not allowed
  seq.set_detuning_map(map);
  EXPECT_FALSE(seq.validate().ok());

  map.detuning = Waveform::constant(100, -1.0);
  seq.set_detuning_map(map);
  EXPECT_TRUE(seq.validate().ok());
}

TEST(SequenceTest, SamplingConcatenatesChannels) {
  const auto grid = valid_sequence().sample(10);
  EXPECT_EQ(grid.steps(), 50u);
  EXPECT_EQ(grid.dt_ns, 10);
  // First pulse phase then second pulse phase.
  EXPECT_DOUBLE_EQ(grid.phase[0], 0.25);
  EXPECT_DOUBLE_EQ(grid.phase[25], 0.0);
  EXPECT_NEAR(grid.omega[5], 3.0, 1e-9);
}

TEST(SequenceTest, SamplingWithDetuningMapScalesPerQubit) {
  Sequence seq(AtomRegister::linear_chain(3, 6.0));
  seq.add_pulse(Pulse{Waveform::constant(100, 1.0),
                      Waveform::constant(100, 0.0), 0.0});
  DetuningMap map;
  map.weights = {1.0, 0.5, 0.0};
  map.detuning = Waveform::constant(100, -8.0);
  seq.set_detuning_map(map);
  const auto grid = seq.sample(10);
  ASSERT_EQ(grid.delta_local.size(), 3u);
  EXPECT_NEAR(grid.delta_local[0][0], -8.0, 1e-9);
  EXPECT_NEAR(grid.delta_local[1][0], -4.0, 1e-9);
  EXPECT_NEAR(grid.delta_local[2][0], 0.0, 1e-9);
}

TEST(SequenceTest, JsonRoundTrip) {
  Sequence seq = valid_sequence();
  DetuningMap map;
  map.weights = {1.0, 0.0, 0.5};
  map.detuning = Waveform::constant(500, -2.0);
  seq.set_detuning_map(map);
  auto parsed = Sequence::from_json(seq.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), seq);
  EXPECT_TRUE(parsed.value().has_detuning_map());
}

// ---- Circuits -------------------------------------------------------------

TEST(CircuitTest, BuilderChainsGates) {
  Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.5).cz(1, 2);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.two_qubit_gate_count(), 2u);
  EXPECT_TRUE(c.validate().ok());
}

TEST(CircuitTest, DepthComputation) {
  Circuit c(3);
  c.h(0).h(1).h(2);          // depth 1 (parallel)
  c.cx(0, 1);                // depth 2
  c.cx(1, 2);                // depth 3
  c.x(0);                    // depth 3 (parallel with cx(1,2))
  EXPECT_EQ(c.depth(), 3u);
}

TEST(CircuitTest, ValidationCatchesBadOperands) {
  Circuit out_of_range(2);
  out_of_range.x(5);
  EXPECT_FALSE(out_of_range.validate().ok());

  Circuit duplicate(2);
  duplicate.add(GateKind::kCz, {1, 1});
  EXPECT_FALSE(duplicate.validate().ok());

  Circuit wrong_arity(2);
  wrong_arity.add(GateKind::kCx, {0});
  EXPECT_FALSE(wrong_arity.validate().ok());

  Circuit zero_qubits(0);
  EXPECT_FALSE(zero_qubits.validate().ok());
}

TEST(CircuitTest, JsonRoundTrip) {
  Circuit c(4);
  c.h(0).t(1).rx(2, 1.25).cx(0, 3).swap(1, 2).phase(3, -0.5);
  auto parsed = Circuit::from_json(c.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), c);
}

TEST(CircuitTest, GateNamesRoundTrip) {
  const GateKind kinds[] = {GateKind::kI,   GateKind::kX,    GateKind::kY,
                            GateKind::kZ,   GateKind::kH,    GateKind::kS,
                            GateKind::kSdg, GateKind::kT,    GateKind::kTdg,
                            GateKind::kRx,  GateKind::kRy,   GateKind::kRz,
                            GateKind::kPhase, GateKind::kCz, GateKind::kCx,
                            GateKind::kSwap};
  for (const GateKind kind : kinds) {
    auto back = gate_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(gate_kind_from_string("toffoli").ok());
}

TEST(CircuitTest, ParameterizedGatesKeepParam) {
  Circuit c(1);
  c.rx(0, 0.75);
  auto parsed = Circuit::from_json(c.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().gates()[0].param, 0.75);
}

}  // namespace
}  // namespace qcenv::quantum
