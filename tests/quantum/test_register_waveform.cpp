// Atom registers, lattices and waveform algebra.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "quantum/register.hpp"
#include "quantum/waveform.hpp"

namespace qcenv::quantum {
namespace {

TEST(Register, LinearChainGeometry) {
  const auto reg = AtomRegister::linear_chain(5, 6.0);
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_DOUBLE_EQ(reg.distance(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(reg.distance(0, 4), 24.0);
  EXPECT_DOUBLE_EQ(reg.min_distance(), 6.0);
}

TEST(Register, RingHasUniformNeighbourSpacing) {
  const auto reg = AtomRegister::ring(8, 5.0);
  ASSERT_EQ(reg.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(reg.distance(i, (i + 1) % 8), 5.0, 1e-9);
  }
  EXPECT_NEAR(reg.min_distance(), 5.0, 1e-9);
}

TEST(Register, SquareLattice) {
  const auto reg = AtomRegister::square_lattice(3, 4, 5.0);
  ASSERT_EQ(reg.size(), 12u);
  EXPECT_DOUBLE_EQ(reg.min_distance(), 5.0);
  // Diagonal neighbours are sqrt(2) * spacing apart.
  EXPECT_NEAR(reg.distance(0, 5), 5.0 * std::numbers::sqrt2, 1e-9);
}

TEST(Register, TriangularLatticeEquilateral) {
  const auto reg = AtomRegister::triangular_lattice(2, 2, 4.0);
  ASSERT_EQ(reg.size(), 4u);
  // Nearest neighbours in adjacent rows are also at the lattice spacing.
  EXPECT_NEAR(reg.distance(0, 2), 4.0, 1e-9);
}

TEST(Register, CentroidRadius) {
  const auto reg = AtomRegister::linear_chain(3, 10.0);  // x = 0, 10, 20
  EXPECT_NEAR(reg.max_radius_from_centroid(), 10.0, 1e-9);
}

TEST(Register, JsonRoundTrip) {
  const auto reg = AtomRegister::triangular_lattice(2, 3, 5.5);
  auto parsed = AtomRegister::from_json(reg.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), reg);
}

TEST(Register, FromJsonRejectsMalformed) {
  EXPECT_FALSE(AtomRegister::from_json(common::Json("x")).ok());
  auto bad = common::Json::array({common::Json::array({1.0})});
  EXPECT_FALSE(AtomRegister::from_json(bad).ok());
}

TEST(Register, EmptyRegisterEdgeCases) {
  AtomRegister reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(std::isinf(reg.min_distance()));
  EXPECT_DOUBLE_EQ(reg.max_radius_from_centroid(), 0.0);
}

// ---- Waveforms ------------------------------------------------------------

TEST(WaveformTest, ConstantValue) {
  const auto wf = Waveform::constant(100, 2.5);
  EXPECT_EQ(wf.duration(), 100);
  EXPECT_DOUBLE_EQ(wf.value_at(0), 2.5);
  EXPECT_DOUBLE_EQ(wf.value_at(99), 2.5);
  EXPECT_DOUBLE_EQ(wf.max_value(), 2.5);
  EXPECT_DOUBLE_EQ(wf.min_value(), 2.5);
}

TEST(WaveformTest, RampEndpoints) {
  const auto wf = Waveform::ramp(1000, -4.0, 8.0);
  EXPECT_DOUBLE_EQ(wf.value_at(0), -4.0);
  EXPECT_NEAR(wf.value_at(500), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(wf.value_at(1000), 8.0);
  EXPECT_DOUBLE_EQ(wf.max_value(), 8.0);
  EXPECT_DOUBLE_EQ(wf.min_value(), -4.0);
}

TEST(WaveformTest, BlackmanVanishesAtEdgesPeaksAtCenter) {
  const auto wf = Waveform::blackman(1000, std::numbers::pi);
  EXPECT_NEAR(wf.value_at(0), 0.0, 1e-9);
  EXPECT_NEAR(wf.value_at(1000), 0.0, 1e-9);
  EXPECT_GT(wf.value_at(500), wf.value_at(250));
  EXPECT_NEAR(wf.integral(), std::numbers::pi, 1e-9);
}

TEST(WaveformTest, InterpolatedHitsNodes) {
  const auto wf = Waveform::interpolated(300, {0.0, 6.0, 3.0});
  EXPECT_DOUBLE_EQ(wf.value_at(0), 0.0);
  EXPECT_NEAR(wf.value_at(150), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(wf.value_at(300), 3.0);
  EXPECT_DOUBLE_EQ(wf.max_value(), 6.0);
}

TEST(WaveformTest, CompositeConcatenates) {
  const auto wf = Waveform::composite(
      {Waveform::constant(100, 1.0), Waveform::constant(200, 2.0)});
  EXPECT_EQ(wf.duration(), 300);
  EXPECT_DOUBLE_EQ(wf.value_at(50), 1.0);
  EXPECT_DOUBLE_EQ(wf.value_at(150), 2.0);
  EXPECT_NEAR(wf.integral(), 1.0 * 0.1 + 2.0 * 0.2, 1e-12);
}

TEST(WaveformTest, SampleCountAndMidpoints) {
  const auto wf = Waveform::ramp(100, 0.0, 1.0);
  const auto samples = wf.sample(10);
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_NEAR(samples[0], 0.05, 1e-9);  // midpoint of first bin
  EXPECT_NEAR(samples[9], 0.95, 1e-9);
}

TEST(WaveformTest, EmptyWaveformIsSafe) {
  Waveform wf;
  EXPECT_EQ(wf.duration(), 0);
  EXPECT_TRUE(wf.sample(10).empty());
  EXPECT_DOUBLE_EQ(wf.integral(), 0.0);
}

struct WaveformCase {
  const char* name;
  Waveform wf;
};

class WaveformProperty : public ::testing::TestWithParam<WaveformCase> {};

TEST_P(WaveformProperty, IntegralMatchesNumericQuadrature) {
  const Waveform& wf = GetParam().wf;
  const auto samples = wf.sample(1);
  double numeric = 0;
  for (const double v : samples) numeric += v * 1e-3;  // 1 ns in us
  EXPECT_NEAR(wf.integral(), numeric, 1e-2 * std::max(1.0, std::abs(numeric)));
}

TEST_P(WaveformProperty, JsonRoundTrip) {
  const Waveform& wf = GetParam().wf;
  auto parsed = Waveform::from_json(wf.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), wf);
  EXPECT_EQ(parsed.value().duration(), wf.duration());
  for (DurationNsQ t = 0; t <= wf.duration(); t += wf.duration() / 7 + 1) {
    EXPECT_DOUBLE_EQ(parsed.value().value_at(t), wf.value_at(t));
  }
}

TEST_P(WaveformProperty, ExtremesBoundSamples) {
  const Waveform& wf = GetParam().wf;
  for (const double v : wf.sample(3)) {
    EXPECT_LE(v, wf.max_value() + 1e-9);
    EXPECT_GE(v, wf.min_value() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WaveformProperty,
    ::testing::Values(
        WaveformCase{"constant", Waveform::constant(500, 3.0)},
        WaveformCase{"ramp", Waveform::ramp(400, -2.0, 5.0)},
        WaveformCase{"blackman", Waveform::blackman(600, 2.2)},
        WaveformCase{"interp",
                     Waveform::interpolated(350, {0.0, 1.0, -1.0, 2.0})},
        WaveformCase{"composite",
                     Waveform::composite({Waveform::ramp(100, 0, 1),
                                          Waveform::constant(150, 1.0),
                                          Waveform::ramp(100, 1, 0)})}),
    [](const auto& info) { return info.param.name; });

TEST(WaveformTest, FromJsonRejectsUnknownKind) {
  auto json = common::Json::object();
  json["kind"] = "sinusoid";
  json["duration_ns"] = 10;
  EXPECT_FALSE(Waveform::from_json(json).ok());
}

}  // namespace
}  // namespace qcenv::quantum
