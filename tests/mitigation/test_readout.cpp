// Readout mitigation: recovery of corrupted distributions and expectation
// values, metadata-driven construction, edge cases.
#include <gtest/gtest.h>

#include "emulator/noise.hpp"
#include "mitigation/readout.hpp"

namespace qcenv::mitigation {
namespace {

using emulator::NoiseModel;
using quantum::CalibrationSnapshot;
using quantum::Samples;

/// Ideal samples corrupted by known readout rates.
Samples corrupted(const Samples& ideal, double p01, double p10,
                  std::uint64_t seed = 5) {
  CalibrationSnapshot cal;
  cal.readout_p01 = p01;
  cal.readout_p10 = p10;
  NoiseModel model(cal);
  common::Rng rng(seed);
  return model.apply_readout_errors(ideal, rng);
}

TEST(ReadoutMitigator, RecoversZExpectation) {
  Samples ideal(1);
  ideal.record("1", 50000);  // <Z> = -1
  const Samples noisy = corrupted(ideal, 0.02, 0.10);
  // Measured <Z> drifts toward +1 by ~2*p10.
  EXPECT_GT(noisy.z_expectation(0), -0.85);
  ReadoutMitigator mitigator(0.02, 0.10);
  EXPECT_NEAR(mitigator.mitigate_z_expectation(noisy, 0), -1.0, 0.02);
}

TEST(ReadoutMitigator, RecoversDistribution) {
  Samples ideal(2);
  ideal.record("00", 30000);
  ideal.record("11", 30000);  // GHZ-like
  const Samples noisy = corrupted(ideal, 0.03, 0.08);
  EXPECT_GT(Samples::total_variation_distance(ideal, noisy), 0.05);

  ReadoutMitigator mitigator(0.03, 0.08);
  auto mitigated = mitigator.mitigate(noisy);
  ASSERT_TRUE(mitigated.ok());
  EXPECT_EQ(mitigated.value().total_shots(), noisy.total_shots());
  const double tv_after =
      Samples::total_variation_distance(ideal, mitigated.value());
  const double tv_before = Samples::total_variation_distance(ideal, noisy);
  EXPECT_LT(tv_after, tv_before / 3.0);
}

TEST(ReadoutMitigator, MitigatedDistributionIsNormalized) {
  Samples ideal(3);
  ideal.record("101", 500);
  ideal.record("010", 300);
  ideal.record("111", 200);
  const Samples noisy = corrupted(ideal, 0.05, 0.05);
  ReadoutMitigator mitigator(0.05, 0.05);
  auto p = mitigator.mitigate_distribution(noisy);
  ASSERT_TRUE(p.ok());
  double total = 0;
  for (const double v : p.value()) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ReadoutMitigator, ZeroErrorIsIdentity) {
  Samples ideal(2);
  ideal.record("01", 700);
  ideal.record("10", 300);
  ReadoutMitigator mitigator(0.0, 0.0);
  auto mitigated = mitigator.mitigate(ideal);
  ASSERT_TRUE(mitigated.ok());
  EXPECT_EQ(mitigated.value().counts(), ideal.counts());
  EXPECT_DOUBLE_EQ(mitigator.mitigate_z_expectation(ideal, 0),
                   ideal.z_expectation(0));
}

TEST(ReadoutMitigator, ObservableMitigation) {
  Samples ideal(2);
  ideal.record("11", 40000);  // <ZZ> = +1
  const Samples noisy = corrupted(ideal, 0.02, 0.12);
  quantum::Observable zz(2);
  ASSERT_TRUE(zz.add_term(1.0, "ZZ").ok());
  const double raw = zz.expectation_from_samples(noisy).value();
  EXPECT_LT(raw, 0.85);
  ReadoutMitigator mitigator(0.02, 0.12);
  auto fixed = mitigator.mitigate_observable(noisy, zz);
  ASSERT_TRUE(fixed.ok());
  EXPECT_NEAR(fixed.value(), 1.0, 0.03);
}

TEST(ReadoutMitigator, RejectsNonDiagonalObservable) {
  Samples samples(1);
  samples.record("0", 10);
  quantum::Observable x(1);
  ASSERT_TRUE(x.add_term(1.0, "X").ok());
  ReadoutMitigator mitigator(0.01, 0.01);
  EXPECT_FALSE(mitigator.mitigate_observable(samples, x).ok());
}

TEST(ReadoutMitigator, FromMetadataUsesPerJobCalibration) {
  Samples samples(1);
  samples.record("1", 1000);
  CalibrationSnapshot cal;
  cal.readout_p01 = 0.04;
  cal.readout_p10 = 0.07;
  common::Json meta = common::Json::object();
  meta["calibration"] = cal.to_json();
  samples.set_metadata(meta);
  auto mitigator = ReadoutMitigator::from_metadata(samples);
  ASSERT_TRUE(mitigator.ok());
  EXPECT_DOUBLE_EQ(mitigator.value().p01(), 0.04);
  EXPECT_DOUBLE_EQ(mitigator.value().p10(), 0.07);

  Samples bare(1);
  bare.record("0", 1);
  EXPECT_FALSE(ReadoutMitigator::from_metadata(bare).ok());
}

TEST(ReadoutMitigator, WidthGuard) {
  Samples wide(20);
  wide.record(std::string(20, '0'), 10);
  ReadoutMitigator mitigator(0.01, 0.01);
  EXPECT_FALSE(mitigator.mitigate_distribution(wide, 16).ok());
  // The closed-form Z path still works at any width.
  EXPECT_NEAR(mitigator.mitigate_z_expectation(wide, 3), 1.0, 0.05);
}

TEST(ReadoutMitigator, ExtremeRatesAreClamped) {
  ReadoutMitigator mitigator(0.9, 0.9);  // nonsense rates clamp below 0.5
  EXPECT_LT(mitigator.p01(), 0.5);
  EXPECT_LT(mitigator.p10(), 0.5);
}

}  // namespace
}  // namespace qcenv::mitigation
