// The three SDK front-ends: pulser builder, qgate transpiler (unitary
// equivalence), kernelq kernels — and cross-SDK agreement through one
// QRMI resource.
#include <numbers>

#include <gtest/gtest.h>

#include "emulator/backend.hpp"
#include "emulator/statevector.hpp"
#include "qrmi/local_emulator.hpp"
#include "sdk/kernelq.hpp"
#include "sdk/pulser.hpp"
#include "sdk/qgate.hpp"

namespace qcenv::sdk {
namespace {

using quantum::AtomRegister;
using quantum::Circuit;
using quantum::DeviceSpec;
using quantum::Payload;
using quantum::Samples;

constexpr double kPi = std::numbers::pi;

// ---- pulser ----------------------------------------------------------------

TEST(PulserSdk, BuildsValidSequence) {
  pulser::SequenceBuilder builder(AtomRegister::linear_chain(3, 6.0),
                                  DeviceSpec::analog_default());
  ASSERT_TRUE(builder.declare_channel("global", pulser::ChannelKind::kRydbergGlobal)
                  .ok());
  ASSERT_TRUE(
      builder.add(pulser::constant_pulse(300, 3.0, 0.5, 0.0), "global").ok());
  ASSERT_TRUE(
      builder.add(pulser::blackman_pulse(400, 2.0, 0.0, 0.1), "global").ok());
  auto sequence = builder.build();
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence.value().duration(), 700);
  auto payload = builder.to_payload(100);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value().metadata().at_or_null("sdk").as_string(),
            "pulser");
}

TEST(PulserSdk, ChannelDiscipline) {
  pulser::SequenceBuilder builder(AtomRegister::linear_chain(2, 6.0),
                                  DeviceSpec::analog_default());
  ASSERT_TRUE(builder.declare_channel("g", pulser::ChannelKind::kRydbergGlobal)
                  .ok());
  // Second global channel refused (hardware has one).
  EXPECT_FALSE(
      builder.declare_channel("g2", pulser::ChannelKind::kRydbergGlobal).ok());
  // Duplicate name refused.
  EXPECT_FALSE(
      builder.declare_channel("g", pulser::ChannelKind::kDetuningMap).ok());
  // Pulse on undeclared channel refused.
  EXPECT_FALSE(
      builder.add(pulser::constant_pulse(100, 1.0, 0.0, 0.0), "nope").ok());
}

TEST(PulserSdk, DetuningMapChannel) {
  pulser::SequenceBuilder builder(AtomRegister::linear_chain(2, 6.0),
                                  DeviceSpec::analog_default());
  ASSERT_TRUE(builder.declare_channel("g", pulser::ChannelKind::kRydbergGlobal)
                  .ok());
  ASSERT_TRUE(
      builder.declare_channel("dmm", pulser::ChannelKind::kDetuningMap).ok());
  ASSERT_TRUE(builder.add(pulser::constant_pulse(100, 1.0, 0.0, 0.0), "g")
                  .ok());
  ASSERT_TRUE(builder
                  .add_detuning_map("dmm", {1.0, 0.0},
                                    quantum::Waveform::constant(100, -5.0))
                  .ok());
  // Pulses cannot target the DMM channel; second map refused.
  EXPECT_FALSE(
      builder.add(pulser::constant_pulse(100, 1.0, 0.0, 0.0), "dmm").ok());
  EXPECT_FALSE(builder
                   .add_detuning_map("dmm", {0.5, 0.5},
                                     quantum::Waveform::constant(100, -1.0))
                   .ok());
  ASSERT_TRUE(builder.build().ok());
}

TEST(PulserSdk, DeviceValidationAtBuild) {
  // Amplitude over the device maximum: accepted by the builder, rejected at
  // build() — matching Pulser's validate-at-build behaviour.
  pulser::SequenceBuilder builder(AtomRegister::linear_chain(2, 6.0),
                                  DeviceSpec::analog_default());
  ASSERT_TRUE(builder.declare_channel("g", pulser::ChannelKind::kRydbergGlobal)
                  .ok());
  ASSERT_TRUE(
      builder.add(pulser::constant_pulse(100, 1000.0, 0.0, 0.0), "g").ok());
  EXPECT_FALSE(builder.build().ok());
}

// ---- qgate transpiler -------------------------------------------------------

/// Fidelity between states produced by `a` and `b` from a random-ish input.
double circuit_agreement(const Circuit& a, const Circuit& b) {
  using namespace qcenv::emulator;
  StateVector psi_a(a.num_qubits());
  StateVector psi_b(b.num_qubits());
  // Non-trivial input state.
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    psi_a.apply_1q(gate_ry(0.3 + 0.4 * static_cast<double>(q)), q);
    psi_b.apply_1q(gate_ry(0.3 + 0.4 * static_cast<double>(q)), q);
  }
  const auto apply = [](StateVector& psi, const Circuit& circuit) {
    for (const auto& gate : circuit.gates()) {
      if (quantum::arity(gate.kind) == 1) {
        switch (gate.kind) {
          case quantum::GateKind::kRx: psi.apply_1q(gate_rx(gate.param), gate.qubits[0]); break;
          case quantum::GateKind::kRy: psi.apply_1q(gate_ry(gate.param), gate.qubits[0]); break;
          case quantum::GateKind::kRz: psi.apply_1q(gate_rz(gate.param), gate.qubits[0]); break;
          case quantum::GateKind::kPhase: psi.apply_1q(gate_phase(gate.param), gate.qubits[0]); break;
          case quantum::GateKind::kH: psi.apply_1q(gate_h(), gate.qubits[0]); break;
          case quantum::GateKind::kX: psi.apply_1q(gate_x(), gate.qubits[0]); break;
          case quantum::GateKind::kY: psi.apply_1q(gate_y(), gate.qubits[0]); break;
          case quantum::GateKind::kZ: psi.apply_1q(gate_z(), gate.qubits[0]); break;
          case quantum::GateKind::kS: psi.apply_1q(gate_s(), gate.qubits[0]); break;
          case quantum::GateKind::kSdg: psi.apply_1q(gate_sdg(), gate.qubits[0]); break;
          case quantum::GateKind::kT: psi.apply_1q(gate_t(), gate.qubits[0]); break;
          case quantum::GateKind::kTdg: psi.apply_1q(gate_tdg(), gate.qubits[0]); break;
          default: break;
        }
      } else {
        switch (gate.kind) {
          case quantum::GateKind::kCz: psi.apply_2q(gate_cz(), gate.qubits[0], gate.qubits[1]); break;
          case quantum::GateKind::kCx: psi.apply_2q(gate_cx(), gate.qubits[0], gate.qubits[1]); break;
          case quantum::GateKind::kSwap: psi.apply_2q(gate_swap(), gate.qubits[0], gate.qubits[1]); break;
          default: break;
        }
      }
    }
  };
  apply(psi_a, a);
  apply(psi_b, b);
  return psi_a.fidelity(psi_b);
}

struct TranspileCase {
  const char* name;
  Circuit circuit;
};

class TranspileProperty : public ::testing::TestWithParam<TranspileCase> {};

TEST_P(TranspileProperty, UnitaryEquivalentUpToGlobalPhase) {
  const Circuit& original = GetParam().circuit;
  auto native = qgate::transpile(original);
  ASSERT_TRUE(native.ok());
  for (const auto& gate : native.value().gates()) {
    EXPECT_TRUE(qgate::is_native(gate.kind))
        << "non-native gate survived: " << quantum::to_string(gate.kind);
  }
  EXPECT_NEAR(circuit_agreement(original, native.value()), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, TranspileProperty,
    ::testing::Values(
        TranspileCase{"single_gates",
                      [] {
                        Circuit c(2);
                        c.h(0).x(1).y(0).z(1).s(0).t(1);
                        c.add(quantum::GateKind::kSdg, {0});
                        c.add(quantum::GateKind::kTdg, {1});
                        return c;
                      }()},
        TranspileCase{"rotations",
                      [] {
                        Circuit c(2);
                        c.rx(0, 0.3).ry(1, -1.1).rz(0, 2.2).phase(1, 0.7);
                        return c;
                      }()},
        TranspileCase{"bell",
                      [] {
                        Circuit c(2);
                        c.h(0).cx(0, 1);
                        return c;
                      }()},
        TranspileCase{"swap_chain",
                      [] {
                        Circuit c(3);
                        c.h(0).swap(0, 2).cx(2, 1);
                        return c;
                      }()},
        TranspileCase{"ghz4",
                      [] { return qgate::ghz(4); }()},
        TranspileCase{"qaoa",
                      [] {
                        return qgate::qaoa_maxcut(
                            4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
                            {0.4, 0.8}, {0.9, 0.2});
                      }()}),
    [](const auto& info) { return info.param.name; });

TEST(QgateSdk, TranspileStatsAndPayload) {
  const Circuit bell = qgate::ghz(2);
  auto native = qgate::transpile(bell);
  ASSERT_TRUE(native.ok());
  const auto stats = qgate::stats(bell, native.value());
  EXPECT_EQ(stats.input_gates, 2u);
  EXPECT_GT(stats.output_gates, 2u);
  EXPECT_EQ(stats.two_qubit_gates, 1u);  // one CZ

  auto payload = qgate::to_payload(bell, 100, /*native_only=*/true);
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(
      payload.value().metadata().at_or_null("transpiled").as_bool());
  auto circuit = payload.value().circuit();
  ASSERT_TRUE(circuit.ok());
  for (const auto& gate : circuit.value().gates()) {
    EXPECT_TRUE(qgate::is_native(gate.kind));
  }
}

TEST(QgateSdk, TranspileRejectsInvalidCircuit) {
  Circuit bad(1);
  bad.cx(0, 0);  // will fail arity/duplicate validation
  bad.x(3);
  EXPECT_FALSE(qgate::transpile(bad).ok());
}

// ---- kernelq ----------------------------------------------------------------

TEST(KernelqSdk, SampleBellState) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  kernelq::Kernel kernel(2);
  const auto& q = kernel.qubits();
  kernel.h(q[0]).cx(q[0], q[1]);
  auto samples = kernelq::sample(kernel, 2000, *resource);
  ASSERT_TRUE(samples.ok());
  EXPECT_NEAR(samples.value().probability("00"), 0.5, 0.05);
  EXPECT_NEAR(samples.value().probability("11"), 0.5, 0.05);
  EXPECT_EQ(samples.value().metadata().at_or_null("backend").as_string(),
            "emu-sv");
}

TEST(KernelqSdk, ObserveDiagonalObservable) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  kernelq::Kernel kernel(2);
  const auto& q = kernel.qubits();
  kernel.x(q[0]).x(q[1]);
  quantum::Observable zz(2);
  ASSERT_TRUE(zz.add_term(1.0, "ZZ").ok());
  auto value = kernelq::observe(kernel, zz, 500, *resource);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(value.value(), 1.0, 1e-9);  // (-1)*(-1)
}

TEST(KernelqSdk, ObserveRejectsNonDiagonal) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  kernelq::Kernel kernel(1);
  quantum::Observable x(1);
  ASSERT_TRUE(x.add_term(1.0, "X").ok());
  EXPECT_FALSE(kernelq::observe(kernel, x, 100, *resource).ok());
}

// ---- Cross-SDK agreement ----------------------------------------------------

TEST(MultiSdk, QgateAndKernelqAgreeThroughOneResource) {
  // The multi-SDK claim: two different front-ends produce statistically
  // identical results on the same QRMI resource.
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();

  kernelq::Kernel kernel(3);
  const auto& q = kernel.qubits();
  kernel.h(q[0]).cx(q[0], q[1]).cx(q[1], q[2]);
  auto from_kernelq = kernelq::sample(kernel, 4000, *resource);
  ASSERT_TRUE(from_kernelq.ok());

  auto payload = qgate::to_payload(qgate::ghz(3), 4000, true);
  ASSERT_TRUE(payload.ok());
  auto from_qgate = resource->run_sync(payload.value());
  ASSERT_TRUE(from_qgate.ok());

  EXPECT_LT(Samples::total_variation_distance(from_kernelq.value(),
                                              from_qgate.value()),
            0.05);
}

TEST(MultiSdk, PulserPiPulseMatchesTheory) {
  auto resource = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  pulser::SequenceBuilder builder(AtomRegister::linear_chain(1, 6.0),
                                  DeviceSpec::analog_default());
  ASSERT_TRUE(builder.declare_channel("g", pulser::ChannelKind::kRydbergGlobal)
                  .ok());
  // pi pulse: Omega = 2pi rad/us for 500 ns.
  ASSERT_TRUE(
      builder.add(pulser::constant_pulse(500, 2.0 * kPi, 0.0, 0.0), "g").ok());
  auto payload = builder.to_payload(300);
  ASSERT_TRUE(payload.ok());
  auto samples = resource->run_sync(payload.value());
  ASSERT_TRUE(samples.ok());
  EXPECT_GT(samples.value().probability("1"), 0.99);
}

}  // namespace
}  // namespace qcenv::sdk
