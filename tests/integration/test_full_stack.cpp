// End-to-end integration: the complete Figure-2 path in one process —
// Slurm SPANK env -> runtime -> daemon REST -> QRMI -> QPU simulator —
// plus the cloud path and the emulator<->QPU agreement property.
#include <numbers>

#include <gtest/gtest.h>

#include "cloud/cloud_service.hpp"
#include "daemon/daemon.hpp"
#include "qpu/controller.hpp"
#include "qrmi/cloud_client.hpp"
#include "qrmi/direct_qpu.hpp"
#include "qrmi/local_emulator.hpp"
#include "runtime/runtime.hpp"
#include "sdk/pulser.hpp"
#include "slurm/scheduler.hpp"

namespace qcenv {
namespace {

using quantum::Payload;
using quantum::Samples;

Payload blockade_payload(std::uint64_t shots) {
  sdk::pulser::SequenceBuilder builder(
      quantum::AtomRegister::linear_chain(3, 5.0),
      quantum::DeviceSpec::analog_default());
  (void)builder.declare_channel("g",
                                sdk::pulser::ChannelKind::kRydbergGlobal);
  (void)builder.add(sdk::pulser::constant_pulse(
                        400, 2.0 * std::numbers::pi, 0.5, 0.0),
                    "g");
  return builder.to_payload(shots).value();
}

class FullStack : public ::testing::Test {
 protected:
  void SetUp() override {
    qpu::QpuOptions qpu_options;
    qpu_options.time_scale = 1e9;  // no real-time pacing in tests
    qpu_options.drift.dephasing_sigma = 0;  // keep the device clean
    qpu_options.drift.rabi_scale_sigma = 0;
    qpu_options.drift.detuning_offset_sigma = 0;
    qpu_options.drift.readout_sigma = 0;
    qpu_options.drift.fill_sigma = 0;
    qpu_options.drift.dephasing_degradation_per_hour = 0;
    device_ = std::make_unique<qpu::QpuDevice>(qpu_options, &device_clock_);
    controller_ =
        std::make_unique<qpu::QpuController>(device_.get(), &device_clock_);
    qpu_resource_ = std::make_shared<qrmi::DirectQpuQrmi>(
        "fresnel", device_.get(), controller_.get());

    daemon::DaemonOptions daemon_options;
    daemon_options.queue_policy.non_production_batch_shots = 20;
    middleware_ = std::make_unique<daemon::MiddlewareDaemon>(
        daemon_options, qpu_resource_, device_.get(), &wall_);
    auto port = middleware_->start();
    ASSERT_TRUE(port.ok());
    port_ = port.value();
  }

  common::ManualClock device_clock_;
  common::WallClock wall_;
  std::unique_ptr<qpu::QpuDevice> device_;
  std::unique_ptr<qpu::QpuController> controller_;
  qrmi::QrmiPtr qpu_resource_;
  std::unique_ptr<daemon::MiddlewareDaemon> middleware_;
  std::uint16_t port_ = 0;
};

TEST_F(FullStack, SlurmEnvDrivesRuntimeToQpuThroughDaemon) {
  // 1. Slurm job submission with --qpu=fresnel; the SPANK plugin injects
  //    QRMI_* env vars including the daemon endpoint.
  qrmi::ResourceRegistry registry;
  registry.add("fresnel", qpu_resource_);
  simkit::Simulator sim;
  slurm::ClusterConfig cluster;
  cluster.nodes = {{"n0", 8, 0}};
  cluster.partitions = {{"dev", 100, false, 24LL * 3600 * common::kSecond}};
  slurm::SlurmScheduler slurm_ctl(cluster, &sim);
  slurm_ctl.register_plugin(
      std::make_unique<slurm::QrmiSpankPlugin>(&registry, port_));
  slurm::JobSubmission submission;
  submission.name = "hybrid";
  submission.user = "alice";
  submission.partition = "dev";
  submission.qpu_resource = "fresnel";
  submission.duration = common::kSecond;
  auto job_id = slurm_ctl.submit(submission);
  ASSERT_TRUE(job_id.ok());
  const auto env = slurm_ctl.query(job_id.value()).value().env;
  sim.run();

  // 2. Inside the job: the runtime reads the injected environment.
  common::Config config;
  for (const auto& [key, value] : env) config.set(key, value);
  ASSERT_EQ(config.get_or("QRMI_RESOURCE_ID", ""), "fresnel");
  const auto daemon_port = static_cast<std::uint16_t>(
      config.get_int_or("QRMI_DAEMON_PORT", 0));
  ASSERT_EQ(daemon_port, port_);

  runtime::RuntimeOptions options;
  options.user = "alice";
  options.job_class = daemon::JobClass::kTest;
  options.poll_interval = common::kMillisecond;
  auto rt = runtime::HybridRuntime::connect_daemon(daemon_port, options);
  ASSERT_TRUE(rt.ok()) << rt.error().to_string();

  // 3. Validate against live device state, run, and check provenance.
  const Payload payload = blockade_payload(60);
  auto report = rt.value()->validate(payload);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().compatible);
  auto samples = rt.value()->run(payload);
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 60u);
  EXPECT_EQ(samples.value().metadata().at_or_null("backend").as_string(),
            "qpu:sim-analog");
  EXPECT_TRUE(samples.value().metadata().contains("calibration"));
  EXPECT_GE(device_->counters().jobs_executed, 1u);
}

TEST_F(FullStack, ProductionOvertakesDevelopmentAtBatchBoundary) {
  runtime::RuntimeOptions dev_options;
  dev_options.user = "dave";
  dev_options.job_class = daemon::JobClass::kDevelopment;
  dev_options.poll_interval = common::kMillisecond;
  auto dev_rt = runtime::HybridRuntime::connect_daemon(port_, dev_options);
  ASSERT_TRUE(dev_rt.ok());

  runtime::RuntimeOptions prod_options = dev_options;
  prod_options.user = "carol";
  prod_options.job_class = daemon::JobClass::kProduction;
  auto prod_rt = runtime::HybridRuntime::connect_daemon(port_, prod_options);
  ASSERT_TRUE(prod_rt.ok());

  // A long development job (many 20-shot batches), then a production job.
  auto dev_handle = dev_rt.value()->submit(blockade_payload(200));
  ASSERT_TRUE(dev_handle.ok());
  auto prod_handle = prod_rt.value()->submit(blockade_payload(40));
  ASSERT_TRUE(prod_handle.ok());

  auto prod_samples = prod_rt.value()->wait(prod_handle.value());
  ASSERT_TRUE(prod_samples.ok());
  // When production completes, the dev job must still be working.
  auto dev_job = middleware_->dispatcher().query(
      std::strtoull(dev_handle.value().id.c_str(), nullptr, 10));
  ASSERT_TRUE(dev_job.ok());
  EXPECT_NE(dev_job.value().state, daemon::DaemonJobState::kCompleted);
  auto dev_samples = dev_rt.value()->wait(dev_handle.value());
  ASSERT_TRUE(dev_samples.ok());
  EXPECT_EQ(dev_samples.value().total_shots(), 200u);
}

TEST_F(FullStack, EmulatorPredictsQpuDistribution) {
  // Development-to-production agreement: the ideal emulator and the
  // freshly calibrated QPU produce statistically compatible samples.
  device_->recalibrate();
  auto emulator = qrmi::LocalEmulatorQrmi::create("emu", "sv").value();
  const Payload payload = blockade_payload(3000);
  auto ideal = emulator->run_sync(payload);
  auto real = qpu_resource_->run_sync(payload, common::kMillisecond);
  ASSERT_TRUE(ideal.ok());
  ASSERT_TRUE(real.ok());
  // The QPU still applies readout errors (~1-3%), so allow a modest gap.
  EXPECT_LT(Samples::total_variation_distance(ideal.value(), real.value()),
            0.12);
}

TEST(CloudChain, DaemonFrontsCloudResource) {
  // Daemon whose execution resource is a *cloud* emulator: the HPC-to-cloud
  // configuration of the paper (§3.3 "interoperability between the on-prem
  // QPUs and cloud-based resources").
  auto backend = qrmi::LocalEmulatorQrmi::create("cloud-backend", "sv").value();
  cloud::CloudServiceOptions cloud_options;
  cloud_options.api_key = "key";
  cloud_options.latency.base = common::kMillisecond;
  cloud_options.latency.jitter = 0;
  cloud::CloudService cloud_service(backend, cloud_options);
  const auto cloud_port = cloud_service.start().value();

  auto cloud_resource = std::make_shared<qrmi::CloudQrmi>(
      "pasqal-cloud", qrmi::ResourceType::kCloudEmulator, cloud_port, "key");

  common::WallClock wall;
  daemon::DaemonOptions daemon_options;
  daemon::MiddlewareDaemon middleware(daemon_options, cloud_resource, nullptr,
                                      &wall);
  const auto port = middleware.start().value();

  runtime::RuntimeOptions options;
  options.user = "alice";
  options.job_class = daemon::JobClass::kTest;
  options.poll_interval = common::kMillisecond;
  auto rt = runtime::HybridRuntime::connect_daemon(port, options);
  ASSERT_TRUE(rt.ok());
  auto samples = rt.value()->run(blockade_payload(30));
  ASSERT_TRUE(samples.ok()) << samples.error().to_string();
  EXPECT_EQ(samples.value().total_shots(), 30u);
  EXPECT_GE(cloud_service.requests_served(), 3u);  // submit+poll+result
}

}  // namespace
}  // namespace qcenv
