// Federation and hot-standby HA: the durable epoch fence, journal
// shipping through File and Http replication sources (mirror equality,
// torn-chunk recovery, snapshot catch-up, partition handling, epoch
// regression), StandbyDaemon promotion — sessions and ledger intact,
// fencing across a mid-promotion crash — and the daemon's federation
// REST surface including broker-of-brokers forwarding between two live
// daemons.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "federation/federation.hpp"
#include "federation/replication.hpp"
#include "federation/standby.hpp"
#include "net/http_client.hpp"
#include "qrmi/local_emulator.hpp"
#include "store/journal.hpp"
#include "store/snapshot.hpp"

namespace qcenv::federation {
namespace {

using common::Json;
using common::ManualClock;
using common::TempDir;

constexpr std::uint64_t kSmallChunks = 96;  // forces multi-pull shipping

quantum::Payload small_payload(std::uint64_t shots = 20) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A dead leader's data dir: a fully-durable v2 journal with `events`
/// plain events.
void write_leader_journal(const std::string& dir, std::uint64_t events,
                          common::Clock* clock) {
  store::JournalOptions options;
  options.sync = store::SyncMode::kAlways;
  store::JobJournal journal(options, clock, nullptr);
  ASSERT_TRUE(journal.open(dir + "/journal.log").ok());
  for (std::uint64_t n = 1; n <= events; ++n) {
    Json data = Json::object();
    data["n"] = static_cast<long long>(n);
    journal.append("fed_test", std::move(data));
  }
  ASSERT_TRUE(journal.flush().ok());
}

TEST(EpochFile, AbsentReadsZeroAndRoundTrips) {
  TempDir dir("qcenv-epoch-");
  auto absent = read_epoch(dir.path());
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent.value(), 0u);

  ASSERT_TRUE(write_epoch(dir.path(), 7).ok());
  auto read = read_epoch(dir.path());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 7u);

  // A corrupt epoch file must be an error, not a silent epoch 0 — a
  // standby that trusts a garbage fence could be rolled back.
  std::ofstream(dir.path() + "/epoch", std::ios::trunc) << "not-a-number";
  EXPECT_FALSE(read_epoch(dir.path()).ok());
}

TEST(Replication, MirrorsLeaderJournalByteForByte) {
  ManualClock clock(0, /*auto_advance=*/true);
  TempDir leader("qcenv-fed-leader-");
  TempDir mirror("qcenv-fed-mirror-");
  write_leader_journal(leader.path(), 12, &clock);

  FileReplicationSource source(leader.path());
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock, nullptr, nullptr);
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_EQ(replicator.applied_seq(), 12u);
  EXPECT_EQ(replicator.leader_seq(), 12u);
  EXPECT_EQ(replicator.lag_events(), 0u);
  // Chunked shipping: the small segment cap split the stream.
  EXPECT_GT(replicator.stats().segments, 1u);
  EXPECT_EQ(replicator.stats().frames, 12u);

  // The mirror is the leader's durable prefix, byte for byte.
  EXPECT_EQ(read_raw(mirror.path() + "/journal.log"),
            read_raw(leader.path() + "/journal.log"));
}

TEST(Replication, TornChunkKeepsPrefixAndRerequests) {
  ManualClock clock(0, /*auto_advance=*/true);
  TempDir leader("qcenv-fed-leader-");
  TempDir mirror("qcenv-fed-mirror-");
  write_leader_journal(leader.path(), 10, &clock);

  FileReplicationSource source(leader.path());
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock, nullptr, nullptr);
  source.tear_next_segment();
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_EQ(replicator.applied_seq(), 10u);
  EXPECT_GE(replicator.stats().torn_segments, 1u);
  EXPECT_EQ(read_raw(mirror.path() + "/journal.log"),
            read_raw(leader.path() + "/journal.log"));
}

TEST(Replication, PartitionFailsPullsThenRecovers) {
  ManualClock clock(0, /*auto_advance=*/true);
  TempDir leader("qcenv-fed-leader-");
  TempDir mirror("qcenv-fed-mirror-");
  write_leader_journal(leader.path(), 4, &clock);

  FileReplicationSource source(leader.path());
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock, nullptr, nullptr);
  source.set_partitioned(true);
  EXPECT_FALSE(replicator.poll_once().ok());
  EXPECT_FALSE(replicator.catch_up().ok());
  EXPECT_GE(replicator.stats().fetch_failures, 2u);
  EXPECT_EQ(replicator.applied_seq(), 0u);

  source.set_partitioned(false);
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_EQ(replicator.applied_seq(), 4u);
}

TEST(Replication, SnapshotCatchupBridgesCompactionGap) {
  ManualClock clock(0, /*auto_advance=*/true);
  TempDir leader("qcenv-fed-leader-");
  TempDir mirror("qcenv-fed-mirror-");
  write_leader_journal(leader.path(), 10, &clock);

  // Compact the leader: events 1..6 fold into the snapshot, the journal
  // keeps 7..10. A fresh follower's cursor (0) now predates the WAL.
  {
    store::JournalOptions options;
    options.sync = store::SyncMode::kAlways;
    store::JobJournal journal(options, &clock, nullptr);
    ASSERT_TRUE(journal.open(leader.path() + "/journal.log").ok());
    ASSERT_TRUE(journal.drop_through(6).ok());
  }
  store::StoreSnapshot snapshot;
  snapshot.jobs_seq = snapshot.sessions_seq = 6;
  ASSERT_TRUE(
      snapshot.write_atomic(leader.path() + "/snapshot.json").ok());

  FileReplicationSource source(leader.path());
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock, nullptr, nullptr);
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_GE(replicator.stats().snapshot_catchups, 1u);
  EXPECT_EQ(replicator.applied_seq(), 10u);

  // The mirror carries the shipped snapshot verbatim plus WAL 7..10.
  EXPECT_EQ(read_raw(mirror.path() + "/snapshot.json"),
            read_raw(leader.path() + "/snapshot.json"));
  auto entries =
      store::JobJournal::read_file(mirror.path() + "/journal.log");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 4u);
  EXPECT_EQ(entries.value().front().seq, 7u);
  EXPECT_EQ(entries.value().back().seq, 10u);
}

TEST(Replication, RejectsWalFromAFencedOutLeader) {
  ManualClock clock(0, /*auto_advance=*/true);
  TempDir leader("qcenv-fed-leader-");
  TempDir mirror("qcenv-fed-mirror-");
  write_leader_journal(leader.path(), 3, &clock);
  ASSERT_TRUE(write_epoch(leader.path(), 5).ok());

  FileReplicationSource source(leader.path());
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock, nullptr, nullptr);
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_EQ(replicator.leader_epoch(), 5u);

  // The link now serves a LOWER epoch — a partitioned ex-leader trying
  // to feed the mirror. Every pull must be refused.
  ASSERT_TRUE(write_epoch(leader.path(), 3).ok());
  EXPECT_FALSE(replicator.poll_once().ok());
  EXPECT_EQ(replicator.leader_epoch(), 5u);
}

// ---- standby promotion ---------------------------------------------------

class StandbyPromotionFixture : public ::testing::Test {
 protected:
  daemon::DaemonOptions leader_options() {
    daemon::DaemonOptions options;
    options.store.data_dir = leader_dir_.path();
    return options;
  }

  /// Runs a leader daemon to build up durable state: one session for
  /// alice plus `jobs` executed submissions. Returns alice's token.
  /// The daemon is destroyed (cleanly, everything flushed) — the "dead
  /// leader" whose disk the standby drains.
  std::string run_leader_lifetime(std::size_t jobs) {
    auto resource = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
    auto leader = std::make_unique<daemon::MiddlewareDaemon>(
        leader_options(), resource, nullptr, &clock_);
    auto session =
        leader->open_session("alice", daemon::JobClass::kDevelopment);
    EXPECT_TRUE(session.ok());
    for (std::size_t i = 0; i < jobs; ++i) {
      auto submitted =
          leader->submit_job(session.value().token, small_payload());
      EXPECT_TRUE(submitted.ok());
    }
    return session.value().token;
  }

  std::unique_ptr<StandbyDaemon> make_standby() {
    source_ = std::make_unique<FileReplicationSource>(leader_dir_.path());
    StandbyOptions options;
    options.data_dir = standby_dir_.path();
    options.poll_thread = false;
    return std::make_unique<StandbyDaemon>(
        options, source_.get(),
        [this](const std::string& data_dir)
            -> common::Result<
                std::unique_ptr<daemon::MiddlewareDaemon>> {
          daemon::DaemonOptions promoted;
          promoted.store.data_dir = data_dir;
          auto resource =
              qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
          return std::make_unique<daemon::MiddlewareDaemon>(
              promoted, resource, nullptr, &clock_);
        },
        &clock_, nullptr, nullptr);
  }

  ManualClock clock_{0, /*auto_advance=*/true};
  TempDir leader_dir_{"qcenv-standby-leader-"};
  TempDir standby_dir_{"qcenv-standby-mirror-"};
  std::unique_ptr<FileReplicationSource> source_;
};

TEST_F(StandbyPromotionFixture, PromotionRestoresSessionsAndBumpsEpoch) {
  const std::string token = run_leader_lifetime(/*jobs=*/2);

  auto standby = make_standby();
  ASSERT_TRUE(standby->start().ok());
  ASSERT_TRUE(standby->replicator().catch_up().ok());
  EXPECT_FALSE(standby->promoted());
  const std::uint64_t epoch_before = standby->epoch();

  auto promoted = standby->promote();
  ASSERT_TRUE(promoted.ok()) << promoted.error().to_string();
  ASSERT_NE(promoted.value(), nullptr);
  EXPECT_TRUE(standby->promoted());
  EXPECT_GT(standby->epoch(), epoch_before);
  // The fence is durable — a restart of this standby resumes AT it.
  auto durable = read_epoch(standby_dir_.path());
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(durable.value(), standby->epoch());

  // The leader's session survived the takeover: alice's old token works
  // on the promoted daemon, a made-up one does not.
  auto resumed = promoted.value()->submit_job(token, small_payload());
  EXPECT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_FALSE(
      promoted.value()->submit_job("bogus-token", small_payload()).ok());

  // Promotion is idempotent: a second call returns the same daemon.
  auto again = standby->promote();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), promoted.value());

  // release_daemon transfers ownership (and empties the standby).
  auto owned = standby->release_daemon();
  EXPECT_EQ(owned.get(), promoted.value());
  EXPECT_EQ(standby->promoted_daemon(), nullptr);
}

TEST_F(StandbyPromotionFixture, MidPromotionCrashLeavesFenceAndRetries) {
  run_leader_lifetime(/*jobs=*/1);

  auto standby = make_standby();
  ASSERT_TRUE(standby->start().ok());
  ASSERT_TRUE(standby->replicator().catch_up().ok());
  const std::uint64_t epoch_before = standby->epoch();

  // Crash in the window between the durable fence and the daemon build.
  bool crashed = false;
  standby->set_promotion_crash_hook([&crashed]() -> common::Status {
    if (crashed) return common::Status::ok_status();
    crashed = true;
    return common::err::io("standby died mid-promotion");
  });
  EXPECT_FALSE(standby->promote().ok());
  EXPECT_FALSE(standby->promoted());
  // The fence outlived the crash: the epoch file already moved on.
  auto fenced = read_epoch(standby_dir_.path());
  ASSERT_TRUE(fenced.ok());
  EXPECT_GT(fenced.value(), epoch_before);

  // The retry bumps the epoch AGAIN — promotion never reuses a fence a
  // dead attempt may have leaked to the world.
  auto promoted = standby->promote();
  ASSERT_TRUE(promoted.ok()) << promoted.error().to_string();
  EXPECT_GE(standby->epoch(), epoch_before + 2);
}

// ---- the REST surface ----------------------------------------------------

class FederationRestFixture : public ::testing::Test {
 protected:
  /// Starts a daemon; federation on/off per test.
  std::unique_ptr<daemon::MiddlewareDaemon> start_daemon(
      daemon::DaemonOptions options, std::uint16_t* port_out) {
    auto resource = qrmi::LocalEmulatorQrmi::create("emu0", "sv").value();
    auto daemon = std::make_unique<daemon::MiddlewareDaemon>(
        options, resource, nullptr, &clock_);
    auto port = daemon->start();
    EXPECT_TRUE(port.ok());
    *port_out = port.value();
    return daemon;
  }

  ManualClock clock_{0, /*auto_advance=*/true};
  TempDir dir_{"qcenv-fed-rest-"};
};

TEST_F(FederationRestFixture, StatusAnswersEvenWithFederationDisabled) {
  daemon::DaemonOptions options;
  options.admin_key = "root";
  options.store.data_dir = dir_.path();
  std::uint16_t port = 0;
  auto daemon = start_daemon(std::move(options), &port);

  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "root");
  auto status = admin.get("/admin/federation");
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(status.value().status, 200) << status.value().body;
  const Json out = Json::parse(status.value().body).value();
  EXPECT_FALSE(out.at_or_null("enabled").as_bool());
  EXPECT_EQ(out.get_string("role").value(), "leader");
  EXPECT_TRUE(out.at_or_null("fleet").is_object());
  EXPECT_TRUE(out.at_or_null("store").is_object());

  // Promote/demote need the router: a 409, not a silent no-op.
  EXPECT_EQ(admin.post("/admin/federation/promote", "").value().status,
            409);
  EXPECT_EQ(admin.post("/admin/federation/demote", "").value().status,
            409);
  // And the whole surface is admin-gated.
  net::HttpClient anon(port);
  EXPECT_EQ(anon.get("/admin/federation").value().status, 401);
  EXPECT_EQ(anon.get("/admin/replication/wal").value().status, 401);
}

TEST_F(FederationRestFixture, PromoteDemoteFlipRoleAndEpoch) {
  daemon::DaemonOptions options;
  options.admin_key = "root";
  options.store.data_dir = dir_.path();
  options.federation.enabled = true;
  options.federation.self = "alpha";
  options.federation.poll_thread = false;
  std::uint16_t port = 0;
  auto daemon = start_daemon(std::move(options), &port);

  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "root");
  auto promoted = admin.post("/admin/federation/promote", "");
  ASSERT_TRUE(promoted.ok());
  ASSERT_EQ(promoted.value().status, 200) << promoted.value().body;
  const Json up = Json::parse(promoted.value().body).value();
  EXPECT_EQ(up.get_string("role").value(), "leader");
  EXPECT_EQ(up.at_or_null("epoch").as_int(), 1);
  // The promotion fence is durable in the daemon's data dir.
  auto epoch = read_epoch(dir_.path());
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 1u);

  auto demoted = admin.post("/admin/federation/demote", "");
  ASSERT_TRUE(demoted.ok());
  ASSERT_EQ(demoted.value().status, 200);
  const Json status =
      Json::parse(admin.get("/admin/federation").value().body).value();
  EXPECT_EQ(status.get_string("role").value(), "standby");
  EXPECT_EQ(status.get_string("self").value(), "alpha");
}

TEST_F(FederationRestFixture, WalEndpointValidatesAndServesFrames) {
  daemon::DaemonOptions options;
  options.admin_key = "root";
  options.store.data_dir = dir_.path();
  std::uint16_t port = 0;
  auto daemon = start_daemon(std::move(options), &port);
  auto session =
      daemon->open_session("alice", daemon::JobClass::kDevelopment);
  ASSERT_TRUE(session.ok());

  net::HttpClient admin(port);
  admin.set_default_header("X-Admin-Key", "root");

  // Garbage query parameters are 400s that NAME the parameter.
  auto bad_after = admin.get("/admin/replication/wal?after=abc");
  ASSERT_TRUE(bad_after.ok());
  EXPECT_EQ(bad_after.value().status, 400);
  EXPECT_NE(bad_after.value().body.find("after"), std::string::npos);
  auto bad_max = admin.get("/admin/replication/wal?max_bytes=-5");
  ASSERT_TRUE(bad_max.ok());
  EXPECT_EQ(bad_max.value().status, 400);
  EXPECT_NE(bad_max.value().body.find("max_bytes"), std::string::npos);
  EXPECT_EQ(admin.get("/admin/replication/wal?max_bytes=0").value().status,
            400);

  // The happy path: raw frames + framing metadata in headers. Wait out
  // the group-commit window so the open_session event is durable.
  ASSERT_TRUE(daemon->state_store()->flush().ok());
  auto wal = admin.get("/admin/replication/wal?after=0");
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal.value().status, 200);
  EXPECT_EQ(wal.value().headers.at("Content-Type"),
            "application/octet-stream");
  const std::uint64_t end_seq =
      std::stoull(wal.value().headers.at("X-Replication-End-Seq"));
  EXPECT_GE(end_seq, 1u);
  EXPECT_EQ(wal.value().headers.at("X-Replication-Snapshot-Needed"), "0");
  EXPECT_EQ(wal.value().headers.at("X-Replication-Durable-Seq"),
            wal.value().headers.at("X-Replication-End-Seq"));
  // The body is exactly the frames the follower's validator accepts.
  const auto prefix =
      store::JobJournal::validate_frames(wal.value().body, 0);
  EXPECT_EQ(prefix.end_seq, end_seq);
  EXPECT_EQ(prefix.bytes, wal.value().body.size());
}

TEST_F(FederationRestFixture, HttpReplicationMirrorsALiveLeader) {
  daemon::DaemonOptions options;
  options.admin_key = "root";
  options.store.data_dir = dir_.path();
  std::uint16_t port = 0;
  auto daemon = start_daemon(std::move(options), &port);
  auto session =
      daemon->open_session("alice", daemon::JobClass::kDevelopment);
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        daemon->submit_job(session.value().token, small_payload()).ok());
  }
  // Capture the target seq BEFORE the flush: the live dispatcher may
  // append more (not yet durable) events at any moment, and the source
  // only serves the durable prefix.
  const std::uint64_t leader_seq =
      daemon->state_store()->journal().last_seq();
  ASSERT_TRUE(daemon->state_store()->flush().ok());

  TempDir mirror("qcenv-fed-http-mirror-");
  HttpReplicationSource source(port, "root");
  StandbyReplicator replicator({mirror.path(), kSmallChunks}, &source,
                               &clock_, nullptr, nullptr);
  ASSERT_TRUE(replicator.catch_up().ok());
  EXPECT_GE(replicator.applied_seq(), leader_seq);
  // The mirrored prefix replays cleanly with the leader's own decoder.
  auto entries =
      store::JobJournal::read_file(mirror.path() + "/journal.log");
  ASSERT_TRUE(entries.ok());
  EXPECT_GE(entries.value().size(), static_cast<std::size_t>(leader_seq));
}

TEST_F(FederationRestFixture, SaturatedLeaderForwardsToItsPeer) {
  // Daemon B: a healthy stand-alone leader.
  TempDir dir_b("qcenv-fed-rest-b-");
  daemon::DaemonOptions options_b;
  options_b.admin_key = "beta-key";
  options_b.store.data_dir = dir_b.path();
  std::uint16_t port_b = 0;
  auto daemon_b = start_daemon(std::move(options_b), &port_b);

  // Daemon A federates with B and (threshold 0) never takes a job
  // itself — the degenerate "saturated" leader.
  daemon::DaemonOptions options_a;
  options_a.admin_key = "alpha-key";
  options_a.store.data_dir = dir_.path();
  options_a.federation.enabled = true;
  options_a.federation.self = "alpha";
  options_a.federation.poll_thread = false;
  options_a.federation.forward_queue_threshold = 0;
  PeerConfig peer;
  peer.name = "beta";
  peer.port = port_b;
  peer.admin_key = "beta-key";
  options_a.federation.peers.push_back(peer);
  std::uint16_t port_a = 0;
  auto daemon_a = start_daemon(std::move(options_a), &port_a);
  ASSERT_NE(daemon_a->federation(), nullptr);
  daemon_a->federation()->poll_once(clock_.now());

  auto session =
      daemon_a->open_session("alice", daemon::JobClass::kDevelopment);
  ASSERT_TRUE(session.ok());
  auto submitted =
      daemon_a->submit_job(session.value().token, small_payload());
  ASSERT_TRUE(submitted.ok()) << submitted.error().to_string();
  EXPECT_EQ(submitted.value().forwarded_to, "beta");
  EXPECT_GE(submitted.value().id, 1u);

  // The job landed at B, charged to the ORIGINAL user: B now holds an
  // ingress session for alice and journalled the submission.
  ASSERT_TRUE(daemon_b->state_store()->flush().ok());
  auto entries = store::JobJournal::read_file(dir_b.path() +
                                              "/journal.log");
  ASSERT_TRUE(entries.ok());
  bool saw_submit = false;
  for (const auto& entry : entries.value()) {
    if (entry.type != "job_submitted") continue;
    saw_submit = true;
    EXPECT_EQ(
        entry.data.at_or_null("job").at_or_null("user").as_string(),
        "alice");
  }
  EXPECT_TRUE(saw_submit);
}

}  // namespace
}  // namespace qcenv::federation
