// RateLimiter: per-user token-bucket submit limiting plus in-flight shot
// caps — the admission boundary's "you specifically are going too fast"
// answer (HTTP 429), as opposed to the global queue-depth backpressure.
//
// Clock-free like the ledger: `admit` takes an explicit `now`, making the
// bucket deterministic under virtual time. Defaults are permissive (0 =
// unlimited) so single-tenant deployments see no behaviour change; admins
// tighten per user via POST /admin/quotas/:user.
//
// Internally lock-striped by user hash: every operation is keyed by one
// user, and users sharing a stripe is only a contention concern, never a
// correctness one, so the admission hot path of N concurrent tenants
// takes N (almost always distinct) stripe mutexes instead of one global.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"

namespace qcenv::accounting {

struct RateLimitOptions {
  /// Token-bucket refill rate for job submissions (0 = unlimited).
  double submit_per_sec = 0.0;
  /// Bucket capacity: how many submissions may burst at once.
  double submit_burst = 8.0;
  /// Ceiling on a user's admitted-but-unfinished shots (0 = unlimited).
  std::uint64_t max_inflight_shots = 0;
};

class RateLimiter {
 public:
  explicit RateLimiter(RateLimitOptions defaults = {})
      : defaults_(defaults) {}

  /// Admin override for one user (replaces the defaults wholesale).
  void set_override(const std::string& user, RateLimitOptions options);
  RateLimitOptions effective(const std::string& user) const;

  /// Checks the submit bucket and the in-flight shot cap; on success
  /// consumes one token and reserves `shots`. Rejections are
  /// kResourceExhausted (HTTP 429) and name the limit that fired.
  common::Status admit(const std::string& user, std::uint64_t shots,
                       common::TimeNs now);
  /// Returns reserved shots to the user's budget as batches execute or the
  /// job terminates. Clamped at zero so dispatch paths that bypassed
  /// admit() (direct dispatcher use in tests/benches) stay harmless.
  void release(const std::string& user, std::uint64_t shots);

  /// Re-installs a reservation without consuming a token or checking caps:
  /// recovery re-reserves the un-executed shots of restored queued jobs so
  /// their eventual releases cannot drain reservations they never made.
  void reserve(const std::string& user, std::uint64_t shots);

  std::uint64_t inflight_shots(const std::string& user) const;

  /// Time until the user's bucket holds a whole token again — the number a
  /// 429's Retry-After header and the ETA engine's `rate_limited` wait
  /// cause both report. 0 when the user is not rate-limited (unlimited
  /// config, or a token is already available). Read-only: the bucket is
  /// refilled on a copy, never mutated.
  common::DurationNs retry_after(const std::string& user,
                                 common::TimeNs now) const;

  /// Per-user limiter state for /v1/usage and /admin/fairshare.
  common::Json to_json(const std::string& user, common::TimeNs now) const;

 private:
  struct Bucket {
    double tokens = 0;
    bool primed = false;  // tokens start at burst on first sighting
    common::TimeNs last_refill = 0;
    std::uint64_t inflight_shots = 0;
  };

  /// One stripe owns every user hashing onto it: bucket AND override live
  /// together, so each operation locks exactly one stripe mutex.
  struct Stripe {
    mutable std::mutex mutex;
    std::map<std::string, RateLimitOptions> overrides;
    std::map<std::string, Bucket> buckets;
  };
  static constexpr std::size_t kStripes = 16;

  Stripe& stripe_for(const std::string& user) const {
    return stripes_[std::hash<std::string>{}(user) % kStripes];
  }
  RateLimitOptions effective_locked(const Stripe& stripe,
                                    const std::string& user) const;
  void refill_locked(Bucket& bucket, const RateLimitOptions& options,
                     common::TimeNs now) const;

  RateLimitOptions defaults_;
  mutable std::array<Stripe, kStripes> stripes_;
};

}  // namespace qcenv::accounting
