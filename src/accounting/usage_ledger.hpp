// UsageLedger: per-user consumed QPU work with exponential half-life decay.
//
// The multi-tenant substrate the paper's user-centric premise needs: every
// executed batch charges its user with shots, QPU wall time and (on
// completion) a job count. Charges decay with a configurable half-life —
// Slurm's classic decayed-usage model — so fair-share reacts to *recent*
// consumption instead of punishing a user forever for last month's sweep.
//
// Deterministic and clock-free: every operation takes an explicit `now`,
// so the exact same ledger runs under the live daemon's wall clock and the
// virtual-time benches' ManualClock with bit-identical results.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "store/records.hpp"

namespace qcenv::accounting {

struct LedgerOptions {
  /// Usage halves after this long without new charges (0 = never decays;
  /// usage then accumulates forever, Slurm's FairShare=parent mode).
  common::DurationNs half_life = 3600 * common::kSecond;
  /// Weights folding (shots, QPU seconds, jobs) into one scalar "usage
  /// units" figure the fair-share index ranks against. Shots dominate by
  /// default: they are the commodity the admission quotas meter.
  double shot_weight = 1.0;
  double qpu_second_weight = 0.0;
  double job_weight = 0.0;
};

/// Point-in-time view of one user's consumption.
struct UserUsage {
  std::string user;
  /// Half-life-decayed figures as of `as_of`.
  double shots = 0;
  double qpu_seconds = 0;
  double jobs = 0;
  /// Lifetime raw totals (never decayed; for billing-style reporting).
  std::uint64_t raw_shots = 0;
  std::uint64_t raw_jobs = 0;
  common::DurationNs raw_qpu_ns = 0;
  common::TimeNs as_of = 0;
};

class UsageLedger {
 public:
  explicit UsageLedger(LedgerOptions options = {}) : options_(options) {}

  const LedgerOptions& options() const noexcept { return options_; }

  /// Charges `user` for executed work. `now` may lag the newest charge
  /// (replay of journal events older than a restored snapshot): the delta
  /// is then pre-decayed to the entry's own time instead of rewinding it.
  void charge(const std::string& user, std::uint64_t shots,
              common::DurationNs qpu_ns, std::uint64_t jobs,
              common::TimeNs now);

  /// Decayed + raw usage of one user at `now` (all zero when unknown).
  UserUsage usage(const std::string& user, common::TimeNs now) const;

  /// Weighted decayed usage units of one user / of everybody at `now`.
  double units(const std::string& user, common::TimeNs now) const;
  double total_units(common::TimeNs now) const;

  /// Every user with ledger state, sorted (deterministic iteration for
  /// fair-share normalization and REST listings).
  std::vector<std::string> users() const;
  std::vector<UserUsage> list(common::TimeNs now) const;

  /// Durable image: one record per user, decayed to `now`. The store's
  /// snapshot embeds these so accounting survives restarts without
  /// replaying all history.
  std::vector<store::UsageRecord> records(common::TimeNs now) const;
  /// Re-installs snapshot records (journal deltas newer than the snapshot
  /// watermark replay on top via charge()).
  void restore(const std::vector<store::UsageRecord>& records);

 private:
  struct Entry {
    double shots = 0;
    double qpu_seconds = 0;
    double jobs = 0;
    std::uint64_t raw_shots = 0;
    std::uint64_t raw_jobs = 0;
    common::DurationNs raw_qpu_ns = 0;
    /// The decayed figures are exact at this instant.
    common::TimeNs as_of = 0;
  };

  /// 2^(-dt / half_life); 1.0 when decay is disabled or dt <= 0.
  double decay_factor(common::DurationNs dt) const;
  /// Decays `entry` forward to `now` (no-op when now <= as_of).
  void roll_forward(Entry& entry, common::TimeNs now) const;
  /// Decayed copy of `entry` at `now` — the one place every read-side
  /// view (usage/list/records/units) gets its numbers from.
  Entry decayed(const Entry& entry, common::TimeNs now) const;
  double units_locked(const Entry& entry, common::TimeNs now) const;
  static UserUsage to_usage(const std::string& user, const Entry& entry,
                            common::TimeNs as_of);

  LedgerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace qcenv::accounting
