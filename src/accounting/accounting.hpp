// AccountingManager: the daemon's one stop for multi-tenant accounting —
// composes the UsageLedger, FairShareIndex and RateLimiter, exports
// accounting_* telemetry, and owns the durable restore path.
//
// Wiring (all callers hold their own locks; the manager's components lock
// internally and never call back out, so the dispatcher may invoke any of
// this under its queue mutex):
//   admission boundary  -> admit_submission / release_submission
//   dispatch lanes      -> charge_batch (per executed batch),
//                          job_finished (terminal state)
//   PriorityQueueCore   -> priority(user, now) via the queue's hook
//   REST surface        -> usage_json / fairshare_json / quota setters
//   StateStore recovery -> restore(snapshot records, journal deltas)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "accounting/fair_share.hpp"
#include "accounting/rate_limiter.hpp"
#include "accounting/usage_ledger.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "store/recovery.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::accounting {

struct AccountingOptions {
  LedgerOptions ledger;
  FairShareOptions fair_share;
  /// Default per-user rate limits (permissive unless configured).
  RateLimitOptions rate_limit;
};

class AccountingManager {
 public:
  AccountingManager(AccountingOptions options, common::Clock* clock,
                    telemetry::MetricsRegistry* metrics);

  // ---- admission boundary -------------------------------------------------
  /// Rate-limit + in-flight-cap check; reserves the shots on success.
  /// Rejections are kResourceExhausted (HTTP 429) naming the fired limit.
  common::Status admit_submission(const std::string& user,
                                  std::uint64_t shots);
  /// Rolls back a reservation whose submission failed downstream.
  void release_submission(const std::string& user, std::uint64_t shots);

  // ---- dispatch side ------------------------------------------------------
  /// An executed batch: charges the ledger and releases the shots. `at`
  /// (when >= 0) is the charge instant — the dispatcher passes the exact
  /// time its journal event records, so replaying the journal re-charges
  /// the ledger to the same decayed values; -1 reads the clock.
  void charge_batch(const std::string& user, std::uint64_t shots,
                    common::DurationNs qpu_ns, common::TimeNs at = -1);
  /// Terminal state: releases the never-executed remainder; completed jobs
  /// additionally charge one job to the ledger (at `at`, same contract as
  /// charge_batch).
  void job_finished(const std::string& user, std::uint64_t unexecuted_shots,
                    bool completed, common::TimeNs at = -1);

  // ---- scheduling ---------------------------------------------------------
  /// Fair-share priority factor for the queue core's hook (higher = more
  /// under-served; deterministic in `now`).
  double priority(const std::string& user, common::TimeNs now) const;
  /// Every known user's factor in one population traversal — what the
  /// dispatcher's per-pass memo seeds itself with, so an ordering pass
  /// costs one table build instead of one per distinct user.
  std::map<std::string, double> priorities(common::TimeNs now) const;

  // ---- admin quotas -------------------------------------------------------
  void set_shares(const std::string& user, const std::string& account,
                  double shares);
  void set_rate_limit(const std::string& user, RateLimitOptions options);
  /// Per-user pending-job cap override (admission falls back to the global
  /// AdmissionPolicy::max_pending_per_user when unset). An override of 0
  /// means "unlimited for this user" — it beats a non-zero global policy.
  void set_pending_limit(const std::string& user, std::uint64_t limit);
  void clear_pending_limit(const std::string& user);
  std::optional<std::uint64_t> pending_limit(const std::string& user) const;

  // ---- REST views ---------------------------------------------------------
  /// GET /v1/usage body for one user (`pending_jobs` comes from the
  /// dispatcher, which owns the queue).
  common::Json usage_json(const std::string& user,
                          std::size_t pending_jobs) const;
  /// GET /admin/fairshare body.
  common::Json fairshare_json() const;
  /// Effective quota view for one user (POST /admin/quotas response).
  common::Json quota_json(const std::string& user) const;

  // ---- durability ---------------------------------------------------------
  /// Durable per-user usage for the store snapshot. Called by the
  /// dispatcher under its queue lock so the records are exactly consistent
  /// with the snapshot's journal watermark.
  std::vector<store::UsageRecord> usage_records(common::TimeNs now) const;
  /// Re-installs snapshot usage, then re-applies journal deltas (batches
  /// newer than the snapshot watermark) in order.
  void restore(const std::vector<store::UsageRecord>& records,
               const std::vector<store::UsageDelta>& deltas);
  /// Re-reserves a restored queued job's un-executed shots (no token, no
  /// cap check: the work was already admitted in a previous life).
  void restore_inflight(const std::string& user, std::uint64_t shots);

  UsageLedger& ledger() noexcept { return ledger_; }
  const UsageLedger& ledger() const noexcept { return ledger_; }
  FairShareIndex& fair_share() noexcept { return fair_share_; }
  RateLimiter& rate_limiter() noexcept { return rate_limiter_; }
  common::Clock* clock() const noexcept { return clock_; }

 private:
  void update_usage_metrics(const std::string& user);

  AccountingOptions options_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  UsageLedger ledger_;
  FairShareIndex fair_share_;
  RateLimiter rate_limiter_;
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> pending_limits_;
};

}  // namespace qcenv::accounting
