#include "accounting/accounting.hpp"

#include <algorithm>

namespace qcenv::accounting {

using common::Json;
using common::Status;

AccountingManager::AccountingManager(AccountingOptions options,
                                     common::Clock* clock,
                                     telemetry::MetricsRegistry* metrics)
    : options_(std::move(options)),
      clock_(clock),
      metrics_(metrics),
      ledger_(options_.ledger),
      fair_share_(options_.fair_share, &ledger_),
      rate_limiter_(options_.rate_limit) {}

Status AccountingManager::admit_submission(const std::string& user,
                                           std::uint64_t shots) {
  const Status admitted = rate_limiter_.admit(user, shots, clock_->now());
  if (!admitted.ok() && metrics_ != nullptr) {
    const bool rate = admitted.error().message().find("rate limit") !=
                      std::string::npos;
    metrics_
        ->counter("accounting_rejections_total",
                  {{"reason", rate ? "submit_rate" : "inflight_shots"}},
                  "submissions rejected by per-user rate limits")
        .increment();
  }
  return admitted;
}

void AccountingManager::release_submission(const std::string& user,
                                           std::uint64_t shots) {
  rate_limiter_.release(user, shots);
}

void AccountingManager::charge_batch(const std::string& user,
                                     std::uint64_t shots,
                                     common::DurationNs qpu_ns,
                                     common::TimeNs at) {
  ledger_.charge(user, shots, qpu_ns, 0, at >= 0 ? at : clock_->now());
  rate_limiter_.release(user, shots);
  if (metrics_ != nullptr) {
    metrics_
        ->counter("accounting_charged_shots_total", {{"user", user}},
                  "executed shots charged to the usage ledger")
        .increment(static_cast<double>(shots));
  }
  update_usage_metrics(user);
}

void AccountingManager::job_finished(const std::string& user,
                                     std::uint64_t unexecuted_shots,
                                     bool completed, common::TimeNs at) {
  rate_limiter_.release(user, unexecuted_shots);
  if (completed) {
    ledger_.charge(user, 0, 0, 1, at >= 0 ? at : clock_->now());
    update_usage_metrics(user);
  }
}

double AccountingManager::priority(const std::string& user,
                                   common::TimeNs now) const {
  return fair_share_.priority(user, now);
}

std::map<std::string, double> AccountingManager::priorities(
    common::TimeNs now) const {
  return fair_share_.priorities(now);
}

void AccountingManager::set_shares(const std::string& user,
                                   const std::string& account,
                                   double shares) {
  fair_share_.set_user(user, account, shares);
}

void AccountingManager::set_rate_limit(const std::string& user,
                                       RateLimitOptions options) {
  rate_limiter_.set_override(user, options);
}

void AccountingManager::set_pending_limit(const std::string& user,
                                          std::uint64_t limit) {
  std::scoped_lock lock(mutex_);
  // 0 is stored, not erased: it means "unlimited for this user" and must
  // beat a non-zero global policy default.
  pending_limits_[user] = limit;
}

void AccountingManager::clear_pending_limit(const std::string& user) {
  std::scoped_lock lock(mutex_);
  pending_limits_.erase(user);
}

std::optional<std::uint64_t> AccountingManager::pending_limit(
    const std::string& user) const {
  std::scoped_lock lock(mutex_);
  const auto it = pending_limits_.find(user);
  if (it == pending_limits_.end()) return std::nullopt;
  return it->second;
}

void AccountingManager::update_usage_metrics(const std::string& user) {
  if (metrics_ == nullptr) return;
  const common::TimeNs now = clock_->now();
  metrics_
      ->gauge("accounting_usage_units", {{"user", user}},
              "decayed weighted usage units per user")
      .set(ledger_.units(user, now));
  metrics_
      ->gauge("accounting_fairshare_priority", {{"user", user}},
              "fair-share priority factor per user (1 = untouched)")
      .set(fair_share_.priority(user, now));
  metrics_
      ->gauge("accounting_inflight_shots", {{"user", user}},
              "admitted-but-unfinished shots per user")
      .set(static_cast<double>(rate_limiter_.inflight_shots(user)));
}

Json AccountingManager::usage_json(const std::string& user,
                                   std::size_t pending_jobs) const {
  const common::TimeNs now = clock_->now();
  const UserUsage usage = ledger_.usage(user, now);
  const auto grant = fair_share_.share_of(user);
  Json out = Json::object();
  out["user"] = user;
  out["as_of_ns"] = now;
  Json decayed = Json::object();
  decayed["shots"] = usage.shots;
  decayed["qpu_seconds"] = usage.qpu_seconds;
  decayed["jobs"] = usage.jobs;
  decayed["units"] = ledger_.units(user, now);
  out["decayed"] = std::move(decayed);
  Json raw = Json::object();
  raw["shots"] = usage.raw_shots;
  raw["jobs"] = usage.raw_jobs;
  raw["qpu_seconds"] = common::to_seconds(usage.raw_qpu_ns);
  out["raw"] = std::move(raw);
  Json share = Json::object();
  share["account"] = grant.account;
  share["shares"] = grant.shares;
  out["share"] = std::move(share);
  out["fairshare_priority"] = fair_share_.priority(user, now);
  out["pending_jobs"] = static_cast<long long>(pending_jobs);
  out["rate_limit"] = rate_limiter_.to_json(user, now);
  out["half_life_seconds"] =
      common::to_seconds(ledger_.options().half_life);
  return out;
}

Json AccountingManager::fairshare_json() const {
  return fair_share_.to_json(clock_->now());
}

Json AccountingManager::quota_json(const std::string& user) const {
  const auto grant = fair_share_.share_of(user);
  Json out = Json::object();
  out["user"] = user;
  out["account"] = grant.account;
  out["shares"] = grant.shares;
  out["rate_limit"] = rate_limiter_.to_json(user, clock_->now());
  const auto pending = pending_limit(user);
  if (pending.has_value()) {
    out["max_pending_jobs"] = *pending;
  }
  return out;
}

std::vector<store::UsageRecord> AccountingManager::usage_records(
    common::TimeNs now) const {
  return ledger_.records(now);
}

void AccountingManager::restore(
    const std::vector<store::UsageRecord>& records,
    const std::vector<store::UsageDelta>& deltas) {
  ledger_.restore(records);
  for (const auto& delta : deltas) {
    ledger_.charge(delta.user, delta.shots, delta.qpu_ns, delta.jobs,
                   delta.time);
  }
}

void AccountingManager::restore_inflight(const std::string& user,
                                         std::uint64_t shots) {
  rate_limiter_.reserve(user, shots);
}

}  // namespace qcenv::accounting
