#include "accounting/usage_ledger.hpp"

#include <cmath>

namespace qcenv::accounting {

double UsageLedger::decay_factor(common::DurationNs dt) const {
  if (options_.half_life <= 0 || dt <= 0) return 1.0;
  return std::exp2(-static_cast<double>(dt) /
                   static_cast<double>(options_.half_life));
}

void UsageLedger::roll_forward(Entry& entry, common::TimeNs now) const {
  if (now <= entry.as_of) return;
  const double factor = decay_factor(now - entry.as_of);
  entry.shots *= factor;
  entry.qpu_seconds *= factor;
  entry.jobs *= factor;
  entry.as_of = now;
}

void UsageLedger::charge(const std::string& user, std::uint64_t shots,
                         common::DurationNs qpu_ns, std::uint64_t jobs,
                         common::TimeNs now) {
  std::scoped_lock lock(mutex_);
  Entry& entry = entries_[user];
  double delta_scale = 1.0;
  if (now >= entry.as_of) {
    roll_forward(entry, now);
  } else {
    // Replay of a charge older than the restored snapshot: decay the delta
    // to the entry's (newer) time instead of rewinding the entry.
    delta_scale = decay_factor(entry.as_of - now);
  }
  entry.shots += static_cast<double>(shots) * delta_scale;
  entry.qpu_seconds += common::to_seconds(qpu_ns) * delta_scale;
  entry.jobs += static_cast<double>(jobs) * delta_scale;
  entry.raw_shots += shots;
  entry.raw_jobs += jobs;
  entry.raw_qpu_ns += qpu_ns;
}

UsageLedger::Entry UsageLedger::decayed(const Entry& entry,
                                        common::TimeNs now) const {
  Entry copy = entry;
  roll_forward(copy, now);
  return copy;
}

UserUsage UsageLedger::to_usage(const std::string& user, const Entry& entry,
                                common::TimeNs as_of) {
  UserUsage out;
  out.user = user;
  out.shots = entry.shots;
  out.qpu_seconds = entry.qpu_seconds;
  out.jobs = entry.jobs;
  out.raw_shots = entry.raw_shots;
  out.raw_jobs = entry.raw_jobs;
  out.raw_qpu_ns = entry.raw_qpu_ns;
  out.as_of = as_of;
  return out;
}

UserUsage UsageLedger::usage(const std::string& user,
                             common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  const auto it = entries_.find(user);
  if (it == entries_.end()) return to_usage(user, Entry{}, now);
  return to_usage(user, decayed(it->second, now), now);
}

double UsageLedger::units_locked(const Entry& entry,
                                 common::TimeNs now) const {
  const Entry current = decayed(entry, now);
  return options_.shot_weight * current.shots +
         options_.qpu_second_weight * current.qpu_seconds +
         options_.job_weight * current.jobs;
}

double UsageLedger::units(const std::string& user, common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  const auto it = entries_.find(user);
  if (it == entries_.end()) return 0.0;
  return units_locked(it->second, now);
}

double UsageLedger::total_units(common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  double total = 0;
  for (const auto& [_, entry] : entries_) {
    total += units_locked(entry, now);
  }
  return total;
}

std::vector<std::string> UsageLedger::users() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [user, _] : entries_) out.push_back(user);
  return out;
}

std::vector<UserUsage> UsageLedger::list(common::TimeNs now) const {
  std::vector<UserUsage> out;
  std::scoped_lock lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [user, stored] : entries_) {
    out.push_back(to_usage(user, decayed(stored, now), now));
  }
  return out;
}

std::vector<store::UsageRecord> UsageLedger::records(
    common::TimeNs now) const {
  std::vector<store::UsageRecord> out;
  std::scoped_lock lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [user, stored] : entries_) {
    const Entry entry = decayed(stored, now);
    store::UsageRecord record;
    record.user = user;
    record.shots = entry.shots;
    record.qpu_seconds = entry.qpu_seconds;
    record.jobs = entry.jobs;
    record.raw_shots = entry.raw_shots;
    record.raw_jobs = entry.raw_jobs;
    record.raw_qpu_ns = entry.raw_qpu_ns;
    record.as_of = entry.as_of;
    out.push_back(std::move(record));
  }
  return out;
}

void UsageLedger::restore(const std::vector<store::UsageRecord>& records) {
  std::scoped_lock lock(mutex_);
  for (const auto& record : records) {
    Entry& entry = entries_[record.user];
    entry.shots = record.shots;
    entry.qpu_seconds = record.qpu_seconds;
    entry.jobs = record.jobs;
    entry.raw_shots = record.raw_shots;
    entry.raw_jobs = record.raw_jobs;
    entry.raw_qpu_ns = record.raw_qpu_ns;
    entry.as_of = record.as_of;
  }
}

}  // namespace qcenv::accounting
