#include "accounting/fair_share.hpp"

#include <cmath>

namespace qcenv::accounting {

using common::Json;

namespace {

/// Shares can be configured as 0 ("parked" user); keep the math finite.
constexpr double kMinShare = 1e-9;

double fair_factor(double normalized_usage, double normalized_share) {
  return std::exp2(-normalized_usage / std::max(normalized_share, kMinShare));
}

}  // namespace

void FairShareIndex::set_user(const std::string& user,
                              const std::string& account, double shares) {
  std::scoped_lock lock(mutex_);
  options_.user_shares[user] = {account, shares};
}

void FairShareIndex::set_account(const std::string& account, double shares) {
  std::scoped_lock lock(mutex_);
  options_.account_shares[account] = shares;
}

FairShareOptions::UserShare FairShareIndex::share_of(
    const std::string& user) const {
  std::scoped_lock lock(mutex_);
  const auto it = options_.user_shares.find(user);
  if (it != options_.user_shares.end()) return it->second;
  return {options_.default_account, options_.default_user_shares};
}

FairShareIndex::Population FairShareIndex::population_locked(
    const std::string& extra_user) const {
  Population population = options_.user_shares;
  const FairShareOptions::UserShare fallback{options_.default_account,
                                             options_.default_user_shares};
  for (const std::string& user : ledger_->users()) {
    population.emplace(user, fallback);
  }
  if (!extra_user.empty()) population.emplace(extra_user, fallback);
  return population;
}

FairShareIndex::PopulationState FairShareIndex::state_locked(
    const std::string& extra_user, common::TimeNs now) const {
  PopulationState state;
  state.population = population_locked(extra_user);
  for (const auto& [name, grant] : state.population) {
    AccountState& account = state.accounts[grant.account];
    const auto configured = options_.account_shares.find(grant.account);
    account.shares = configured != options_.account_shares.end()
                         ? configured->second
                         : options_.default_account_shares;
    account.user_shares += grant.shares;
    const double units = ledger_->units(name, now);
    state.user_units[name] = units;
    account.units += units;
    state.total_units += units;
  }
  for (const auto& [_, account] : state.accounts) {
    state.total_account_shares += account.shares;
  }
  return state;
}

double FairShareIndex::priority_locked(const std::string& user,
                                       const PopulationState& state) const {
  const auto grant_it = state.population.find(user);
  const FairShareOptions::UserShare grant =
      grant_it != state.population.end()
          ? grant_it->second
          : FairShareOptions::UserShare{options_.default_account,
                                        options_.default_user_shares};
  const auto account_it = state.accounts.find(grant.account);
  const AccountState account = account_it != state.accounts.end()
                                   ? account_it->second
                                   : AccountState{};

  const double account_share =
      state.total_account_shares > 0
          ? account.shares / state.total_account_shares
          : 1.0;
  const double account_usage =
      state.total_units > 0 ? account.units / state.total_units : 0.0;
  const double user_share =
      account.user_shares > 0 ? grant.shares / account.user_shares : 1.0;
  const auto units_it = state.user_units.find(user);
  const double own_units =
      units_it != state.user_units.end() ? units_it->second : 0.0;
  const double user_usage =
      account.units > 0 ? own_units / account.units : 0.0;
  return fair_factor(account_usage, account_share) *
         fair_factor(user_usage, user_share);
}

double FairShareIndex::priority(const std::string& user,
                                common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  return priority_locked(user, state_locked(user, now));
}

std::map<std::string, double> FairShareIndex::priorities(
    common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  const PopulationState state = state_locked("", now);
  std::map<std::string, double> out;
  for (const auto& [user, _] : state.population) {
    out.emplace(user, priority_locked(user, state));
  }
  return out;
}

Json FairShareIndex::to_json(common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  const PopulationState state = state_locked("", now);

  Json users = Json::object();
  for (const auto& [name, grant] : state.population) {
    Json entry = Json::object();
    entry["account"] = grant.account;
    entry["shares"] = grant.shares;
    entry["usage_units"] = state.user_units.at(name);
    entry["priority"] = priority_locked(name, state);
    users[name] = std::move(entry);
  }

  Json accounts = Json::object();
  for (const auto& [name, account] : state.accounts) {
    Json entry = Json::object();
    entry["shares"] = account.shares;
    entry["usage_units"] = account.units;
    entry["normalized_usage"] =
        state.total_units > 0 ? account.units / state.total_units : 0.0;
    accounts[name] = std::move(entry);
  }

  Json out = Json::object();
  out["as_of_ns"] = now;
  out["total_usage_units"] = state.total_units;
  out["accounts"] = std::move(accounts);
  out["users"] = std::move(users);
  return out;
}

}  // namespace qcenv::accounting
