// FairShareIndex: hierarchical (account -> user) fair-share priority from
// decayed usage vs. configured shares, Slurm-fair-tree style.
//
// Each account holds a share of the machine; each user holds a share of
// their account. A user's priority factor is
//
//   F = 2^(-U_acct / S_acct) * 2^(-U_user|acct / S_user|acct)
//
// where S terms are shares normalized among siblings and U terms are
// decayed usage normalized against the same population (account usage over
// total usage; user usage over account usage). F is 1.0 for an untouched
// user and decays toward 0 as the user (or their whole account) consumes
// more than their share — exactly Slurm's classic fair-share factor, with
// the parent level multiplied in so an over-served account depresses all
// of its users.
//
// Deterministic: priorities are pure functions of (config, ledger, now),
// so the queue core's hook replays identically in virtual time.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "accounting/usage_ledger.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"

namespace qcenv::accounting {

struct FairShareOptions {
  /// Account a user lands in when not explicitly configured.
  std::string default_account = "default";
  /// Shares granted to unconfigured users / accounts.
  double default_user_shares = 1.0;
  double default_account_shares = 1.0;
  /// Explicit grants (both maps may be empty: everyone is then equal).
  std::map<std::string, double> account_shares;
  struct UserShare {
    std::string account;
    double shares = 1.0;
  };
  std::map<std::string, UserShare> user_shares;
};

class FairShareIndex {
 public:
  /// `ledger` must outlive the index (the AccountingManager owns both).
  FairShareIndex(FairShareOptions options, const UsageLedger* ledger)
      : options_(std::move(options)), ledger_(ledger) {}

  /// Admin: (re)grant a user's account membership and shares.
  void set_user(const std::string& user, const std::string& account,
                double shares);
  void set_account(const std::string& account, double shares);

  /// The share grant that applies to `user` (explicit or defaults).
  FairShareOptions::UserShare share_of(const std::string& user) const;

  /// Fair-share priority factor in (0, 1]; higher = more under-served.
  double priority(const std::string& user, common::TimeNs now) const;
  /// Every known user's factor in ONE population traversal — schedulers
  /// that rank many users at the same instant (the queue core's ordering
  /// pass) seed their memo from this instead of paying a full
  /// normalization per user.
  std::map<std::string, double> priorities(common::TimeNs now) const;

  /// Full table for GET /admin/fairshare: accounts and users with shares,
  /// decayed usage units and priority factors.
  common::Json to_json(common::TimeNs now) const;

 private:
  using Population = std::map<std::string, FairShareOptions::UserShare>;
  /// Shares/usage sums the factor formula normalizes against, built once
  /// per pass.
  struct AccountState {
    double shares = 0;       // the account's own grant
    double user_shares = 0;  // sum of member user shares
    double units = 0;        // sum of member decayed usage
  };
  struct PopulationState {
    Population population;
    std::map<std::string, AccountState> accounts;
    std::map<std::string, double> user_units;
    double total_units = 0;
    double total_account_shares = 0;
  };

  /// All users the normalization ranges over: configured ∪ charged ∪ extra.
  Population population_locked(const std::string& extra_user) const;
  PopulationState state_locked(const std::string& extra_user,
                               common::TimeNs now) const;
  double priority_locked(const std::string& user,
                         const PopulationState& state) const;

  FairShareOptions options_;
  const UsageLedger* ledger_;
  mutable std::mutex mutex_;
};

}  // namespace qcenv::accounting
