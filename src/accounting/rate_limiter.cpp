#include "accounting/rate_limiter.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace qcenv::accounting {

using common::Json;
using common::Status;

void RateLimiter::set_override(const std::string& user,
                               RateLimitOptions options) {
  Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  stripe.overrides[user] = options;
  // The bucket re-primes against the new burst on its next refill.
  auto bucket = stripe.buckets.find(user);
  if (bucket != stripe.buckets.end()) {
    bucket->second.tokens =
        std::min(bucket->second.tokens, options.submit_burst);
  }
}

RateLimitOptions RateLimiter::effective_locked(
    const Stripe& stripe, const std::string& user) const {
  const auto it = stripe.overrides.find(user);
  return it != stripe.overrides.end() ? it->second : defaults_;
}

RateLimitOptions RateLimiter::effective(const std::string& user) const {
  const Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  return effective_locked(stripe, user);
}

void RateLimiter::refill_locked(Bucket& bucket,
                                const RateLimitOptions& options,
                                common::TimeNs now) const {
  if (!bucket.primed) {
    bucket.tokens = options.submit_burst;
    bucket.primed = true;
    bucket.last_refill = now;
    return;
  }
  if (now <= bucket.last_refill) return;
  bucket.tokens = std::min(
      options.submit_burst,
      bucket.tokens + options.submit_per_sec *
                          common::to_seconds(now - bucket.last_refill));
  bucket.last_refill = now;
}

Status RateLimiter::admit(const std::string& user, std::uint64_t shots,
                          common::TimeNs now) {
  Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  const RateLimitOptions options = effective_locked(stripe, user);
  Bucket& bucket = stripe.buckets[user];
  refill_locked(bucket, options, now);
  if (options.submit_per_sec > 0 && bucket.tokens < 1.0) {
    return common::err::resource_exhausted(common::format(
        "user '%s' exceeded the submit rate limit (%.2f jobs/s, burst "
        "%.0f); retry later",
        user.c_str(), options.submit_per_sec, options.submit_burst));
  }
  if (options.max_inflight_shots > 0 &&
      bucket.inflight_shots + shots > options.max_inflight_shots) {
    return common::err::resource_exhausted(common::format(
        "user '%s' would have %llu shots in flight, above the per-user cap "
        "of %llu",
        user.c_str(),
        static_cast<unsigned long long>(bucket.inflight_shots + shots),
        static_cast<unsigned long long>(options.max_inflight_shots)));
  }
  if (options.submit_per_sec > 0) bucket.tokens -= 1.0;
  bucket.inflight_shots += shots;
  return Status::ok_status();
}

void RateLimiter::reserve(const std::string& user, std::uint64_t shots) {
  Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  stripe.buckets[user].inflight_shots += shots;
}

void RateLimiter::release(const std::string& user, std::uint64_t shots) {
  Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  const auto it = stripe.buckets.find(user);
  if (it == stripe.buckets.end()) return;
  it->second.inflight_shots -= std::min(it->second.inflight_shots, shots);
}

common::DurationNs RateLimiter::retry_after(const std::string& user,
                                            common::TimeNs now) const {
  const Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  const RateLimitOptions options = effective_locked(stripe, user);
  if (options.submit_per_sec <= 0) return 0;
  const auto it = stripe.buckets.find(user);
  // Never-seen users start with a full (primed) bucket.
  if (it == stripe.buckets.end()) return 0;
  Bucket bucket = it->second;
  refill_locked(bucket, options, now);
  if (bucket.tokens >= 1.0) return 0;
  const double seconds = (1.0 - bucket.tokens) / options.submit_per_sec;
  return static_cast<common::DurationNs>(
      seconds * static_cast<double>(common::kSecond));
}

std::uint64_t RateLimiter::inflight_shots(const std::string& user) const {
  const Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  const auto it = stripe.buckets.find(user);
  return it != stripe.buckets.end() ? it->second.inflight_shots : 0;
}

Json RateLimiter::to_json(const std::string& user,
                          common::TimeNs now) const {
  const Stripe& stripe = stripe_for(user);
  std::scoped_lock lock(stripe.mutex);
  const RateLimitOptions options = effective_locked(stripe, user);
  Json out = Json::object();
  out["submit_per_sec"] = options.submit_per_sec;
  out["submit_burst"] = options.submit_burst;
  out["max_inflight_shots"] = options.max_inflight_shots;
  const auto it = stripe.buckets.find(user);
  if (it != stripe.buckets.end()) {
    Bucket bucket = it->second;
    refill_locked(bucket, options, now);
    out["tokens"] = bucket.tokens;
    out["inflight_shots"] = bucket.inflight_shots;
  } else {
    out["tokens"] = options.submit_burst;
    out["inflight_shots"] = 0;
  }
  return out;
}

}  // namespace qcenv::accounting
