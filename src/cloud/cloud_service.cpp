#include "cloud/cloud_service.hpp"

#include <thread>

#include "common/strings.hpp"

namespace qcenv::cloud {

using common::Json;
using common::Result;
using net::HttpRequest;
using net::HttpResponse;
using net::PathParams;

namespace {
HttpResponse error_response(int status, const common::Error& error) {
  Json body = Json::object();
  body["error"] = error.message();
  body["code"] = common::to_string(error.code());
  return HttpResponse::json(status, body.dump());
}

int http_status_for(common::ErrorCode code) {
  switch (code) {
    case common::ErrorCode::kNotFound: return 404;
    case common::ErrorCode::kInvalidArgument: return 400;
    case common::ErrorCode::kProtocol: return 400;
    case common::ErrorCode::kPermissionDenied: return 403;
    case common::ErrorCode::kFailedPrecondition: return 409;
    case common::ErrorCode::kResourceExhausted: return 429;
    case common::ErrorCode::kCancelled: return 410;
    default: return 500;
  }
}
}  // namespace

CloudService::CloudService(qrmi::QrmiPtr resource, CloudServiceOptions options)
    : resource_(std::move(resource)),
      options_(std::move(options)),
      server_(net::HttpServerOptions{options_.port, 4,
                                     10 * common::kSecond}),
      rng_(options_.seed) {
  install_routes();
}

CloudService::~CloudService() { stop(); }

Result<std::uint16_t> CloudService::start() { return server_.start(); }

void CloudService::stop() { server_.stop(); }

void CloudService::install_routes() {
  // Middleware: WAN latency on every call plus bearer-token auth.
  server_.set_middleware(
      [this](const HttpRequest& request) -> std::optional<HttpResponse> {
        common::DurationNs delay;
        {
          std::scoped_lock lock(rng_mutex_);
          delay = options_.latency.sample(rng_);
        }
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
        if (request.path() == "/api/v1/health") return std::nullopt;
        const auto auth = request.headers.find("Authorization");
        if (auth == request.headers.end() ||
            auth->second != "Bearer " + options_.api_key) {
          return HttpResponse::json(401, R"({"error":"unauthorized"})");
        }
        return std::nullopt;
      });

  server_.router().add(
      "GET", "/api/v1/health",
      [](const HttpRequest&, const PathParams&) {
        return HttpResponse::json(200, R"({"status":"ok"})");
      });

  server_.router().add(
      "GET", "/api/v1/device",
      [this](const HttpRequest&, const PathParams&) {
        auto spec = resource_->target();
        if (!spec.ok()) return error_response(503, spec.error());
        return HttpResponse::json(200, spec.value().to_json().dump());
      });

  server_.router().add(
      "POST", "/api/v1/jobs",
      [this](const HttpRequest& request, const PathParams&) {
        auto payload = quantum::Payload::deserialize(request.body);
        if (!payload.ok()) return error_response(400, payload.error());
        auto task = resource_->task_start(payload.value());
        if (!task.ok()) {
          return error_response(http_status_for(task.error().code()),
                                task.error());
        }
        Json body = Json::object();
        body["id"] = task.value();
        return HttpResponse::json(201, body.dump());
      });

  server_.router().add(
      "GET", "/api/v1/jobs/:id",
      [this](const HttpRequest&, const PathParams& params) {
        auto status = resource_->task_status(params.at("id"));
        if (!status.ok()) {
          return error_response(http_status_for(status.error().code()),
                                status.error());
        }
        Json body = Json::object();
        body["id"] = params.at("id");
        body["status"] = to_string(status.value());
        return HttpResponse::json(200, body.dump());
      });

  server_.router().add(
      "GET", "/api/v1/jobs/:id/result",
      [this](const HttpRequest&, const PathParams& params) {
        auto samples = resource_->task_result(params.at("id"));
        if (!samples.ok()) {
          return error_response(http_status_for(samples.error().code()),
                                samples.error());
        }
        return HttpResponse::json(200, samples.value().to_json().dump());
      });

  server_.router().add(
      "DELETE", "/api/v1/jobs/:id",
      [this](const HttpRequest&, const PathParams& params) {
        auto status = resource_->task_stop(params.at("id"));
        if (!status.ok()) {
          return error_response(http_status_for(status.error().code()),
                                status.error());
        }
        return HttpResponse::json(200, R"({"cancelled":true})");
      });
}

}  // namespace qcenv::cloud
