// Simulated vendor cloud (after Pasqal's cloud emulation service, paper
// ref [6]). Exposes any QRMI resource over a REST API with injected WAN
// latency, bearer-token auth and a job store — the loose-coupling path of
// the paper's integration taxonomy (§2.2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "net/http_server.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::cloud {

struct LatencyModel {
  common::DurationNs base = 30 * common::kMillisecond;   // one-way WAN
  common::DurationNs jitter = 10 * common::kMillisecond;  // uniform extra

  common::DurationNs sample(common::Rng& rng) const {
    return base + static_cast<common::DurationNs>(
                      rng.uniform() * static_cast<double>(jitter));
  }
};

struct CloudServiceOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  std::string api_key = "dev-key";
  LatencyModel latency;
  std::uint64_t seed = 7;
};

/// REST façade over a QRMI resource:
///   GET    /api/v1/health
///   GET    /api/v1/device
///   POST   /api/v1/jobs            body: payload JSON -> {"id": ...}
///   GET    /api/v1/jobs/:id        -> {"status": ...}
///   GET    /api/v1/jobs/:id/result -> samples JSON
///   DELETE /api/v1/jobs/:id        -> cancel
class CloudService {
 public:
  CloudService(qrmi::QrmiPtr resource, CloudServiceOptions options = {});
  ~CloudService();

  common::Result<std::uint16_t> start();
  void stop();
  std::uint16_t port() const noexcept { return server_.port(); }
  std::uint64_t requests_served() const noexcept {
    return server_.requests_served();
  }

 private:
  void install_routes();

  qrmi::QrmiPtr resource_;
  CloudServiceOptions options_;
  net::HttpServer server_;
  std::mutex rng_mutex_;
  common::Rng rng_;
};

}  // namespace qcenv::cloud
