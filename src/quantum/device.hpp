// Device specifications and calibration snapshots.
//
// DeviceSpec is what users fetch ("device characteristics needed for program
// development" in Figure 1) and what programs are validated against at the
// point of execution. The embedded CalibrationSnapshot changes over time on
// the simulated QPU (drift), which is exactly the portability hazard the
// paper's runtime revalidation addresses.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/circuit.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::quantum {

/// Time-varying device quality parameters. Nominal values represent a
/// freshly calibrated machine.
struct CalibrationSnapshot {
  std::int64_t timestamp_ns = 0;   // when the snapshot was taken
  double rabi_scale = 1.0;         // multiplicative Ω miscalibration
  double detuning_offset = 0.0;    // additive δ offset, rad/µs
  double dephasing_rate = 0.008;   // 1/µs, T2*-like phase noise strength
  double readout_p01 = 0.01;       // P(read 1 | prepared 0)
  double readout_p10 = 0.03;       // P(read 0 | prepared 1)
  double fill_success = 0.995;     // per-atom loading probability

  /// Composite quality score in (0, 1]; 1.0 = nominal. Used by monitoring
  /// dashboards and drift alerts.
  double fidelity_estimate() const;

  common::Json to_json() const;
  static common::Result<CalibrationSnapshot> from_json(const common::Json& j);
  bool operator==(const CalibrationSnapshot&) const = default;
};

/// Static device capabilities plus the current calibration snapshot.
struct DeviceSpec {
  std::string name = "sim-analog";
  std::string vendor = "qcenv";
  std::string generation = "analog-1";
  std::size_t max_qubits = 100;
  double min_atom_distance_um = 4.0;
  double max_layout_radius_um = 35.0;
  double max_amplitude = 4.0 * 3.14159265358979323846;  // rad/µs
  double max_abs_detuning = 20.0 * 3.14159265358979323846;  // rad/µs
  double c6_coefficient = 5420503.0;  // rad µs^-1 µm^6 (Rb 70S)
  DurationNsQ max_sequence_duration_ns = 100'000;
  double shot_rate_hz = 1.0;   // paper: ~1 Hz today, ~100 Hz roadmap
  bool supports_digital = false;  // analog-only production device
  CalibrationSnapshot calibration;

  /// Rydberg blockade radius at the device's max amplitude (µm):
  /// r_b = (C6 / Ω)^(1/6).
  double blockade_radius() const;

  /// Full program validation against device limits.
  common::Status validate(const Sequence& sequence) const;
  common::Status validate(const Circuit& circuit) const;

  common::Json to_json() const;
  static common::Result<DeviceSpec> from_json(const common::Json& json);

  /// A Fresnel-like analog QPU profile.
  static DeviceSpec analog_default();
  /// An emulator profile: digital support, generous limits, perfect nominal
  /// calibration.
  static DeviceSpec emulator_default(std::size_t max_qubits = 26);
};

}  // namespace qcenv::quantum
