// Gate-model circuit IR for the digital front-ends (qgate, kernelq).
//
// The native gate set of the simulated stack is {RX, RY, RZ, CZ}; richer
// gates are accepted in the IR and decomposed by the transpiler in
// src/sdk/qgate before hitting a backend that requires native gates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace qcenv::quantum {

enum class GateKind {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kRx,
  kRy,
  kRz,
  kPhase,  // diag(1, e^{i*param})
  kCz,
  kCx,
  kSwap,
};

const char* to_string(GateKind kind) noexcept;
common::Result<GateKind> gate_kind_from_string(const std::string& name);

/// True for RX/RY/RZ/PHASE (gates that carry an angle parameter).
bool is_parameterized(GateKind kind) noexcept;
/// Number of qubit operands the gate takes (1 or 2).
int arity(GateKind kind) noexcept;

struct Gate {
  GateKind kind = GateKind::kI;
  std::vector<std::size_t> qubits;  // size == arity(kind)
  double param = 0;                 // angle for parameterized gates

  common::Json to_json() const;
  static common::Result<Gate> from_json(const common::Json& json);
  bool operator==(const Gate&) const = default;
};

/// A circuit over `num_qubits` qubits, measured in the computational basis
/// at the end (terminal full measurement, as on current analog/early-digital
/// hardware).
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }

  /// Appends a gate; qubit indices are validated by validate().
  Circuit& add(GateKind kind, std::vector<std::size_t> qubits,
               double param = 0);

  // Convenience builders for the common gates.
  Circuit& h(std::size_t q) { return add(GateKind::kH, {q}); }
  Circuit& x(std::size_t q) { return add(GateKind::kX, {q}); }
  Circuit& y(std::size_t q) { return add(GateKind::kY, {q}); }
  Circuit& z(std::size_t q) { return add(GateKind::kZ, {q}); }
  Circuit& s(std::size_t q) { return add(GateKind::kS, {q}); }
  Circuit& t(std::size_t q) { return add(GateKind::kT, {q}); }
  Circuit& rx(std::size_t q, double angle) { return add(GateKind::kRx, {q}, angle); }
  Circuit& ry(std::size_t q, double angle) { return add(GateKind::kRy, {q}, angle); }
  Circuit& rz(std::size_t q, double angle) { return add(GateKind::kRz, {q}, angle); }
  Circuit& phase(std::size_t q, double angle) { return add(GateKind::kPhase, {q}, angle); }
  Circuit& cz(std::size_t a, std::size_t b) { return add(GateKind::kCz, {a, b}); }
  Circuit& cx(std::size_t control, std::size_t target) {
    return add(GateKind::kCx, {control, target});
  }
  Circuit& swap(std::size_t a, std::size_t b) { return add(GateKind::kSwap, {a, b}); }

  std::size_t size() const noexcept { return gates_.size(); }
  std::size_t two_qubit_gate_count() const;
  /// Longest chain of gates through any qubit (circuit depth).
  std::size_t depth() const;

  /// Qubit-index bounds and arity checks.
  common::Status validate() const;

  common::Json to_json() const;
  static common::Result<Circuit> from_json(const common::Json& json);
  bool operator==(const Circuit&) const = default;

 private:
  std::size_t num_qubits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qcenv::quantum
