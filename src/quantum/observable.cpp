#include "quantum/observable.hpp"

namespace qcenv::quantum {

using common::Result;
using common::Status;

Status Observable::add_term(double coefficient, const std::string& paulis) {
  if (paulis.size() != num_qubits_) {
    return common::err::invalid_argument(
        "pauli string length does not match qubit count");
  }
  for (const char c : paulis) {
    if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z') {
      return common::err::invalid_argument(
          std::string("invalid pauli character: ") + c);
    }
  }
  terms_.push_back(PauliTerm{coefficient, paulis});
  return Status::ok_status();
}

bool Observable::is_diagonal() const noexcept {
  for (const auto& term : terms_) {
    if (!term.is_diagonal()) return false;
  }
  return true;
}

Result<double> Observable::expectation_from_samples(
    const Samples& samples) const {
  if (!is_diagonal()) {
    return common::err::failed_precondition(
        "observable has X/Y terms; evaluate on a state backend");
  }
  if (samples.total_shots() == 0) {
    return common::err::invalid_argument("no shots recorded");
  }
  double total = 0;
  for (const auto& term : terms_) {
    double acc = 0;
    for (const auto& [bits, count] : samples.counts()) {
      double sign = 1.0;
      for (std::size_t q = 0; q < term.paulis.size() && q < bits.size(); ++q) {
        if (term.paulis[q] == 'Z' && bits[q] == '1') sign = -sign;
      }
      acc += sign * static_cast<double>(count);
    }
    total += term.coefficient * acc /
             static_cast<double>(samples.total_shots());
  }
  return total;
}

Observable Observable::mean_magnetization(std::size_t n) {
  Observable obs(n);
  const double w = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::string paulis(n, 'I');
    paulis[i] = 'Z';
    (void)obs.add_term(w, paulis);
  }
  return obs;
}

Observable Observable::staggered_magnetization(std::size_t n) {
  Observable obs(n);
  const double w = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::string paulis(n, 'I');
    paulis[i] = 'Z';
    (void)obs.add_term((i % 2 == 0 ? w : -w), paulis);
  }
  return obs;
}

Observable Observable::zz(std::size_t n, std::size_t a, std::size_t b) {
  Observable obs(n);
  std::string paulis(n, 'I');
  if (a < n) paulis[a] = 'Z';
  if (b < n) paulis[b] = 'Z';
  (void)obs.add_term(1.0, paulis);
  return obs;
}

}  // namespace qcenv::quantum
