#include "quantum/waveform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace qcenv::quantum {

using common::Json;
using common::JsonArray;
using common::Result;

namespace {
constexpr double kNsToUs = 1e-3;

/// Blackman window value in [0, 1] at fraction x in [0, 1]; w(0)=w(1)=0,
/// peak 1.0 at x=0.5. Integral over [0,1] is 0.42.
double blackman_window(double x) {
  return 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * x) +
         0.08 * std::cos(4.0 * std::numbers::pi * x);
}
}  // namespace

struct Waveform::Impl {
  enum class Kind { kConstant, kRamp, kBlackman, kInterpolated, kComposite };

  Kind kind = Kind::kConstant;
  DurationNsQ duration = 0;
  double a = 0;  // constant value / ramp start / blackman amplitude
  double b = 0;  // ramp stop / blackman area
  std::vector<double> values;     // interpolated nodes
  std::vector<Waveform> parts;    // composite segments

  double value_at(DurationNsQ t) const {
    if (duration <= 0) return 0;
    const double frac =
        std::clamp(static_cast<double>(t) / static_cast<double>(duration), 0.0, 1.0);
    switch (kind) {
      case Kind::kConstant: return a;
      case Kind::kRamp: return a + (b - a) * frac;
      case Kind::kBlackman: return a * blackman_window(frac);
      case Kind::kInterpolated: {
        if (values.empty()) return 0;
        if (values.size() == 1) return values.front();
        const double pos = frac * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values.size() - 1);
        const double f = pos - static_cast<double>(lo);
        return values[lo] * (1.0 - f) + values[hi] * f;
      }
      case Kind::kComposite: {
        DurationNsQ offset = t;
        for (const auto& part : parts) {
          if (offset < part.duration()) return part.value_at(offset);
          offset -= part.duration();
        }
        return parts.empty() ? 0 : parts.back().value_at(parts.back().duration());
      }
    }
    return 0;
  }
};

Waveform Waveform::constant(DurationNsQ duration, double value) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kConstant;
  impl->duration = std::max<DurationNsQ>(duration, 0);
  impl->a = value;
  return Waveform(std::move(impl));
}

Waveform Waveform::ramp(DurationNsQ duration, double start, double stop) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kRamp;
  impl->duration = std::max<DurationNsQ>(duration, 0);
  impl->a = start;
  impl->b = stop;
  return Waveform(std::move(impl));
}

Waveform Waveform::blackman(DurationNsQ duration, double area) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kBlackman;
  impl->duration = std::max<DurationNsQ>(duration, 0);
  impl->b = area;
  // integral = amplitude * 0.42 * duration_us  =>  solve for amplitude.
  const double duration_us =
      static_cast<double>(impl->duration) * kNsToUs;
  impl->a = duration_us > 0 ? area / (0.42 * duration_us) : 0.0;
  return Waveform(std::move(impl));
}

Waveform Waveform::interpolated(DurationNsQ duration,
                                std::vector<double> values) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kInterpolated;
  impl->duration = std::max<DurationNsQ>(duration, 0);
  impl->values = std::move(values);
  return Waveform(std::move(impl));
}

Waveform Waveform::composite(std::vector<Waveform> parts) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kComposite;
  impl->duration = 0;
  for (const auto& part : parts) impl->duration += part.duration();
  impl->parts = std::move(parts);
  return Waveform(std::move(impl));
}

DurationNsQ Waveform::duration() const noexcept {
  return impl_ ? impl_->duration : 0;
}

double Waveform::value_at(DurationNsQ t_ns) const {
  return impl_ ? impl_->value_at(t_ns) : 0.0;
}

std::vector<double> Waveform::sample(DurationNsQ dt_ns) const {
  std::vector<double> out;
  const DurationNsQ total = duration();
  if (total <= 0 || dt_ns <= 0) return out;
  const auto steps = static_cast<std::size_t>((total + dt_ns - 1) / dt_ns);
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const DurationNsQ mid = static_cast<DurationNsQ>(i) * dt_ns + dt_ns / 2;
    out.push_back(value_at(std::min(mid, total - 1)));
  }
  return out;
}

double Waveform::integral() const {
  if (!impl_ || impl_->duration <= 0) return 0;
  switch (impl_->kind) {
    case Impl::Kind::kConstant:
      return impl_->a * static_cast<double>(impl_->duration) * kNsToUs;
    case Impl::Kind::kRamp:
      return 0.5 * (impl_->a + impl_->b) *
             static_cast<double>(impl_->duration) * kNsToUs;
    case Impl::Kind::kBlackman:
      return impl_->b;  // constructed from the target area
    case Impl::Kind::kInterpolated: {
      // Trapezoid over the node grid.
      const auto& v = impl_->values;
      if (v.size() < 2) {
        return (v.empty() ? 0.0 : v.front()) *
               static_cast<double>(impl_->duration) * kNsToUs;
      }
      const double dt_us = static_cast<double>(impl_->duration) * kNsToUs /
                           static_cast<double>(v.size() - 1);
      double acc = 0;
      for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        acc += 0.5 * (v[i] + v[i + 1]) * dt_us;
      }
      return acc;
    }
    case Impl::Kind::kComposite: {
      double acc = 0;
      for (const auto& part : impl_->parts) acc += part.integral();
      return acc;
    }
  }
  return 0;
}

double Waveform::max_value() const {
  if (!impl_) return 0;
  switch (impl_->kind) {
    case Impl::Kind::kConstant: return impl_->a;
    case Impl::Kind::kRamp: return std::max(impl_->a, impl_->b);
    case Impl::Kind::kBlackman: return std::max(impl_->a, 0.0);
    case Impl::Kind::kInterpolated: {
      double best = impl_->values.empty() ? 0.0 : impl_->values.front();
      for (const double v : impl_->values) best = std::max(best, v);
      return best;
    }
    case Impl::Kind::kComposite: {
      double best = impl_->parts.empty() ? 0.0 : impl_->parts.front().max_value();
      for (const auto& part : impl_->parts) best = std::max(best, part.max_value());
      return best;
    }
  }
  return 0;
}

double Waveform::min_value() const {
  if (!impl_) return 0;
  switch (impl_->kind) {
    case Impl::Kind::kConstant: return impl_->a;
    case Impl::Kind::kRamp: return std::min(impl_->a, impl_->b);
    case Impl::Kind::kBlackman: return std::min(0.0, impl_->a);
    case Impl::Kind::kInterpolated: {
      double best = impl_->values.empty() ? 0.0 : impl_->values.front();
      for (const double v : impl_->values) best = std::min(best, v);
      return best;
    }
    case Impl::Kind::kComposite: {
      double best = impl_->parts.empty() ? 0.0 : impl_->parts.front().min_value();
      for (const auto& part : impl_->parts) best = std::min(best, part.min_value());
      return best;
    }
  }
  return 0;
}

Json Waveform::to_json() const {
  Json out = Json::object();
  if (!impl_) {
    out["kind"] = "constant";
    out["duration_ns"] = 0;
    out["value"] = 0.0;
    return out;
  }
  out["duration_ns"] = impl_->duration;
  switch (impl_->kind) {
    case Impl::Kind::kConstant:
      out["kind"] = "constant";
      out["value"] = impl_->a;
      break;
    case Impl::Kind::kRamp:
      out["kind"] = "ramp";
      out["start"] = impl_->a;
      out["stop"] = impl_->b;
      break;
    case Impl::Kind::kBlackman:
      out["kind"] = "blackman";
      out["area"] = impl_->b;
      break;
    case Impl::Kind::kInterpolated: {
      out["kind"] = "interpolated";
      JsonArray values;
      values.reserve(impl_->values.size());
      for (const double v : impl_->values) values.push_back(v);
      out["values"] = Json(std::move(values));
      break;
    }
    case Impl::Kind::kComposite: {
      out["kind"] = "composite";
      JsonArray parts;
      parts.reserve(impl_->parts.size());
      for (const auto& part : impl_->parts) parts.push_back(part.to_json());
      out["parts"] = Json(std::move(parts));
      break;
    }
  }
  return out;
}

Result<Waveform> Waveform::from_json(const Json& json) {
  auto kind = json.get_string("kind");
  if (!kind.ok()) return kind.error();
  auto duration = json.get_int("duration_ns");
  if (!duration.ok()) return duration.error();
  const DurationNsQ d = duration.value();
  const std::string& k = kind.value();
  if (k == "constant") {
    auto v = json.get_double("value");
    if (!v.ok()) return v.error();
    return Waveform::constant(d, v.value());
  }
  if (k == "ramp") {
    auto start = json.get_double("start");
    if (!start.ok()) return start.error();
    auto stop = json.get_double("stop");
    if (!stop.ok()) return stop.error();
    return Waveform::ramp(d, start.value(), stop.value());
  }
  if (k == "blackman") {
    auto area = json.get_double("area");
    if (!area.ok()) return area.error();
    return Waveform::blackman(d, area.value());
  }
  if (k == "interpolated") {
    const Json& values = json.at_or_null("values");
    if (!values.is_array()) {
      return common::err::protocol("interpolated waveform needs 'values'");
    }
    std::vector<double> nodes;
    nodes.reserve(values.size());
    for (const auto& v : values.as_array()) {
      if (!v.is_number()) {
        return common::err::protocol("waveform values must be numbers");
      }
      nodes.push_back(v.as_double());
    }
    return Waveform::interpolated(d, std::move(nodes));
  }
  if (k == "composite") {
    const Json& parts = json.at_or_null("parts");
    if (!parts.is_array()) {
      return common::err::protocol("composite waveform needs 'parts'");
    }
    std::vector<Waveform> segments;
    segments.reserve(parts.size());
    for (const auto& p : parts.as_array()) {
      auto seg = Waveform::from_json(p);
      if (!seg.ok()) return seg.error();
      segments.push_back(std::move(seg).value());
    }
    return Waveform::composite(std::move(segments));
  }
  return common::err::protocol("unknown waveform kind: " + k);
}

bool Waveform::operator==(const Waveform& other) const {
  // Structural equality via canonical JSON; waveforms are small.
  return to_json() == other.to_json();
}

}  // namespace qcenv::quantum
