// Analog sequences: the programmable-quantum-simulator IR.
//
// A Sequence binds an AtomRegister to a time-ordered list of pulses on a
// global Rydberg channel (amplitude Ω(t), detuning δ(t), carrier phase φ),
// optionally plus a local detuning-modulation map (per-qubit weights, one
// extra detuning waveform) as provided by neutral-atom DMMs. Sequences
// serialize to JSON and are validated against a DeviceSpec before execution —
// the paper's "ensuring program validity at the point of execution".
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/register.hpp"
#include "quantum/waveform.hpp"

namespace qcenv::quantum {

/// One pulse on the global channel. Amplitude and detuning must share the
/// same duration.
struct Pulse {
  Waveform amplitude;  // Ω(t), rad/µs, must be >= 0
  Waveform detuning;   // δ(t), rad/µs
  double phase = 0;    // carrier phase, rad

  DurationNsQ duration() const { return amplitude.duration(); }

  common::Json to_json() const;
  static common::Result<Pulse> from_json(const common::Json& json);
  bool operator==(const Pulse& other) const;
};

/// Per-qubit weights in [0, 1] scaling an extra (negative) detuning waveform.
struct DetuningMap {
  std::vector<double> weights;  // size == register size
  Waveform detuning;            // shared waveform, scaled per qubit

  common::Json to_json() const;
  static common::Result<DetuningMap> from_json(const common::Json& json);
};

/// Dense samples of a sequence on a uniform grid, ready for integration.
struct SequenceSamples {
  DurationNsQ dt_ns = 0;
  std::vector<double> omega;   // rad/µs, one per step
  std::vector<double> delta;   // rad/µs
  std::vector<double> phase;   // rad
  // Local detuning: delta_local[q][step] added to delta for qubit q.
  std::vector<std::vector<double>> delta_local;

  std::size_t steps() const { return omega.size(); }
  double total_duration_us() const {
    return static_cast<double>(dt_ns) * 1e-3 * static_cast<double>(steps());
  }
};

class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(AtomRegister reg) : register_(std::move(reg)) {}

  const AtomRegister& atom_register() const noexcept { return register_; }
  const std::vector<Pulse>& pulses() const noexcept { return pulses_; }

  /// Appends a pulse to the global channel.
  void add_pulse(Pulse pulse) { pulses_.push_back(std::move(pulse)); }

  /// Installs the (single) local detuning map. Weights must match the
  /// register size; enforced at validation time.
  void set_detuning_map(DetuningMap map) {
    detuning_map_ = std::move(map);
    has_detuning_map_ = true;
  }
  bool has_detuning_map() const noexcept { return has_detuning_map_; }
  const DetuningMap& detuning_map() const { return detuning_map_; }

  /// Total sequence duration in ns.
  DurationNsQ duration() const;

  /// Checks internal consistency (pulse durations match, amplitude >= 0,
  /// weights sized/normalized). Device-specific limits are checked by
  /// DeviceSpec::validate.
  common::Status validate() const;

  /// Samples all channels on a uniform dt grid.
  SequenceSamples sample(DurationNsQ dt_ns) const;

  common::Json to_json() const;
  static common::Result<Sequence> from_json(const common::Json& json);

  bool operator==(const Sequence& other) const;

 private:
  AtomRegister register_;
  std::vector<Pulse> pulses_;
  DetuningMap detuning_map_;
  bool has_detuning_map_ = false;
};

}  // namespace qcenv::quantum
