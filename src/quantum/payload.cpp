#include "quantum/payload.hpp"

namespace qcenv::quantum {

using common::Json;
using common::Result;

const char* to_string(PayloadKind kind) noexcept {
  switch (kind) {
    case PayloadKind::kAnalog: return "analog";
    case PayloadKind::kDigital: return "digital";
  }
  return "?";
}

Payload Payload::from_sequence(const Sequence& sequence, std::uint64_t shots) {
  Payload payload;
  payload.kind_ = PayloadKind::kAnalog;
  payload.body_ = sequence.to_json();
  payload.shots_ = shots;
  return payload;
}

Payload Payload::from_circuit(const Circuit& circuit, std::uint64_t shots) {
  Payload payload;
  payload.kind_ = PayloadKind::kDigital;
  payload.body_ = circuit.to_json();
  payload.shots_ = shots;
  return payload;
}

std::size_t Payload::num_qubits() const {
  if (kind_ == PayloadKind::kAnalog) {
    return body_.at_or_null("register").size();
  }
  const Json& n = body_.at_or_null("num_qubits");
  return n.is_int() ? static_cast<std::size_t>(n.as_int()) : 0;
}

Result<Sequence> Payload::sequence() const {
  if (kind_ != PayloadKind::kAnalog) {
    return common::err::failed_precondition("payload is not analog");
  }
  return Sequence::from_json(body_);
}

Result<Circuit> Payload::circuit() const {
  if (kind_ != PayloadKind::kDigital) {
    return common::err::failed_precondition("payload is not digital");
  }
  return Circuit::from_json(body_);
}

std::uint64_t Payload::program_hash() const {
  const std::string canonical =
      std::string(to_string(kind_)) + "|" + body_.dump();
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

Json Payload::to_json() const {
  Json out = Json::object();
  out["version"] = kVersion;
  out["kind"] = to_string(kind_);
  out["body"] = body_;
  out["shots"] = static_cast<long long>(shots_);
  out["metadata"] = metadata_;
  return out;
}

std::string Payload::serialize() const { return to_json().dump(); }

Result<Payload> Payload::from_json(const Json& json) {
  auto version = json.get_string("version");
  if (!version.ok()) return version.error();
  if (version.value() != kVersion) {
    return common::err::protocol("unsupported payload version: " +
                                 version.value());
  }
  auto kind = json.get_string("kind");
  if (!kind.ok()) return kind.error();
  Payload payload;
  if (kind.value() == "analog") {
    payload.kind_ = PayloadKind::kAnalog;
  } else if (kind.value() == "digital") {
    payload.kind_ = PayloadKind::kDigital;
  } else {
    return common::err::protocol("unknown payload kind: " + kind.value());
  }
  payload.body_ = json.at_or_null("body");
  auto shots = json.get_int("shots");
  if (!shots.ok()) return shots.error();
  if (shots.value() <= 0) {
    return common::err::invalid_argument("shots must be positive");
  }
  payload.shots_ = static_cast<std::uint64_t>(shots.value());
  if (json.contains("metadata")) {
    payload.metadata_ = json.at_or_null("metadata");
  }
  // Eagerly decode the program once so corrupt payloads are rejected at the
  // boundary, not deep inside a backend.
  if (payload.kind_ == PayloadKind::kAnalog) {
    auto seq = payload.sequence();
    if (!seq.ok()) return seq.error();
  } else {
    auto circ = payload.circuit();
    if (!circ.ok()) return circ.error();
  }
  return payload;
}

Result<Payload> Payload::deserialize(const std::string& text) {
  auto json = Json::parse(text);
  if (!json.ok()) return json.error();
  return from_json(json.value());
}

}  // namespace qcenv::quantum
