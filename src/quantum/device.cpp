#include "quantum/device.hpp"

#include <algorithm>
#include <cmath>

namespace qcenv::quantum {

using common::Json;
using common::Result;
using common::Status;

double CalibrationSnapshot::fidelity_estimate() const {
  // Heuristic composite: each deviation from nominal multiplies a penalty.
  const double rabi_penalty = std::exp(-10.0 * std::abs(rabi_scale - 1.0));
  const double detuning_penalty = std::exp(-std::abs(detuning_offset));
  const double dephasing_penalty = std::exp(-20.0 * std::max(0.0, dephasing_rate));
  const double readout_penalty =
      (1.0 - std::clamp(readout_p01, 0.0, 1.0)) *
      (1.0 - std::clamp(readout_p10, 0.0, 1.0));
  const double fill_penalty = std::clamp(fill_success, 0.0, 1.0);
  return std::clamp(rabi_penalty * detuning_penalty * dephasing_penalty *
                        readout_penalty * fill_penalty,
                    1e-9, 1.0);
}

Json CalibrationSnapshot::to_json() const {
  Json out = Json::object();
  out["timestamp_ns"] = timestamp_ns;
  out["rabi_scale"] = rabi_scale;
  out["detuning_offset"] = detuning_offset;
  out["dephasing_rate"] = dephasing_rate;
  out["readout_p01"] = readout_p01;
  out["readout_p10"] = readout_p10;
  out["fill_success"] = fill_success;
  out["fidelity_estimate"] = fidelity_estimate();
  return out;
}

Result<CalibrationSnapshot> CalibrationSnapshot::from_json(const Json& j) {
  CalibrationSnapshot snap;
  auto ts = j.get_int("timestamp_ns");
  if (!ts.ok()) return ts.error();
  snap.timestamp_ns = ts.value();
  auto field = [&](const char* key, double* dest) -> Status {
    auto v = j.get_double(key);
    if (!v.ok()) return v.error();
    *dest = v.value();
    return Status::ok_status();
  };
  QCENV_RETURN_IF_ERROR(field("rabi_scale", &snap.rabi_scale));
  QCENV_RETURN_IF_ERROR(field("detuning_offset", &snap.detuning_offset));
  QCENV_RETURN_IF_ERROR(field("dephasing_rate", &snap.dephasing_rate));
  QCENV_RETURN_IF_ERROR(field("readout_p01", &snap.readout_p01));
  QCENV_RETURN_IF_ERROR(field("readout_p10", &snap.readout_p10));
  QCENV_RETURN_IF_ERROR(field("fill_success", &snap.fill_success));
  return snap;
}

double DeviceSpec::blockade_radius() const {
  if (max_amplitude <= 0) return 0;
  return std::pow(c6_coefficient / max_amplitude, 1.0 / 6.0);
}

Status DeviceSpec::validate(const Sequence& sequence) const {
  QCENV_RETURN_IF_ERROR(sequence.validate());
  const auto& reg = sequence.atom_register();
  if (reg.size() > max_qubits) {
    return common::err::invalid_argument(
        "register has " + std::to_string(reg.size()) + " atoms; device '" +
        name + "' supports " + std::to_string(max_qubits));
  }
  if (reg.size() > 1 && reg.min_distance() < min_atom_distance_um - 1e-9) {
    return common::err::invalid_argument(
        "atoms closer than the device minimum distance of " +
        std::to_string(min_atom_distance_um) + " um");
  }
  if (reg.max_radius_from_centroid() > max_layout_radius_um + 1e-9) {
    return common::err::invalid_argument(
        "register exceeds the device layout radius of " +
        std::to_string(max_layout_radius_um) + " um");
  }
  if (sequence.duration() > max_sequence_duration_ns) {
    return common::err::invalid_argument(
        "sequence duration " + std::to_string(sequence.duration()) +
        " ns exceeds device limit " +
        std::to_string(max_sequence_duration_ns) + " ns");
  }
  for (std::size_t i = 0; i < sequence.pulses().size(); ++i) {
    const Pulse& p = sequence.pulses()[i];
    if (p.amplitude.max_value() > max_amplitude + 1e-9) {
      return common::err::invalid_argument(
          "pulse " + std::to_string(i) + " amplitude exceeds device max " +
          std::to_string(max_amplitude) + " rad/us");
    }
    if (std::max(std::abs(p.detuning.max_value()),
                 std::abs(p.detuning.min_value())) >
        max_abs_detuning + 1e-9) {
      return common::err::invalid_argument(
          "pulse " + std::to_string(i) + " detuning exceeds device range");
    }
  }
  return Status::ok_status();
}

Status DeviceSpec::validate(const Circuit& circuit) const {
  if (!supports_digital) {
    return common::err::failed_precondition(
        "device '" + name +
        "' is analog-only; run digital circuits on an emulator resource");
  }
  QCENV_RETURN_IF_ERROR(circuit.validate());
  if (circuit.num_qubits() > max_qubits) {
    return common::err::invalid_argument(
        "circuit needs " + std::to_string(circuit.num_qubits()) +
        " qubits; device supports " + std::to_string(max_qubits));
  }
  return Status::ok_status();
}

Json DeviceSpec::to_json() const {
  Json out = Json::object();
  out["name"] = name;
  out["vendor"] = vendor;
  out["generation"] = generation;
  out["max_qubits"] = static_cast<long long>(max_qubits);
  out["min_atom_distance_um"] = min_atom_distance_um;
  out["max_layout_radius_um"] = max_layout_radius_um;
  out["max_amplitude"] = max_amplitude;
  out["max_abs_detuning"] = max_abs_detuning;
  out["c6_coefficient"] = c6_coefficient;
  out["max_sequence_duration_ns"] = max_sequence_duration_ns;
  out["shot_rate_hz"] = shot_rate_hz;
  out["supports_digital"] = supports_digital;
  out["calibration"] = calibration.to_json();
  return out;
}

Result<DeviceSpec> DeviceSpec::from_json(const Json& json) {
  DeviceSpec spec;
  auto name = json.get_string("name");
  if (!name.ok()) return name.error();
  spec.name = name.value();
  spec.vendor = json.get_string("vendor").value_or("qcenv");
  spec.generation = json.get_string("generation").value_or("analog-1");
  auto max_qubits = json.get_int("max_qubits");
  if (!max_qubits.ok()) return max_qubits.error();
  spec.max_qubits = static_cast<std::size_t>(max_qubits.value());
  spec.min_atom_distance_um =
      json.at_or_null("min_atom_distance_um").is_number()
          ? json.at_or_null("min_atom_distance_um").as_double()
          : spec.min_atom_distance_um;
  spec.max_layout_radius_um =
      json.at_or_null("max_layout_radius_um").is_number()
          ? json.at_or_null("max_layout_radius_um").as_double()
          : spec.max_layout_radius_um;
  auto max_amp = json.get_double("max_amplitude");
  if (!max_amp.ok()) return max_amp.error();
  spec.max_amplitude = max_amp.value();
  auto max_det = json.get_double("max_abs_detuning");
  if (!max_det.ok()) return max_det.error();
  spec.max_abs_detuning = max_det.value();
  auto c6 = json.get_double("c6_coefficient");
  if (!c6.ok()) return c6.error();
  spec.c6_coefficient = c6.value();
  auto max_dur = json.get_int("max_sequence_duration_ns");
  if (!max_dur.ok()) return max_dur.error();
  spec.max_sequence_duration_ns = max_dur.value();
  auto shot_rate = json.get_double("shot_rate_hz");
  if (!shot_rate.ok()) return shot_rate.error();
  spec.shot_rate_hz = shot_rate.value();
  auto digital = json.get_bool("supports_digital");
  if (!digital.ok()) return digital.error();
  spec.supports_digital = digital.value();
  if (json.contains("calibration")) {
    auto cal = CalibrationSnapshot::from_json(json.at_or_null("calibration"));
    if (!cal.ok()) return cal.error();
    spec.calibration = cal.value();
  }
  return spec;
}

DeviceSpec DeviceSpec::analog_default() {
  return DeviceSpec{};  // defaults model the analog QPU
}

DeviceSpec DeviceSpec::emulator_default(std::size_t max_qubits) {
  DeviceSpec spec;
  spec.name = "sim-emulator";
  spec.generation = "emulator";
  spec.max_qubits = max_qubits;
  spec.supports_digital = true;
  spec.shot_rate_hz = 0.0;  // not shot-rate limited
  // Emulators do not enforce physical trap geometry or sequence length.
  spec.max_layout_radius_um = 1e9;
  spec.max_sequence_duration_ns = 1'000'000'000;
  spec.min_atom_distance_um = 0.0;
  spec.calibration = CalibrationSnapshot{};
  spec.calibration.dephasing_rate = 0.0;
  spec.calibration.readout_p01 = 0.0;
  spec.calibration.readout_p10 = 0.0;
  spec.calibration.fill_success = 1.0;
  return spec;
}

}  // namespace qcenv::quantum
