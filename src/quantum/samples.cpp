#include "quantum/samples.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace qcenv::quantum {

using common::Json;
using common::Result;
using common::Status;

void Samples::record(const std::string& bitstring, std::uint64_t count) {
  if (num_qubits_ == 0) num_qubits_ = bitstring.size();
  counts_[bitstring] += count;
  total_ += count;
}

double Samples::probability(const std::string& bitstring) const {
  if (total_ == 0) return 0;
  const auto it = counts_.find(bitstring);
  if (it == counts_.end()) return 0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double Samples::marginal(std::size_t qubit) const {
  if (total_ == 0 || qubit >= num_qubits_) return 0;
  std::uint64_t ones = 0;
  for (const auto& [bits, count] : counts_) {
    if (qubit < bits.size() && bits[qubit] == '1') ones += count;
  }
  return static_cast<double>(ones) / static_cast<double>(total_);
}

double Samples::mean_excitation_fraction() const {
  if (total_ == 0 || num_qubits_ == 0) return 0;
  double acc = 0;
  for (const auto& [bits, count] : counts_) {
    const auto ones = static_cast<double>(
        std::count(bits.begin(), bits.end(), '1'));
    acc += ones * static_cast<double>(count);
  }
  return acc / (static_cast<double>(total_) * static_cast<double>(num_qubits_));
}

double Samples::z_expectation(std::size_t qubit) const {
  return 1.0 - 2.0 * marginal(qubit);
}

double Samples::zz_correlation(std::size_t a, std::size_t b) const {
  if (total_ == 0) return 0;
  double acc = 0;
  for (const auto& [bits, count] : counts_) {
    const double za = (a < bits.size() && bits[a] == '1') ? -1.0 : 1.0;
    const double zb = (b < bits.size() && bits[b] == '1') ? -1.0 : 1.0;
    acc += za * zb * static_cast<double>(count);
  }
  return acc / static_cast<double>(total_);
}

double Samples::mean_abs_staggered_magnetization() const {
  if (total_ == 0 || num_qubits_ == 0) return 0;
  double acc = 0;
  for (const auto& [bits, count] : counts_) {
    double m = 0;
    for (std::size_t q = 0; q < bits.size(); ++q) {
      const double z = bits[q] == '1' ? -1.0 : 1.0;
      m += (q % 2 == 0) ? z : -z;
    }
    acc += std::abs(m) / static_cast<double>(num_qubits_) *
           static_cast<double>(count);
  }
  return acc / static_cast<double>(total_);
}

double Samples::total_variation_distance(const Samples& a, const Samples& b) {
  std::set<std::string> keys;
  for (const auto& [bits, _] : a.counts_) keys.insert(bits);
  for (const auto& [bits, _] : b.counts_) keys.insert(bits);
  double tv = 0;
  for (const auto& bits : keys) {
    tv += std::abs(a.probability(bits) - b.probability(bits));
  }
  return 0.5 * tv;
}

Status Samples::merge(const Samples& other) {
  if (num_qubits_ != 0 && other.num_qubits_ != 0 &&
      num_qubits_ != other.num_qubits_) {
    return common::err::invalid_argument(
        "cannot merge samples of different widths");
  }
  if (num_qubits_ == 0) num_qubits_ = other.num_qubits_;
  for (const auto& [bits, count] : other.counts_) {
    counts_[bits] += count;
    total_ += count;
  }
  return Status::ok_status();
}

Json Samples::to_json() const {
  Json out = Json::object();
  out["num_qubits"] = static_cast<long long>(num_qubits_);
  Json counts = Json::object();
  for (const auto& [bits, count] : counts_) {
    counts[bits] = static_cast<long long>(count);
  }
  out["counts"] = std::move(counts);
  if (!metadata_.is_null()) out["metadata"] = metadata_;
  return out;
}

Result<Samples> Samples::from_json(const Json& json) {
  auto n = json.get_int("num_qubits");
  if (!n.ok()) return n.error();
  Samples samples(static_cast<std::size_t>(n.value()));
  const Json& counts = json.at_or_null("counts");
  if (!counts.is_object()) {
    return common::err::protocol("samples need a 'counts' object");
  }
  for (const auto& [bits, count] : counts.as_object()) {
    if (!count.is_int() || count.as_int() < 0) {
      return common::err::protocol("sample counts must be non-negative ints");
    }
    samples.record(bits, static_cast<std::uint64_t>(count.as_int()));
  }
  if (json.contains("metadata")) {
    samples.set_metadata(json.at_or_null("metadata"));
  }
  return samples;
}

}  // namespace qcenv::quantum
