#include "quantum/register.hpp"

#include <limits>
#include <numbers>

namespace qcenv::quantum {

using common::Json;
using common::JsonArray;
using common::Result;

double AtomRegister::min_distance() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    for (std::size_t j = i + 1; j < positions_.size(); ++j) {
      best = std::min(best, positions_[i].distance_to(positions_[j]));
    }
  }
  return best;
}

double AtomRegister::max_radius_from_centroid() const {
  if (positions_.empty()) return 0;
  Position centroid;
  for (const auto& p : positions_) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(positions_.size());
  centroid.y /= static_cast<double>(positions_.size());
  double radius = 0;
  for (const auto& p : positions_) {
    radius = std::max(radius, centroid.distance_to(p));
  }
  return radius;
}

Json AtomRegister::to_json() const {
  JsonArray atoms;
  atoms.reserve(positions_.size());
  for (const auto& p : positions_) {
    atoms.push_back(Json::array({p.x, p.y}));
  }
  return Json(std::move(atoms));
}

Result<AtomRegister> AtomRegister::from_json(const Json& json) {
  if (!json.is_array()) {
    return common::err::protocol("register must be an array of [x,y] pairs");
  }
  std::vector<Position> positions;
  positions.reserve(json.size());
  for (const auto& item : json.as_array()) {
    if (!item.is_array() || item.size() != 2 ||
        !item.as_array()[0].is_number() || !item.as_array()[1].is_number()) {
      return common::err::protocol("register atom must be [x,y]");
    }
    positions.push_back(
        Position{item.as_array()[0].as_double(), item.as_array()[1].as_double()});
  }
  return AtomRegister(std::move(positions));
}

AtomRegister AtomRegister::linear_chain(std::size_t n, double spacing) {
  std::vector<Position> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(Position{static_cast<double>(i) * spacing, 0.0});
  }
  return AtomRegister(std::move(positions));
}

AtomRegister AtomRegister::ring(std::size_t n, double spacing) {
  std::vector<Position> positions;
  positions.reserve(n);
  if (n == 1) {
    positions.push_back(Position{0, 0});
    return AtomRegister(std::move(positions));
  }
  // Chord length between adjacent atoms equals `spacing`.
  const double theta = 2.0 * std::numbers::pi / static_cast<double>(n);
  const double radius = spacing / (2.0 * std::sin(theta / 2.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = theta * static_cast<double>(i);
    positions.push_back(
        Position{radius * std::cos(angle), radius * std::sin(angle)});
  }
  return AtomRegister(std::move(positions));
}

AtomRegister AtomRegister::square_lattice(std::size_t rows, std::size_t cols,
                                          double spacing) {
  std::vector<Position> positions;
  positions.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(Position{static_cast<double>(c) * spacing,
                                   static_cast<double>(r) * spacing});
    }
  }
  return AtomRegister(std::move(positions));
}

AtomRegister AtomRegister::triangular_lattice(std::size_t rows,
                                              std::size_t cols,
                                              double spacing) {
  std::vector<Position> positions;
  positions.reserve(rows * cols);
  const double row_height = spacing * std::numbers::sqrt3 / 2.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double x_offset = (r % 2 == 0) ? 0.0 : spacing / 2.0;
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(
          Position{x_offset + static_cast<double>(c) * spacing,
                   static_cast<double>(r) * row_height});
    }
  }
  return AtomRegister(std::move(positions));
}

}  // namespace qcenv::quantum
