// Measurement results: bitstring counts plus execution metadata.
//
// Bitstring convention: character i corresponds to qubit i ('1' = Rydberg /
// excited). Samples travel back through QRMI as JSON and carry per-job
// calibration metadata, which the paper calls out as an observability
// requirement ("per-job metadata on qubit performance").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace qcenv::quantum {

class Samples {
 public:
  Samples() = default;
  explicit Samples(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  const std::map<std::string, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  void record(const std::string& bitstring, std::uint64_t count = 1);

  std::uint64_t total_shots() const noexcept { return total_; }
  /// Empirical probability of an exact bitstring.
  double probability(const std::string& bitstring) const;
  /// P(qubit q == 1).
  double marginal(std::size_t qubit) const;
  /// Mean of (n_excited / n) over shots.
  double mean_excitation_fraction() const;
  /// <Z_q> = P(0) - P(1) on qubit q.
  double z_expectation(std::size_t qubit) const;
  /// <Z_a Z_b> two-point correlator.
  double zz_correlation(std::size_t a, std::size_t b) const;
  /// Mean per-shot |staggered magnetization|: <|sum_i (-1)^i Z_i| / n>.
  /// The Z2 crystal order parameter — unlike the signed expectation it does
  /// not average to zero over the two degenerate Neel patterns.
  double mean_abs_staggered_magnetization() const;

  /// Total-variation distance between two empirical distributions
  /// (0 = identical, 1 = disjoint). Used to verify emulator/QPU agreement.
  static double total_variation_distance(const Samples& a, const Samples& b);

  /// Merges counts from another run of the same width (batched execution).
  common::Status merge(const Samples& other);

  /// Attaches/reads execution metadata (calibration snapshot, backend name,
  /// timing). Stored as a JSON object.
  void set_metadata(common::Json metadata) { metadata_ = std::move(metadata); }
  const common::Json& metadata() const noexcept { return metadata_; }

  common::Json to_json() const;
  static common::Result<Samples> from_json(const common::Json& json);

 private:
  std::size_t num_qubits_ = 0;
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  common::Json metadata_;
};

}  // namespace qcenv::quantum
