// Payload: the portable program format.
//
// This is the "single, unchanged program" of Figure 1: an SDK lowers a
// program once into a Payload; QRMI resources transport it opaquely; each
// backend interprets it. Payloads are versioned and hashable so the runtime
// can prove that development and production executed the same program.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/circuit.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::quantum {

enum class PayloadKind { kAnalog, kDigital };

const char* to_string(PayloadKind kind) noexcept;

class Payload {
 public:
  static constexpr const char* kVersion = "qcenv.payload.v1";

  Payload() = default;

  static Payload from_sequence(const Sequence& sequence, std::uint64_t shots);
  static Payload from_circuit(const Circuit& circuit, std::uint64_t shots);

  PayloadKind kind() const noexcept { return kind_; }
  std::uint64_t shots() const noexcept { return shots_; }
  void set_shots(std::uint64_t shots) { shots_ = shots; }

  /// Number of qubits the program uses (register size or circuit width).
  std::size_t num_qubits() const;

  /// Decodes the embedded program. Errors if the kind does not match.
  common::Result<Sequence> sequence() const;
  common::Result<Circuit> circuit() const;

  /// Free-form metadata (SDK name, program name, submit-time annotations).
  common::Json& metadata() { return metadata_; }
  const common::Json& metadata() const { return metadata_; }

  /// FNV-1a hash over the canonical program encoding (excludes shots and
  /// metadata, so the same physics program hashes equally across runs).
  std::uint64_t program_hash() const;

  /// Read-only view of the opaque program body, for consumers that need
  /// to content-address a payload without re-serializing it (e.g. the
  /// durable store's journal dedup). The body never changes after
  /// construction.
  const common::Json& body() const noexcept { return body_; }

  std::string serialize() const;
  common::Json to_json() const;
  static common::Result<Payload> from_json(const common::Json& json);
  static common::Result<Payload> deserialize(const std::string& text);

 private:
  PayloadKind kind_ = PayloadKind::kAnalog;
  common::Json body_;  // serialized Sequence or Circuit
  std::uint64_t shots_ = 100;
  common::Json metadata_ = common::Json::object();
};

}  // namespace qcenv::quantum
