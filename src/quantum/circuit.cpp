#include "quantum/circuit.hpp"

#include <algorithm>

namespace qcenv::quantum {

using common::Json;
using common::JsonArray;
using common::Result;
using common::Status;

const char* to_string(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kI: return "i";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kCz: return "cz";
    case GateKind::kCx: return "cx";
    case GateKind::kSwap: return "swap";
  }
  return "?";
}

Result<GateKind> gate_kind_from_string(const std::string& name) {
  static const std::pair<const char*, GateKind> kTable[] = {
      {"i", GateKind::kI},     {"x", GateKind::kX},
      {"y", GateKind::kY},     {"z", GateKind::kZ},
      {"h", GateKind::kH},     {"s", GateKind::kS},
      {"sdg", GateKind::kSdg}, {"t", GateKind::kT},
      {"tdg", GateKind::kTdg}, {"rx", GateKind::kRx},
      {"ry", GateKind::kRy},   {"rz", GateKind::kRz},
      {"p", GateKind::kPhase}, {"cz", GateKind::kCz},
      {"cx", GateKind::kCx},   {"swap", GateKind::kSwap},
  };
  for (const auto& [text, kind] : kTable) {
    if (name == text) return kind;
  }
  return common::err::protocol("unknown gate: " + name);
}

bool is_parameterized(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
      return true;
    default:
      return false;
  }
}

int arity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kCz:
    case GateKind::kCx:
    case GateKind::kSwap:
      return 2;
    default:
      return 1;
  }
}

Json Gate::to_json() const {
  Json out = Json::object();
  out["gate"] = to_string(kind);
  JsonArray qs;
  qs.reserve(qubits.size());
  for (const std::size_t q : qubits) qs.push_back(static_cast<long long>(q));
  out["qubits"] = Json(std::move(qs));
  if (is_parameterized(kind)) out["param"] = param;
  return out;
}

Result<Gate> Gate::from_json(const Json& json) {
  auto name = json.get_string("gate");
  if (!name.ok()) return name.error();
  auto kind = gate_kind_from_string(name.value());
  if (!kind.ok()) return kind.error();
  Gate gate;
  gate.kind = kind.value();
  const Json& qs = json.at_or_null("qubits");
  if (!qs.is_array()) return common::err::protocol("gate needs 'qubits'");
  for (const auto& q : qs.as_array()) {
    if (!q.is_int()) return common::err::protocol("qubit index must be int");
    gate.qubits.push_back(static_cast<std::size_t>(q.as_int()));
  }
  if (is_parameterized(gate.kind)) {
    auto param = json.get_double("param");
    if (!param.ok()) return param.error();
    gate.param = param.value();
  }
  return gate;
}

Circuit& Circuit::add(GateKind kind, std::vector<std::size_t> qubits,
                      double param) {
  gates_.push_back(Gate{kind, std::move(qubits), param});
  return *this;
}

std::size_t Circuit::two_qubit_gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return arity(g.kind) == 2; }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(num_qubits_, 0);
  std::size_t depth = 0;
  for (const auto& gate : gates_) {
    std::size_t at = 0;
    for (const std::size_t q : gate.qubits) {
      if (q < level.size()) at = std::max(at, level[q]);
    }
    ++at;
    for (const std::size_t q : gate.qubits) {
      if (q < level.size()) level[q] = at;
    }
    depth = std::max(depth, at);
  }
  return depth;
}

Status Circuit::validate() const {
  if (num_qubits_ == 0) {
    return common::err::invalid_argument("circuit has zero qubits");
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    const std::string where = "gate " + std::to_string(i) + " (" +
                              to_string(g.kind) + ")";
    if (g.qubits.size() != static_cast<std::size_t>(arity(g.kind))) {
      return common::err::invalid_argument(where + ": wrong operand count");
    }
    for (const std::size_t q : g.qubits) {
      if (q >= num_qubits_) {
        return common::err::invalid_argument(
            where + ": qubit " + std::to_string(q) + " out of range");
      }
    }
    if (g.qubits.size() == 2 && g.qubits[0] == g.qubits[1]) {
      return common::err::invalid_argument(where + ": duplicate operands");
    }
  }
  return Status::ok_status();
}

Json Circuit::to_json() const {
  Json out = Json::object();
  out["num_qubits"] = static_cast<long long>(num_qubits_);
  JsonArray gates;
  gates.reserve(gates_.size());
  for (const auto& g : gates_) gates.push_back(g.to_json());
  out["gates"] = Json(std::move(gates));
  return out;
}

Result<Circuit> Circuit::from_json(const Json& json) {
  auto n = json.get_int("num_qubits");
  if (!n.ok()) return n.error();
  Circuit circuit(static_cast<std::size_t>(n.value()));
  const Json& gates = json.at_or_null("gates");
  if (!gates.is_array()) return common::err::protocol("circuit needs 'gates'");
  for (const auto& g : gates.as_array()) {
    auto gate = Gate::from_json(g);
    if (!gate.ok()) return gate.error();
    circuit.add(gate.value().kind, gate.value().qubits, gate.value().param);
  }
  return circuit;
}

}  // namespace qcenv::quantum
