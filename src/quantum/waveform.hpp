// Waveforms: time-dependent control parameters for analog pulses, in the
// Pulser convention — durations in nanoseconds, values in rad/µs.
//
// Waveform is a value type (cheap to copy; shares an immutable impl) with a
// small algebra: constants, ramps, Blackman envelopes, piecewise-linear
// interpolation and concatenation. Programs serialize waveforms to JSON so
// the same payload replays identically on any backend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace qcenv::quantum {

/// Duration in integer nanoseconds (device clock granularity).
using DurationNsQ = std::int64_t;

class Waveform {
 public:
  Waveform() = default;  // empty waveform, duration 0

  /// Constant `value` for `duration` ns.
  static Waveform constant(DurationNsQ duration, double value);
  /// Linear ramp from `start` to `stop` over `duration` ns.
  static Waveform ramp(DurationNsQ duration, double start, double stop);
  /// Blackman window scaled so the waveform integrates to `area`
  /// (rad, when the value is rad/µs) over `duration` ns.
  static Waveform blackman(DurationNsQ duration, double area);
  /// Piecewise-linear through `values` evenly spaced across `duration`.
  static Waveform interpolated(DurationNsQ duration,
                               std::vector<double> values);
  /// Concatenation of several segments.
  static Waveform composite(std::vector<Waveform> parts);

  DurationNsQ duration() const noexcept;
  bool empty() const noexcept { return duration() == 0; }

  /// Value at time `t_ns` in [0, duration); clamps outside.
  double value_at(DurationNsQ t_ns) const;

  /// Samples every `dt_ns` starting at dt/2 (midpoint rule), producing
  /// ceil(duration/dt) samples.
  std::vector<double> sample(DurationNsQ dt_ns) const;

  /// Time integral in rad (value treated as rad/µs, time in ns).
  double integral() const;

  /// Extremes over the duration (sampled at 1 ns resolution internally for
  /// curved shapes, exact for constants/ramps).
  double max_value() const;
  double min_value() const;

  common::Json to_json() const;
  static common::Result<Waveform> from_json(const common::Json& json);

  bool operator==(const Waveform& other) const;

 private:
  struct Impl;
  explicit Waveform(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<const Impl> impl_;
};

}  // namespace qcenv::quantum
