// Pauli-string observables. Diagonal (Z/I) observables evaluate directly
// from bitstring samples; general observables need a state backend (the
// emulator evaluates them from the wavefunction).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "quantum/samples.hpp"

namespace qcenv::quantum {

/// A single Pauli string, e.g. "ZZIZ" (character i acts on qubit i).
struct PauliTerm {
  double coefficient = 1.0;
  std::string paulis;  // characters in {I, X, Y, Z}

  bool is_diagonal() const noexcept {
    for (const char c : paulis) {
      if (c == 'X' || c == 'Y') return false;
    }
    return true;
  }
};

/// Weighted sum of Pauli strings over a fixed qubit count.
class Observable {
 public:
  Observable() = default;
  explicit Observable(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  const std::vector<PauliTerm>& terms() const noexcept { return terms_; }

  /// Adds coefficient * paulis; the string length must equal num_qubits.
  common::Status add_term(double coefficient, const std::string& paulis);

  /// True when every term contains only I/Z (sample-evaluable).
  bool is_diagonal() const noexcept;

  /// Expectation value from measurement counts; requires is_diagonal().
  common::Result<double> expectation_from_samples(const Samples& samples) const;

  // Common ready-made observables.
  /// Sum_i Z_i / n — average magnetization.
  static Observable mean_magnetization(std::size_t n);
  /// Sum_i (-1)^i Z_i / n — staggered magnetization (AFM order parameter).
  static Observable staggered_magnetization(std::size_t n);
  /// Z_a Z_b two-point correlator.
  static Observable zz(std::size_t n, std::size_t a, std::size_t b);

 private:
  std::size_t num_qubits_ = 0;
  std::vector<PauliTerm> terms_;
};

}  // namespace qcenv::quantum
