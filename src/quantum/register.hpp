// Atom register: qubit positions in the plane (µm), as used by neutral-atom
// analog devices. The register fixes the interaction graph through the
// Rydberg C6/r^6 law, so geometry is part of the program.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace qcenv::quantum {

/// A 2-D coordinate in micrometres.
struct Position {
  double x = 0;
  double y = 0;

  double distance_to(const Position& other) const {
    const double dx = x - other.x;
    const double dy = y - other.y;
    return std::sqrt(dx * dx + dy * dy);
  }
  bool operator==(const Position&) const = default;
};

/// An ordered collection of trap positions; index == qubit id.
class AtomRegister {
 public:
  AtomRegister() = default;
  explicit AtomRegister(std::vector<Position> positions)
      : positions_(std::move(positions)) {}

  std::size_t size() const noexcept { return positions_.size(); }
  bool empty() const noexcept { return positions_.empty(); }
  const Position& at(std::size_t i) const { return positions_.at(i); }
  const std::vector<Position>& positions() const noexcept { return positions_; }

  void add(Position p) { positions_.push_back(p); }

  /// Pairwise distance between qubits i and j (µm).
  double distance(std::size_t i, std::size_t j) const {
    return positions_.at(i).distance_to(positions_.at(j));
  }

  /// Smallest pairwise distance; +inf for fewer than two atoms.
  double min_distance() const;

  /// Largest distance from the register centroid (layout radius).
  double max_radius_from_centroid() const;

  common::Json to_json() const;
  static common::Result<AtomRegister> from_json(const common::Json& json);

  bool operator==(const AtomRegister&) const = default;

  // -- Lattice factories ----------------------------------------------------

  /// `n` atoms on a line with the given spacing (µm).
  static AtomRegister linear_chain(std::size_t n, double spacing);

  /// Ring of `n` atoms with the given nearest-neighbour spacing.
  static AtomRegister ring(std::size_t n, double spacing);

  /// rows x cols square lattice.
  static AtomRegister square_lattice(std::size_t rows, std::size_t cols,
                                     double spacing);

  /// Triangular lattice with `rows` rows of `cols` atoms.
  static AtomRegister triangular_lattice(std::size_t rows, std::size_t cols,
                                         double spacing);

 private:
  std::vector<Position> positions_;
};

}  // namespace qcenv::quantum
