#include "quantum/sequence.hpp"

#include <algorithm>

namespace qcenv::quantum {

using common::Json;
using common::JsonArray;
using common::Result;
using common::Status;

Json Pulse::to_json() const {
  Json out = Json::object();
  out["amplitude"] = amplitude.to_json();
  out["detuning"] = detuning.to_json();
  out["phase"] = phase;
  return out;
}

Result<Pulse> Pulse::from_json(const Json& json) {
  auto amplitude = Waveform::from_json(json.at_or_null("amplitude"));
  if (!amplitude.ok()) return amplitude.error();
  auto detuning = Waveform::from_json(json.at_or_null("detuning"));
  if (!detuning.ok()) return detuning.error();
  auto phase = json.get_double("phase");
  if (!phase.ok()) return phase.error();
  Pulse pulse;
  pulse.amplitude = std::move(amplitude).value();
  pulse.detuning = std::move(detuning).value();
  pulse.phase = phase.value();
  return pulse;
}

bool Pulse::operator==(const Pulse& other) const {
  return amplitude == other.amplitude && detuning == other.detuning &&
         phase == other.phase;
}

Json DetuningMap::to_json() const {
  Json out = Json::object();
  JsonArray w;
  w.reserve(weights.size());
  for (const double v : weights) w.push_back(v);
  out["weights"] = Json(std::move(w));
  out["detuning"] = detuning.to_json();
  return out;
}

Result<DetuningMap> DetuningMap::from_json(const Json& json) {
  const Json& w = json.at_or_null("weights");
  if (!w.is_array()) return common::err::protocol("detuning map needs weights");
  DetuningMap map;
  map.weights.reserve(w.size());
  for (const auto& v : w.as_array()) {
    if (!v.is_number()) {
      return common::err::protocol("detuning weights must be numbers");
    }
    map.weights.push_back(v.as_double());
  }
  auto wf = Waveform::from_json(json.at_or_null("detuning"));
  if (!wf.ok()) return wf.error();
  map.detuning = std::move(wf).value();
  return map;
}

DurationNsQ Sequence::duration() const {
  DurationNsQ total = 0;
  for (const auto& pulse : pulses_) total += pulse.duration();
  return total;
}

Status Sequence::validate() const {
  if (register_.empty()) {
    return common::err::invalid_argument("sequence has an empty register");
  }
  for (std::size_t i = 0; i < pulses_.size(); ++i) {
    const Pulse& p = pulses_[i];
    const std::string where = "pulse " + std::to_string(i);
    if (p.amplitude.duration() != p.detuning.duration()) {
      return common::err::invalid_argument(
          where + ": amplitude and detuning durations differ");
    }
    if (p.amplitude.duration() <= 0) {
      return common::err::invalid_argument(where + ": zero duration");
    }
    if (p.amplitude.min_value() < 0) {
      return common::err::invalid_argument(
          where + ": amplitude must be non-negative");
    }
  }
  if (has_detuning_map_) {
    if (detuning_map_.weights.size() != register_.size()) {
      return common::err::invalid_argument(
          "detuning map weight count does not match register size");
    }
    for (const double w : detuning_map_.weights) {
      if (w < 0.0 || w > 1.0) {
        return common::err::invalid_argument(
            "detuning map weights must lie in [0, 1]");
      }
    }
    if (detuning_map_.detuning.max_value() > 0.0) {
      return common::err::invalid_argument(
          "detuning map waveform must be non-positive (light shift)");
    }
  }
  return Status::ok_status();
}

SequenceSamples Sequence::sample(DurationNsQ dt_ns) const {
  SequenceSamples out;
  out.dt_ns = dt_ns;
  if (dt_ns <= 0) return out;
  for (const auto& pulse : pulses_) {
    const auto amp = pulse.amplitude.sample(dt_ns);
    const auto det = pulse.detuning.sample(dt_ns);
    const std::size_t steps = std::max(amp.size(), det.size());
    for (std::size_t i = 0; i < steps; ++i) {
      out.omega.push_back(i < amp.size() ? amp[i] : 0.0);
      out.delta.push_back(i < det.size() ? det[i] : 0.0);
      out.phase.push_back(pulse.phase);
    }
  }
  if (has_detuning_map_) {
    // The map's waveform spans the whole sequence; pad or truncate to the
    // global step grid, then scale per qubit.
    auto local = detuning_map_.detuning.sample(dt_ns);
    local.resize(out.omega.size(), 0.0);
    out.delta_local.reserve(register_.size());
    for (const double w : detuning_map_.weights) {
      std::vector<double> row(local.size());
      std::transform(local.begin(), local.end(), row.begin(),
                     [w](double v) { return w * v; });
      out.delta_local.push_back(std::move(row));
    }
  }
  return out;
}

Json Sequence::to_json() const {
  Json out = Json::object();
  out["register"] = register_.to_json();
  JsonArray pulses;
  pulses.reserve(pulses_.size());
  for (const auto& p : pulses_) pulses.push_back(p.to_json());
  out["pulses"] = Json(std::move(pulses));
  if (has_detuning_map_) out["detuning_map"] = detuning_map_.to_json();
  return out;
}

Result<Sequence> Sequence::from_json(const Json& json) {
  auto reg = AtomRegister::from_json(json.at_or_null("register"));
  if (!reg.ok()) return reg.error();
  Sequence seq(std::move(reg).value());
  const Json& pulses = json.at_or_null("pulses");
  if (!pulses.is_array()) {
    return common::err::protocol("sequence needs a 'pulses' array");
  }
  for (const auto& p : pulses.as_array()) {
    auto pulse = Pulse::from_json(p);
    if (!pulse.ok()) return pulse.error();
    seq.add_pulse(std::move(pulse).value());
  }
  if (json.contains("detuning_map")) {
    auto map = DetuningMap::from_json(json.at_or_null("detuning_map"));
    if (!map.ok()) return map.error();
    seq.set_detuning_map(std::move(map).value());
  }
  return seq;
}

bool Sequence::operator==(const Sequence& other) const {
  return to_json() == other.to_json();
}

}  // namespace qcenv::quantum
