// User sessions: "as the user part of the runtime environment connects to
// the middleware, a unique session is created, and a session token is
// returned" (§3.3). Tokens authenticate job submission; sessions carry a
// default job class and expire after inactivity.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "daemon/queue_core.hpp"

namespace qcenv::daemon {

struct Session {
  common::SessionId id;
  std::string user;
  std::string token;
  JobClass job_class = JobClass::kDevelopment;
  common::TimeNs created = 0;
  common::TimeNs last_active = 0;
};

struct SessionManagerOptions {
  common::DurationNs idle_expiry = 3600 * common::kSecond;
  std::size_t max_sessions = 1024;
  std::size_t max_sessions_per_user = 16;
};

class SessionManager {
 public:
  SessionManager(SessionManagerOptions options, common::Clock* clock)
      : options_(options), clock_(clock) {}

  common::Result<Session> create(const std::string& user, JobClass cls);

  /// Re-installs a session recovered from the durable store with its token
  /// intact (bypasses the per-user limits: the session already existed).
  void restore(const Session& session);

  /// Token -> session; refreshes last_active.
  common::Result<Session> authenticate(const std::string& token);

  common::Status close(const std::string& token);

  /// Drops and returns sessions idle beyond the expiry, so callers can
  /// clean up what the sessions owned (queued jobs, journal entries).
  std::vector<Session> expire_idle();

  std::size_t count() const;
  std::vector<Session> list() const;

 private:
  SessionManagerOptions options_;
  common::Clock* clock_;
  common::IdGenerator<common::SessionTag> ids_;
  mutable std::mutex mutex_;
  std::map<std::string, Session> by_token_;
};

}  // namespace qcenv::daemon
