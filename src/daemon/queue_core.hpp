// Second-level scheduling core (§3.3 "User sessions and job priorities").
//
// Deterministic state machine — no threads, no clocks of its own — so the
// exact same policy code runs inside the live daemon (driven by worker
// threads and a wall clock) and inside the virtual-time benches (driven by
// simkit events).
//
// Policy, as described in the paper:
//  - Three job classes: production > test > development.
//  - The scheduler always serves the highest class first (FIFO within a
//    class, with optional aging so development jobs cannot starve forever).
//  - Non-production jobs are dispatched in small shot batches "without
//    batched submission", bounding the delay a newly arrived production job
//    experiences to one small batch instead of a whole job.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace qcenv::daemon {

enum class JobClass { kProduction = 0, kTest = 1, kDevelopment = 2 };

const char* to_string(JobClass cls) noexcept;
/// Parses "production" / "test" / "development" (or "dev").
common::Result<JobClass> job_class_from_string(const std::string& text);
/// Smaller = more important.
constexpr int class_rank(JobClass cls) noexcept {
  return static_cast<int>(cls);
}

struct QueuePolicy {
  /// Serve higher classes first (false = plain FIFO, the baseline).
  bool class_priority = true;
  /// Chop non-production jobs into batches of at most this many shots
  /// (0 = dispatch whole jobs, i.e. "batched submission" for everyone).
  std::uint64_t non_production_batch_shots = 100;
  /// Anti-starvation: after each `age_to_boost` of pending time a job's
  /// effective rank improves by one class (0 = disabled).
  common::DurationNs age_to_boost = 600 * common::kSecond;
  /// Pattern-aware ordering (§3.5 future work, implemented here): within a
  /// class, serve the job with the least remaining QPU work first. Uses the
  /// "expected time running on the QC hardware" hint the paper proposes;
  /// remaining shots are the proxy.
  bool shortest_first_within_class = false;
  /// Submit-path sharding: tenants hash onto this many independent queue
  /// shards, each with its own lock, so concurrent submitters stop
  /// contending on one mutex. Dispatch order is unchanged — lanes run a
  /// tournament over the shard heads with the exact global comparator.
  /// 0 = default (8). 1 = one shared queue (the pre-sharding layout; the
  /// submit bench uses it as its hardware-normalizing baseline). The
  /// default is a fixed number, NOT hardware-derived, so seeded
  /// simulations replay identically on any machine.
  std::size_t submit_shards = 0;
};

/// One dispatchable slice of a job.
struct Batch {
  std::uint64_t job_id = 0;
  JobClass cls = JobClass::kDevelopment;
  std::uint64_t shots = 0;
  /// True when this batch completes the job.
  bool final_batch = true;
};

class PriorityQueueCore {
 public:
  explicit PriorityQueueCore(QueuePolicy policy = {}) : policy_(policy) {}

  const QueuePolicy& policy() const noexcept { return policy_; }

  /// Pluggable per-job priority within an effective-rank tier: jobs whose
  /// hook value is HIGHER dispatch first (ties fall through to
  /// shortest-first, then FIFO seq). The fair-share scheduler hands the
  /// under-served user's jobs forward through this. The hook must be a
  /// deterministic function of (job_id, now) — it is evaluated once per
  /// pending job per ordering pass, under the caller's lock — so
  /// virtual-time benches replay identically. Unset = pure FIFO tiers.
  using PriorityHook =
      std::function<double(std::uint64_t job_id, common::TimeNs now)>;
  void set_priority_hook(PriorityHook hook) {
    priority_hook_ = std::move(hook);
  }

  /// Adds a job with `total_shots` still to execute.
  void enqueue(std::uint64_t job_id, JobClass cls, std::uint64_t total_shots,
               common::TimeNs now);

  /// Same, with a caller-supplied FIFO sequence number. The sharded
  /// dispatcher allocates seqs from ONE global counter so a tournament
  /// over per-shard heads (peek_head + head_before) reproduces exactly
  /// the dispatch order a single shared queue would have produced.
  void enqueue(std::uint64_t job_id, JobClass cls, std::uint64_t total_shots,
               common::TimeNs now, std::uint64_t seq);

  /// Jobs a dispatch lane may serve (multi-resource dispatch: each lane
  /// passes the jobs placed on — or placeable on — its resource).
  using EligibleFn = std::function<bool(std::uint64_t job_id)>;

  /// Pops the next batch to dispatch, honouring class priority, aging and
  /// the small-batch policy. The job leaves the pending set until
  /// batch_done() re-queues any remainder.
  std::optional<Batch> next_batch(common::TimeNs now);
  /// Same, restricted to the highest-priority job satisfying `eligible` —
  /// lower-priority eligible jobs may overtake ineligible ones, which is
  /// what lets several resource lanes drain one queue concurrently.
  std::optional<Batch> next_batch(common::TimeNs now,
                                  const EligibleFn& eligible);

  /// True when at least one pending job satisfies `eligible`.
  bool any_pending(const EligibleFn& eligible) const;

  /// The ordering keys of the job next_batch would serve right now — the
  /// per-shard half of the sharded dispatcher's tournament: peek every
  /// shard's head, pick the globally best via head_before, then take()
  /// it from the winning shard.
  struct Head {
    std::uint64_t job_id = 0;
    JobClass cls = JobClass::kDevelopment;
    int rank = 0;            // effective class rank after aging
    bool has_hook = false;   // hook value below is meaningful
    double hook = 0.0;       // pluggable priority (higher first)
    std::uint64_t remaining_shots = 0;
    std::uint64_t seq = 0;   // global FIFO tie-break
  };
  std::optional<Head> peek_head(common::TimeNs now,
                                const EligibleFn& eligible) const;
  /// Every pending job's Head, in this core's dispatch order (global
  /// views k-way-merge several shards' lists with head_before).
  std::vector<Head> snapshot_heads(common::TimeNs now) const;

  /// Strict-weak-order over Heads matching ordered()'s comparator, so
  /// tournament selection across shards equals single-queue dispatch.
  static bool head_before(const Head& a, const Head& b,
                          bool shortest_first) noexcept;

  /// Dispatches a specific pending job (the tournament winner), applying
  /// the same batching policy next_batch would. nullopt if not pending.
  std::optional<Batch> take(std::uint64_t job_id);

  /// Reports a dispatched batch finished; re-queues the remainder (if any)
  /// at its original queue position so a job's batches stay contiguous
  /// unless something more important arrived.
  void batch_done(const Batch& batch);

  /// Reports a dispatched batch as NOT executed (resource failure): the
  /// batch's shots return to the job's remaining count and the job re-joins
  /// the pending set at its original position, so failover loses no shots.
  void batch_failed(const Batch& batch);

  /// Removes a pending job (cancellation). False if not pending here.
  bool remove(std::uint64_t job_id);

  bool pending(std::uint64_t job_id) const;
  std::size_t depth() const { return entries_.size(); }
  std::size_t depth_of(JobClass cls) const;
  /// Pending job ids in dispatch order (for the /v1/queue endpoint).
  std::vector<std::uint64_t> snapshot(common::TimeNs now) const;

 private:
  struct Entry {
    std::uint64_t job_id;
    JobClass cls;
    std::uint64_t remaining_shots;
    std::uint64_t total_shots;
    common::TimeNs enqueue_time;
    std::uint64_t seq;  // stable FIFO order within a class
  };

  int effective_rank(const Entry& entry, common::TimeNs now) const;
  /// Dispatch order: (effective rank asc, hook priority desc, optional
  /// shortest-first, seq asc).
  std::vector<const Entry*> ordered(common::TimeNs now) const;

  QueuePolicy policy_;
  PriorityHook priority_hook_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Entry> entries_;           // job_id -> entry
  std::map<std::uint64_t, Entry> in_flight_;         // dispatched, awaiting done
};

}  // namespace qcenv::daemon
