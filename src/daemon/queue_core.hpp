// Second-level scheduling core (§3.3 "User sessions and job priorities").
//
// Deterministic state machine — no threads, no clocks of its own — so the
// exact same policy code runs inside the live daemon (driven by worker
// threads and a wall clock) and inside the virtual-time benches (driven by
// simkit events).
//
// Policy, as described in the paper:
//  - Three job classes: production > test > development.
//  - The scheduler always serves the highest class first (FIFO within a
//    class, with optional aging so development jobs cannot starve forever).
//  - Non-production jobs are dispatched in small shot batches "without
//    batched submission", bounding the delay a newly arrived production job
//    experiences to one small batch instead of a whole job.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace qcenv::daemon {

enum class JobClass { kProduction = 0, kTest = 1, kDevelopment = 2 };

const char* to_string(JobClass cls) noexcept;
/// Parses "production" / "test" / "development" (or "dev").
common::Result<JobClass> job_class_from_string(const std::string& text);
/// Smaller = more important.
constexpr int class_rank(JobClass cls) noexcept {
  return static_cast<int>(cls);
}

struct QueuePolicy {
  /// Serve higher classes first (false = plain FIFO, the baseline).
  bool class_priority = true;
  /// Chop non-production jobs into batches of at most this many shots
  /// (0 = dispatch whole jobs, i.e. "batched submission" for everyone).
  std::uint64_t non_production_batch_shots = 100;
  /// Anti-starvation: after each `age_to_boost` of pending time a job's
  /// effective rank improves by one class (0 = disabled).
  common::DurationNs age_to_boost = 600 * common::kSecond;
  /// Pattern-aware ordering (§3.5 future work, implemented here): within a
  /// class, serve the job with the least remaining QPU work first. Uses the
  /// "expected time running on the QC hardware" hint the paper proposes;
  /// remaining shots are the proxy.
  bool shortest_first_within_class = false;
};

/// One dispatchable slice of a job.
struct Batch {
  std::uint64_t job_id = 0;
  JobClass cls = JobClass::kDevelopment;
  std::uint64_t shots = 0;
  /// True when this batch completes the job.
  bool final_batch = true;
};

class PriorityQueueCore {
 public:
  explicit PriorityQueueCore(QueuePolicy policy = {}) : policy_(policy) {}

  const QueuePolicy& policy() const noexcept { return policy_; }

  /// Pluggable per-job priority within an effective-rank tier: jobs whose
  /// hook value is HIGHER dispatch first (ties fall through to
  /// shortest-first, then FIFO seq). The fair-share scheduler hands the
  /// under-served user's jobs forward through this. The hook must be a
  /// deterministic function of (job_id, now) — it is evaluated once per
  /// pending job per ordering pass, under the caller's lock — so
  /// virtual-time benches replay identically. Unset = pure FIFO tiers.
  using PriorityHook =
      std::function<double(std::uint64_t job_id, common::TimeNs now)>;
  void set_priority_hook(PriorityHook hook) {
    priority_hook_ = std::move(hook);
  }

  /// Adds a job with `total_shots` still to execute.
  void enqueue(std::uint64_t job_id, JobClass cls, std::uint64_t total_shots,
               common::TimeNs now);

  /// Jobs a dispatch lane may serve (multi-resource dispatch: each lane
  /// passes the jobs placed on — or placeable on — its resource).
  using EligibleFn = std::function<bool(std::uint64_t job_id)>;

  /// Pops the next batch to dispatch, honouring class priority, aging and
  /// the small-batch policy. The job leaves the pending set until
  /// batch_done() re-queues any remainder.
  std::optional<Batch> next_batch(common::TimeNs now);
  /// Same, restricted to the highest-priority job satisfying `eligible` —
  /// lower-priority eligible jobs may overtake ineligible ones, which is
  /// what lets several resource lanes drain one queue concurrently.
  std::optional<Batch> next_batch(common::TimeNs now,
                                  const EligibleFn& eligible);

  /// True when at least one pending job satisfies `eligible`.
  bool any_pending(const EligibleFn& eligible) const;

  /// Reports a dispatched batch finished; re-queues the remainder (if any)
  /// at its original queue position so a job's batches stay contiguous
  /// unless something more important arrived.
  void batch_done(const Batch& batch);

  /// Reports a dispatched batch as NOT executed (resource failure): the
  /// batch's shots return to the job's remaining count and the job re-joins
  /// the pending set at its original position, so failover loses no shots.
  void batch_failed(const Batch& batch);

  /// Removes a pending job (cancellation). False if not pending here.
  bool remove(std::uint64_t job_id);

  bool pending(std::uint64_t job_id) const;
  std::size_t depth() const { return entries_.size(); }
  std::size_t depth_of(JobClass cls) const;
  /// Pending job ids in dispatch order (for the /v1/queue endpoint).
  std::vector<std::uint64_t> snapshot(common::TimeNs now) const;

 private:
  struct Entry {
    std::uint64_t job_id;
    JobClass cls;
    std::uint64_t remaining_shots;
    std::uint64_t total_shots;
    common::TimeNs enqueue_time;
    std::uint64_t seq;  // stable FIFO order within a class
  };

  int effective_rank(const Entry& entry, common::TimeNs now) const;
  /// Dispatch order: (effective rank asc, hook priority desc, optional
  /// shortest-first, seq asc).
  std::vector<const Entry*> ordered(common::TimeNs now) const;

  QueuePolicy policy_;
  PriorityHook priority_hook_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Entry> entries_;           // job_id -> entry
  std::map<std::uint64_t, Entry> in_flight_;         // dispatched, awaiting done
};

}  // namespace qcenv::daemon
