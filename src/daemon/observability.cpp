#include "daemon/observability.hpp"

#include <set>
#include <utility>

#include "broker/broker.hpp"
#include "common/strings.hpp"
#include "daemon/dispatcher.hpp"

namespace qcenv::daemon {

namespace {

telemetry::Severity event_severity(telemetry::AlertSeverity severity) {
  switch (severity) {
    case telemetry::AlertSeverity::kCritical:
      return telemetry::Severity::kError;
    case telemetry::AlertSeverity::kWarning:
      return telemetry::Severity::kWarn;
    case telemetry::AlertSeverity::kInfo:
      return telemetry::Severity::kInfo;
  }
  return telemetry::Severity::kInfo;
}

bool is_drift_rule(const std::string& rule) {
  return rule.rfind("calibration_drift", 0) == 0;
}

bool is_slo_rule(const std::string& rule) {
  return rule.rfind("slo_", 0) == 0;
}

}  // namespace

ObservabilityPipeline::ObservabilityPipeline(
    ObservabilityOptions options, telemetry::MetricsRegistry* registry,
    telemetry::EventLog* events, common::Clock* clock)
    : options_(std::move(options)),
      registry_(registry),
      events_(events),
      clock_(clock),
      tsdb_(options_.tsdb_retention) {
  telemetry::CollectorOptions collector_options;
  collector_options.interval = options_.scrape_interval;
  collector_options.scrape_all_overdue = options_.scrape_all_overdue;
  collector_ = std::make_unique<telemetry::MetricsCollector>(
      registry_, &tsdb_, clock_, collector_options);

  telemetry::FlightRecorderOptions recorder_options;
  recorder_options.dump_path = options_.dump_path;
  recorder_options.event_tail = options_.flight_event_tail;
  recorder_ = std::make_unique<telemetry::FlightRecorder>(
      recorder_options, events_, &tsdb_, clock_);

  alerts_.add_sink(
      [this](const telemetry::AlertRecord& record) { on_alert(record); });
}

ObservabilityPipeline::~ObservabilityPipeline() { stop(); }

common::DurationNs ObservabilityPipeline::short_window() const noexcept {
  return options_.slo_short_window > 0 ? options_.slo_short_window
                                       : 5 * options_.scrape_interval;
}

common::DurationNs ObservabilityPipeline::long_window() const noexcept {
  return options_.slo_long_window > 0 ? options_.slo_long_window
                                      : 20 * options_.scrape_interval;
}

void ObservabilityPipeline::attach(Dispatcher* dispatcher,
                                   broker::ResourceBroker* broker) {
  dispatcher_ = dispatcher;
  broker_ = broker;
  install_samplers();
  install_rules();
  recorder_->set_info_provider([this] { return status_json(); });
  if (options_.arm_signal_handler) recorder_->arm_signal_handler();
}

void ObservabilityPipeline::install_samplers() {
  if (dispatcher_ != nullptr) {
    // Per-tenant SLO signals: per-tick deltas of the dispatcher's
    // cumulative counters (latency / submit-rejection SLOs) plus an
    // instantaneous queue-age split (queue-wait SLO). All stamped at the
    // grid deadline, so burn-rate windows are replayable.
    collector_->add_sampler([this](common::TimeNs stamp,
                                   telemetry::TimeSeriesDb& tsdb) {
      const auto counts = dispatcher_->slo_counts();
      const auto split =
          dispatcher_->queue_wait_split(stamp, options_.queue_wait_slo);
      std::scoped_lock lock(slo_mutex_);
      std::set<std::string> users;
      for (const auto& [user, slo] : counts) users.insert(user);
      for (const auto& [user, n] : rejected_) users.insert(user);
      for (const auto& [user, s] : split) users.insert(user);
      for (const std::string& user : users) {
        SloBaseline& base = slo_baseline_[user];
        Dispatcher::UserSlo slo;
        if (auto it = counts.find(user); it != counts.end()) {
          slo = it->second;
        }
        std::uint64_t rejected = 0;
        if (auto it = rejected_.find(user); it != rejected_.end()) {
          rejected = it->second;
        }
        const std::uint64_t d_submitted = slo.submitted - base.submitted;
        const std::uint64_t d_completed = slo.completed - base.completed;
        const std::uint64_t d_over = slo.latency_over - base.latency_over;
        const std::uint64_t d_rejected = rejected - base.rejected;
        base = SloBaseline{slo.submitted, slo.completed, slo.latency_over,
                           rejected};

        const telemetry::Tags tags{{"user", user}};
        tsdb.write("slo_submit_ok", tags, stamp,
                   static_cast<double>(d_submitted));
        tsdb.write("slo_submit_rejected", tags, stamp,
                   static_cast<double>(d_rejected));
        tsdb.write("slo_latency_ok", tags, stamp,
                   static_cast<double>(d_completed - d_over));
        tsdb.write("slo_latency_bad", tags, stamp,
                   static_cast<double>(d_over));
        Dispatcher::QueueWaitSplit wait;
        if (auto it = split.find(user); it != split.end()) {
          wait = it->second;
        }
        tsdb.write("slo_queue_wait_ok", tags, stamp,
                   static_cast<double>(wait.within));
        tsdb.write("slo_queue_wait_bad", tags, stamp,
                   static_cast<double>(wait.over));
      }
    });
  }
  if (broker_ != nullptr) {
    // Fresh calibration scores straight into the TSDB (the drift rules'
    // input series). sample_scores() also refreshes the broker's
    // Prometheus gauges as a side effect.
    collector_->add_sampler(
        [this](common::TimeNs stamp, telemetry::TimeSeriesDb& tsdb) {
          for (const auto& [name, score] : broker_->sample_scores()) {
            tsdb.write("calibration_score", {{"resource", name}}, stamp,
                       score);
          }
        });
  }
}

void ObservabilityPipeline::install_rules() {
  const common::DurationNs short_w = short_window();
  const common::DurationNs long_w = long_window();
  auto burn = [&](std::string name, std::string bad, std::string good,
                  telemetry::AlertSeverity severity) {
    telemetry::BurnRateRule rule;
    rule.name = std::move(name);
    rule.bad_measurement = std::move(bad);
    rule.good_measurement = std::move(good);
    rule.group_tag = "user";
    rule.objective = options_.slo_objective;
    rule.burn_threshold = options_.burn_threshold;
    rule.short_window = short_w;
    rule.long_window = long_w;
    rule.severity = severity;
    alerts_.add_burn_rule(std::move(rule));
  };
  burn("slo_queue_wait", "slo_queue_wait_bad", "slo_queue_wait_ok",
       telemetry::AlertSeverity::kWarning);
  burn("slo_latency", "slo_latency_bad", "slo_latency_ok",
       telemetry::AlertSeverity::kWarning);
  burn("slo_submit", "slo_submit_rejected", "slo_submit_ok",
       telemetry::AlertSeverity::kWarning);

  if (options_.drift_rules && broker_ != nullptr) {
    for (const std::string& name : broker_->names()) {
      const telemetry::SeriesKey series{"calibration_score",
                                        {{"resource", name}}};
      telemetry::AlertRule ewma;
      ewma.name = "calibration_drift_ewma";
      ewma.series = series;
      ewma.label = name;
      ewma.severity = telemetry::AlertSeverity::kWarning;
      ewma.detector = telemetry::EwmaDetector(
          options_.drift_ewma_alpha, options_.drift_ewma_k,
          options_.drift_warmup);
      alerts_.add_rule(std::move(ewma));

      telemetry::AlertRule cusum;
      cusum.name = "calibration_drift_cusum";
      cusum.series = series;
      cusum.label = name;
      cusum.severity = telemetry::AlertSeverity::kCritical;
      cusum.detector = telemetry::CusumDetector(
          options_.drift_cusum_slack, options_.drift_cusum_threshold,
          options_.drift_warmup);
      alerts_.add_rule(std::move(cusum));
    }
  }
}

void ObservabilityPipeline::on_alert(const telemetry::AlertRecord& record) {
  const bool fired = record.active();
  const std::string user = is_slo_rule(record.rule) ? record.label : "";
  if (events_ != nullptr) {
    if (fired) {
      events_->log(record.fired_at, event_severity(record.severity),
                   "alert_fired",
                   record.rule + "/" + record.label + ": " + record.detail,
                   user);
    } else {
      events_->log(record.resolved_at, telemetry::Severity::kInfo,
                   "alert_resolved", record.rule + "/" + record.label, user);
    }
  }
  // Drift going critical feeds the broker an advisory against the drifting
  // resource — groundwork for calibration-aware routing (no placement
  // change yet; the advisory is operator-visible on /v1/resources).
  if (broker_ != nullptr && is_drift_rule(record.rule) &&
      record.severity == telemetry::AlertSeverity::kCritical) {
    if (fired) {
      broker_->advise(record.label, record.rule + ": " + record.detail);
      if (events_ != nullptr) {
        events_->log(record.fired_at, telemetry::Severity::kWarn,
                     "broker_advisory",
                     "calibration drift advisory on " + record.label);
      }
    } else {
      broker_->clear_advisory(record.label);
    }
  }
}

void ObservabilityPipeline::tick_at(common::TimeNs deadline) {
  if (!options_.enabled) return;
  collector_->scrape_at(deadline);
  evaluate_at(deadline);
}

void ObservabilityPipeline::run_pending(common::TimeNs now) {
  if (!options_.enabled) return;
  collector_->run_pending(now);
  const common::TimeNs last = collector_->last_scrape();
  if (last >= 0 && last != last_evaluated_) evaluate_at(last);
}

void ObservabilityPipeline::evaluate_at(common::TimeNs deadline) {
  alerts_.evaluate(tsdb_, deadline);
  last_evaluated_ = deadline;
  recorder_->heartbeat("scrape_loop");
  recorder_->refresh();
}

void ObservabilityPipeline::note_rejected(const std::string& user) {
  if (!options_.enabled) return;
  std::scoped_lock lock(slo_mutex_);
  ++rejected_[user];
}

void ObservabilityPipeline::start() {
  if (!options_.enabled || !options_.scrape_thread) return;
  if (scraper_.joinable()) return;
  scraper_ = std::jthread([this](std::stop_token stop) {
    // 50 ms slices: reacts to stop quickly, cheap no-op between deadlines.
    while (!stop.stop_requested()) {
      run_pending(clock_->now());
      clock_->sleep_for(50 * common::kMillisecond);
    }
  });
}

void ObservabilityPipeline::stop() {
  if (scraper_.joinable()) {
    scraper_.request_stop();
    scraper_.join();
  }
}

common::Json ObservabilityPipeline::status_json() const {
  common::Json out = common::Json::object();
  out["enabled"] = options_.enabled;
  out["scrape_interval_ms"] =
      options_.scrape_interval / common::kMillisecond;
  out["scrapes"] = collector_->scrape_count();
  out["missed_scrapes"] = collector_->missed_count();
  out["last_scrape_ns"] = collector_->last_scrape();
  out["alert_rules"] = alerts_.rule_count();
  out["active_alerts"] = alerts_.active().size();
  out["flight_dumps"] = recorder_->dump_count();
  return out;
}

}  // namespace qcenv::daemon
