#include "daemon/sessions.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace qcenv::daemon {

using common::Result;
using common::Status;

Result<Session> SessionManager::create(const std::string& user,
                                       JobClass cls) {
  if (user.empty()) {
    return common::err::invalid_argument("session user must not be empty");
  }
  std::scoped_lock lock(mutex_);
  if (by_token_.size() >= options_.max_sessions) {
    return common::err::resource_exhausted("session table full");
  }
  std::size_t user_sessions = 0;
  for (const auto& [_, session] : by_token_) {
    if (session.user == user) ++user_sessions;
  }
  if (user_sessions >= options_.max_sessions_per_user) {
    return common::err::resource_exhausted(
        "user '" + user + "' has too many open sessions");
  }
  Session session;
  session.id = ids_.next();
  session.user = user;
  session.token = common::random_token(16);
  session.job_class = cls;
  session.created = clock_->now();
  session.last_active = session.created;
  by_token_[session.token] = session;
  return session;
}

Result<Session> SessionManager::authenticate(const std::string& token) {
  std::scoped_lock lock(mutex_);
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) {
    return common::err::permission_denied("invalid session token");
  }
  it->second.last_active = clock_->now();
  return it->second;
}

Status SessionManager::close(const std::string& token) {
  std::scoped_lock lock(mutex_);
  if (by_token_.erase(token) == 0) {
    return common::err::not_found("no such session");
  }
  return Status::ok_status();
}

void SessionManager::restore(const Session& session) {
  std::scoped_lock lock(mutex_);
  // New sessions must never reuse a restored id: cancel_for_session and
  // job ownership key on it.
  ids_.reserve_through(session.id.value);
  Session restored = session;
  // Activity between the last journaled event and the crash is unknown;
  // assume active-now so a routine expiry sweep right after recovery
  // cannot invalidate tokens (and cancel jobs) that were in live use.
  restored.last_active = std::max(restored.last_active, clock_->now());
  by_token_[restored.token] = restored;
}

std::vector<Session> SessionManager::expire_idle() {
  std::scoped_lock lock(mutex_);
  const common::TimeNs now = clock_->now();
  std::vector<Session> removed;
  for (auto it = by_token_.begin(); it != by_token_.end();) {
    if (now - it->second.last_active > options_.idle_expiry) {
      removed.push_back(it->second);
      it = by_token_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t SessionManager::count() const {
  std::scoped_lock lock(mutex_);
  return by_token_.size();
}

std::vector<Session> SessionManager::list() const {
  std::scoped_lock lock(mutex_);
  std::vector<Session> out;
  out.reserve(by_token_.size());
  for (const auto& [_, session] : by_token_) out.push_back(session);
  return out;
}

}  // namespace qcenv::daemon
