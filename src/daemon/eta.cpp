#include "daemon/eta.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/strings.hpp"

namespace qcenv::daemon {

using common::Json;
using common::Result;

namespace {

Json window_json(common::TimeNs earliest, common::TimeNs latest) {
  Json out = Json::object();
  out["earliest_ns"] = earliest;
  out["latest_ns"] = latest;
  return out;
}

bool is_terminal(DaemonJobState state) {
  return state == DaemonJobState::kCompleted ||
         state == DaemonJobState::kFailed ||
         state == DaemonJobState::kCancelled;
}

}  // namespace

Json EtaEstimate::to_json() const {
  Json out = Json::object();
  out["job_id"] = static_cast<long long>(job_id);
  out["user"] = user;
  out["state"] = state;
  out["computed_at_ns"] = computed_at;
  out["jobs_ahead"] = static_cast<long long>(jobs_ahead);
  out["batches_ahead"] = static_cast<long long>(batches_ahead);
  out["active_lanes"] = static_cast<long long>(active_lanes);
  out["batch_latency_ns"] = static_cast<long long>(batch_latency);
  out["bounded"] = bounded;
  out["confidence"] = confidence;
  out["start"] = window_json(start_earliest, start_latest);
  out["finish"] = window_json(finish_earliest, finish_latest);
  Json list = Json::array();
  for (const auto& pressure : pressures) list.push_back(pressure.to_json());
  out["pressures"] = std::move(list);
  return out;
}

std::uint64_t EtaEngine::batches_of(JobClass cls,
                                    std::uint64_t shots) const {
  if (shots == 0) return 0;
  const std::uint64_t batch = deps_.policy.non_production_batch_shots;
  // The queue core dispatches production jobs whole and slices the rest
  // (queue_core.cpp take()); the backlog model must count the same way.
  if (batch == 0 || cls == JobClass::kProduction) return 1;
  return (shots + batch - 1) / batch;
}

common::DurationNs EtaEngine::historical_batch_latency(
    common::TimeNs now) const {
  if (deps_.tsdb == nullptr || deps_.broker == nullptr) {
    return options_.default_batch_latency;
  }
  const common::TimeNs start =
      now > options_.latency_lookback ? now - options_.latency_lookback : 0;
  // The scrape loop lands the qrmi_execute histogram in the TSDB as
  // cumulative _sum/_count series per resource; the window's increase of
  // each (reset-tolerant, same rule as Aggregation::kRate) gives the mean
  // per-batch latency actually observed over the lookback.
  const auto increase = [&](const telemetry::SeriesKey& key) -> double {
    const auto points = deps_.tsdb->query_range(key, start, now);
    if (points.size() < 2) return 0.0;
    double total = 0.0;
    double prev = points.front().value;
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double value = points[i].value;
      total += value >= prev ? value - prev : value;
      prev = value;
    }
    return total;
  };
  double dsum = 0.0;
  double dcount = 0.0;
  for (const auto& status : deps_.broker->snapshot()) {
    const telemetry::Tags tags{{"resource", status.name},
                               {"stage", "qrmi_execute"}};
    dsum += increase({"daemon_stage_seconds_sum", tags});
    dcount += increase({"daemon_stage_seconds_count", tags});
  }
  if (dcount < 1.0 || dsum <= 0.0) return options_.default_batch_latency;
  return static_cast<common::DurationNs>(
      dsum / dcount * static_cast<double>(common::kSecond));
}

common::DurationNs EtaEngine::outage_overlap(common::TimeNs begin,
                                             common::TimeNs end,
                                             const std::string& pinned) const {
  if (deps_.events == nullptr || deps_.broker == nullptr || end <= begin) {
    return 0;
  }
  const auto fleet = deps_.broker->names();
  if (fleet.empty()) return end - begin;
  // Replay drain/outage transitions from the event log and sweep the
  // windows where no lane could serve the job. Events evicted from the
  // ring default to "everything up", which is the daemon's boot state.
  std::set<std::string> down;
  std::set<std::string> draining;
  bool global = false;
  const auto blocked = [&]() {
    if (global) return true;
    if (!pinned.empty()) {
      return down.count(pinned) > 0 || draining.count(pinned) > 0;
    }
    std::size_t unavailable = 0;
    for (const auto& name : fleet) {
      if (down.count(name) > 0 || draining.count(name) > 0) ++unavailable;
    }
    return unavailable >= fleet.size();
  };
  common::DurationNs overlap = 0;
  bool active = false;
  common::TimeNs active_since = begin;
  const auto flush = [&](common::TimeNs upto) {
    if (!active) return;
    const common::TimeNs lo = std::max(active_since, begin);
    const common::TimeNs hi = std::min(upto, end);
    if (hi > lo) overlap += hi - lo;
  };
  const auto events = deps_.events->since(
      0, std::numeric_limits<std::size_t>::max(), telemetry::EventLog::Filter{});
  for (const auto& event : events) {
    // These kinds carry the resource name as their message (see the
    // dispatcher/broker logging sites).
    if (event.kind == "drain_all") {
      flush(event.at);
      global = true;
    } else if (event.kind == "resume_all") {
      flush(event.at);
      global = false;
    } else if (event.kind == "resource_down") {
      flush(event.at);
      down.insert(event.message);
    } else if (event.kind == "resource_up") {
      flush(event.at);
      down.erase(event.message);
    } else if (event.kind == "resource_drain") {
      flush(event.at);
      draining.insert(event.message);
    } else if (event.kind == "resource_resume") {
      flush(event.at);
      draining.erase(event.message);
    } else {
      continue;
    }
    const bool now_blocked = blocked();
    if (now_blocked && !active) {
      active = true;
      active_since = event.at;
    } else if (!now_blocked) {
      active = false;
    }
  }
  flush(end);
  return overlap;
}

Result<EtaEstimate> EtaEngine::estimate(std::uint64_t job_id) const {
  auto queried = deps_.dispatcher->query(job_id);
  if (!queried.ok()) return queried.error();
  const DaemonJob job = std::move(queried).value();
  const common::TimeNs now = deps_.clock->now();

  EtaEstimate out;
  out.job_id = job.id;
  out.user = job.user;
  out.state = to_string(job.state);
  out.computed_at = now;
  out.batch_latency = historical_batch_latency(now);

  if (is_terminal(job.state)) {
    // Actuals, not predictions. Jobs cancelled before their first
    // dispatch never started: the start window stays the -1 sentinel.
    if (job.first_dispatch_time > 0) {
      out.start_earliest = job.first_dispatch_time;
      out.start_latest = job.first_dispatch_time;
    } else {
      out.start_earliest = -1;
    }
    out.finish_earliest = job.finish_time;
    out.finish_latest = job.finish_time;
    out.confidence = 1.0;
    return out;
  }

  const common::DurationNs tau =
      std::max<common::DurationNs>(out.batch_latency, 1);

  if (job.state == DaemonJobState::kRunning) {
    out.start_earliest = job.first_dispatch_time;
    out.start_latest = job.first_dispatch_time;
    const std::uint64_t own =
        batches_of(job.job_class, job.total_shots - job.shots_done) + 1;
    out.bounded = !deps_.dispatcher->draining();
    out.confidence = out.bounded ? options_.confidence : 0.0;
    out.finish_earliest = now;
    out.finish_latest =
        out.bounded ? now + options_.finish_slack +
                          static_cast<common::DurationNs>(
                              options_.margin * static_cast<double>(own) *
                              static_cast<double>(tau))
                    : -1;
    return out;
  }

  // Queued: simulate the tournament over one consistent shard snapshot.
  const auto snap = deps_.dispatcher->pending_snapshot();
  std::size_t index = snap.entries.size();
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    if (snap.entries[i].job_id == job.id) {
      index = i;
      break;
    }
  }
  // Absent from the snapshot = a lane claimed it between query and
  // snapshot; it is effectively next.
  std::uint64_t batches_ahead = 0;
  std::size_t better_ranked = 0;
  std::map<std::string, double> outranking;
  const Dispatcher::PendingView* me =
      index < snap.entries.size() ? &snap.entries[index] : nullptr;
  if (me != nullptr) {
    out.jobs_ahead = index;
    for (std::size_t i = 0; i < index; ++i) {
      const auto& entry = snap.entries[i];
      batches_ahead += batches_of(entry.cls, entry.remaining_shots);
      if (entry.has_hook && me->has_hook && entry.user != me->user &&
          entry.hook > me->hook + 1e-9) {
        ++better_ranked;
        auto [it, inserted] = outranking.try_emplace(entry.user, entry.hook);
        if (!inserted) it->second = std::max(it->second, entry.hook);
      }
    }
  }
  out.batches_ahead = batches_ahead;

  const bool pinned = me != nullptr && me->pinned;
  const std::string pinned_resource = pinned ? me->resource : "";
  std::vector<std::string> impaired;
  for (const auto& status : deps_.broker->snapshot()) {
    const bool usable = status.healthy && !status.draining;
    if (!usable) impaired.push_back(status.name);
    if (!usable) continue;
    if (pinned && status.name != pinned_resource) continue;
    ++out.active_lanes;
  }
  if (deps_.dispatcher->draining()) out.active_lanes = 0;

  out.bounded = out.active_lanes > 0;
  out.confidence = out.bounded ? options_.confidence : 0.0;
  out.start_earliest = snap.now;
  out.finish_earliest = snap.now;
  if (out.bounded) {
    const double backlog = static_cast<double>(batches_ahead) *
                           static_cast<double>(tau) /
                           static_cast<double>(out.active_lanes);
    out.start_latest =
        snap.now + options_.start_slack +
        static_cast<common::DurationNs>(options_.margin * backlog);
    const std::uint64_t own = batches_of(job.job_class, job.total_shots);
    out.finish_latest =
        out.start_latest + options_.finish_slack +
        static_cast<common::DurationNs>(options_.margin *
                                        static_cast<double>(own) *
                                        static_cast<double>(tau));
  }

  // Live pressure signals (forecasts, not a partition).
  if (deps_.accounting != nullptr) {
    const common::DurationNs retry =
        deps_.accounting->rate_limiter().retry_after(job.user, now);
    if (retry > 0) {
      out.pressures.push_back(telemetry::WaitCause{
          "rate_limited", retry,
          common::format("token bucket empty; refills in %.3fs",
                         common::to_seconds(retry))});
    }
  }
  if (better_ranked > 0) {
    std::string detail = common::format(
        "%zu job(s) ahead hold better fair-share rank", better_ranked);
    out.pressures.push_back(
        telemetry::WaitCause{"fair_share_demotion", 0, std::move(detail)});
  }
  if (!out.bounded || !impaired.empty()) {
    std::string detail = out.bounded ? "impaired: " : "no eligible lane: ";
    detail += impaired.empty() ? std::string("dispatch drained")
                               : common::join(impaired, ", ");
    out.pressures.push_back(
        telemetry::WaitCause{"resource_drain", 0, std::move(detail)});
  }
  out.pressures.push_back(telemetry::WaitCause{
      "queue_depth", 0,
      common::format("%zu job(s) / %llu batch(es) ahead in dispatch order",
                     out.jobs_ahead,
                     static_cast<unsigned long long>(batches_ahead))});
  return out;
}

Result<telemetry::ExplainReport> EtaEngine::explain(
    std::uint64_t job_id) const {
  auto queried = deps_.dispatcher->query(job_id);
  if (!queried.ok()) return queried.error();
  const DaemonJob job = std::move(queried).value();
  const common::TimeNs now = deps_.clock->now();

  telemetry::ExplainReport report;
  report.job_id = job.id;
  report.trace_id = job.trace_id;
  report.user = job.user;
  report.state = to_string(job.state);

  // The observed wait: submit to first dispatch. Jobs that died in the
  // queue (cancelled/failed before any dispatch) waited until their
  // terminal transition; pending jobs' wait is still open.
  const common::TimeNs w0 = job.submit_time;
  common::TimeNs w1;
  if (job.first_dispatch_time > 0) {
    w1 = job.first_dispatch_time;
    report.wait_closed = true;
  } else if (is_terminal(job.state)) {
    w1 = job.finish_time > 0 ? job.finish_time : w0;
    report.wait_closed = true;
  } else {
    w1 = std::max(now, w0);
    report.wait_closed = false;
  }
  const common::DurationNs observed = w1 > w0 ? w1 - w0 : 0;
  report.observed_wait = observed;

  // Queue position (pending jobs only): fair-share evidence.
  std::size_t ahead = 0;
  std::size_t better_ranked = 0;
  std::string pinned_resource;
  std::map<std::string, double> outranking;
  double my_hook = 0.0;
  if (job.state == DaemonJobState::kQueued) {
    const auto snap = deps_.dispatcher->pending_snapshot();
    std::size_t index = snap.entries.size();
    for (std::size_t i = 0; i < snap.entries.size(); ++i) {
      if (snap.entries[i].job_id == job.id) {
        index = i;
        break;
      }
    }
    if (index < snap.entries.size()) {
      const auto& me = snap.entries[index];
      if (me.pinned) pinned_resource = me.resource;
      my_hook = me.hook;
      ahead = index;
      for (std::size_t i = 0; i < index; ++i) {
        const auto& entry = snap.entries[i];
        if (entry.has_hook && me.has_hook && entry.user != me.user &&
            entry.hook > me.hook + 1e-9) {
          ++better_ranked;
          auto [it, inserted] =
              outranking.try_emplace(entry.user, entry.hook);
          if (!inserted) it->second = std::max(it->second, entry.hook);
        }
      }
    }
  }

  // Exact partition: outage overlap first, then the fair-share slice of
  // the remainder (proportional to outranked queue positions), and the
  // rest IS queue depth — nothing invented, nothing dropped.
  const common::DurationNs outage =
      std::min(observed, outage_overlap(w0, w1, pinned_resource));
  const common::DurationNs remaining = observed - outage;
  common::DurationNs fair = 0;
  if (better_ranked > 0 && ahead > 0) {
    fair = static_cast<common::DurationNs>(
        static_cast<double>(remaining) * static_cast<double>(better_ranked) /
        static_cast<double>(ahead));
    fair = std::min(fair, remaining);
  }
  const common::DurationNs depth = remaining - fair;

  if (outage > 0) {
    report.causes.push_back(telemetry::WaitCause{
        "resource_drain", outage,
        common::format("no eligible lane (drain/outage) for %.3fs of the "
                       "wait",
                       common::to_seconds(outage))});
  }
  if (fair > 0) {
    std::string detail = "outranked by ";
    std::size_t listed = 0;
    for (const auto& [user, hook] : outranking) {
      if (listed == 3) break;
      if (listed > 0) detail += ", ";
      detail += user;
      if (my_hook > 0.0) {
        detail += common::format(" (x%.2f)", hook / my_hook);
      }
      ++listed;
    }
    report.causes.push_back(
        telemetry::WaitCause{"fair_share_demotion", fair, std::move(detail)});
  }
  report.causes.push_back(telemetry::WaitCause{
      "queue_depth", depth,
      job.state == DaemonJobState::kQueued
          ? common::format("%zu job(s) ahead in dispatch order", ahead)
          : std::string("dispatch backlog while queued")});
  if (deps_.accounting != nullptr &&
      job.state == DaemonJobState::kQueued) {
    const common::DurationNs retry =
        deps_.accounting->rate_limiter().retry_after(job.user, now);
    if (retry > 0) {
      // Zero duration on purpose: submission already succeeded, so the
      // limiter charged none of THIS job's wait — but the live signal
      // explains why follow-up submissions would stall.
      report.causes.push_back(telemetry::WaitCause{
          "rate_limited", 0,
          common::format("currently rate-limited; next token in %.3fs",
                         common::to_seconds(retry))});
    }
  }
  return report;
}

}  // namespace qcenv::daemon
