#include "daemon/dispatcher.hpp"

#include <chrono>

#define QCENV_LOG_COMPONENT "daemon.dispatch"
#include "common/logging.hpp"

namespace qcenv::daemon {

using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

namespace {

/// How long an idle lane sleeps between queue checks; bounds the latency of
/// noticing an unhealthy resource recovering.
constexpr auto kLaneTick = std::chrono::milliseconds(20);

/// Poll interval for synchronous batch execution through QRMI.
constexpr common::DurationNs kRunPoll = common::kMillisecond;

/// Failover budget per job: a batch returned by batch_failed() more often
/// than this fails the job instead of requeueing, so a payload that times
/// out on *every* resource cannot bounce around the fleet forever.
constexpr std::uint32_t kMaxBatchFailovers = 8;

/// Errors that indict the resource (node loss, endpoint down) rather than
/// the payload: these trigger failover instead of failing the job.
bool is_resource_failure(const common::Error& error) {
  switch (error.code()) {
    case common::ErrorCode::kUnavailable:
    case common::ErrorCode::kIo:
    case common::ErrorCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* to_string(DaemonJobState state) noexcept {
  switch (state) {
    case DaemonJobState::kQueued: return "queued";
    case DaemonJobState::kRunning: return "running";
    case DaemonJobState::kCompleted: return "completed";
    case DaemonJobState::kFailed: return "failed";
    case DaemonJobState::kCancelled: return "cancelled";
  }
  return "?";
}

Dispatcher::Dispatcher(std::shared_ptr<broker::ResourceBroker> broker,
                       QueuePolicy policy, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : broker_(std::move(broker)),
      clock_(clock),
      metrics_(metrics),
      core_(policy) {
  start_lanes();
}

Dispatcher::Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
                       common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : broker_(std::make_shared<broker::ResourceBroker>(broker::BrokerOptions{},
                                                       clock, metrics)),
      clock_(clock),
      metrics_(metrics),
      core_(policy) {
  const Status added = broker_->add(resource->resource_id(), resource);
  (void)added;  // resource_id collisions are impossible in a fresh fleet
  start_lanes();
}

void Dispatcher::start_lanes() {
  for (const auto& name : broker_->names()) {
    lanes_.emplace_back([this, name](const std::stop_token& stop) {
      lane_loop(stop, name);
    });
  }
}

Dispatcher::~Dispatcher() {
  for (auto& lane : lanes_) lane.request_stop();
  cv_.notify_all();
}

std::uint64_t Dispatcher::submit(common::SessionId session,
                                 const std::string& user, JobClass cls,
                                 Payload payload) {
  return submit(session, user, cls, std::move(payload), SubmitOptions{})
      .value();
}

Result<std::uint64_t> Dispatcher::submit(common::SessionId session,
                                         const std::string& user,
                                         JobClass cls, Payload payload,
                                         const SubmitOptions& options) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(mutex_);
    std::string placed;
    if (!options.resource.empty()) {
      auto picked = broker_->pick({.policy = options.policy,
                                   .resource_hint = options.resource,
                                   .exclude = {}});
      if (!picked.ok()) return picked.error();
      placed = std::move(picked).value();
    } else {
      auto picked =
          broker_->pick({.policy = options.policy, .resource_hint = {},
                         .exclude = {}});
      // No healthy resource right now: accept the job unplaced; a lane
      // claims it once its resource recovers.
      if (picked.ok()) placed = std::move(picked).value();
    }
    id = next_job_id_++;
    Record record;
    record.job.id = id;
    record.job.session = session;
    record.job.user = user;
    record.job.job_class = cls;
    record.job.total_shots = payload.shots();
    record.job.submit_time = clock_->now();
    record.job.resource = std::move(placed);
    record.pinned = !options.resource.empty();
    record.policy_hint = options.policy;
    record.samples = Samples(payload.num_qubits());
    record.payload = std::move(payload);
    core_.enqueue(id, cls, record.job.total_shots, record.job.submit_time);
    records_.emplace(id, std::move(record));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_submitted_total",
                  {{"class", to_string(cls)}}, "jobs accepted by the daemon")
        .increment();
  }
  cv_.notify_all();
  return id;
}

Result<DaemonJob> Dispatcher::query(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  return it->second.job;
}

Result<Samples> Dispatcher::result(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  const Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kCompleted: return record.samples;
    case DaemonJobState::kFailed:
      return common::err::internal(record.job.error);
    case DaemonJobState::kCancelled:
      return common::err::cancelled("job was cancelled");
    default:
      return common::err::failed_precondition(
          "job is " + std::string(to_string(record.job.state)));
  }
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id) {
  return wait(job_id, -1);
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id,
                                 common::DurationNs timeout) {
  {
    std::unique_lock lock(mutex_);
    const auto it = records_.find(job_id);
    if (it == records_.end()) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    const auto terminal = [&] {
      const auto& state = records_.at(job_id).job.state;
      return state == DaemonJobState::kCompleted ||
             state == DaemonJobState::kFailed ||
             state == DaemonJobState::kCancelled;
    };
    if (timeout < 0) {
      cv_.wait(lock, terminal);
    } else if (!cv_.wait_for(lock, std::chrono::nanoseconds(timeout),
                             terminal)) {
      const DaemonJob& job = records_.at(job_id).job;
      return common::err::timeout(
          "job " + std::to_string(job_id) + " still " +
          to_string(job.state) + " after " +
          std::to_string(timeout / common::kMillisecond) + " ms (resource: " +
          (job.resource.empty() ? "<unplaced>" : job.resource) + ")");
    }
  }
  return result(job_id);
}

Status Dispatcher::cancel(std::uint64_t job_id) {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kQueued:
      core_.remove(job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
      return Status::ok_status();
    case DaemonJobState::kRunning:
      // Honoured at the next batch boundary (shot-batch granularity).
      record.cancel_requested = true;
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "job already " + std::string(to_string(record.job.state)));
  }
}

void Dispatcher::drain() {
  draining_.store(true);
  cv_.notify_all();
}

void Dispatcher::resume() {
  draining_.store(false);
  cv_.notify_all();
}

Status Dispatcher::drain_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->drain(name));
  // Rolling maintenance: queued work leaves the drained resource now.
  reassign_from(name);
  return Status::ok_status();
}

Status Dispatcher::resume_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->resume(name));
  cv_.notify_all();
  return Status::ok_status();
}

std::map<JobClass, std::size_t> Dispatcher::queue_depths() const {
  std::scoped_lock lock(mutex_);
  return {
      {JobClass::kProduction, core_.depth_of(JobClass::kProduction)},
      {JobClass::kTest, core_.depth_of(JobClass::kTest)},
      {JobClass::kDevelopment, core_.depth_of(JobClass::kDevelopment)},
  };
}

std::vector<DaemonJob> Dispatcher::jobs_snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<DaemonJob> out;
  out.reserve(records_.size());
  for (const auto& [_, record] : records_) out.push_back(record.job);
  return out;
}

std::vector<std::uint64_t> Dispatcher::queue_order() const {
  std::scoped_lock lock(mutex_);
  return core_.snapshot(clock_->now());
}

void Dispatcher::finish_locked(Record& record, DaemonJobState state,
                               const std::string& error) {
  record.job.state = state;
  record.job.error = error;
  record.job.finish_time = clock_->now();
  if (!record.job.resource.empty()) {
    broker_->unbind(record.job.resource);
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_finished_total",
                  {{"class", to_string(record.job.job_class)},
                   {"state", to_string(state)}},
                  "jobs reaching a terminal state")
        .increment();
    if (state == DaemonJobState::kCompleted &&
        record.job.first_dispatch_time > 0) {
      metrics_
          ->histogram("daemon_job_wait_seconds",
                      {0.1, 0.5, 1, 5, 15, 60, 300, 1800},
                      {{"class", to_string(record.job.job_class)}},
                      "queue wait before first dispatch")
          .observe(common::to_seconds(record.job.first_dispatch_time -
                                      record.job.submit_time));
    }
  }
}

bool Dispatcher::has_eligible_locked(const std::string& lane) const {
  return core_.any_pending([&](std::uint64_t job_id) {
    const std::string& placed = records_.at(job_id).job.resource;
    return placed == lane || placed.empty();
  });
}

void Dispatcher::reassign_from(const std::string& lane) {
  std::size_t moved = 0;
  std::size_t stranded = 0;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [_, record] : records_) {
      if (record.job.resource != lane) continue;
      if (record.job.state != DaemonJobState::kQueued &&
          record.job.state != DaemonJobState::kRunning) {
        continue;
      }
      broker_->unbind(lane);
      auto repick = broker_->pick({.policy = record.policy_hint,
                                   .resource_hint = {},
                                   .exclude = lane});
      if (repick.ok()) {
        record.job.resource = std::move(repick).value();
        ++moved;
      } else {
        // Nothing healthy: the job waits unplaced for any lane to recover.
        record.job.resource.clear();
        ++stranded;
      }
    }
  }
  if (moved > 0 && metrics_ != nullptr) {
    metrics_
        ->counter("daemon_failovers_total", {{"resource", lane}},
                  "jobs moved off a failed or draining resource")
        .increment(static_cast<double>(moved));
  }
  if (moved + stranded > 0) {
    QCENV_LOG(Warn) << "moved " << moved << " job(s) off " << lane
                    << (stranded > 0
                            ? " (" + std::to_string(stranded) +
                                  " waiting for a healthy resource)"
                            : "");
    cv_.notify_all();
  }
}

void Dispatcher::lane_loop(const std::stop_token& stop,
                           const std::string& lane) {
  auto handle = broker_->resource(lane);
  if (!handle.ok()) return;
  const qrmi::QrmiPtr resource = std::move(handle).value();

  bool was_healthy = true;
  while (!stop.stop_requested()) {
    // Probe outside the queue lock: a hung endpoint must not block peers.
    const bool healthy = broker_->check_health(lane);
    // Move placed jobs away once per down transition (the batch-failure
    // path below covers failures detected mid-dispatch); placement never
    // selects an unhealthy resource, so no new jobs land here meanwhile.
    if (!healthy && was_healthy) reassign_from(lane);
    was_healthy = healthy;

    std::optional<Batch> batch;
    Payload slice;
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, kLaneTick, [&] {
        return stop.stop_requested() ||
               (!draining_.load() && healthy && !broker_->draining(lane) &&
                has_eligible_locked(lane));
      });
      if (stop.stop_requested()) return;
      if (draining_.load() || !healthy || broker_->draining(lane)) continue;
      batch = core_.next_batch(clock_->now(), [&](std::uint64_t job_id) {
        const std::string& placed = records_.at(job_id).job.resource;
        return placed == lane || placed.empty();
      });
      if (!batch.has_value()) continue;
      Record& record = records_.at(batch->job_id);
      if (record.job.resource.empty()) {
        // Unplaced job (fleet was down at submit): claim it for this lane.
        auto claimed = broker_->pick({.policy = record.policy_hint,
                                      .resource_hint = lane,
                                      .exclude = {}});
        if (!claimed.ok()) {
          core_.batch_failed(*batch);
          continue;
        }
        record.job.resource = lane;
      }
      if (record.cancel_requested) {
        core_.batch_done(*batch);
        core_.remove(batch->job_id);
        finish_locked(record, DaemonJobState::kCancelled, "");
        cv_.notify_all();
        continue;
      }
      if (record.job.state == DaemonJobState::kQueued) {
        record.job.state = DaemonJobState::kRunning;
        // Keep the first dispatch time across failover requeues.
        if (record.job.first_dispatch_time == 0) {
          record.job.first_dispatch_time = clock_->now();
        }
      }
      slice = record.payload;
      slice.set_shots(batch->shots);
    }

    broker_->on_dispatch(lane, batch->shots);
    auto outcome = resource->run_sync(slice, kRunPoll);
    if (metrics_ != nullptr) {
      metrics_
          ->counter("daemon_batches_dispatched_total",
                    {{"class", to_string(batch->cls)}, {"resource", lane}},
                    "QPU batches dispatched")
          .increment();
    }

    if (!outcome.ok() && is_resource_failure(outcome.error())) {
      // The resource, not the payload, failed: give the shots back and move
      // every job placed here onto a healthy peer.
      broker_->on_failure(lane, outcome.error());
      {
        std::scoped_lock lock(mutex_);
        core_.batch_failed(*batch);
        // The batch never executed: the job is queued again, which keeps
        // status reporting honest and lets cancel() act immediately while
        // no resource can take it.
        Record& record = records_.at(batch->job_id);
        if (record.job.state == DaemonJobState::kRunning) {
          record.job.state = DaemonJobState::kQueued;
        }
        if (++record.failovers > kMaxBatchFailovers) {
          core_.remove(batch->job_id);
          finish_locked(record, DaemonJobState::kFailed,
                        "gave up after " +
                            std::to_string(record.failovers) +
                            " resource failures (last on '" + lane +
                            "'): " + outcome.error().to_string());
          cv_.notify_all();
          continue;
        }
      }
      reassign_from(lane);
      continue;
    }

    if (!outcome.ok()) {
      broker_->on_rejected(lane);
      std::scoped_lock lock(mutex_);
      Record& record = records_.at(batch->job_id);
      // A spec rejection of a broker-placed job may just mean a bad fit in
      // a heterogeneous fleet: re-place it on another resource (within the
      // failover budget) before giving up. Pinned jobs fail immediately —
      // the user chose the resource.
      if (!record.pinned && ++record.failovers <= kMaxBatchFailovers) {
        auto repick = broker_->pick({.policy = record.policy_hint,
                                     .resource_hint = {},
                                     .exclude = lane});
        if (repick.ok()) {
          core_.batch_failed(*batch);
          if (record.job.state == DaemonJobState::kRunning) {
            record.job.state = DaemonJobState::kQueued;
          }
          broker_->unbind(lane);
          record.job.resource = std::move(repick).value();
          QCENV_LOG(Warn) << "job " << batch->job_id << " rejected by "
                          << lane << " (" << outcome.error().to_string()
                          << "), re-placing on " << record.job.resource;
          cv_.notify_all();
          continue;
        }
      }
      core_.batch_done(*batch);
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kFailed,
                    outcome.error().to_string());
      QCENV_LOG(Warn) << "job " << batch->job_id
                      << " failed: " << record.job.error;
      cv_.notify_all();
      continue;
    }

    broker_->on_success(lane, batch->shots);
    std::scoped_lock lock(mutex_);
    Record& record = records_.at(batch->job_id);
    core_.batch_done(*batch);
    record.job.shots_done += batch->shots;
    // Keep the last batch's metadata (most recent calibration).
    auto merged_metadata = outcome.value().metadata();
    (void)record.samples.merge(outcome.value());
    record.samples.set_metadata(std::move(merged_metadata));

    if (record.cancel_requested) {
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
    } else if (batch->final_batch) {
      finish_locked(record, DaemonJobState::kCompleted, "");
    }
    cv_.notify_all();
  }
}

}  // namespace qcenv::daemon
