#include "daemon/dispatcher.hpp"

#define QCENV_LOG_COMPONENT "daemon.dispatch"
#include "common/logging.hpp"

namespace qcenv::daemon {

using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

const char* to_string(DaemonJobState state) noexcept {
  switch (state) {
    case DaemonJobState::kQueued: return "queued";
    case DaemonJobState::kRunning: return "running";
    case DaemonJobState::kCompleted: return "completed";
    case DaemonJobState::kFailed: return "failed";
    case DaemonJobState::kCancelled: return "cancelled";
  }
  return "?";
}

Dispatcher::Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
                       common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : resource_(std::move(resource)),
      clock_(clock),
      metrics_(metrics),
      core_(policy),
      worker_([this](const std::stop_token& stop) { worker_loop(stop); }) {}

Dispatcher::~Dispatcher() {
  worker_.request_stop();
  cv_.notify_all();
}

std::uint64_t Dispatcher::submit(common::SessionId session,
                                 const std::string& user, JobClass cls,
                                 Payload payload) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(mutex_);
    id = next_job_id_++;
    Record record;
    record.job.id = id;
    record.job.session = session;
    record.job.user = user;
    record.job.job_class = cls;
    record.job.total_shots = payload.shots();
    record.job.submit_time = clock_->now();
    record.samples = Samples(payload.num_qubits());
    record.payload = std::move(payload);
    core_.enqueue(id, cls, record.job.total_shots, record.job.submit_time);
    records_.emplace(id, std::move(record));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_submitted_total",
                  {{"class", to_string(cls)}}, "jobs accepted by the daemon")
        .increment();
  }
  cv_.notify_all();
  return id;
}

Result<DaemonJob> Dispatcher::query(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  return it->second.job;
}

Result<Samples> Dispatcher::result(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  const Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kCompleted: return record.samples;
    case DaemonJobState::kFailed:
      return common::err::internal(record.job.error);
    case DaemonJobState::kCancelled:
      return common::err::cancelled("job was cancelled");
    default:
      return common::err::failed_precondition(
          "job is " + std::string(to_string(record.job.state)));
  }
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id) {
  {
    std::unique_lock lock(mutex_);
    const auto it = records_.find(job_id);
    if (it == records_.end()) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    cv_.wait(lock, [&] {
      const auto& state = records_.at(job_id).job.state;
      return state == DaemonJobState::kCompleted ||
             state == DaemonJobState::kFailed ||
             state == DaemonJobState::kCancelled;
    });
  }
  return result(job_id);
}

Status Dispatcher::cancel(std::uint64_t job_id) {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kQueued:
      core_.remove(job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
      return Status::ok_status();
    case DaemonJobState::kRunning:
      // Honoured at the next batch boundary (shot-batch granularity).
      record.cancel_requested = true;
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "job already " + std::string(to_string(record.job.state)));
  }
}

void Dispatcher::drain() {
  draining_.store(true);
  cv_.notify_all();
}

void Dispatcher::resume() {
  draining_.store(false);
  cv_.notify_all();
}

std::map<JobClass, std::size_t> Dispatcher::queue_depths() const {
  std::scoped_lock lock(mutex_);
  return {
      {JobClass::kProduction, core_.depth_of(JobClass::kProduction)},
      {JobClass::kTest, core_.depth_of(JobClass::kTest)},
      {JobClass::kDevelopment, core_.depth_of(JobClass::kDevelopment)},
  };
}

std::vector<DaemonJob> Dispatcher::jobs_snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<DaemonJob> out;
  out.reserve(records_.size());
  for (const auto& [_, record] : records_) out.push_back(record.job);
  return out;
}

std::vector<std::uint64_t> Dispatcher::queue_order() const {
  std::scoped_lock lock(mutex_);
  return core_.snapshot(clock_->now());
}

void Dispatcher::finish_locked(Record& record, DaemonJobState state,
                               const std::string& error) {
  record.job.state = state;
  record.job.error = error;
  record.job.finish_time = clock_->now();
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_finished_total",
                  {{"class", to_string(record.job.job_class)},
                   {"state", to_string(state)}},
                  "jobs reaching a terminal state")
        .increment();
    if (state == DaemonJobState::kCompleted &&
        record.job.first_dispatch_time > 0) {
      metrics_
          ->histogram("daemon_job_wait_seconds",
                      {0.1, 0.5, 1, 5, 15, 60, 300, 1800},
                      {{"class", to_string(record.job.job_class)}},
                      "queue wait before first dispatch")
          .observe(common::to_seconds(record.job.first_dispatch_time -
                                      record.job.submit_time));
    }
  }
}

void Dispatcher::worker_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    std::optional<Batch> batch;
    Payload slice;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        return stop.stop_requested() ||
               (!draining_.load() && core_.depth() > 0);
      });
      if (stop.stop_requested()) return;
      batch = core_.next_batch(clock_->now());
      if (!batch.has_value()) continue;
      Record& record = records_.at(batch->job_id);
      if (record.cancel_requested) {
        core_.batch_done(*batch);
        core_.remove(batch->job_id);
        finish_locked(record, DaemonJobState::kCancelled, "");
        cv_.notify_all();
        continue;
      }
      if (record.job.state == DaemonJobState::kQueued) {
        record.job.state = DaemonJobState::kRunning;
        record.job.first_dispatch_time = clock_->now();
      }
      slice = record.payload;
      slice.set_shots(batch->shots);
    }

    auto outcome = resource_->run_sync(slice);
    if (metrics_ != nullptr) {
      metrics_
          ->counter("daemon_batches_dispatched_total",
                    {{"class", to_string(batch->cls)}},
                    "QPU batches dispatched")
          .increment();
    }

    std::scoped_lock lock(mutex_);
    Record& record = records_.at(batch->job_id);
    core_.batch_done(*batch);
    if (!outcome.ok()) {
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kFailed,
                    outcome.error().to_string());
      QCENV_LOG(Warn) << "job " << batch->job_id
                      << " failed: " << record.job.error;
      cv_.notify_all();
      continue;
    }
    record.job.shots_done += batch->shots;
    // Keep the last batch's metadata (most recent calibration).
    auto merged_metadata = outcome.value().metadata();
    (void)record.samples.merge(outcome.value());
    record.samples.set_metadata(std::move(merged_metadata));

    if (record.cancel_requested) {
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
    } else if (batch->final_batch) {
      finish_locked(record, DaemonJobState::kCompleted, "");
    }
    cv_.notify_all();
  }
}

}  // namespace qcenv::daemon
