#include "daemon/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

#define QCENV_LOG_COMPONENT "daemon.dispatch"
#include "common/logging.hpp"

namespace qcenv::daemon {

using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

namespace {

/// Poll interval for synchronous batch execution through QRMI.
constexpr common::DurationNs kRunPoll = common::kMillisecond;

/// Failover budget per job: a batch returned by batch_failed() more often
/// than this fails the job instead of requeueing, so a payload that times
/// out on *every* resource cannot bounce around the fleet forever.
constexpr std::uint32_t kMaxBatchFailovers = 8;

/// Default submit-shard count when QueuePolicy::submit_shards is 0. A
/// fixed constant (not hardware-derived) so seeded simulations replay
/// identically everywhere.
constexpr std::size_t kDefaultShards = 8;

/// Bucket boundaries (seconds) for the per-stage latency histograms:
/// journal appends land in the microsecond buckets, queue waits anywhere
/// from sub-millisecond to minutes under load.
const std::vector<double>& stage_seconds_boundaries() {
  static const std::vector<double> kBoundaries = {
      1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300};
  return kBoundaries;
}

constexpr const char* kStageSecondsName = "daemon_stage_seconds";
constexpr const char* kStageSecondsHelp =
    "per-stage pipeline latency (admission/journal_append/queue_wait/"
    "shard_dispatch/qrmi_execute)";

/// Errors that indict the resource (node loss, endpoint down) rather than
/// the payload: these trigger failover instead of failing the job.
bool is_resource_failure(const common::Error& error) {
  switch (error.code()) {
    case common::ErrorCode::kUnavailable:
    case common::ErrorCode::kIo:
    case common::ErrorCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* to_string(DaemonJobState state) noexcept {
  switch (state) {
    case DaemonJobState::kQueued: return "queued";
    case DaemonJobState::kRunning: return "running";
    case DaemonJobState::kCompleted: return "completed";
    case DaemonJobState::kFailed: return "failed";
    case DaemonJobState::kCancelled: return "cancelled";
  }
  return "?";
}

Dispatcher::Dispatcher(std::shared_ptr<broker::ResourceBroker> broker,
                       QueuePolicy policy, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics,
                       store::StateStore* store,
                       accounting::AccountingManager* accounting,
                       telemetry::TraceStore* traces,
                       telemetry::EventLog* events)
    : broker_(std::move(broker)),
      clock_(clock),
      metrics_(metrics),
      store_(store),
      accounting_(accounting),
      traces_(traces),
      events_(events) {
  const std::size_t count =
      policy.submit_shards > 0 ? policy.submit_shards : kDefaultShards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->core = PriorityQueueCore(policy);
    shards_.push_back(std::move(shard));
  }
  if (traces_ != nullptr && metrics_ != nullptr) {
    admission_hist_ = &metrics_->histogram(
        kStageSecondsName, stage_seconds_boundaries(),
        {{"stage", "admission"}}, kStageSecondsHelp);
    journal_append_hist_ = &metrics_->histogram(
        kStageSecondsName, stage_seconds_boundaries(),
        {{"stage", "journal_append"}}, kStageSecondsHelp);
  }
  if (metrics_ != nullptr) {
    for (const JobClass cls :
         {JobClass::kProduction, JobClass::kTest, JobClass::kDevelopment}) {
      submitted_counter_[static_cast<std::size_t>(class_rank(cls))] =
          &metrics_->counter("daemon_jobs_submitted_total",
                             {{"class", to_string(cls)}},
                             "jobs accepted by the daemon");
    }
  }
  install_priority_hook();
  start_lanes();
}

Dispatcher::Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
                       common::Clock* clock,
                       telemetry::MetricsRegistry* metrics,
                       store::StateStore* store,
                       accounting::AccountingManager* accounting,
                       telemetry::TraceStore* traces,
                       telemetry::EventLog* events)
    : Dispatcher(
          [&] {
            auto broker = std::make_shared<broker::ResourceBroker>(
                broker::BrokerOptions{}, clock, metrics);
            const Status added =
                broker->add(resource->resource_id(), resource);
            (void)added;  // collisions impossible in a fresh fleet
            return broker;
          }(),
          policy, clock, metrics, store, accounting, traces, events) {}

void Dispatcher::install_priority_hook() {
  if (accounting_ == nullptr) return;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    // Runs under shard->mutex (every core call site holds it), so the
    // shard's records and the lambda's memo are safe; the accounting side
    // locks internally and never calls back. The memo is seeded with the
    // whole fair-share table in ONE population traversal per ordering
    // pass (the core evaluates a whole pass at a single `now`), so a
    // pass costs O(users) accounting work instead of O(users) per
    // pending job.
    shard->core.set_priority_hook(
        [this, shard, memo_now = common::TimeNs{-1},
         memo = std::map<std::string, double>{}](
            std::uint64_t job_id, common::TimeNs now) mutable {
          if (now != memo_now) {
            memo = accounting_->priorities(now);
            memo_now = now;
          }
          const std::string& user = shard->records.at(job_id).job.user;
          auto it = memo.find(user);
          if (it == memo.end()) {
            // A user outside the known population (no usage/grant yet).
            it = memo.emplace(user, accounting_->priority(user, now)).first;
          }
          return it->second;
        });
  }
}

void Dispatcher::start_lanes() {
  for (const auto& name : broker_->names()) {
    lanes_.emplace_back([this, name](const std::stop_token& stop) {
      lane_loop(stop, name);
    });
  }
}

Dispatcher::~Dispatcher() {
  for (auto& lane : lanes_) lane.request_stop();
  wake_lanes_all();
}

Dispatcher::Shard& Dispatcher::shard_for_user(const std::string& user) const {
  return *shards_[std::hash<std::string>{}(user) % shards_.size()];
}

Dispatcher::Shard* Dispatcher::find_shard(std::uint64_t job_id) const {
  const IndexStripe& stripe = index_[job_id % kIndexStripes];
  std::scoped_lock lock(stripe.mutex);
  const auto it = stripe.shard_of.find(job_id);
  if (it == stripe.shard_of.end()) return nullptr;
  return shards_[it->second].get();
}

void Dispatcher::index_insert(std::uint64_t job_id, std::uint32_t shard) {
  IndexStripe& stripe = index_[job_id % kIndexStripes];
  std::scoped_lock lock(stripe.mutex);
  stripe.shard_of.emplace(job_id, shard);
}

void Dispatcher::index_erase(std::uint64_t job_id) {
  IndexStripe& stripe = index_[job_id % kIndexStripes];
  std::scoped_lock lock(stripe.mutex);
  stripe.shard_of.erase(job_id);
}

std::vector<std::unique_lock<std::mutex>> Dispatcher::lock_all_shards()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  return locks;
}

void Dispatcher::wake_lanes() {
  // seq_cst on both sides pairs with the waiter registration in
  // lane_loop: either this bump is ordered before the lane's epoch read
  // (the lane sees new work and skips the sleep) or the registration is
  // ordered before the load below (this thread sees the waiter and
  // notifies) — never neither. When no lane is registered the submit
  // hot path pays one atomic load here instead of a mutex handoff and a
  // futex wake per submission.
  dispatch_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (dispatch_waiters_.load(std::memory_order_seq_cst) == 0) return;
  {
    // Empty critical section: orders the epoch bump against a lane that
    // evaluated its wait predicate but has not gone to sleep yet.
    std::scoped_lock lock(dispatch_mutex_);
  }
  dispatch_cv_.notify_all();
}

void Dispatcher::wake_lanes_all() {
  dispatch_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::scoped_lock lock(dispatch_mutex_);
  }
  // Unconditional: parked lanes (global drain) deliberately do not
  // register as epoch waiters, so state flips that end a park — resume,
  // stop, tick changes — must not be gated on the waiter count.
  dispatch_cv_.notify_all();
}

void Dispatcher::observe_stage(const std::string& stage, JobClass cls,
                               const std::string& resource,
                               common::DurationNs duration) {
  if (metrics_ == nullptr || duration < 0) return;
  // Fast path for the two submit-side stages: pre-resolved handles (see
  // the constructor) so 64 submitting threads never touch the registry
  // mutex.
  if (stage == "admission" && admission_hist_ != nullptr) {
    admission_hist_->observe(common::to_seconds(duration));
    return;
  }
  if (stage == "journal_append" && journal_append_hist_ != nullptr) {
    journal_append_hist_->observe(common::to_seconds(duration));
    return;
  }
  telemetry::Labels labels{{"stage", stage}};
  if (!resource.empty()) labels["resource"] = resource;
  // Queue waits are the fairness-visible stage: break them down by
  // priority tier so a starved class is visible per class, not averaged.
  if (stage == "queue_wait") labels["class"] = to_string(cls);
  metrics_
      ->histogram(kStageSecondsName, stage_seconds_boundaries(), labels,
                  kStageSecondsHelp)
      .observe(common::to_seconds(duration));
}

void Dispatcher::materialize_trace_locked(Record& record) {
  if (traces_ == nullptr || record.job.trace_id == 0 ||
      record.trace_materialized) {
    return;
  }
  record.trace_materialized = true;
  // The submit-side stage histograms are deferred along with the spans:
  // the scalars live in the record, so the observations do not depend on
  // the trace still being in the ring.
  if (record.queue_start >= 0) {
    if (admission_hist_ != nullptr) {
      admission_hist_->observe(common::to_seconds(record.job.submit_time -
                                                  record.admission_start));
    }
    if (store_ != nullptr && journal_append_hist_ != nullptr) {
      journal_append_hist_->observe(
          common::to_seconds(record.queue_start - record.job.submit_time));
    }
  }
  std::string detail = "shard=" + std::to_string(record.shard_index);
  if (!record.job.resource.empty()) {
    detail += " resource=" + record.job.resource;
  }
  const common::TimeNs admission_start = record.admission_start >= 0
                                             ? record.admission_start
                                             : record.job.submit_time;
  const common::TimeNs queue_start = record.queue_start >= 0
                                         ? record.queue_start
                                         : record.job.submit_time;
  traces_->materialize_submit(
      record.job.trace_id, record.job.id, record.job.user, admission_start,
      store_ != nullptr ? record.job.submit_time : -1, queue_start,
      std::move(detail));
}

void Dispatcher::drop_user_pending(Shard& shard, const std::string& user) {
  const auto it = shard.user_pending.find(user);
  if (it == shard.user_pending.end()) return;  // defensive
  if (--it->second == 0) shard.user_pending.erase(it);
}

std::uint64_t Dispatcher::submit(common::SessionId session,
                                 const std::string& user, JobClass cls,
                                 Payload payload) {
  return submit(session, user, cls, std::move(payload), SubmitOptions{})
      .value();
}

Result<std::uint64_t> Dispatcher::submit(common::SessionId session,
                                         const std::string& user,
                                         JobClass cls, Payload payload,
                                         const SubmitOptions& options) {
  return submit(session, user, cls,
                std::make_shared<const Payload>(std::move(payload)),
                options);
}

Result<std::uint64_t> Dispatcher::submit(
    common::SessionId session, const std::string& user, JobClass cls,
    std::shared_ptr<const Payload> payload, const SubmitOptions& options) {
  Shard& shard = shard_for_user(user);
  const std::uint32_t shard_index = static_cast<std::uint32_t>(
      std::hash<std::string>{}(user) % shards_.size());
  std::uint64_t id = 0;
  common::TimeNs submit_time = 0;
  {
    std::scoped_lock lock(shard.mutex);
    // A fail-stopped journal can acknowledge nothing: accepting work it
    // cannot journal would hand out jobs a restart silently forgets.
    // has_failed() is one atomic load; the (rare) failure branch may then
    // take the journal mutex to fetch the sticky error's message.
    if (store_ != nullptr && store_->journal().has_failed()) {
      return common::err::io(
          "durable store has failed (" +
          store_->journal().io_error()->message() +
          "); submissions are rejected until the daemon is restarted");
    }
    if (options.user_pending_limit > 0) {
      // O(1): the shard tracks queued-job counts per user (a user's jobs
      // all live in this one shard, so this count is exact and the check
      // is atomic with the enqueue below).
      const auto it = shard.user_pending.find(user);
      const std::size_t pending =
          it != shard.user_pending.end() ? it->second : 0;
      if (pending >= options.user_pending_limit) {
        return common::err::resource_exhausted(
            "user '" + user + "' already has " + std::to_string(pending) +
            " job(s) pending (per-user limit " +
            std::to_string(options.user_pending_limit) + ")");
      }
    }
    std::string placed;
    if (!options.resource.empty()) {
      auto picked = broker_->pick({.policy = options.policy,
                                   .resource_hint = options.resource,
                                   .exclude = {}});
      if (!picked.ok()) return picked.error();
      placed = std::move(picked).value();
    } else {
      auto picked =
          broker_->pick({.policy = options.policy, .resource_hint = {},
                         .exclude = {}});
      // No healthy resource right now: accept the job unplaced; a lane
      // claims it once its resource recovers.
      if (picked.ok()) placed = std::move(picked).value();
    }
    id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
    Record record;
    record.job.id = id;
    record.job.session = session;
    record.job.user = user;
    record.job.job_class = cls;
    record.job.total_shots = payload->shots();
    record.job.submit_time = clock_->now();
    record.job.resource = std::move(placed);
    record.pinned = !options.resource.empty();
    record.policy_hint = options.policy;
    record.job.trace_id = options.trace_id;
    record.shard_index = shard_index;
    record.samples = Samples(payload->num_qubits());
    record.payload = std::move(payload);
    submit_time = record.job.submit_time;
    // The job id doubles as the queue seq: one global allocator keeps
    // cross-shard FIFO order identical to a single shared queue.
    shard.core.enqueue(id, cls, record.job.total_shots,
                       record.job.submit_time, id);
    total_queued_.fetch_add(1, std::memory_order_relaxed);
    ++shard.user_pending[user];
    ++shard.user_slo[user].submitted;
    const auto inserted = shard.records.emplace(id, std::move(record));
    shard.active.insert(id);
    index_insert(id, shard_index);
    if (store_ != nullptr) {
      // Deferred payload serialization keeps the submit path O(metadata).
      const std::uint64_t seq =
          store_->job_submitted(to_record_locked(inserted.first->second),
                                inserted.first->second.payload);
      // If THIS append did not become durable the frame is not on disk
      // (failed writes never land; a written-but-unfsynced frame is
      // sheared back off by write_block's compensating truncate), so a
      // restart cannot resurrect this job. Unwind the admission instead
      // of acking a submission that is not durable: the caller releases
      // its accounting reservation on this error, leaving ledger and
      // rate limiter exactly as before the request. The per-seq check
      // matters: a lane on another shard can fail-stop the journal right
      // after our frame was fsynced, and unwinding THEN would reject a
      // job a restart will replay — a zombie no client knows it owns.
      if (store_->journal().has_failed() &&
          !store_->journal().is_durable(seq)) {
        shard.core.remove(id);
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
        drop_user_pending(shard, user);
        shard.active.erase(id);
        if (!inserted.first->second.job.resource.empty()) {
          broker_->unbind(inserted.first->second.job.resource);
        }
        shard.records.erase(inserted.first);
        index_erase(id);
        return common::err::io(
            "journal append failed (" +
            store_->journal().io_error()->message() +
            "); submission rejected");
      }
    }
    if (traces_ != nullptr && options.trace_id != 0) {
      // Deferred tracing: the admission-limited path records two scalar
      // timestamps in the record it is already writing — no TraceStore
      // lock, no trace memory traffic, no histogram work.
      // materialize_trace_locked builds the spans and feeds the two
      // submit-side stage histograms at first claim/finish/read. (On the
      // journal-failure unwind above nothing materializes; the daemon
      // records a rejected trace.)
      Record& traced = inserted.first->second;
      traced.admission_start =
          options.trace_start >= 0 ? options.trace_start : submit_time;
      traced.queue_start = clock_->now();
    }
  }
  // Amortized terminal-job GC: each submission pays for the sweep that
  // keeps record tables bounded — but only the one atomic precheck
  // unless something is actually evictable (the sweep itself locks every
  // shard, which must not happen per submit on the hot path).
  const std::size_t cap = terminal_cap_.load(std::memory_order_relaxed);
  const common::DurationNs retention =
      terminal_retention_.load(std::memory_order_relaxed);
  const std::size_t terminal = terminal_count_.load(std::memory_order_relaxed);
  if ((cap > 0 && terminal > cap) ||
      (retention > 0 && terminal > 0 &&
       earliest_terminal_.load(std::memory_order_relaxed) + retention <=
           submit_time)) {
    (void)sweep_terminal_all(submit_time);
  }
  if (metrics_ != nullptr) {
    submitted_counter_[static_cast<std::size_t>(class_rank(cls))]
        ->increment();
  }
  wake_lanes();
  return id;
}

Result<DaemonJob> Dispatcher::query(std::uint64_t job_id) const {
  Shard* shard = find_shard(job_id);
  if (shard == nullptr) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  std::scoped_lock lock(shard->mutex);
  const auto it = shard->records.find(job_id);
  if (it == shard->records.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  return it->second.job;
}

Result<Samples> Dispatcher::result(std::uint64_t job_id) const {
  Shard* shard = find_shard(job_id);
  if (shard == nullptr) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  std::scoped_lock lock(shard->mutex);
  const auto it = shard->records.find(job_id);
  if (it == shard->records.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  const Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kCompleted: return record.samples;
    case DaemonJobState::kFailed:
      return common::err::internal(record.job.error);
    case DaemonJobState::kCancelled:
      return common::err::cancelled("job was cancelled");
    default:
      return common::err::failed_precondition(
          "job is " + std::string(to_string(record.job.state)));
  }
}

Result<telemetry::JobTrace> Dispatcher::trace(std::uint64_t job_id) {
  if (traces_ == nullptr) {
    return common::err::failed_precondition("tracing is disabled");
  }
  telemetry::TraceId trace_id = 0;
  {
    Shard* shard = find_shard(job_id);
    if (shard == nullptr) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    std::scoped_lock lock(shard->mutex);
    const auto it = shard->records.find(job_id);
    if (it == shard->records.end()) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    // Deferred traces materialize on first read, so a still-queued job's
    // timeline is visible mid-flight.
    materialize_trace_locked(it->second);
    trace_id = it->second.job.trace_id;
  }
  if (trace_id == 0) {
    return common::err::not_found("job has no trace");
  }
  std::optional<telemetry::JobTrace> found = traces_->find(trace_id);
  if (!found.has_value()) {
    return common::err::not_found("trace evicted");
  }
  return *std::move(found);
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id) {
  return wait(job_id, -1);
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id,
                                 common::DurationNs timeout) {
  Shard* shard = find_shard(job_id);
  if (shard == nullptr) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  {
    std::unique_lock lock(shard->mutex);
    const auto it = shard->records.find(job_id);
    if (it == shard->records.end()) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    const auto terminal = [&] {
      const auto found = shard->records.find(job_id);
      if (found == shard->records.end()) return true;  // GC'd while waiting
      const auto& state = found->second.job.state;
      return state == DaemonJobState::kCompleted ||
             state == DaemonJobState::kFailed ||
             state == DaemonJobState::kCancelled;
    };
    if (timeout < 0) {
      shard->cv.wait(lock, terminal);
    } else if (!shard->cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                                   terminal)) {
      const DaemonJob& job = shard->records.at(job_id).job;
      return common::err::timeout(
          "job " + std::to_string(job_id) + " still " +
          to_string(job.state) + " after " +
          std::to_string(timeout / common::kMillisecond) + " ms (resource: " +
          (job.resource.empty() ? "<unplaced>" : job.resource) + ")");
    }
  }
  return result(job_id);
}

Status Dispatcher::cancel(std::uint64_t job_id) {
  Shard* shard = find_shard(job_id);
  if (shard == nullptr) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  std::scoped_lock lock(shard->mutex);
  const auto it = shard->records.find(job_id);
  if (it == shard->records.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kQueued:
      if (shard->core.remove(job_id)) {
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
      }
      finish_locked(*shard, record, DaemonJobState::kCancelled, "");
      return Status::ok_status();
    case DaemonJobState::kRunning:
      // Honoured at the next batch boundary (shot-batch granularity);
      // journaled so a crash before that boundary cannot resurrect it.
      record.cancel_requested = true;
      if (store_ != nullptr) store_->job_cancel_requested(job_id);
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "job already " + std::string(to_string(record.job.state)));
  }
}

void Dispatcher::set_idle_tick(common::DurationNs tick) {
  idle_tick_.store(tick > 0 ? tick : common::kMillisecond);
  wake_lanes_all();
}

void Dispatcher::drain() {
  const bool was = draining_.exchange(true);
  // The transition event (not the state) is what the ETA engine replays
  // to attribute wait time to maintenance windows.
  if (!was && events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kInfo, "drain_all",
                 "global dispatch drain");
  }
  wake_lanes_all();
}

void Dispatcher::resume() {
  const bool was = draining_.exchange(false);
  if (was && events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kInfo, "resume_all",
                 "global dispatch resume");
  }
  wake_lanes_all();
}

Status Dispatcher::drain_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->drain(name));
  // Rolling maintenance: queued work leaves the drained resource now.
  reassign_from(name);
  return Status::ok_status();
}

Status Dispatcher::resume_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->resume(name));
  wake_lanes();
  return Status::ok_status();
}

std::map<JobClass, std::size_t> Dispatcher::queue_depths() const {
  std::map<JobClass, std::size_t> out = {
      {JobClass::kProduction, 0},
      {JobClass::kTest, 0},
      {JobClass::kDevelopment, 0},
  };
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    out[JobClass::kProduction] += shard->core.depth_of(JobClass::kProduction);
    out[JobClass::kTest] += shard->core.depth_of(JobClass::kTest);
    out[JobClass::kDevelopment] +=
        shard->core.depth_of(JobClass::kDevelopment);
  }
  return out;
}

std::vector<DaemonJob> Dispatcher::jobs_snapshot() const {
  std::vector<DaemonJob> out;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    out.reserve(out.size() + shard->records.size());
    for (const auto& [_, record] : shard->records) out.push_back(record.job);
  }
  std::sort(out.begin(), out.end(),
            [](const DaemonJob& a, const DaemonJob& b) { return a.id < b.id; });
  return out;
}

std::vector<std::uint64_t> Dispatcher::queue_order() const {
  // One `now` for every shard so hook priorities and aging are evaluated
  // consistently, then a k-way merge with the core's own comparator:
  // exactly the order the dispatch tournament would drain.
  const common::TimeNs now = clock_->now();
  const auto locks = lock_all_shards();
  std::vector<std::vector<PriorityQueueCore::Head>> heads;
  heads.reserve(shards_.size());
  bool shortest_first = false;
  for (const auto& shard : shards_) {
    shortest_first = shard->core.policy().shortest_first_within_class;
    heads.push_back(shard->core.snapshot_heads(now));
  }
  std::vector<std::size_t> cursor(heads.size(), 0);
  std::vector<std::uint64_t> out;
  while (true) {
    const PriorityQueueCore::Head* best = nullptr;
    std::size_t best_list = 0;
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (cursor[i] >= heads[i].size()) continue;
      const PriorityQueueCore::Head& head = heads[i][cursor[i]];
      if (best == nullptr ||
          PriorityQueueCore::head_before(head, *best, shortest_first)) {
        best = &head;
        best_list = i;
      }
    }
    if (best == nullptr) break;
    out.push_back(best->job_id);
    ++cursor[best_list];
  }
  return out;
}

Dispatcher::PendingSnapshot Dispatcher::pending_snapshot() const {
  PendingSnapshot out;
  out.now = clock_->now();
  const auto locks = lock_all_shards();
  std::vector<std::vector<PriorityQueueCore::Head>> heads;
  heads.reserve(shards_.size());
  bool shortest_first = false;
  for (const auto& shard : shards_) {
    shortest_first = shard->core.policy().shortest_first_within_class;
    heads.push_back(shard->core.snapshot_heads(out.now));
  }
  std::vector<std::size_t> cursor(heads.size(), 0);
  while (true) {
    const PriorityQueueCore::Head* best = nullptr;
    std::size_t best_list = 0;
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (cursor[i] >= heads[i].size()) continue;
      const PriorityQueueCore::Head& head = heads[i][cursor[i]];
      if (best == nullptr ||
          PriorityQueueCore::head_before(head, *best, shortest_first)) {
        best = &head;
        best_list = i;
      }
    }
    if (best == nullptr) break;
    const auto it = shards_[best_list]->records.find(best->job_id);
    if (it != shards_[best_list]->records.end()) {
      const Record& record = it->second;
      PendingView view;
      view.job_id = best->job_id;
      view.user = record.job.user;
      view.cls = best->cls;
      view.rank = best->rank;
      view.has_hook = best->has_hook;
      view.hook = best->hook;
      view.remaining_shots = best->remaining_shots;
      view.resource = record.job.resource;
      view.pinned = record.pinned;
      view.submit_time = record.job.submit_time;
      out.entries.push_back(std::move(view));
    }
    ++cursor[best_list];
  }
  return out;
}

std::map<std::string, std::size_t> Dispatcher::user_pending_counts() const {
  std::map<std::string, std::size_t> out;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    // Users never span shards, so this is a disjoint union, not a merge.
    out.insert(shard->user_pending.begin(), shard->user_pending.end());
  }
  return out;
}

std::size_t Dispatcher::pending_for_user(const std::string& user) const {
  Shard& shard = shard_for_user(user);
  std::scoped_lock lock(shard.mutex);
  const auto it = shard.user_pending.find(user);
  return it != shard.user_pending.end() ? it->second : 0;
}

std::map<std::string, Dispatcher::UserSlo> Dispatcher::slo_counts() const {
  std::map<std::string, UserSlo> out;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    // Users never span shards, so this is a disjoint union, not a merge.
    out.insert(shard->user_slo.begin(), shard->user_slo.end());
  }
  return out;
}

std::map<std::string, Dispatcher::QueueWaitSplit>
Dispatcher::queue_wait_split(common::TimeNs now,
                             common::DurationNs threshold) const {
  std::map<std::string, QueueWaitSplit> out;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    for (const std::uint64_t id : shard->active) {
      const auto it = shard->records.find(id);
      if (it == shard->records.end()) continue;
      const DaemonJob& job = it->second.job;
      if (job.state != DaemonJobState::kQueued) continue;
      QueueWaitSplit& split = out[job.user];
      if (now - job.submit_time > threshold) {
        ++split.over;
      } else {
        ++split.within;
      }
    }
  }
  return out;
}

void Dispatcher::set_lane_heartbeat(
    std::function<void(const std::string&)> heartbeat) {
  std::scoped_lock lock(heartbeat_mutex_);
  lane_heartbeat_ = std::move(heartbeat);
}

void Dispatcher::set_terminal_retention(common::DurationNs retention,
                                        std::size_t cap) {
  terminal_retention_.store(retention);
  terminal_cap_.store(cap);
}

std::size_t Dispatcher::sweep_terminal() {
  return sweep_terminal_all(clock_->now());
}

std::size_t Dispatcher::sweep_terminal_all(common::TimeNs now) {
  const common::DurationNs retention = terminal_retention_.load();
  const std::size_t cap = terminal_cap_.load();
  if (retention <= 0 && cap == 0) return 0;
  std::size_t evicted = 0;
  {
    const auto locks = lock_all_shards();
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->terminal_order.size();
    // Global LRU: repeatedly evict the shard front with the oldest finish
    // time, so the cap behaves exactly as it did with one record table.
    while (total > 0) {
      Shard* victim = nullptr;
      common::TimeNs victim_finish = 0;
      std::uint64_t victim_id = 0;
      for (const auto& shard : shards_) {
        while (!shard->terminal_order.empty() &&
               shard->records.count(shard->terminal_order.front()) == 0) {
          shard->terminal_order.pop_front();  // defensive: already gone
          --total;
        }
        if (shard->terminal_order.empty()) continue;
        const std::uint64_t id = shard->terminal_order.front();
        const common::TimeNs finish =
            shard->records.at(id).job.finish_time;
        if (victim == nullptr || finish < victim_finish ||
            (finish == victim_finish && id < victim_id)) {
          victim = shard.get();
          victim_finish = finish;
          victim_id = id;
        }
      }
      if (victim == nullptr) break;
      const bool over_cap = cap > 0 && total > cap;
      const bool expired =
          retention > 0 && victim_finish + retention <= now;
      if (!over_cap && !expired) break;  // globally oldest: nothing further
      victim->terminal_order.pop_front();
      victim->records.erase(victim_id);
      index_erase(victim_id);
      if (store_ != nullptr) store_->job_evicted(victim_id);
      ++evicted;
      --total;
    }
    terminal_count_.store(total, std::memory_order_relaxed);
    // Recompute the exact oldest terminal finish for the next precheck.
    common::TimeNs earliest = std::numeric_limits<common::TimeNs>::max();
    for (const auto& shard : shards_) {
      if (shard->terminal_order.empty()) continue;
      earliest = std::min(
          earliest,
          shard->records.at(shard->terminal_order.front()).job.finish_time);
    }
    earliest_terminal_.store(earliest, std::memory_order_relaxed);
  }
  if (evicted > 0 && metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_evicted_total", {},
                  "terminal job records dropped by retention/cap GC")
        .increment(static_cast<double>(evicted));
  }
  return evicted;
}

std::map<std::string, Dispatcher::LaneDepth> Dispatcher::lane_depths()
    const {
  std::map<std::string, LaneDepth> out;
  for (const auto& name : broker_->names()) out[name];
  // O(live jobs), not O(all jobs ever): records keep terminal jobs for
  // result serving, but only active members can sit on a lane.
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    for (const std::uint64_t id : shard->active) {
      const Record& record = shard->records.at(id);
      const std::string& key = record.job.resource.empty()
                                   ? std::string("(unplaced)")
                                   : record.job.resource;
      if (record.job.state == DaemonJobState::kQueued) {
        ++out[key].queued;
      } else if (record.job.state == DaemonJobState::kRunning) {
        ++out[key].running;
      }
    }
  }
  return out;
}

std::size_t Dispatcher::cancel_for_session(common::SessionId session) {
  std::size_t affected = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    // Copy: finish_locked below erases from active as we cancel.
    const std::vector<std::uint64_t> live(shard->active.begin(),
                                          shard->active.end());
    for (const std::uint64_t id : live) {
      Record& record = shard->records.at(id);
      if (record.job.session != session) continue;
      switch (record.job.state) {
        case DaemonJobState::kQueued:
          if (shard->core.remove(id)) {
            total_queued_.fetch_sub(1, std::memory_order_relaxed);
          }
          finish_locked(*shard, record, DaemonJobState::kCancelled,
                        "session closed");
          ++affected;
          break;
        case DaemonJobState::kRunning:
          if (!record.cancel_requested) {
            record.cancel_requested = true;
            if (store_ != nullptr) store_->job_cancel_requested(id);
            ++affected;
          }
          break;
        default:
          break;
      }
    }
  }
  if (affected > 0) wake_lanes();
  return affected;
}

store::JobRecord Dispatcher::to_record_locked(const Record& record) const {
  store::JobRecord out;
  out.id = record.job.id;
  out.session = record.job.session.value;
  out.user = record.job.user;
  out.job_class = record.job.job_class;
  switch (record.job.state) {
    case DaemonJobState::kQueued: out.phase = store::JobPhase::kQueued; break;
    case DaemonJobState::kRunning:
      out.phase = store::JobPhase::kRunning;
      break;
    case DaemonJobState::kCompleted:
      out.phase = store::JobPhase::kCompleted;
      break;
    case DaemonJobState::kFailed: out.phase = store::JobPhase::kFailed; break;
    case DaemonJobState::kCancelled:
      out.phase = store::JobPhase::kCancelled;
      break;
  }
  out.total_shots = record.job.total_shots;
  out.shots_done = record.job.shots_done;
  out.submit_time = record.job.submit_time;
  out.first_dispatch_time = record.job.first_dispatch_time;
  out.finish_time = record.job.finish_time;
  out.resource = record.job.resource;
  out.cancel_requested = record.cancel_requested;
  out.pinned = record.pinned;
  if (record.policy_hint.has_value()) {
    out.policy = broker::to_string(*record.policy_hint);
  }
  out.error = record.job.error;
  return out;
}

store::StoreSnapshot Dispatcher::durable_snapshot() const {
  // Copy cheap metadata (plus shared payload handles and counts maps)
  // under the locks; serialize the heavy JSON outside them, so a
  // compaction over a large job table does not stall submits and
  // dispatch lanes.
  struct Staged {
    store::JobRecord meta;
    std::shared_ptr<const quantum::Payload> payload;
    std::shared_ptr<std::atomic<std::uint64_t>> payload_fp;
    std::optional<quantum::Samples> samples;
  };
  std::vector<Staged> staged;
  store::StoreSnapshot snapshot;
  {
    // Every job event is appended under its shard's mutex; holding ALL
    // of them means no event is mid-append, so the watermark read here
    // is exactly consistent with the records copied below.
    const auto locks = lock_all_shards();
    snapshot.jobs_seq =
        store_ != nullptr ? store_->journal().last_seq() : 0;
    snapshot.next_job_id = next_job_id_.load(std::memory_order_relaxed);
    if (accounting_ != nullptr) {
      // Ledger charges happen under shard mutexes (charge_batch in the
      // lane loop), so reading the ledger here is exactly consistent
      // with the watermark above: usage events <= jobs_seq are in these
      // records, later ones replay on top.
      snapshot.usage = accounting_->usage_records(clock_->now());
    }
    for (const auto& shard : shards_) {
      staged.reserve(staged.size() + shard->records.size());
      for (const auto& [_, record] : shard->records) {
        Staged entry;
        entry.meta = to_record_locked(record);
        entry.payload = record.payload;
        entry.payload_fp = record.payload_fp;
        if (record.job.shots_done > 0) entry.samples = record.samples;
        staged.push_back(std::move(entry));
      }
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const Staged& a, const Staged& b) {
              return a.meta.id < b.meta.id;
            });
  snapshot.jobs.reserve(staged.size());
  for (auto& entry : staged) {
    if (entry.payload != nullptr) {
      // Same content-dedup scheme as the journal: each distinct program
      // is serialized once into the snapshot's payload table, and jobs
      // reference it by fingerprint (memoized per record — hashed at
      // most once per job, not once per compaction).
      std::uint64_t fp = entry.payload_fp->load(std::memory_order_relaxed);
      if (fp == 0) {
        fp = store::payload_fingerprint(*entry.payload);
        entry.payload_fp->store(fp, std::memory_order_relaxed);
      }
      entry.meta.payload_hash = fp;
      const std::string key = entry.meta.user + "|" +
                              std::to_string(entry.meta.payload_hash);
      const auto table = snapshot.payloads.find(key);
      if (table == snapshot.payloads.end()) {
        snapshot.payloads.emplace(key, entry.payload->to_json());
      }
    }
    if (entry.samples.has_value()) {
      entry.meta.samples = entry.samples->to_json();
    }
    snapshot.jobs.push_back(std::move(entry.meta));
  }
  return snapshot;
}

void Dispatcher::restore(const std::vector<store::JobRecord>& jobs,
                         std::uint64_t next_job_id) {
  std::uint64_t floor = next_job_id;
  for (const auto& recovered : jobs) {
    Shard& shard = shard_for_user(recovered.user);
    const std::uint32_t shard_index = static_cast<std::uint32_t>(
        std::hash<std::string>{}(recovered.user) % shards_.size());
    std::scoped_lock lock(shard.mutex);
    if (shard.records.count(recovered.id) > 0) continue;  // defensive
    Record record;
    record.job.id = recovered.id;
    record.job.session = common::SessionId{recovered.session};
    record.job.user = recovered.user;
    record.job.job_class = recovered.job_class;
    record.job.total_shots = recovered.total_shots;
    record.job.shots_done = recovered.shots_done;
    record.job.submit_time = recovered.submit_time;
    record.job.first_dispatch_time = recovered.first_dispatch_time;
    record.job.finish_time = recovered.finish_time;
    record.job.resource = recovered.resource;  // "" for requeued jobs
    record.job.error = recovered.error;
    record.cancel_requested = recovered.cancel_requested;
    record.pinned = recovered.pinned;
    if (!recovered.policy.empty()) {
      auto policy = broker::policy_from_string(recovered.policy);
      if (policy.ok()) record.policy_hint = policy.value();
    }
    switch (recovered.phase) {
      case store::JobPhase::kQueued:
      case store::JobPhase::kRunning:  // replay folds running -> queued
        record.job.state = DaemonJobState::kQueued;
        break;
      case store::JobPhase::kCompleted:
        record.job.state = DaemonJobState::kCompleted;
        break;
      case store::JobPhase::kFailed:
        record.job.state = DaemonJobState::kFailed;
        break;
      case store::JobPhase::kCancelled:
        record.job.state = DaemonJobState::kCancelled;
        break;
    }
    auto payload = quantum::Payload::from_json(recovered.payload);
    if (payload.ok()) {
      record.payload =
          std::make_shared<const Payload>(std::move(payload).value());
      // Keep the store's original fingerprint: re-hashing the decoded
      // payload could differ after a JSON round-trip (whole-number
      // doubles re-dump as ints), which would break dedup-key stability
      // across restarts.
      record.payload_fp->store(recovered.payload_hash,
                               std::memory_order_relaxed);
    } else if (record.job.state == DaemonJobState::kQueued) {
      // Cannot re-run what we cannot decode; fail loudly instead of
      // silently dropping the job.
      record.job.state = DaemonJobState::kFailed;
      record.job.error = "payload could not be restored from the store: " +
                         payload.error().message();
    }
    if (!recovered.samples.is_null()) {
      auto samples = quantum::Samples::from_json(recovered.samples);
      if (samples.ok()) record.samples = std::move(samples).value();
    } else {
      record.samples = Samples(
          record.payload != nullptr ? record.payload->num_qubits() : 0);
    }
    if (record.job.state == DaemonJobState::kQueued) {
      if (!record.job.resource.empty()) {
        // A recovered pin: re-bind through the broker so load accounting
        // and health checks hold; if the resource is gone or unusable,
        // unplace — the same treatment live failover gives a dead pin.
        auto bound = broker_->pick({.policy = record.policy_hint,
                                    .resource_hint = record.job.resource,
                                    .exclude = {}});
        if (bound.ok()) {
          record.job.resource = std::move(bound).value();
        } else {
          record.job.resource.clear();
        }
      }
      const std::uint64_t remaining =
          record.job.total_shots -
          std::min(record.job.shots_done, record.job.total_shots);
      // seq = id, same as live submissions: recovered jobs keep their
      // original cross-shard FIFO order.
      shard.core.enqueue(recovered.id, recovered.job_class, remaining,
                         recovered.submit_time, recovered.id);
      total_queued_.fetch_add(1, std::memory_order_relaxed);
      ++shard.user_pending[record.job.user];
      shard.active.insert(recovered.id);
      if (accounting_ != nullptr) {
        // The previous life reserved these shots at admission; re-reserve
        // them so this job's releases cannot drain reservations that
        // newly admitted work legitimately holds.
        accounting_->restore_inflight(record.job.user, remaining);
      }
    }
    if (traces_ != nullptr) {
      // Pre-crash spans are not journaled: restored jobs get a fresh trace
      // whose first stage is explicitly `lost`, so timelines stay
      // well-nested (and honest) across kill-and-restart.
      record.job.trace_id =
          traces_->begin(record.job.submit_time, record.job.user, "lost",
                         "pre-crash spans not recovered");
      // The eager `lost` trace replaces the deferred submit timeline.
      record.trace_materialized = true;
      traces_->bind_job(record.job.trace_id, recovered.id);
      if (record.job.state == DaemonJobState::kQueued) {
        (void)traces_->enter(record.job.trace_id, clock_->now(),
                             "queue_wait", "requeued after restart");
      } else {
        (void)traces_->finish(
            record.job.trace_id,
            std::max(record.job.finish_time, record.job.submit_time));
      }
    }
    floor = std::max(floor, recovered.id + 1);
    shard.records.emplace(recovered.id, std::move(record));
    index_insert(recovered.id, shard_index);
  }
  // Restore runs before traffic, so a plain max-store is race-free.
  next_job_id_.store(
      std::max(next_job_id_.load(std::memory_order_relaxed), floor));
  // Rebuild the GC's LRU per shard: terminal records in finish order,
  // oldest first, so retention keeps expiring across restarts.
  std::size_t terminal_total = 0;
  common::TimeNs earliest = std::numeric_limits<common::TimeNs>::max();
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    std::vector<std::uint64_t> terminal;
    for (const auto& [id, record] : shard->records) {
      if (shard->active.count(id) == 0) terminal.push_back(id);
    }
    std::sort(terminal.begin(), terminal.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const auto ta = shard->records.at(a).job.finish_time;
                const auto tb = shard->records.at(b).job.finish_time;
                return ta != tb ? ta < tb : a < b;
              });
    shard->terminal_order.assign(terminal.begin(), terminal.end());
    terminal_total += terminal.size();
    if (!terminal.empty()) {
      earliest = std::min(
          earliest, shard->records.at(terminal.front()).job.finish_time);
    }
  }
  terminal_count_.store(terminal_total, std::memory_order_relaxed);
  earliest_terminal_.store(earliest, std::memory_order_relaxed);
  wake_lanes();
}

void Dispatcher::finish_locked(Shard& shard, Record& record,
                               DaemonJobState state,
                               const std::string& error) {
  if (record.job.state == DaemonJobState::kQueued) {
    drop_user_pending(shard, record.job.user);
  }
  record.job.state = state;
  record.job.error = error;
  record.job.finish_time = clock_->now();
  if (state == DaemonJobState::kCompleted) {
    UserSlo& slo = shard.user_slo[record.job.user];
    ++slo.completed;
    const common::DurationNs lat_slo =
        latency_slo_.load(std::memory_order_relaxed);
    if (lat_slo > 0 &&
        record.job.finish_time - record.job.submit_time > lat_slo) {
      ++slo.latency_over;
    }
  }
  if (traces_ != nullptr && record.job.trace_id != 0) {
    materialize_trace_locked(record);
    if (auto closed =
            traces_->finish(record.job.trace_id, record.job.finish_time)) {
      observe_stage(closed->stage, record.job.job_class,
                    record.job.resource, closed->duration);
    }
    // Critical-path profiling rides the terminal transition (never the
    // submit hot path): one trace copy + collapse per finished job.
    if (profiler_ != nullptr) {
      if (auto trace = traces_->find(record.job.trace_id)) {
        profiler_->add(*trace);
      }
    }
  }
  if (events_ != nullptr) {
    const common::DurationNs latency =
        record.job.finish_time - record.job.submit_time;
    const common::DurationNs slow =
        slow_job_threshold_.load(std::memory_order_relaxed);
    if (state == DaemonJobState::kFailed) {
      events_->log(record.job.finish_time, telemetry::Severity::kError,
                   "job_failed", error, record.job.user, record.job.id,
                   record.job.trace_id);
    } else if (state == DaemonJobState::kCompleted && slow > 0 &&
               latency > slow) {
      events_->log(record.job.finish_time, telemetry::Severity::kWarn,
                   "slow_job",
                   "completed in " +
                       std::to_string(latency / common::kMillisecond) +
                       " ms (threshold " +
                       std::to_string(slow / common::kMillisecond) + " ms)",
                   record.job.user, record.job.id, record.job.trace_id);
    }
  }
  shard.active.erase(record.job.id);
  shard.terminal_order.push_back(record.job.id);
  terminal_count_.fetch_add(1, std::memory_order_relaxed);
  // Lower-bound maintenance for the GC precheck; finish times are
  // monotone, so only the first terminal record can lower the minimum.
  common::TimeNs seen = earliest_terminal_.load(std::memory_order_relaxed);
  while (record.job.finish_time < seen &&
         !earliest_terminal_.compare_exchange_weak(
             seen, record.job.finish_time, std::memory_order_relaxed)) {
  }
  if (!record.job.resource.empty()) {
    broker_->unbind(record.job.resource);
  }
  if (accounting_ != nullptr) {
    // The never-executed remainder leaves the user's in-flight budget;
    // completions additionally charge one job to the ledger — stamped
    // with the record's finish time, which the journal event below also
    // carries, so replay re-charges at the identical instant.
    const std::uint64_t unexecuted =
        record.job.total_shots -
        std::min(record.job.shots_done, record.job.total_shots);
    accounting_->job_finished(record.job.user, unexecuted,
                              state == DaemonJobState::kCompleted,
                              record.job.finish_time);
  }
  if (store_ != nullptr) {
    switch (state) {
      case DaemonJobState::kCompleted:
        store_->job_completed(record.job.id, record.job.finish_time);
        break;
      case DaemonJobState::kFailed:
        store_->job_failed(record.job.id, error, record.job.finish_time);
        break;
      case DaemonJobState::kCancelled:
        store_->job_cancelled(record.job.id, error, record.job.finish_time);
        break;
      default:
        break;
    }
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_finished_total",
                  {{"class", to_string(record.job.job_class)},
                   {"state", to_string(state)}},
                  "jobs reaching a terminal state")
        .increment();
    if (state == DaemonJobState::kCompleted &&
        record.job.first_dispatch_time > 0) {
      metrics_
          ->histogram("daemon_job_wait_seconds",
                      {0.1, 0.5, 1, 5, 15, 60, 300, 1800},
                      {{"class", to_string(record.job.job_class)}},
                      "queue wait before first dispatch")
          .observe(common::to_seconds(record.job.first_dispatch_time -
                                      record.job.submit_time));
    }
  }
  shard.cv.notify_all();
}

void Dispatcher::reassign_from(const std::string& lane) {
  std::size_t moved = 0;
  std::size_t stranded = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    for (const std::uint64_t id : shard->active) {
      Record& record = shard->records.at(id);
      if (record.job.resource != lane) continue;
      if (record.job.state != DaemonJobState::kQueued &&
          record.job.state != DaemonJobState::kRunning) {
        continue;
      }
      broker_->unbind(lane);
      auto repick = broker_->pick({.policy = record.policy_hint,
                                   .resource_hint = {},
                                   .exclude = lane});
      if (repick.ok()) {
        record.job.resource = std::move(repick).value();
        ++moved;
      } else {
        // Nothing healthy: the job waits unplaced for any lane to recover.
        record.job.resource.clear();
        ++stranded;
      }
      if (store_ != nullptr) {
        store_->job_placed(record.job.id, record.job.resource);
      }
      if (traces_ != nullptr && record.job.trace_id != 0) {
        materialize_trace_locked(record);
        traces_->annotate(
            record.job.trace_id, clock_->now(),
            record.job.resource.empty()
                ? "unplaced: no healthy resource (was '" + lane + "')"
                : "failover: '" + lane + "' -> '" + record.job.resource +
                      "'");
      }
    }
  }
  if (moved > 0 && metrics_ != nullptr) {
    metrics_
        ->counter("daemon_failovers_total", {{"resource", lane}},
                  "jobs moved off a failed or draining resource")
        .increment(static_cast<double>(moved));
  }
  if (events_ != nullptr && moved + stranded > 0) {
    events_->log(clock_->now(), telemetry::Severity::kWarn, "failover",
                 "moved " + std::to_string(moved) + " job(s) off '" + lane +
                     "' (" + std::to_string(stranded) +
                     " left unplaced)");
  }
  if (moved + stranded > 0) {
    QCENV_LOG(Warn) << "moved " << moved << " job(s) off " << lane
                    << (stranded > 0
                            ? " (" + std::to_string(stranded) +
                                  " waiting for a healthy resource)"
                            : "");
    wake_lanes();
  }
}

Dispatcher::DispatchOutcome Dispatcher::dispatch_one(
    const std::string& lane, const qrmi::QrmiPtr& resource) {
  const common::TimeNs now = clock_->now();
  const auto eligible_in = [&](Shard& shard) {
    return [&shard, &lane](std::uint64_t job_id) {
      const std::string& placed = shard.records.at(job_id).job.resource;
      return placed == lane || placed.empty();
    };
  };
  // Tournament: peek every shard's best eligible head under that shard's
  // own lock, then take the global winner. head_before is the core's
  // exact comparator, so the winner is the job a single shared queue
  // would have served — and since ANY lane can win ANY shard, an idle
  // lane steals work no matter which tenant shard it landed in.
  std::optional<PriorityQueueCore::Head> best;
  std::size_t best_shard = 0;
  bool shortest_first = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::scoped_lock lock(shard.mutex);
    shortest_first = shard.core.policy().shortest_first_within_class;
    const auto head = shard.core.peek_head(now, eligible_in(shard));
    if (head.has_value() &&
        (!best.has_value() ||
         PriorityQueueCore::head_before(*head, *best, shortest_first))) {
      best = *head;
      best_shard = i;
    }
  }
  if (!best.has_value()) return DispatchOutcome::kIdle;

  Shard& shard = *shards_[best_shard];
  std::optional<Batch> batch;
  Payload slice;
  telemetry::TraceId trace = 0;
  JobClass trace_cls = JobClass::kDevelopment;
  {
    std::scoped_lock lock(shard.mutex);
    // Revalidate under the winner's lock: another lane may have taken
    // the head (or a cancel removed it) between peek and take. The exact
    // winner matters — taking whatever is best NOW without a rescan
    // could overtake a higher-priority head in a different shard.
    const auto head = shard.core.peek_head(now, eligible_in(shard));
    if (!head.has_value() || head->job_id != best->job_id) {
      return DispatchOutcome::kRetry;
    }
    batch = shard.core.take(head->job_id);
    if (!batch.has_value()) return DispatchOutcome::kRetry;
    total_queued_.fetch_sub(1, std::memory_order_relaxed);
    Record& record = shard.records.at(batch->job_id);
    if (record.job.resource.empty()) {
      // Unplaced job (fleet was down at submit): claim it for this lane.
      auto claimed = broker_->pick({.policy = record.policy_hint,
                                    .resource_hint = lane,
                                    .exclude = {}});
      if (!claimed.ok()) {
        shard.core.batch_failed(*batch);
        total_queued_.fetch_add(1, std::memory_order_relaxed);
        return DispatchOutcome::kIdle;  // lane became unusable: back off
      }
      record.job.resource = lane;
      if (store_ != nullptr) store_->job_placed(batch->job_id, lane);
    }
    if (record.cancel_requested) {
      // batch_done re-queues a non-final remainder, which remove() then
      // takes back out: mirror that in the depth counter or it drifts.
      if (!batch->final_batch) {
        total_queued_.fetch_add(1, std::memory_order_relaxed);
      }
      shard.core.batch_done(*batch);
      if (shard.core.remove(batch->job_id)) {
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
      }
      finish_locked(shard, record, DaemonJobState::kCancelled, "");
      return DispatchOutcome::kRetry;
    }
    const common::TimeNs dispatched_at = clock_->now();
    if (record.job.state == DaemonJobState::kQueued) {
      record.job.state = DaemonJobState::kRunning;
      drop_user_pending(shard, record.job.user);
      // Keep the first dispatch time across failover requeues.
      if (record.job.first_dispatch_time == 0) {
        record.job.first_dispatch_time = dispatched_at;
      }
    }
    slice = *record.payload;
    slice.set_shots(batch->shots);
    if (store_ != nullptr) {
      // Same stamp as first_dispatch_time: replay recovers it from the
      // first batch_dispatched event's time.
      store_->batch_dispatched(batch->job_id, lane, batch->shots,
                               dispatched_at);
    }
    trace = record.job.trace_id;
    trace_cls = record.job.job_class;
    if (traces_ != nullptr && trace != 0) {
      materialize_trace_locked(record);
      if (auto closed = traces_->enter(
              trace, clock_->now(), "shard_dispatch",
              "resource=" + lane + " shard=" +
                  std::to_string(best_shard))) {
        observe_stage(closed->stage, trace_cls, lane, closed->duration);
      }
    }
  }

  broker_->on_dispatch(lane, batch->shots);
  const common::TimeNs run_start = clock_->now();
  const bool traced = traces_ != nullptr && trace != 0;
  if (traced) {
    if (auto closed = traces_->enter(trace, run_start, "qrmi_execute",
                                     "resource=" + lane)) {
      observe_stage(closed->stage, trace_cls, lane, closed->duration);
    }
  }
  qrmi::Qrmi::RunStats run_stats;
  auto outcome =
      resource->run_sync(slice, kRunPoll, clock_, traced ? &run_stats : nullptr);
  const common::DurationNs qpu_ns = clock_->now() - run_start;
  if (traced && run_stats.polls > 0) {
    traces_->child(trace, "qrmi_poll", run_stats.poll_start,
                   run_stats.poll_end,
                   "polls=" + std::to_string(run_stats.polls));
    if (run_stats.result_end > run_stats.poll_end) {
      traces_->child(trace, "result_fetch", run_stats.poll_end,
                     run_stats.result_end);
    }
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_batches_dispatched_total",
                  {{"class", to_string(batch->cls)}, {"resource", lane}},
                  "QPU batches dispatched")
        .increment();
  }

  if (!outcome.ok() && is_resource_failure(outcome.error())) {
    // The resource, not the payload, failed: give the shots back and move
    // every job placed here onto a healthy peer.
    broker_->on_failure(lane, outcome.error());
    {
      std::scoped_lock lock(shard.mutex);
      shard.core.batch_failed(*batch);
      total_queued_.fetch_add(1, std::memory_order_relaxed);
      // The batch never executed: the job is queued again, which keeps
      // status reporting honest and lets cancel() act immediately while
      // no resource can take it.
      Record& record = shard.records.at(batch->job_id);
      if (record.job.state == DaemonJobState::kRunning) {
        record.job.state = DaemonJobState::kQueued;
        ++shard.user_pending[record.job.user];
      }
      if (store_ != nullptr) {
        store_->batch_failed(batch->job_id, lane, batch->shots,
                             outcome.error().to_string());
      }
      if (traced) {
        const common::TimeNs tnow = clock_->now();
        traces_->annotate(trace, tnow,
                          "requeue: resource failure on '" + lane +
                              "': " + outcome.error().message());
        if (auto closed =
                traces_->enter(trace, tnow, "queue_wait",
                               "requeued after failure on " + lane)) {
          observe_stage(closed->stage, trace_cls, lane, closed->duration);
        }
      }
      if (events_ != nullptr) {
        events_->log(clock_->now(), telemetry::Severity::kWarn, "failover",
                     "batch of job " + std::to_string(batch->job_id) +
                         " returned by '" + lane +
                         "': " + outcome.error().message(),
                     record.job.user, batch->job_id, trace);
      }
      // A cancel that raced the in-flight batch must win over failover:
      // with no healthy resource left the requeued job would otherwise
      // sit queued-with-cancel-requested forever.
      if (record.cancel_requested) {
        if (shard.core.remove(batch->job_id)) {
          total_queued_.fetch_sub(1, std::memory_order_relaxed);
        }
        finish_locked(shard, record, DaemonJobState::kCancelled, "");
      } else if (++record.failovers > kMaxBatchFailovers) {
        if (shard.core.remove(batch->job_id)) {
          total_queued_.fetch_sub(1, std::memory_order_relaxed);
        }
        finish_locked(shard, record, DaemonJobState::kFailed,
                      "gave up after " +
                          std::to_string(record.failovers) +
                          " resource failures (last on '" + lane +
                          "'): " + outcome.error().to_string());
      }
    }
    // Outside the shard lock: reassign_from locks every shard in turn.
    reassign_from(lane);
    return DispatchOutcome::kDispatched;
  }

  if (!outcome.ok()) {
    broker_->on_rejected(lane);
    std::scoped_lock lock(shard.mutex);
    Record& record = shard.records.at(batch->job_id);
    // A spec rejection of a broker-placed job may just mean a bad fit in
    // a heterogeneous fleet: re-place it on another resource (within the
    // failover budget) before giving up. Pinned jobs fail immediately —
    // the user chose the resource.
    if (!record.pinned && ++record.failovers <= kMaxBatchFailovers) {
      auto repick = broker_->pick({.policy = record.policy_hint,
                                   .resource_hint = {},
                                   .exclude = lane});
      if (repick.ok()) {
        shard.core.batch_failed(*batch);
        total_queued_.fetch_add(1, std::memory_order_relaxed);
        if (record.job.state == DaemonJobState::kRunning) {
          record.job.state = DaemonJobState::kQueued;
          ++shard.user_pending[record.job.user];
        }
        broker_->unbind(lane);
        record.job.resource = std::move(repick).value();
        if (store_ != nullptr) {
          store_->batch_failed(batch->job_id, lane, batch->shots,
                               outcome.error().to_string());
          store_->job_placed(batch->job_id, record.job.resource);
        }
        if (traced) {
          const common::TimeNs tnow = clock_->now();
          traces_->annotate(trace, tnow,
                            "re-placed on '" + record.job.resource +
                                "' after rejection by '" + lane + "'");
          if (auto closed =
                  traces_->enter(trace, tnow, "queue_wait",
                                 "re-placed on " + record.job.resource)) {
            observe_stage(closed->stage, trace_cls, lane, closed->duration);
          }
        }
        if (events_ != nullptr) {
          events_->log(clock_->now(), telemetry::Severity::kWarn,
                       "rejected_replaced",
                       "job " + std::to_string(batch->job_id) +
                           " rejected by '" + lane + "', re-placed on '" +
                           record.job.resource + "'",
                       record.job.user, batch->job_id, trace);
        }
        QCENV_LOG(Warn) << "job " << batch->job_id << " rejected by "
                        << lane << " (" << outcome.error().to_string()
                        << "), re-placing on " << record.job.resource;
        wake_lanes();
        return DispatchOutcome::kDispatched;
      }
    }
    if (!batch->final_batch) {
      total_queued_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.core.batch_done(*batch);
    if (shard.core.remove(batch->job_id)) {
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    finish_locked(shard, record, DaemonJobState::kFailed,
                  outcome.error().to_string());
    QCENV_LOG(Warn) << "job " << batch->job_id
                    << " failed: " << record.job.error;
    wake_lanes();
    return DispatchOutcome::kDispatched;
  }

  broker_->on_success(lane, batch->shots);
  std::scoped_lock lock(shard.mutex);
  Record& record = shard.records.at(batch->job_id);
  if (!batch->final_batch) {
    // batch_done re-queues the remainder below.
    total_queued_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.core.batch_done(*batch);
  record.job.shots_done += batch->shots;
  // Keep the last batch's metadata (most recent calibration).
  auto merged_metadata = outcome.value().metadata();
  (void)record.samples.merge(outcome.value());
  record.samples.set_metadata(std::move(merged_metadata));
  // One clock read shared by the journal event and the ledger charge:
  // replay derives the re-charge instant from the event time, so two
  // reads (two different virtual instants) would make the replayed
  // ledger decay differently from the live one.
  const common::TimeNs charged_at = clock_->now();
  if (store_ != nullptr) {
    // The executed shots become durable BEFORE any terminal event, so a
    // crash between the two replays them as done, never re-runs them.
    // Serialization is deferred to the journal's writer thread.
    store_->batch_done(batch->job_id, batch->shots, qpu_ns,
                       batch->final_batch, outcome.value(), charged_at);
  }
  if (accounting_ != nullptr) {
    // Charged in the same critical section as the journal append, so a
    // compaction snapshot (which reads the watermark and the ledger
    // under every shard mutex) can never tear the two apart.
    accounting_->charge_batch(record.job.user, batch->shots, qpu_ns,
                              charged_at);
  }
  if (traced && !batch->final_batch && !record.cancel_requested) {
    // The remainder re-enters the queue: open a fresh queue_wait stage so
    // multi-batch jobs show one wait/dispatch/execute cycle per batch.
    if (auto closed = traces_->enter(trace, clock_->now(), "queue_wait",
                                     "remainder requeued")) {
      observe_stage(closed->stage, trace_cls, lane, closed->duration);
    }
  }

  if (record.cancel_requested) {
    if (shard.core.remove(batch->job_id)) {
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    finish_locked(shard, record, DaemonJobState::kCancelled, "");
  } else if (batch->final_batch) {
    finish_locked(shard, record, DaemonJobState::kCompleted, "");
  }
  wake_lanes();
  return DispatchOutcome::kDispatched;
}

void Dispatcher::lane_loop(const std::stop_token& stop,
                           const std::string& lane) {
  auto handle = broker_->resource(lane);
  if (!handle.ok()) return;
  const qrmi::QrmiPtr resource = std::move(handle).value();

  bool was_healthy = true;
  while (!stop.stop_requested()) {
    {
      // Watchdog heartbeat: a lane stuck inside dispatch_one (hung
      // endpoint) stops beating, which the flight recorder flags.
      std::scoped_lock beat_lock(heartbeat_mutex_);
      if (lane_heartbeat_) lane_heartbeat_(lane);
    }
    // Probe outside the queue locks: a hung endpoint must not block peers.
    const bool healthy = broker_->check_health(lane);
    // Move placed jobs away once per down transition (the batch-failure
    // path below covers failures detected mid-dispatch); placement never
    // selects an unhealthy resource, so no new jobs land here meanwhile.
    if (!healthy && was_healthy) reassign_from(lane);
    was_healthy = healthy;

    // Epoch BEFORE the dispatch attempt: work submitted while this lane
    // is busy re-triggers the scan instead of being slept through.
    const std::uint64_t epoch =
        dispatch_epoch_.load(std::memory_order_acquire);
    DispatchOutcome outcome = DispatchOutcome::kIdle;
    if (!draining_.load() && healthy && !broker_->draining(lane)) {
      outcome = dispatch_one(lane, resource);
    }
    if (stop.stop_requested()) return;
    if (outcome != DispatchOutcome::kIdle) continue;
    std::unique_lock wait_lock(dispatch_mutex_);
    if (draining_.load()) {
      // Parked: under a global drain no epoch bump can make work
      // dispatchable here, so the lane does not register as a waiter and
      // the submit hot path skips the wake entirely. resume()/stop use
      // the unconditional wake; the idle tick bounds any staleness.
      dispatch_cv_.wait_for(
          wait_lock, std::chrono::nanoseconds(idle_tick_.load()),
          [&] { return stop.stop_requested() || !draining_.load(); });
      continue;
    }
    dispatch_waiters_.fetch_add(1, std::memory_order_seq_cst);
    dispatch_cv_.wait_for(
        wait_lock, std::chrono::nanoseconds(idle_tick_.load()), [&] {
          return stop.stop_requested() ||
                 dispatch_epoch_.load(std::memory_order_acquire) != epoch;
        });
    dispatch_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace qcenv::daemon
