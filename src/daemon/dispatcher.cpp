#include "daemon/dispatcher.hpp"

#include <algorithm>
#include <chrono>

#define QCENV_LOG_COMPONENT "daemon.dispatch"
#include "common/logging.hpp"

namespace qcenv::daemon {

using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

namespace {

/// Poll interval for synchronous batch execution through QRMI.
constexpr common::DurationNs kRunPoll = common::kMillisecond;

/// Failover budget per job: a batch returned by batch_failed() more often
/// than this fails the job instead of requeueing, so a payload that times
/// out on *every* resource cannot bounce around the fleet forever.
constexpr std::uint32_t kMaxBatchFailovers = 8;

/// Errors that indict the resource (node loss, endpoint down) rather than
/// the payload: these trigger failover instead of failing the job.
bool is_resource_failure(const common::Error& error) {
  switch (error.code()) {
    case common::ErrorCode::kUnavailable:
    case common::ErrorCode::kIo:
    case common::ErrorCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* to_string(DaemonJobState state) noexcept {
  switch (state) {
    case DaemonJobState::kQueued: return "queued";
    case DaemonJobState::kRunning: return "running";
    case DaemonJobState::kCompleted: return "completed";
    case DaemonJobState::kFailed: return "failed";
    case DaemonJobState::kCancelled: return "cancelled";
  }
  return "?";
}

Dispatcher::Dispatcher(std::shared_ptr<broker::ResourceBroker> broker,
                       QueuePolicy policy, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics,
                       store::StateStore* store,
                       accounting::AccountingManager* accounting)
    : broker_(std::move(broker)),
      clock_(clock),
      metrics_(metrics),
      store_(store),
      accounting_(accounting),
      core_(policy) {
  install_priority_hook();
  start_lanes();
}

Dispatcher::Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
                       common::Clock* clock,
                       telemetry::MetricsRegistry* metrics,
                       store::StateStore* store,
                       accounting::AccountingManager* accounting)
    : broker_(std::make_shared<broker::ResourceBroker>(broker::BrokerOptions{},
                                                       clock, metrics)),
      clock_(clock),
      metrics_(metrics),
      store_(store),
      accounting_(accounting),
      core_(policy) {
  const Status added = broker_->add(resource->resource_id(), resource);
  (void)added;  // resource_id collisions are impossible in a fresh fleet
  install_priority_hook();
  start_lanes();
}

void Dispatcher::install_priority_hook() {
  if (accounting_ == nullptr) return;
  // Runs under mutex_ (every core_ call site holds it), so records_ access
  // and the lambda's memo are safe; the accounting side locks internally
  // and never calls back. The memo is seeded with the whole fair-share
  // table in ONE population traversal per ordering pass (the core
  // evaluates a whole pass at a single `now`), so a pass costs O(users)
  // accounting work instead of O(users) per pending job.
  core_.set_priority_hook(
      [this, memo_now = common::TimeNs{-1},
       memo = std::map<std::string, double>{}](
          std::uint64_t job_id, common::TimeNs now) mutable {
        if (now != memo_now) {
          memo = accounting_->priorities(now);
          memo_now = now;
        }
        const std::string& user = records_.at(job_id).job.user;
        auto it = memo.find(user);
        if (it == memo.end()) {
          // A user outside the known population (no usage, no grant yet).
          it = memo.emplace(user, accounting_->priority(user, now)).first;
        }
        return it->second;
      });
}

void Dispatcher::start_lanes() {
  for (const auto& name : broker_->names()) {
    lanes_.emplace_back([this, name](const std::stop_token& stop) {
      lane_loop(stop, name);
    });
  }
}

Dispatcher::~Dispatcher() {
  for (auto& lane : lanes_) lane.request_stop();
  cv_.notify_all();
}

std::uint64_t Dispatcher::submit(common::SessionId session,
                                 const std::string& user, JobClass cls,
                                 Payload payload) {
  return submit(session, user, cls, std::move(payload), SubmitOptions{})
      .value();
}

Result<std::uint64_t> Dispatcher::submit(common::SessionId session,
                                         const std::string& user,
                                         JobClass cls, Payload payload,
                                         const SubmitOptions& options) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(mutex_);
    // A fail-stopped journal can acknowledge nothing: accepting work it
    // cannot journal would hand out jobs a restart silently forgets.
    if (store_ != nullptr && store_->journal().io_error().has_value()) {
      return common::err::io(
          "durable store has failed (" +
          store_->journal().io_error()->message() +
          "); submissions are rejected until the daemon is restarted");
    }
    if (options.user_pending_limit > 0) {
      std::size_t pending = 0;
      for (const std::uint64_t live : active_) {
        const Record& record = records_.at(live);
        if (record.job.user == user &&
            record.job.state == DaemonJobState::kQueued) {
          ++pending;
        }
      }
      if (pending >= options.user_pending_limit) {
        return common::err::resource_exhausted(
            "user '" + user + "' already has " + std::to_string(pending) +
            " job(s) pending (per-user limit " +
            std::to_string(options.user_pending_limit) + ")");
      }
    }
    std::string placed;
    if (!options.resource.empty()) {
      auto picked = broker_->pick({.policy = options.policy,
                                   .resource_hint = options.resource,
                                   .exclude = {}});
      if (!picked.ok()) return picked.error();
      placed = std::move(picked).value();
    } else {
      auto picked =
          broker_->pick({.policy = options.policy, .resource_hint = {},
                         .exclude = {}});
      // No healthy resource right now: accept the job unplaced; a lane
      // claims it once its resource recovers.
      if (picked.ok()) placed = std::move(picked).value();
    }
    id = next_job_id_++;
    Record record;
    record.job.id = id;
    record.job.session = session;
    record.job.user = user;
    record.job.job_class = cls;
    record.job.total_shots = payload.shots();
    record.job.submit_time = clock_->now();
    record.job.resource = std::move(placed);
    record.pinned = !options.resource.empty();
    record.policy_hint = options.policy;
    record.samples = Samples(payload.num_qubits());
    record.payload = std::make_shared<const Payload>(std::move(payload));
    core_.enqueue(id, cls, record.job.total_shots, record.job.submit_time);
    const auto inserted = records_.emplace(id, std::move(record));
    active_.insert(id);
    if (store_ != nullptr) {
      // Deferred payload serialization keeps the submit path O(metadata).
      store_->job_submitted(
          to_record_locked(inserted.first->second),
          inserted.first->second.payload);
      // In kAlways mode the append above ran inline; if it just failed,
      // the line is not on disk (failed writes never land; a written-but-
      // unfsynced line is sheared back off by write_block's compensating
      // truncate), so a restart cannot resurrect this job. Unwind the
      // admission instead of acking a submission that is not durable:
      // the caller releases its accounting reservation on this error,
      // leaving ledger and rate limiter exactly as before the request.
      if (store_->journal().io_error().has_value()) {
        core_.remove(id);
        active_.erase(id);
        if (!inserted.first->second.job.resource.empty()) {
          broker_->unbind(inserted.first->second.job.resource);
        }
        records_.erase(inserted.first);
        return common::err::io(
            "journal append failed (" +
            store_->journal().io_error()->message() +
            "); submission rejected");
      }
    }
    // Amortized terminal-job GC: each submission pays for the sweep that
    // keeps records_ bounded.
    (void)sweep_terminal_locked(inserted.first->second.job.submit_time);
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_submitted_total",
                  {{"class", to_string(cls)}}, "jobs accepted by the daemon")
        .increment();
  }
  cv_.notify_all();
  return id;
}

Result<DaemonJob> Dispatcher::query(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  return it->second.job;
}

Result<Samples> Dispatcher::result(std::uint64_t job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  const Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kCompleted: return record.samples;
    case DaemonJobState::kFailed:
      return common::err::internal(record.job.error);
    case DaemonJobState::kCancelled:
      return common::err::cancelled("job was cancelled");
    default:
      return common::err::failed_precondition(
          "job is " + std::string(to_string(record.job.state)));
  }
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id) {
  return wait(job_id, -1);
}

Result<Samples> Dispatcher::wait(std::uint64_t job_id,
                                 common::DurationNs timeout) {
  {
    std::unique_lock lock(mutex_);
    const auto it = records_.find(job_id);
    if (it == records_.end()) {
      return common::err::not_found("unknown job " + std::to_string(job_id));
    }
    const auto terminal = [&] {
      const auto& state = records_.at(job_id).job.state;
      return state == DaemonJobState::kCompleted ||
             state == DaemonJobState::kFailed ||
             state == DaemonJobState::kCancelled;
    };
    if (timeout < 0) {
      cv_.wait(lock, terminal);
    } else if (!cv_.wait_for(lock, std::chrono::nanoseconds(timeout),
                             terminal)) {
      const DaemonJob& job = records_.at(job_id).job;
      return common::err::timeout(
          "job " + std::to_string(job_id) + " still " +
          to_string(job.state) + " after " +
          std::to_string(timeout / common::kMillisecond) + " ms (resource: " +
          (job.resource.empty() ? "<unplaced>" : job.resource) + ")");
    }
  }
  return result(job_id);
}

Status Dispatcher::cancel(std::uint64_t job_id) {
  std::scoped_lock lock(mutex_);
  const auto it = records_.find(job_id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + std::to_string(job_id));
  }
  Record& record = it->second;
  switch (record.job.state) {
    case DaemonJobState::kQueued:
      core_.remove(job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
      return Status::ok_status();
    case DaemonJobState::kRunning:
      // Honoured at the next batch boundary (shot-batch granularity);
      // journaled so a crash before that boundary cannot resurrect it.
      record.cancel_requested = true;
      if (store_ != nullptr) store_->job_cancel_requested(job_id);
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "job already " + std::string(to_string(record.job.state)));
  }
}

void Dispatcher::set_idle_tick(common::DurationNs tick) {
  idle_tick_.store(tick > 0 ? tick : common::kMillisecond);
  cv_.notify_all();
}

void Dispatcher::drain() {
  draining_.store(true);
  cv_.notify_all();
}

void Dispatcher::resume() {
  draining_.store(false);
  cv_.notify_all();
}

Status Dispatcher::drain_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->drain(name));
  // Rolling maintenance: queued work leaves the drained resource now.
  reassign_from(name);
  return Status::ok_status();
}

Status Dispatcher::resume_resource(const std::string& name) {
  QCENV_RETURN_IF_ERROR(broker_->resume(name));
  cv_.notify_all();
  return Status::ok_status();
}

std::map<JobClass, std::size_t> Dispatcher::queue_depths() const {
  std::scoped_lock lock(mutex_);
  return {
      {JobClass::kProduction, core_.depth_of(JobClass::kProduction)},
      {JobClass::kTest, core_.depth_of(JobClass::kTest)},
      {JobClass::kDevelopment, core_.depth_of(JobClass::kDevelopment)},
  };
}

std::vector<DaemonJob> Dispatcher::jobs_snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<DaemonJob> out;
  out.reserve(records_.size());
  for (const auto& [_, record] : records_) out.push_back(record.job);
  return out;
}

std::vector<std::uint64_t> Dispatcher::queue_order() const {
  std::scoped_lock lock(mutex_);
  return core_.snapshot(clock_->now());
}

std::map<std::string, std::size_t> Dispatcher::user_pending_counts() const {
  std::scoped_lock lock(mutex_);
  std::map<std::string, std::size_t> out;
  for (const std::uint64_t id : active_) {
    const Record& record = records_.at(id);
    if (record.job.state == DaemonJobState::kQueued) {
      ++out[record.job.user];
    }
  }
  return out;
}

std::size_t Dispatcher::pending_for_user(const std::string& user) const {
  std::scoped_lock lock(mutex_);
  std::size_t count = 0;
  for (const std::uint64_t id : active_) {
    const Record& record = records_.at(id);
    if (record.job.user == user &&
        record.job.state == DaemonJobState::kQueued) {
      ++count;
    }
  }
  return count;
}

void Dispatcher::set_terminal_retention(common::DurationNs retention,
                                        std::size_t cap) {
  std::scoped_lock lock(mutex_);
  terminal_retention_ = retention;
  terminal_cap_ = cap;
}

std::size_t Dispatcher::sweep_terminal() {
  std::scoped_lock lock(mutex_);
  return sweep_terminal_locked(clock_->now());
}

std::size_t Dispatcher::sweep_terminal_locked(common::TimeNs now) {
  if (terminal_retention_ <= 0 && terminal_cap_ == 0) return 0;
  std::size_t evicted = 0;
  while (!terminal_order_.empty()) {
    const std::uint64_t id = terminal_order_.front();
    const bool over_cap =
        terminal_cap_ > 0 && terminal_order_.size() > terminal_cap_;
    const auto it = records_.find(id);
    if (it == records_.end()) {  // defensive: already gone
      terminal_order_.pop_front();
      continue;
    }
    const bool expired =
        terminal_retention_ > 0 &&
        it->second.job.finish_time + terminal_retention_ <= now;
    if (!over_cap && !expired) break;  // front is oldest: nothing further
    terminal_order_.pop_front();
    records_.erase(it);
    if (store_ != nullptr) store_->job_evicted(id);
    ++evicted;
  }
  if (evicted > 0 && metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_evicted_total", {},
                  "terminal job records dropped by retention/cap GC")
        .increment(static_cast<double>(evicted));
  }
  return evicted;
}

std::map<std::string, Dispatcher::LaneDepth> Dispatcher::lane_depths()
    const {
  std::map<std::string, LaneDepth> out;
  for (const auto& name : broker_->names()) out[name];
  std::scoped_lock lock(mutex_);
  // O(live jobs), not O(all jobs ever): records_ keeps terminal jobs for
  // result serving, but only active_ members can sit on a lane.
  for (const std::uint64_t id : active_) {
    const Record& record = records_.at(id);
    const std::string& key = record.job.resource.empty()
                                 ? std::string("(unplaced)")
                                 : record.job.resource;
    if (record.job.state == DaemonJobState::kQueued) {
      ++out[key].queued;
    } else if (record.job.state == DaemonJobState::kRunning) {
      ++out[key].running;
    }
  }
  return out;
}

std::size_t Dispatcher::cancel_for_session(common::SessionId session) {
  std::size_t affected = 0;
  {
    std::scoped_lock lock(mutex_);
    // Copy: finish_locked below erases from active_ as we cancel.
    const std::vector<std::uint64_t> live(active_.begin(), active_.end());
    for (const std::uint64_t id : live) {
      Record& record = records_.at(id);
      if (record.job.session != session) continue;
      switch (record.job.state) {
        case DaemonJobState::kQueued:
          core_.remove(id);
          finish_locked(record, DaemonJobState::kCancelled,
                        "session closed");
          ++affected;
          break;
        case DaemonJobState::kRunning:
          if (!record.cancel_requested) {
            record.cancel_requested = true;
            if (store_ != nullptr) store_->job_cancel_requested(id);
            ++affected;
          }
          break;
        default:
          break;
      }
    }
  }
  if (affected > 0) cv_.notify_all();
  return affected;
}

store::JobRecord Dispatcher::to_record_locked(const Record& record) const {
  store::JobRecord out;
  out.id = record.job.id;
  out.session = record.job.session.value;
  out.user = record.job.user;
  out.job_class = record.job.job_class;
  switch (record.job.state) {
    case DaemonJobState::kQueued: out.phase = store::JobPhase::kQueued; break;
    case DaemonJobState::kRunning:
      out.phase = store::JobPhase::kRunning;
      break;
    case DaemonJobState::kCompleted:
      out.phase = store::JobPhase::kCompleted;
      break;
    case DaemonJobState::kFailed: out.phase = store::JobPhase::kFailed; break;
    case DaemonJobState::kCancelled:
      out.phase = store::JobPhase::kCancelled;
      break;
  }
  out.total_shots = record.job.total_shots;
  out.shots_done = record.job.shots_done;
  out.submit_time = record.job.submit_time;
  out.first_dispatch_time = record.job.first_dispatch_time;
  out.finish_time = record.job.finish_time;
  out.resource = record.job.resource;
  out.cancel_requested = record.cancel_requested;
  out.pinned = record.pinned;
  if (record.policy_hint.has_value()) {
    out.policy = broker::to_string(*record.policy_hint);
  }
  out.error = record.job.error;
  return out;
}

store::StoreSnapshot Dispatcher::durable_snapshot() const {
  // Copy cheap metadata (plus shared payload handles and counts maps)
  // under the lock; serialize the heavy JSON outside it, so a compaction
  // over a large job table does not stall submits and dispatch lanes.
  struct Staged {
    store::JobRecord meta;
    std::shared_ptr<const quantum::Payload> payload;
    std::shared_ptr<std::atomic<std::uint64_t>> payload_fp;
    std::optional<quantum::Samples> samples;
  };
  std::vector<Staged> staged;
  store::StoreSnapshot snapshot;
  {
    std::scoped_lock lock(mutex_);
    // Watermark first: every job event at or below it was appended under
    // this mutex, so it is reflected in the records copied below.
    snapshot.jobs_seq =
        store_ != nullptr ? store_->journal().last_seq() : 0;
    snapshot.next_job_id = next_job_id_;
    if (accounting_ != nullptr) {
      // Ledger charges happen under this mutex (charge_batch in the lane
      // loop), so reading the ledger here is exactly consistent with the
      // watermark above: usage events <= jobs_seq are in these records,
      // later ones replay on top.
      snapshot.usage = accounting_->usage_records(clock_->now());
    }
    staged.reserve(records_.size());
    for (const auto& [_, record] : records_) {
      Staged entry;
      entry.meta = to_record_locked(record);
      entry.payload = record.payload;
      entry.payload_fp = record.payload_fp;
      if (record.job.shots_done > 0) entry.samples = record.samples;
      staged.push_back(std::move(entry));
    }
  }
  snapshot.jobs.reserve(staged.size());
  for (auto& entry : staged) {
    if (entry.payload != nullptr) {
      // Same content-dedup scheme as the journal: each distinct program
      // is serialized once into the snapshot's payload table, and jobs
      // reference it by fingerprint (memoized per record — hashed at
      // most once per job, not once per compaction).
      std::uint64_t fp = entry.payload_fp->load(std::memory_order_relaxed);
      if (fp == 0) {
        fp = store::payload_fingerprint(*entry.payload);
        entry.payload_fp->store(fp, std::memory_order_relaxed);
      }
      entry.meta.payload_hash = fp;
      const std::string key = entry.meta.user + "|" +
                              std::to_string(entry.meta.payload_hash);
      const auto table = snapshot.payloads.find(key);
      if (table == snapshot.payloads.end()) {
        snapshot.payloads.emplace(key, entry.payload->to_json());
      }
    }
    if (entry.samples.has_value()) {
      entry.meta.samples = entry.samples->to_json();
    }
    snapshot.jobs.push_back(std::move(entry.meta));
  }
  return snapshot;
}

void Dispatcher::restore(const std::vector<store::JobRecord>& jobs,
                         std::uint64_t next_job_id) {
  std::scoped_lock lock(mutex_);
  for (const auto& recovered : jobs) {
    if (records_.count(recovered.id) > 0) continue;  // defensive
    Record record;
    record.job.id = recovered.id;
    record.job.session = common::SessionId{recovered.session};
    record.job.user = recovered.user;
    record.job.job_class = recovered.job_class;
    record.job.total_shots = recovered.total_shots;
    record.job.shots_done = recovered.shots_done;
    record.job.submit_time = recovered.submit_time;
    record.job.first_dispatch_time = recovered.first_dispatch_time;
    record.job.finish_time = recovered.finish_time;
    record.job.resource = recovered.resource;  // "" for requeued jobs
    record.job.error = recovered.error;
    record.cancel_requested = recovered.cancel_requested;
    record.pinned = recovered.pinned;
    if (!recovered.policy.empty()) {
      auto policy = broker::policy_from_string(recovered.policy);
      if (policy.ok()) record.policy_hint = policy.value();
    }
    switch (recovered.phase) {
      case store::JobPhase::kQueued:
      case store::JobPhase::kRunning:  // replay folds running -> queued
        record.job.state = DaemonJobState::kQueued;
        break;
      case store::JobPhase::kCompleted:
        record.job.state = DaemonJobState::kCompleted;
        break;
      case store::JobPhase::kFailed:
        record.job.state = DaemonJobState::kFailed;
        break;
      case store::JobPhase::kCancelled:
        record.job.state = DaemonJobState::kCancelled;
        break;
    }
    auto payload = quantum::Payload::from_json(recovered.payload);
    if (payload.ok()) {
      record.payload =
          std::make_shared<const Payload>(std::move(payload).value());
      // Keep the store's original fingerprint: re-hashing the decoded
      // payload could differ after a JSON round-trip (whole-number
      // doubles re-dump as ints), which would break dedup-key stability
      // across restarts.
      record.payload_fp->store(recovered.payload_hash,
                               std::memory_order_relaxed);
    } else if (record.job.state == DaemonJobState::kQueued) {
      // Cannot re-run what we cannot decode; fail loudly instead of
      // silently dropping the job.
      record.job.state = DaemonJobState::kFailed;
      record.job.error = "payload could not be restored from the store: " +
                         payload.error().message();
    }
    if (!recovered.samples.is_null()) {
      auto samples = quantum::Samples::from_json(recovered.samples);
      if (samples.ok()) record.samples = std::move(samples).value();
    } else {
      record.samples = Samples(
          record.payload != nullptr ? record.payload->num_qubits() : 0);
    }
    if (record.job.state == DaemonJobState::kQueued) {
      if (!record.job.resource.empty()) {
        // A recovered pin: re-bind through the broker so load accounting
        // and health checks hold; if the resource is gone or unusable,
        // unplace — the same treatment live failover gives a dead pin.
        auto bound = broker_->pick({.policy = record.policy_hint,
                                    .resource_hint = record.job.resource,
                                    .exclude = {}});
        if (bound.ok()) {
          record.job.resource = std::move(bound).value();
        } else {
          record.job.resource.clear();
        }
      }
      const std::uint64_t remaining =
          record.job.total_shots -
          std::min(record.job.shots_done, record.job.total_shots);
      core_.enqueue(recovered.id, recovered.job_class, remaining,
                    recovered.submit_time);
      active_.insert(recovered.id);
      if (accounting_ != nullptr) {
        // The previous life reserved these shots at admission; re-reserve
        // them so this job's releases cannot drain reservations that
        // newly admitted work legitimately holds.
        accounting_->restore_inflight(record.job.user, remaining);
      }
    }
    next_job_id_ = std::max(next_job_id_, recovered.id + 1);
    records_.emplace(recovered.id, std::move(record));
  }
  next_job_id_ = std::max(next_job_id_, next_job_id);
  // Rebuild the GC's LRU: terminal records in finish order, oldest first,
  // so retention keeps expiring across restarts.
  std::vector<std::uint64_t> terminal;
  for (const auto& [id, record] : records_) {
    if (active_.count(id) == 0) terminal.push_back(id);
  }
  std::sort(terminal.begin(), terminal.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              const auto ta = records_.at(a).job.finish_time;
              const auto tb = records_.at(b).job.finish_time;
              return ta != tb ? ta < tb : a < b;
            });
  terminal_order_.assign(terminal.begin(), terminal.end());
  cv_.notify_all();
}

void Dispatcher::finish_locked(Record& record, DaemonJobState state,
                               const std::string& error) {
  record.job.state = state;
  record.job.error = error;
  record.job.finish_time = clock_->now();
  active_.erase(record.job.id);
  terminal_order_.push_back(record.job.id);
  if (!record.job.resource.empty()) {
    broker_->unbind(record.job.resource);
  }
  if (accounting_ != nullptr) {
    // The never-executed remainder leaves the user's in-flight budget;
    // completions additionally charge one job to the ledger.
    const std::uint64_t unexecuted =
        record.job.total_shots -
        std::min(record.job.shots_done, record.job.total_shots);
    accounting_->job_finished(record.job.user, unexecuted,
                              state == DaemonJobState::kCompleted);
  }
  if (store_ != nullptr) {
    switch (state) {
      case DaemonJobState::kCompleted:
        store_->job_completed(record.job.id);
        break;
      case DaemonJobState::kFailed:
        store_->job_failed(record.job.id, error);
        break;
      case DaemonJobState::kCancelled:
        store_->job_cancelled(record.job.id);
        break;
      default:
        break;
    }
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("daemon_jobs_finished_total",
                  {{"class", to_string(record.job.job_class)},
                   {"state", to_string(state)}},
                  "jobs reaching a terminal state")
        .increment();
    if (state == DaemonJobState::kCompleted &&
        record.job.first_dispatch_time > 0) {
      metrics_
          ->histogram("daemon_job_wait_seconds",
                      {0.1, 0.5, 1, 5, 15, 60, 300, 1800},
                      {{"class", to_string(record.job.job_class)}},
                      "queue wait before first dispatch")
          .observe(common::to_seconds(record.job.first_dispatch_time -
                                      record.job.submit_time));
    }
  }
}

bool Dispatcher::has_eligible_locked(const std::string& lane) const {
  return core_.any_pending([&](std::uint64_t job_id) {
    const std::string& placed = records_.at(job_id).job.resource;
    return placed == lane || placed.empty();
  });
}

void Dispatcher::reassign_from(const std::string& lane) {
  std::size_t moved = 0;
  std::size_t stranded = 0;
  {
    std::scoped_lock lock(mutex_);
    for (const std::uint64_t id : active_) {
      Record& record = records_.at(id);
      if (record.job.resource != lane) continue;
      if (record.job.state != DaemonJobState::kQueued &&
          record.job.state != DaemonJobState::kRunning) {
        continue;
      }
      broker_->unbind(lane);
      auto repick = broker_->pick({.policy = record.policy_hint,
                                   .resource_hint = {},
                                   .exclude = lane});
      if (repick.ok()) {
        record.job.resource = std::move(repick).value();
        ++moved;
      } else {
        // Nothing healthy: the job waits unplaced for any lane to recover.
        record.job.resource.clear();
        ++stranded;
      }
      if (store_ != nullptr) {
        store_->job_placed(record.job.id, record.job.resource);
      }
    }
  }
  if (moved > 0 && metrics_ != nullptr) {
    metrics_
        ->counter("daemon_failovers_total", {{"resource", lane}},
                  "jobs moved off a failed or draining resource")
        .increment(static_cast<double>(moved));
  }
  if (moved + stranded > 0) {
    QCENV_LOG(Warn) << "moved " << moved << " job(s) off " << lane
                    << (stranded > 0
                            ? " (" + std::to_string(stranded) +
                                  " waiting for a healthy resource)"
                            : "");
    cv_.notify_all();
  }
}

void Dispatcher::lane_loop(const std::stop_token& stop,
                           const std::string& lane) {
  auto handle = broker_->resource(lane);
  if (!handle.ok()) return;
  const qrmi::QrmiPtr resource = std::move(handle).value();

  bool was_healthy = true;
  while (!stop.stop_requested()) {
    // Probe outside the queue lock: a hung endpoint must not block peers.
    const bool healthy = broker_->check_health(lane);
    // Move placed jobs away once per down transition (the batch-failure
    // path below covers failures detected mid-dispatch); placement never
    // selects an unhealthy resource, so no new jobs land here meanwhile.
    if (!healthy && was_healthy) reassign_from(lane);
    was_healthy = healthy;

    std::optional<Batch> batch;
    Payload slice;
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, std::chrono::nanoseconds(idle_tick_.load()), [&] {
        return stop.stop_requested() ||
               (!draining_.load() && healthy && !broker_->draining(lane) &&
                has_eligible_locked(lane));
      });
      if (stop.stop_requested()) return;
      if (draining_.load() || !healthy || broker_->draining(lane)) continue;
      batch = core_.next_batch(clock_->now(), [&](std::uint64_t job_id) {
        const std::string& placed = records_.at(job_id).job.resource;
        return placed == lane || placed.empty();
      });
      if (!batch.has_value()) continue;
      Record& record = records_.at(batch->job_id);
      if (record.job.resource.empty()) {
        // Unplaced job (fleet was down at submit): claim it for this lane.
        auto claimed = broker_->pick({.policy = record.policy_hint,
                                      .resource_hint = lane,
                                      .exclude = {}});
        if (!claimed.ok()) {
          core_.batch_failed(*batch);
          continue;
        }
        record.job.resource = lane;
        if (store_ != nullptr) store_->job_placed(batch->job_id, lane);
      }
      if (record.cancel_requested) {
        core_.batch_done(*batch);
        core_.remove(batch->job_id);
        finish_locked(record, DaemonJobState::kCancelled, "");
        cv_.notify_all();
        continue;
      }
      if (record.job.state == DaemonJobState::kQueued) {
        record.job.state = DaemonJobState::kRunning;
        // Keep the first dispatch time across failover requeues.
        if (record.job.first_dispatch_time == 0) {
          record.job.first_dispatch_time = clock_->now();
        }
      }
      slice = *record.payload;
      slice.set_shots(batch->shots);
      if (store_ != nullptr) {
        store_->batch_dispatched(batch->job_id, lane, batch->shots);
      }
    }

    broker_->on_dispatch(lane, batch->shots);
    const common::TimeNs run_start = clock_->now();
    auto outcome = resource->run_sync(slice, kRunPoll, clock_);
    const common::DurationNs qpu_ns = clock_->now() - run_start;
    if (metrics_ != nullptr) {
      metrics_
          ->counter("daemon_batches_dispatched_total",
                    {{"class", to_string(batch->cls)}, {"resource", lane}},
                    "QPU batches dispatched")
          .increment();
    }

    if (!outcome.ok() && is_resource_failure(outcome.error())) {
      // The resource, not the payload, failed: give the shots back and move
      // every job placed here onto a healthy peer.
      broker_->on_failure(lane, outcome.error());
      {
        std::scoped_lock lock(mutex_);
        core_.batch_failed(*batch);
        // The batch never executed: the job is queued again, which keeps
        // status reporting honest and lets cancel() act immediately while
        // no resource can take it.
        Record& record = records_.at(batch->job_id);
        if (record.job.state == DaemonJobState::kRunning) {
          record.job.state = DaemonJobState::kQueued;
        }
        if (store_ != nullptr) {
          store_->batch_failed(batch->job_id, lane, batch->shots,
                               outcome.error().to_string());
        }
        // A cancel that raced the in-flight batch must win over failover:
        // with no healthy resource left the requeued job would otherwise
        // sit queued-with-cancel-requested forever.
        if (record.cancel_requested) {
          core_.remove(batch->job_id);
          finish_locked(record, DaemonJobState::kCancelled, "");
          cv_.notify_all();
          continue;
        }
        if (++record.failovers > kMaxBatchFailovers) {
          core_.remove(batch->job_id);
          finish_locked(record, DaemonJobState::kFailed,
                        "gave up after " +
                            std::to_string(record.failovers) +
                            " resource failures (last on '" + lane +
                            "'): " + outcome.error().to_string());
          cv_.notify_all();
          continue;
        }
      }
      reassign_from(lane);
      continue;
    }

    if (!outcome.ok()) {
      broker_->on_rejected(lane);
      std::scoped_lock lock(mutex_);
      Record& record = records_.at(batch->job_id);
      // A spec rejection of a broker-placed job may just mean a bad fit in
      // a heterogeneous fleet: re-place it on another resource (within the
      // failover budget) before giving up. Pinned jobs fail immediately —
      // the user chose the resource.
      if (!record.pinned && ++record.failovers <= kMaxBatchFailovers) {
        auto repick = broker_->pick({.policy = record.policy_hint,
                                     .resource_hint = {},
                                     .exclude = lane});
        if (repick.ok()) {
          core_.batch_failed(*batch);
          if (record.job.state == DaemonJobState::kRunning) {
            record.job.state = DaemonJobState::kQueued;
          }
          broker_->unbind(lane);
          record.job.resource = std::move(repick).value();
          if (store_ != nullptr) {
            store_->batch_failed(batch->job_id, lane, batch->shots,
                                 outcome.error().to_string());
            store_->job_placed(batch->job_id, record.job.resource);
          }
          QCENV_LOG(Warn) << "job " << batch->job_id << " rejected by "
                          << lane << " (" << outcome.error().to_string()
                          << "), re-placing on " << record.job.resource;
          cv_.notify_all();
          continue;
        }
      }
      core_.batch_done(*batch);
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kFailed,
                    outcome.error().to_string());
      QCENV_LOG(Warn) << "job " << batch->job_id
                      << " failed: " << record.job.error;
      cv_.notify_all();
      continue;
    }

    broker_->on_success(lane, batch->shots);
    std::scoped_lock lock(mutex_);
    Record& record = records_.at(batch->job_id);
    core_.batch_done(*batch);
    record.job.shots_done += batch->shots;
    // Keep the last batch's metadata (most recent calibration).
    auto merged_metadata = outcome.value().metadata();
    (void)record.samples.merge(outcome.value());
    record.samples.set_metadata(std::move(merged_metadata));
    if (store_ != nullptr) {
      // The executed shots become durable BEFORE any terminal event, so a
      // crash between the two replays them as done, never re-runs them.
      // Serialization is deferred to the journal's writer thread.
      store_->batch_done(batch->job_id, batch->shots, qpu_ns,
                         batch->final_batch, outcome.value());
    }
    if (accounting_ != nullptr) {
      // Charged in the same critical section as the journal append, so a
      // compaction snapshot (which reads the watermark and the ledger
      // under this mutex) can never tear the two apart.
      accounting_->charge_batch(record.job.user, batch->shots, qpu_ns);
    }

    if (record.cancel_requested) {
      core_.remove(batch->job_id);
      finish_locked(record, DaemonJobState::kCancelled, "");
    } else if (batch->final_batch) {
      finish_locked(record, DaemonJobState::kCompleted, "");
    }
    cv_.notify_all();
  }
}

}  // namespace qcenv::daemon
