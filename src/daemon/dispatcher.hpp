// Live dispatcher: drives the PriorityQueueCore against a QRMI resource.
//
// One worker thread pulls batches from the policy core, slices the job's
// payload to the batch shot count, executes it synchronously through QRMI,
// merges samples into the job record and re-queues remainders. This is the
// daemon's "second level of scheduling logic that allows multiple users to
// share the QPU" (§3.3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "qrmi/qrmi.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::daemon {

enum class DaemonJobState {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

const char* to_string(DaemonJobState state) noexcept;

struct DaemonJob {
  std::uint64_t id = 0;
  common::SessionId session;
  std::string user;
  JobClass job_class = JobClass::kDevelopment;
  DaemonJobState state = DaemonJobState::kQueued;
  std::uint64_t total_shots = 0;
  std::uint64_t shots_done = 0;
  common::TimeNs submit_time = 0;
  common::TimeNs first_dispatch_time = 0;
  common::TimeNs finish_time = 0;
  std::string error;
};

class Dispatcher {
 public:
  Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
             common::Clock* clock, telemetry::MetricsRegistry* metrics);
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Enqueues a validated payload; returns the daemon job id.
  std::uint64_t submit(common::SessionId session, const std::string& user,
                       JobClass cls, quantum::Payload payload);

  common::Result<DaemonJob> query(std::uint64_t job_id) const;
  /// Samples of a completed job.
  common::Result<quantum::Samples> result(std::uint64_t job_id) const;
  /// Blocks until the job reaches a terminal state.
  common::Result<quantum::Samples> wait(std::uint64_t job_id);
  common::Status cancel(std::uint64_t job_id);

  /// Admin: pause/resume batch dispatch (maintenance windows).
  void drain();
  void resume();
  bool draining() const noexcept { return draining_.load(); }

  std::map<JobClass, std::size_t> queue_depths() const;
  std::vector<DaemonJob> jobs_snapshot() const;
  /// Pending ids in dispatch order.
  std::vector<std::uint64_t> queue_order() const;

 private:
  struct Record {
    DaemonJob job;
    quantum::Payload payload;
    quantum::Samples samples;
    bool cancel_requested = false;
  };

  void worker_loop(const std::stop_token& stop);
  void finish_locked(Record& record, DaemonJobState state,
                     const std::string& error);

  qrmi::QrmiPtr resource_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  PriorityQueueCore core_;
  std::map<std::uint64_t, Record> records_;
  std::uint64_t next_job_id_ = 1;
  std::atomic<bool> draining_{false};
  std::jthread worker_;
};

}  // namespace qcenv::daemon
