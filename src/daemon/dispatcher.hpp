// Live dispatcher: drives the PriorityQueueCore against a fleet of QRMI
// resources managed by a ResourceBroker.
//
// One worker lane per resource pulls batches from the shared policy core,
// slices the job's payload to the batch shot count, executes it
// synchronously through QRMI, merges samples into the job record and
// re-queues remainders. This is the daemon's "second level of scheduling
// logic that allows multiple users to share the QPU" (§3.3), extended to
// multi-resource dispatch: jobs are placed on a resource by the broker's
// scheduling policy, lanes drain the one queue concurrently, and when a
// resource fails its in-flight batch and queued jobs fail over to healthy
// resources with no shots lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "accounting/accounting.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "qrmi/qrmi.hpp"
#include "store/state_store.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::daemon {

enum class DaemonJobState {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

const char* to_string(DaemonJobState state) noexcept;

struct DaemonJob {
  std::uint64_t id = 0;
  common::SessionId session;
  std::string user;
  JobClass job_class = JobClass::kDevelopment;
  DaemonJobState state = DaemonJobState::kQueued;
  std::uint64_t total_shots = 0;
  std::uint64_t shots_done = 0;
  common::TimeNs submit_time = 0;
  common::TimeNs first_dispatch_time = 0;
  common::TimeNs finish_time = 0;
  /// Fleet resource the job is currently placed on. Empty while no healthy
  /// resource can take it; updated when failover moves the job.
  std::string resource;
  std::string error;
};

class Dispatcher {
 public:
  /// Per-job placement preferences (the REST `resource`/`policy` hints).
  struct SubmitOptions {
    /// Pin the initial placement to this fleet resource. Submission fails
    /// if it is unknown, unhealthy or draining. Failover may still move the
    /// job if the resource dies afterwards.
    std::string resource;
    /// Placement policy override for this job (initial pick and failover
    /// repicks); nullopt uses the broker default.
    std::optional<broker::SchedulingPolicy> policy;
    /// Per-user queued-job ceiling enforced ATOMICALLY under the queue
    /// lock (0 = none). The admission boundary pre-checks the same limit
    /// for a friendly early error, but only this check cannot be raced by
    /// concurrent submissions of the same user.
    std::size_t user_pending_limit = 0;
  };

  /// Multi-resource dispatcher: one worker lane per resource registered in
  /// `broker` at construction time. `store` (optional, must outlive the
  /// dispatcher) receives a journal event for every job state change.
  /// `accounting` (optional, must outlive the dispatcher) is charged for
  /// every executed batch and plugs fair-share ordering into the queue
  /// core: within a class, the most under-served user's jobs go first.
  Dispatcher(std::shared_ptr<broker::ResourceBroker> broker,
             QueuePolicy policy, common::Clock* clock,
             telemetry::MetricsRegistry* metrics,
             store::StateStore* store = nullptr,
             accounting::AccountingManager* accounting = nullptr);
  /// Single-resource convenience: wraps `resource` in a one-member fleet
  /// (named after its resource_id).
  Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
             common::Clock* clock, telemetry::MetricsRegistry* metrics,
             store::StateStore* store = nullptr,
             accounting::AccountingManager* accounting = nullptr);
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Enqueues a validated payload; returns the daemon job id.
  std::uint64_t submit(common::SessionId session, const std::string& user,
                       JobClass cls, quantum::Payload payload);
  /// Same with placement preferences; fails on an unusable resource pin.
  common::Result<std::uint64_t> submit(common::SessionId session,
                                       const std::string& user, JobClass cls,
                                       quantum::Payload payload,
                                       const SubmitOptions& options);

  common::Result<DaemonJob> query(std::uint64_t job_id) const;
  /// Samples of a completed job.
  common::Result<quantum::Samples> result(std::uint64_t job_id) const;
  /// Blocks until the job reaches a terminal state.
  common::Result<quantum::Samples> wait(std::uint64_t job_id);
  /// Same with a deadline: errs with kTimeout once `timeout` elapses, so
  /// clients and tests cannot block forever on a wedged resource. Negative
  /// timeout blocks indefinitely.
  common::Result<quantum::Samples> wait(std::uint64_t job_id,
                                        common::DurationNs timeout);
  common::Status cancel(std::uint64_t job_id);

  /// Cancels every non-terminal job of `session` (queued jobs immediately,
  /// running jobs at the next batch boundary). Used when a session is
  /// closed or expires so its work does not linger in the queue as an
  /// orphan. Returns how many jobs were affected.
  std::size_t cancel_for_session(common::SessionId session);

  /// Re-installs jobs recovered from the durable store (must run before
  /// any new submission): terminal jobs re-serve their stored samples,
  /// non-terminal jobs re-enter the queue with exactly their un-executed
  /// shots. `next_job_id` floors the id allocator so recovered ids are
  /// never reused.
  void restore(const std::vector<store::JobRecord>& jobs,
               std::uint64_t next_job_id);

  /// Full durable image of the dispatcher's state for compaction. Reads
  /// the journal watermark before copying records (both under the queue
  /// lock, where every job event is appended), so the snapshot's jobs_seq
  /// is exact.
  store::StoreSnapshot durable_snapshot() const;

  /// How long an idle lane sleeps between queue checks (default 20 ms).
  /// Submissions and failovers wake lanes immediately; the tick only
  /// bounds how fast a lane notices its resource recovering. The simtest
  /// harness shrinks it so flap-recovery scenarios spend no real time
  /// waiting. Takes effect on each lane's next wait.
  void set_idle_tick(common::DurationNs tick);

  /// Admin: pause/resume batch dispatch globally (maintenance windows).
  void drain();
  void resume();
  bool draining() const noexcept { return draining_.load(); }

  /// Admin: drain one fleet resource — stop placing work on it and move its
  /// queued jobs to healthy peers (rolling maintenance).
  common::Status drain_resource(const std::string& name);
  common::Status resume_resource(const std::string& name);

  broker::ResourceBroker& broker() noexcept { return *broker_; }
  const broker::ResourceBroker& broker() const noexcept { return *broker_; }

  std::map<JobClass, std::size_t> queue_depths() const;
  std::vector<DaemonJob> jobs_snapshot() const;
  /// Pending ids in dispatch order.
  std::vector<std::uint64_t> queue_order() const;

  /// Per-resource view of the queue for GET /v1/queue: how many jobs are
  /// queued on / running on each dispatch lane. Jobs awaiting any healthy
  /// resource appear under "(unplaced)".
  struct LaneDepth {
    std::size_t queued = 0;
    std::size_t running = 0;
  };
  std::map<std::string, LaneDepth> lane_depths() const;

  /// Queued (not yet running) jobs per user, for the admission boundary's
  /// per-user depth limit and the /v1/queue per-tenant view.
  std::map<std::string, std::size_t> user_pending_counts() const;
  std::size_t pending_for_user(const std::string& user) const;

  /// Terminal-job GC: completed/failed/cancelled records older than
  /// `retention` (or beyond the newest `cap`, LRU by finish time) are
  /// dropped so records_ stops growing with uptime. 0 disables either
  /// bound. The sweep runs on every submit; sweep_terminal() forces one.
  void set_terminal_retention(common::DurationNs retention, std::size_t cap);
  std::size_t sweep_terminal();

 private:
  struct Record {
    DaemonJob job;
    /// Shared and immutable: lanes copy it per batch slice, and the store's
    /// journal writer serializes it off-thread without a deep copy.
    std::shared_ptr<const quantum::Payload> payload;
    /// Memoized store::payload_fingerprint(*payload), 0 = not yet
    /// computed. Shared with snapshot staging, which fills it outside the
    /// queue lock — without the memo every compaction re-hashes every
    /// payload body ever submitted.
    std::shared_ptr<std::atomic<std::uint64_t>> payload_fp =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    quantum::Samples samples;
    bool cancel_requested = false;
    bool pinned = false;  // submitted with an explicit resource hint
    std::optional<broker::SchedulingPolicy> policy_hint;
    std::uint32_t failovers = 0;  // batches returned by resource failures
  };

  void lane_loop(const std::stop_token& stop, const std::string& lane);
  void start_lanes();
  void install_priority_hook();
  /// Evicts terminal records per the retention/cap policy; returns count.
  std::size_t sweep_terminal_locked(common::TimeNs now);
  bool has_eligible_locked(const std::string& lane) const;
  /// Moves every non-terminal job placed on `lane` to a healthy resource
  /// (or unplaces it when none is available right now).
  void reassign_from(const std::string& lane);
  void finish_locked(Record& record, DaemonJobState state,
                     const std::string& error);
  /// Durable image of one record's metadata only — the (expensive)
  /// payload and samples serialization is always done later, by the
  /// journal's deferred serializer or durable_snapshot(), outside the
  /// queue lock.
  store::JobRecord to_record_locked(const Record& record) const;

  std::shared_ptr<broker::ResourceBroker> broker_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  store::StateStore* store_;
  accounting::AccountingManager* accounting_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  PriorityQueueCore core_;
  std::map<std::uint64_t, Record> records_;
  /// Non-terminal job ids: keeps per-lane queue reporting O(live jobs)
  /// while records_ retains every terminal job for result serving.
  std::unordered_set<std::uint64_t> active_;
  /// Terminal job ids in finish order (oldest first) — the GC's LRU.
  std::deque<std::uint64_t> terminal_order_;
  common::DurationNs terminal_retention_ = 0;
  std::size_t terminal_cap_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::atomic<bool> draining_{false};
  std::atomic<common::DurationNs> idle_tick_{20 * common::kMillisecond};
  std::vector<std::jthread> lanes_;
};

}  // namespace qcenv::daemon
