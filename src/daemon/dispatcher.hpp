// Live dispatcher: drives sharded PriorityQueueCores against a fleet of
// QRMI resources managed by a ResourceBroker.
//
// The submit path is sharded per tenant: a user hashes onto one of N
// shards, each with its own mutex, queue core, record table and per-user
// pending counts, so concurrent tenants stop contending on one lock. Job
// ids and FIFO sequence numbers come from ONE global atomic allocator,
// and dispatch runs a tournament — each lane peeks every shard's best
// eligible head under that shard's lock, then takes the global winner
// using the queue core's exact comparator — so the dispatch order is
// bit-identical to what a single shared queue would produce (fair-share
// convergence and class-priority semantics are shard-count-invariant).
// Any lane can win any shard's jobs: that IS the work stealing.
//
// One worker lane per resource pulls batches this way, slices the job's
// payload to the batch shot count, executes it synchronously through
// QRMI, merges samples into the job record and re-queues remainders.
// This is the daemon's "second level of scheduling logic that allows
// multiple users to share the QPU" (§3.3), extended to multi-resource
// dispatch: jobs are placed on a resource by the broker's scheduling
// policy, lanes drain the shards concurrently, and when a resource fails
// its in-flight batch and queued jobs fail over to healthy resources
// with no shots lost.
//
// Lock order: shard mutexes in index order (when more than one is
// needed: snapshot/restore/GC), then dispatch_mutex_ (a leaf — its
// waiters' predicate reads only atomics, never shard state).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "accounting/accounting.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "qrmi/qrmi.hpp"
#include "store/state_store.hpp"
#include "telemetry/events.hpp"
#include "telemetry/explain.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::daemon {

enum class DaemonJobState {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

const char* to_string(DaemonJobState state) noexcept;

struct DaemonJob {
  std::uint64_t id = 0;
  common::SessionId session;
  std::string user;
  JobClass job_class = JobClass::kDevelopment;
  DaemonJobState state = DaemonJobState::kQueued;
  std::uint64_t total_shots = 0;
  std::uint64_t shots_done = 0;
  common::TimeNs submit_time = 0;
  common::TimeNs first_dispatch_time = 0;
  common::TimeNs finish_time = 0;
  /// Fleet resource the job is currently placed on. Empty while no healthy
  /// resource can take it; updated when failover moves the job.
  std::string resource;
  std::string error;
  /// Trace correlating this job's pipeline spans (0 = not traced).
  telemetry::TraceId trace_id = 0;
};

class Dispatcher {
 public:
  /// Per-job placement preferences (the REST `resource`/`policy` hints).
  struct SubmitOptions {
    /// Pin the initial placement to this fleet resource. Submission fails
    /// if it is unknown, unhealthy or draining. Failover may still move the
    /// job if the resource dies afterwards.
    std::string resource;
    /// Placement policy override for this job (initial pick and failover
    /// repicks); nullopt uses the broker default.
    std::optional<broker::SchedulingPolicy> policy;
    /// Per-user queued-job ceiling enforced ATOMICALLY under the queue
    /// lock (0 = none). The admission boundary pre-checks the same limit
    /// for a friendly early error, but only this check cannot be raced by
    /// concurrent submissions of the same user.
    std::size_t user_pending_limit = 0;
    /// Trace id allocated by the caller (TraceStore::allocate); the
    /// dispatcher threads it through journal_append/queue_wait/dispatch
    /// spans. 0 disables tracing for this job.
    telemetry::TraceId trace_id = 0;
    /// When the caller's admission span began (its clock reading at
    /// trace allocation); < 0 falls back to the dispatcher submit time.
    common::TimeNs trace_start = -1;
  };

  /// Multi-resource dispatcher: one worker lane per resource registered in
  /// `broker` at construction time. `store` (optional, must outlive the
  /// dispatcher) receives a journal event for every job state change.
  /// `accounting` (optional, must outlive the dispatcher) is charged for
  /// every executed batch and plugs fair-share ordering into the queue
  /// core: within a class, the most under-served user's jobs go first.
  /// `traces`/`events` (optional, must outlive the dispatcher) receive
  /// per-job pipeline spans and operator events; nullptr disables tracing
  /// with zero hot-path cost.
  Dispatcher(std::shared_ptr<broker::ResourceBroker> broker,
             QueuePolicy policy, common::Clock* clock,
             telemetry::MetricsRegistry* metrics,
             store::StateStore* store = nullptr,
             accounting::AccountingManager* accounting = nullptr,
             telemetry::TraceStore* traces = nullptr,
             telemetry::EventLog* events = nullptr);
  /// Single-resource convenience: wraps `resource` in a one-member fleet
  /// (named after its resource_id).
  Dispatcher(qrmi::QrmiPtr resource, QueuePolicy policy,
             common::Clock* clock, telemetry::MetricsRegistry* metrics,
             store::StateStore* store = nullptr,
             accounting::AccountingManager* accounting = nullptr,
             telemetry::TraceStore* traces = nullptr,
             telemetry::EventLog* events = nullptr);
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Enqueues a validated payload; returns the daemon job id.
  std::uint64_t submit(common::SessionId session, const std::string& user,
                       JobClass cls, quantum::Payload payload);
  /// Same with placement preferences; fails on an unusable resource pin.
  common::Result<std::uint64_t> submit(common::SessionId session,
                                       const std::string& user, JobClass cls,
                                       quantum::Payload payload,
                                       const SubmitOptions& options);
  /// Zero-copy submission: the job shares `payload` with the caller (and
  /// with every other job submitted from the same pointer) instead of
  /// deep-copying its program body. This is the hot-path shape for
  /// parameter sweeps — one program object, thousands of submissions —
  /// and lets the journal reuse one payload fingerprint across the run.
  /// The payload must not be mutated after submission (enforced by const).
  common::Result<std::uint64_t> submit(
      common::SessionId session, const std::string& user, JobClass cls,
      std::shared_ptr<const quantum::Payload> payload,
      const SubmitOptions& options);

  common::Result<DaemonJob> query(std::uint64_t job_id) const;
  /// The job's span timeline. Materializes the deferred submit-side spans
  /// on demand, so mid-flight jobs (still queued, never claimed) have a
  /// readable trace too. Errors: not_found for unknown/untraced jobs or
  /// an evicted trace.
  common::Result<telemetry::JobTrace> trace(std::uint64_t job_id);
  /// Samples of a completed job.
  common::Result<quantum::Samples> result(std::uint64_t job_id) const;
  /// Blocks until the job reaches a terminal state.
  common::Result<quantum::Samples> wait(std::uint64_t job_id);
  /// Same with a deadline: errs with kTimeout once `timeout` elapses, so
  /// clients and tests cannot block forever on a wedged resource. Negative
  /// timeout blocks indefinitely.
  common::Result<quantum::Samples> wait(std::uint64_t job_id,
                                        common::DurationNs timeout);
  common::Status cancel(std::uint64_t job_id);

  /// Cancels every non-terminal job of `session` (queued jobs immediately,
  /// running jobs at the next batch boundary). Used when a session is
  /// closed or expires so its work does not linger in the queue as an
  /// orphan. Returns how many jobs were affected.
  std::size_t cancel_for_session(common::SessionId session);

  /// Re-installs jobs recovered from the durable store (must run before
  /// any new submission): terminal jobs re-serve their stored samples,
  /// non-terminal jobs re-enter the queue with exactly their un-executed
  /// shots. `next_job_id` floors the id allocator so recovered ids are
  /// never reused.
  void restore(const std::vector<store::JobRecord>& jobs,
               std::uint64_t next_job_id);

  /// Full durable image of the dispatcher's state for compaction. Reads
  /// the journal watermark before copying records (both under the queue
  /// lock, where every job event is appended), so the snapshot's jobs_seq
  /// is exact.
  store::StoreSnapshot durable_snapshot() const;

  /// How long an idle lane sleeps between queue checks (default 20 ms).
  /// Submissions and failovers wake lanes immediately; the tick only
  /// bounds how fast a lane notices its resource recovering. The simtest
  /// harness shrinks it so flap-recovery scenarios spend no real time
  /// waiting. Takes effect on each lane's next wait.
  void set_idle_tick(common::DurationNs tick);

  /// Admin: pause/resume batch dispatch globally (maintenance windows).
  void drain();
  void resume();
  bool draining() const noexcept { return draining_.load(); }

  /// Admin: drain one fleet resource — stop placing work on it and move its
  /// queued jobs to healthy peers (rolling maintenance).
  common::Status drain_resource(const std::string& name);
  common::Status resume_resource(const std::string& name);

  broker::ResourceBroker& broker() noexcept { return *broker_; }
  const broker::ResourceBroker& broker() const noexcept { return *broker_; }

  std::map<JobClass, std::size_t> queue_depths() const;
  /// Jobs currently queued across all shards — one relaxed atomic load,
  /// for the admission boundary's depth limit on the submit hot path
  /// (queue_depths() walks every shard and is for status endpoints).
  std::size_t queued_total() const noexcept {
    return total_queued_.load(std::memory_order_relaxed);
  }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::vector<DaemonJob> jobs_snapshot() const;
  /// Pending ids in global dispatch order (k-way merge of shard heads).
  std::vector<std::uint64_t> queue_order() const;

  /// ETA-engine introspection: every pending job's ordering keys plus the
  /// record fields the estimator needs, in global dispatch order — the
  /// exact k-way merge queue_order() runs, with one `now` for the whole
  /// pass so rank/hook snapshots are mutually consistent.
  struct PendingView {
    std::uint64_t job_id = 0;
    std::string user;
    JobClass cls = JobClass::kDevelopment;
    int rank = 0;           // effective class rank after aging
    bool has_hook = false;  // fair-share hook installed
    double hook = 0.0;      // fair-share priority factor (higher first)
    std::uint64_t remaining_shots = 0;
    std::string resource;  // current placement ("" = unplaced)
    bool pinned = false;
    common::TimeNs submit_time = 0;
  };
  struct PendingSnapshot {
    common::TimeNs now = 0;
    std::vector<PendingView> entries;  // global dispatch order
  };
  PendingSnapshot pending_snapshot() const;

  /// Per-resource view of the queue for GET /v1/queue: how many jobs are
  /// queued on / running on each dispatch lane. Jobs awaiting any healthy
  /// resource appear under "(unplaced)".
  struct LaneDepth {
    std::size_t queued = 0;
    std::size_t running = 0;
  };
  std::map<std::string, LaneDepth> lane_depths() const;

  /// Queued (not yet running) jobs per user, for the admission boundary's
  /// per-user depth limit and the /v1/queue per-tenant view.
  std::map<std::string, std::size_t> user_pending_counts() const;
  std::size_t pending_for_user(const std::string& user) const;

  /// Terminal-job GC: completed/failed/cancelled records older than
  /// `retention` (or beyond the newest `cap`, LRU by finish time) are
  /// dropped so records_ stops growing with uptime. 0 disables either
  /// bound. The sweep runs on every submit; sweep_terminal() forces one.
  void set_terminal_retention(common::DurationNs retention, std::size_t cap);
  std::size_t sweep_terminal();

  /// Completed jobs whose submit→finish latency exceeds `threshold` emit a
  /// warn-severity "slow_job" event (0 disables, the default).
  void set_slow_job_threshold(common::DurationNs threshold) {
    slow_job_threshold_.store(threshold, std::memory_order_relaxed);
  }

  // ---- per-tenant SLO signals (scrape-loop samplers) ---------------------
  // Counters ride the shard mutex the submit/finish paths already hold, so
  // the hot path pays a map increment, never a new lock.

  /// Cumulative per-user SLO counters since process start.
  struct UserSlo {
    std::uint64_t submitted = 0;     // jobs accepted into the queue
    std::uint64_t completed = 0;     // jobs reaching kCompleted
    std::uint64_t latency_over = 0;  // completions over the latency SLO
  };
  std::map<std::string, UserSlo> slo_counts() const;

  /// Completion-latency SLO threshold used by the latency_over counter
  /// (0 disables counting, the default).
  void set_latency_slo(common::DurationNs threshold) {
    latency_slo_.store(threshold, std::memory_order_relaxed);
  }

  /// Instantaneous queue-wait split: currently queued jobs per user whose
  /// age (now - submit) is within / over `threshold`. The scrape loop
  /// samples this once per deadline — the ratio-of-breaching-samples form
  /// of a queue-wait percentile SLO.
  struct QueueWaitSplit {
    std::size_t within = 0;
    std::size_t over = 0;
  };
  std::map<std::string, QueueWaitSplit> queue_wait_split(
      common::TimeNs now, common::DurationNs threshold) const;

  /// Watchdog: invoked with the lane name on every lane-loop iteration
  /// (flight-recorder heartbeats). Must not call back into the dispatcher.
  void set_lane_heartbeat(std::function<void(const std::string&)> heartbeat);

  /// Critical-path sink: every terminal job's finished trace is collapsed
  /// into `profiler` (requires tracing). Set once right after
  /// construction, before any job can reach a terminal state; the
  /// profiler must outlive the dispatcher.
  void set_profiler(telemetry::CriticalPathProfiler* profiler) {
    profiler_ = profiler;
  }

 private:
  struct Record {
    DaemonJob job;
    /// Shared and immutable: lanes copy it per batch slice, and the store's
    /// journal writer serializes it off-thread without a deep copy.
    std::shared_ptr<const quantum::Payload> payload;
    /// Memoized store::payload_fingerprint(*payload), 0 = not yet
    /// computed. Shared with snapshot staging, which fills it outside the
    /// queue lock — without the memo every compaction re-hashes every
    /// payload body ever submitted.
    std::shared_ptr<std::atomic<std::uint64_t>> payload_fp =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    quantum::Samples samples;
    bool cancel_requested = false;
    bool pinned = false;  // submitted with an explicit resource hint
    std::optional<broker::SchedulingPolicy> policy_hint;
    std::uint32_t failovers = 0;  // batches returned by resource failures
    /// Deferred-tracing scalars: the submit hot path records only these
    /// two timestamps (plus the histogram observations); the trace's
    /// actual spans are materialized off the admission-limited path by
    /// materialize_trace_locked — at first claim, finish, or read.
    common::TimeNs admission_start = -1;
    common::TimeNs queue_start = -1;
    std::uint32_t shard_index = 0;
    bool trace_materialized = false;
  };

  /// One submit shard: a tenant's entire dispatcher-side state lives in
  /// exactly one shard (hash of the user name), so the submit hot path
  /// takes one shard mutex and touches nothing global but atomics.
  struct Shard {
    mutable std::mutex mutex;
    /// Wakes wait(job_id) callers; notified on terminal transitions.
    std::condition_variable cv;
    PriorityQueueCore core;
    std::map<std::uint64_t, Record> records;
    /// Non-terminal job ids: keeps per-lane queue reporting O(live jobs)
    /// while records retains every terminal job for result serving.
    std::unordered_set<std::uint64_t> active;
    /// Terminal job ids in finish order (oldest first) — the GC's LRU.
    std::deque<std::uint64_t> terminal_order;
    /// Jobs in state kQueued per user — O(1) admission pre-checks
    /// instead of an O(active jobs) scan under a global lock.
    std::map<std::string, std::size_t> user_pending;
    /// Per-user SLO counters (see UserSlo); bumped under this mutex on
    /// submit and terminal transitions.
    std::map<std::string, UserSlo> user_slo;
  };

  enum class DispatchOutcome {
    kDispatched,  // ran (or terminally resolved) a batch — rescan now
    kRetry,       // lost a benign race (head taken/cancelled) — rescan now
    kIdle,        // nothing eligible — wait for work or the idle tick
  };

  void lane_loop(const std::stop_token& stop, const std::string& lane);
  /// One tournament + at most one batch execution for `lane`.
  DispatchOutcome dispatch_one(const std::string& lane,
                               const qrmi::QrmiPtr& resource);
  void start_lanes();
  void install_priority_hook();
  Shard& shard_for_user(const std::string& user) const;
  /// Shard holding `job_id` (via the striped index), or nullptr. The
  /// mapping is immutable for a job's lifetime; the stripe lock is
  /// released before any shard lock is taken, so the two never nest.
  Shard* find_shard(std::uint64_t job_id) const;
  void index_insert(std::uint64_t job_id, std::uint32_t shard);
  void index_erase(std::uint64_t job_id);
  /// Shard locks in index order (global views: snapshot, GC, restore).
  std::vector<std::unique_lock<std::mutex>> lock_all_shards() const;
  /// Bumps the dispatch epoch and wakes registered lane waiters. Safe to
  /// call while holding any shard lock (dispatch_mutex_ is a leaf). When
  /// every lane is busy (or parked by a global drain) this is one atomic
  /// load — the submit hot path's common case.
  void wake_lanes();
  /// Unconditional wake, ignoring the waiter count: required for state
  /// flips that end a drain park (resume, stop, idle-tick changes).
  void wake_lanes_all();
  /// Evicts terminal records per the retention/cap policy across all
  /// shards (global LRU merge by finish time); returns eviction count.
  std::size_t sweep_terminal_all(common::TimeNs now);
  /// Moves every non-terminal job placed on `lane` to a healthy resource
  /// (or unplaces it when none is available right now).
  void reassign_from(const std::string& lane);
  /// Caller holds `shard.mutex`.
  void finish_locked(Shard& shard, Record& record, DaemonJobState state,
                     const std::string& error);
  /// Decrements `shard.user_pending[user]`, erasing the entry at zero.
  static void drop_user_pending(Shard& shard, const std::string& user);
  /// Durable image of one record's metadata only — the (expensive)
  /// payload and samples serialization is always done later, by the
  /// journal's deferred serializer or durable_snapshot(), outside the
  /// queue lock.
  store::JobRecord to_record_locked(const Record& record) const;
  /// Builds the job's submit-side spans (admission, journal_append, open
  /// queue_wait) from the scalars the hot path recorded. Idempotent; must
  /// run before any other TraceStore operation on the job's trace. Caller
  /// holds the record's shard mutex.
  void materialize_trace_locked(Record& record);
  /// Feeds the per-stage latency histogram for a span enter()/finish()
  /// just closed; queue_wait series carry the job class (priority tier).
  void observe_stage(const std::string& stage, JobClass cls,
                     const std::string& resource,
                     common::DurationNs duration);

  std::shared_ptr<broker::ResourceBroker> broker_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  store::StateStore* store_;
  accounting::AccountingManager* accounting_;
  telemetry::TraceStore* traces_;
  telemetry::EventLog* events_;
  telemetry::CriticalPathProfiler* profiler_ = nullptr;
  /// Submit-hot-path metric handles, resolved once: the registry lookup
  /// takes a global mutex and builds a label map, which 64 submitting
  /// threads must not pay per submission.
  telemetry::HistogramMetric* admission_hist_ = nullptr;
  telemetry::HistogramMetric* journal_append_hist_ = nullptr;
  std::array<telemetry::Counter*, 3> submitted_counter_{};
  std::atomic<common::DurationNs> slow_job_threshold_{0};
  std::atomic<common::DurationNs> latency_slo_{0};
  std::mutex heartbeat_mutex_;
  std::function<void(const std::string&)> lane_heartbeat_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// job id -> shard index, striped so concurrent queries of different
  /// jobs do not serialize. Entries are written once (submit/restore)
  /// and erased only by terminal-record GC.
  static constexpr std::size_t kIndexStripes = 16;
  struct IndexStripe {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::uint32_t> shard_of;
  };
  mutable std::array<IndexStripe, kIndexStripes> index_;

  /// Global allocator: job ids double as queue FIFO seqs, so cross-shard
  /// dispatch order equals single-queue order.
  std::atomic<std::uint64_t> next_job_id_{1};
  /// Entries pending across all shard cores (admission depth checks).
  std::atomic<std::size_t> total_queued_{0};
  /// Terminal-GC bookkeeping: count + a lower bound on the oldest
  /// terminal finish time, so the per-submit sweep is one atomic compare
  /// unless something is actually evictable.
  std::atomic<std::size_t> terminal_count_{0};
  std::atomic<common::TimeNs> earliest_terminal_{
      std::numeric_limits<common::TimeNs>::max()};
  std::atomic<common::DurationNs> terminal_retention_{0};
  std::atomic<std::size_t> terminal_cap_{0};

  /// Lanes sleep on dispatch_cv_; the predicate reads ONLY this epoch
  /// (and the stop token), never shard state, keeping dispatch_mutex_ a
  /// leaf in the lock order. Every event that could create dispatchable
  /// work bumps the epoch.
  std::mutex dispatch_mutex_;
  std::condition_variable dispatch_cv_;
  std::atomic<std::uint64_t> dispatch_epoch_{0};
  /// Lanes currently registered on dispatch_cv_ (incremented under
  /// dispatch_mutex_ before the wait predicate runs). Gates the
  /// mutex+notify in wake_lanes(); lanes parked by a global drain stay
  /// unregistered on purpose.
  std::atomic<std::uint32_t> dispatch_waiters_{0};

  std::atomic<bool> draining_{false};
  std::atomic<common::DurationNs> idle_tick_{20 * common::kMillisecond};
  std::vector<std::jthread> lanes_;
};

}  // namespace qcenv::daemon
