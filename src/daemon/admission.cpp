#include "daemon/admission.hpp"

namespace qcenv::daemon {

using common::Status;

Status AdmissionController::validate(const quantum::Payload& payload,
                                     JobClass cls,
                                     const quantum::DeviceSpec& spec,
                                     const AdmissionContext& context) const {
  if (context.queue_depth >= policy_.max_queue_depth) {
    return common::err::resource_exhausted(
        "daemon queue is full (global max_queue_depth=" +
        std::to_string(policy_.max_queue_depth) + ")");
  }
  const std::size_t pending_limit =
      context.user_pending_limit.value_or(policy_.max_pending_per_user);
  if (pending_limit > 0 && context.user_pending >= pending_limit) {
    return common::err::resource_exhausted(
        "user '" + context.user + "' already has " +
        std::to_string(context.user_pending) +
        " job(s) pending (per-user limit " + std::to_string(pending_limit) +
        ")");
  }
  const auto quota = policy_.max_shots.find(cls);
  if (quota != policy_.max_shots.end() && payload.shots() > quota->second) {
    return common::err::invalid_argument(
        std::string("shot count ") + std::to_string(payload.shots()) +
        " exceeds the " + to_string(cls) + " class limit of " +
        std::to_string(quota->second));
  }
  if (payload.kind() == quantum::PayloadKind::kAnalog) {
    auto sequence = payload.sequence();
    if (!sequence.ok()) return sequence.error();
    QCENV_RETURN_IF_ERROR(spec.validate(sequence.value()));
  } else {
    auto circuit = payload.circuit();
    if (!circuit.ok()) return circuit.error();
    QCENV_RETURN_IF_ERROR(spec.validate(circuit.value()));
  }
  return Status::ok_status();
}

}  // namespace qcenv::daemon
